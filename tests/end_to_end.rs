//! End-to-end integration tests spanning all crates: generator → snapshot
//! pair → exact baseline → budgeted pipeline → coverage, for every
//! selector in the suite, on every dataset emulator (at small scale).

use converging_pairs::core::experiment::{run_kind, run_selector, Snapshots};
use converging_pairs::core::selectors::{ClassifierConfig, SelectorKind};
use converging_pairs::prelude::*;

fn snapshots(kind: DatasetKind) -> Snapshots {
    let t = DatasetProfile::scaled(kind, 0.04).generate(123);
    Snapshots::from_temporal(kind.name(), &t, 2)
}

#[test]
fn every_selector_runs_on_every_dataset() {
    for kind in DatasetKind::ALL {
        let mut snaps = snapshots(kind);
        for selector in SelectorKind::table5_suite() {
            let row = run_kind(&mut snaps, selector, 8, 1, 7);
            assert!(
                (0.0..=1.0).contains(&row.coverage),
                "{} on {}: coverage {}",
                selector.name(),
                kind.name(),
                row.coverage
            );
            assert!(
                row.budget.total() <= 16,
                "{} on {} overspent: {:?}",
                selector.name(),
                kind.name(),
                row.budget
            );
        }
    }
}

#[test]
fn informed_selectors_beat_random_on_average() {
    // Averaged over the four datasets, the best landmark hybrid must beat
    // the uniform-random control at the same (tight) budget.
    let mut hybrid_total = 0.0;
    let mut random_total = 0.0;
    for kind in DatasetKind::ALL {
        let mut snaps = snapshots(kind);
        hybrid_total +=
            run_kind(&mut snaps, SelectorKind::Mmsd { landmarks: 5 }, 12, 1, 7).coverage;
        random_total += run_kind(&mut snaps, SelectorKind::Random, 12, 1, 7).coverage;
    }
    assert!(
        hybrid_total > random_total,
        "hybrid {hybrid_total} vs random {random_total}"
    );
}

#[test]
fn coverage_is_monotone_in_budget_for_deterministic_selectors() {
    // Larger budgets extend the candidate prefix for deterministic
    // selectors, so coverage cannot drop.
    let mut snaps = snapshots(DatasetKind::Dblp);
    for kind in [
        SelectorKind::Degree,
        SelectorKind::DegRel,
        SelectorKind::MaxAvg,
    ] {
        let mut last = -1.0;
        for m in [4u64, 8, 16, 32, 64] {
            let cov = run_kind(&mut snaps, kind, m, 1, 7).coverage;
            assert!(
                cov + 1e-9 >= last,
                "{} coverage dropped from {last} to {cov} at m={m}",
                kind.name()
            );
            last = cov;
        }
    }
}

#[test]
fn full_budget_equals_exact_for_all_selectors() {
    let mut snaps = snapshots(DatasetKind::Facebook);
    let n = snaps.g1.num_nodes() as u64;
    for kind in [
        SelectorKind::Degree,
        SelectorKind::SumDiff { landmarks: 5 },
        SelectorKind::Mmsd { landmarks: 5 },
        SelectorKind::Random,
    ] {
        // Budget of n candidates: these selectors rank every node of V_t1,
        // so the pipeline can afford them all and must recover the exact
        // answer. (The Incidence baselines are excluded on purpose: they
        // only rank active nodes, and a converging pair may have both
        // endpoints away from any new edge.)
        let row = run_kind(&mut snaps, kind, n, 0, 7);
        assert_eq!(
            row.coverage,
            1.0,
            "{} did not reach full coverage at full budget",
            kind.name()
        );
    }
}

#[test]
fn classifier_end_to_end() {
    let mut snaps = snapshots(DatasetKind::Facebook);
    let config = ClassifierConfig {
        landmarks: 5,
        threads: 2,
        ..ClassifierConfig::default()
    };
    let mut local = snaps.local_classifier(config, 7);
    let row = run_selector(&mut snaps, &mut local, 20, 1);
    assert_eq!(row.selector, "L-Classifier");
    assert!(row.budget.total() <= 40);
    assert!((0.0..=1.0).contains(&row.coverage));
}

#[test]
fn budgeted_pairs_are_always_true_pairs() {
    // Soundness: every pair the budgeted pipeline reports, at the exact
    // threshold, must be in the exact answer (the pipeline never invents
    // pairs, it only misses them).
    let t = DatasetProfile::scaled(DatasetKind::InternetLinks, 0.04).generate(5);
    let (g1, g2) = t.snapshot_pair(0.8, 1.0);
    let exact = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 1 }, 2);
    let truth = exact.pair_set();
    for kind in [SelectorKind::MaxAvg, SelectorKind::Mmsd { landmarks: 5 }] {
        let mut sel = kind.build(3);
        let result = budgeted_top_k(&g1, &g2, sel.as_mut(), 15, &exact.spec());
        for p in &result.pairs {
            assert!(
                truth.contains(&p.pair),
                "{} reported ({}, {}) delta {} not in the exact answer",
                kind.name(),
                p.pair.0,
                p.pair.1,
                p.delta
            );
        }
    }
}

#[test]
fn malformed_edge_lists_error_instead_of_panicking() {
    // Regression: the I/O layer propagates structured errors through the
    // crate facade — a bad input names its line, and a missing file is an
    // I/O error, never a panic.
    use converging_pairs::gen::io::{read_temporal, read_temporal_file, IoError};
    let err = read_temporal("0 1\n2\n".as_bytes()).expect_err("truncated record must error");
    assert!(
        matches!(err, IoError::Parse { line: 2, .. }),
        "wrong error: {err}"
    );
    assert!(err.to_string().contains("line 2"), "{err}");
    assert!(
        read_temporal("0 1 soon\n".as_bytes()).is_err(),
        "non-numeric time column must be rejected"
    );
    assert!(
        matches!(
            read_temporal_file("/nonexistent/converging-pairs-input.txt"),
            Err(IoError::Io(_))
        ),
        "missing file must surface as an I/O error"
    );
}

#[test]
fn temporal_io_roundtrip_preserves_experiment() {
    // Write the stream to disk, read it back, and check the exact answer
    // is identical — the I/O layer is faithful.
    use converging_pairs::gen::io::{read_temporal, write_temporal};
    let t = DatasetProfile::scaled(DatasetKind::Dblp, 0.03).generate(11);
    let mut buf = Vec::new();
    write_temporal(&t, &mut buf).unwrap();
    let back = read_temporal(buf.as_slice()).unwrap();
    let (a1, a2) = t.snapshot_pair(0.8, 1.0);
    let (b1, b2) = back.snapshot_pair(0.8, 1.0);
    let ea = exact_top_k(&a1, &a2, &TopKSpec::ThresholdFromMax { slack: 1 }, 2);
    let eb = exact_top_k(&b1, &b2, &TopKSpec::ThresholdFromMax { slack: 1 }, 2);
    assert_eq!(ea.pairs, eb.pairs);
}
