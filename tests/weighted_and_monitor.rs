//! Integration tests for the weighted-graph path (the paper defines the
//! problem on "undirected (weighted) graphs" even though its evaluation is
//! unweighted) and for the continuous-monitoring extension.

use converging_pairs::graph::GraphBuilder;
use converging_pairs::prelude::*;
use converging_pairs::stream::{ConvergenceMonitor, MonitorConfig};

/// Builds a weighted path 0-1-...-last with the given per-edge weight,
/// plus optional extra weighted edges.
fn weighted_path(n: usize, weight: u32, extra: &[(u32, u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 0..(n as u32 - 1) {
        b.add_weighted_edge(NodeId(i), NodeId(i + 1), weight);
    }
    for &(u, v, w) in extra {
        b.add_weighted_edge(NodeId(u), NodeId(v), w);
    }
    b.build()
}

#[test]
fn weighted_exact_top_k_uses_dijkstra() {
    // Path of weight-5 edges; the late shortcut (0, 7) has weight 3, so
    // d(0,7) drops from 35 to 3 -> delta 32.
    let g1 = weighted_path(8, 5, &[]);
    let g2 = weighted_path(8, 5, &[(0, 7, 3)]);
    let exact = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 0 }, 2);
    assert_eq!(exact.delta_max, 32);
    assert_eq!(exact.pairs[0].pair, (NodeId(0), NodeId(7)));
}

#[test]
fn weighted_budgeted_pipeline_matches_exact_at_full_budget() {
    let g1 = weighted_path(10, 4, &[(2, 6, 1)]);
    let g2 = weighted_path(10, 4, &[(2, 6, 1), (0, 9, 2), (1, 8, 3)]);
    let exact = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 5 }, 2);
    assert!(!exact.pairs.is_empty());
    let mut sel = SelectorKind::SumDiff { landmarks: 3 }.build(1);
    let result = budgeted_top_k(&g1, &g2, sel.as_mut(), 10, &exact.spec());
    assert_eq!(result.pair_set(), exact.pair_set());
}

#[test]
fn weighted_budget_accounting_counts_dijkstra_runs() {
    let g1 = weighted_path(12, 2, &[]);
    let g2 = weighted_path(12, 2, &[(0, 11, 1)]);
    let mut sel = SelectorKind::MaxAvg.build(0);
    let result = budgeted_top_k(&g1, &g2, sel.as_mut(), 3, &TopKSpec::TopK(5));
    assert!(result.budget.total() <= 6);
    assert!(!result.pairs.is_empty());
}

#[test]
fn monitor_over_generated_stream() {
    // Watch a growing Facebook-like graph in 4 windows; the monitor must
    // keep budgets per step and accumulate pair history.
    let t = DatasetProfile::scaled(DatasetKind::Facebook, 0.04).generate(9);
    let cuts = [0.7, 0.8, 0.9, 1.0];
    let mut snaps = cuts.iter().map(|&f| t.snapshot_at_fraction(f));
    let first = snaps.next().unwrap();
    let m = 12;
    let mut monitor = ConvergenceMonitor::new(
        first,
        MonitorConfig {
            m,
            selector: SelectorKind::Masd { landmarks: 5 },
            spec: TopKSpec::TopK(50),
            seed: 3,
        },
    );
    let mut total_pairs = 0;
    for snap in snaps {
        let step = monitor.advance(snap);
        assert!(step.result.budget.total() <= 2 * m);
        total_pairs += step.result.pairs.len();
    }
    assert_eq!(monitor.steps(), 3);
    assert!(total_pairs > 0, "no convergence detected across any window");
    // History is consistent: every persistent pair was seen >= once.
    for (_, h) in monitor.persistent_pairs(1) {
        assert!(h.times_seen >= 1);
        assert!(h.last_seen_step >= 1 && h.last_seen_step <= 3);
    }
}
