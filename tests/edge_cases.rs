//! Degenerate-input integration tests: the library must behave sanely on
//! graphs with no changes, no structure, or budgets beyond the graph size.

use converging_pairs::core::experiment::Snapshots;
use converging_pairs::core::selectors::{ClassifierConfig, ClassifierSelector};
use converging_pairs::graph::builder::graph_from_edges;
use converging_pairs::prelude::*;

#[test]
fn identical_snapshots_yield_nothing_for_every_selector() {
    let g = graph_from_edges(20, &(0..19).map(|i| (i, i + 1)).collect::<Vec<_>>());
    for kind in SelectorKind::table5_suite() {
        let mut sel = kind.build(1);
        let res = budgeted_top_k(&g, &g.clone(), sel.as_mut(), 5, &TopKSpec::TopK(10));
        assert!(
            res.pairs.is_empty(),
            "{} fabricated pairs on identical snapshots",
            kind.name()
        );
    }
}

#[test]
fn budget_larger_than_graph_is_safe() {
    let g1 = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let g2 = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
    let mut sel = SelectorKind::Mmsd { landmarks: 10 }.build(0);
    let res = budgeted_top_k(&g1, &g2, sel.as_mut(), 10_000, &TopKSpec::TopK(100));
    // At most n nodes can ever be candidates.
    assert!(res.candidates.len() <= 6);
    assert!(!res.pairs.is_empty());
}

#[test]
fn edgeless_first_snapshot() {
    // Nothing is connected at t1 -> no valid pairs, whatever appears at t2.
    let g1 = graph_from_edges(5, &[]);
    let g2 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
    let exact = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 1 }, 2);
    assert!(exact.pairs.is_empty());
    for kind in [SelectorKind::Degree, SelectorKind::SumDiff { landmarks: 3 }] {
        let mut sel = kind.build(2);
        let res = budgeted_top_k(&g1, &g2, sel.as_mut(), 3, &TopKSpec::TopK(5));
        assert!(res.pairs.is_empty(), "{}", kind.name());
    }
}

#[test]
fn classifier_survives_training_without_positives() {
    // Identical training snapshots: the exact answer is empty, so the
    // positive class is empty; training must not panic and ranking must
    // still produce a usable ordering.
    let g = graph_from_edges(15, &(0..14).map(|i| (i, i + 1)).collect::<Vec<_>>());
    let config = ClassifierConfig {
        landmarks: 3,
        threads: 2,
        ..ClassifierConfig::default()
    };
    let mut classifier = ClassifierSelector::train_local(&g, &g.clone(), config, 3);
    let t1 = graph_from_edges(15, &(0..14).map(|i| (i, i + 1)).collect::<Vec<_>>());
    let mut t2_edges: Vec<(u32, u32)> = (0..14).map(|i| (i, i + 1)).collect();
    t2_edges.push((0, 14));
    let t2 = graph_from_edges(15, &t2_edges);
    let mut oracle = converging_pairs::core::SnapshotOracle::with_budget(&t1, &t2, 30);
    let ranked = converging_pairs::core::CandidateSelector::rank(&mut classifier, &mut oracle);
    assert!(!ranked.is_empty());
}

#[test]
fn single_edge_universe() {
    let g1 = graph_from_edges(2, &[(0, 1)]);
    let g2 = g1.clone();
    let mut snaps = Snapshots::from_eval_pair("tiny", g1, g2, 1);
    assert_eq!(snaps.truth(2).k(), 0);
    let row =
        converging_pairs::core::experiment::run_kind(&mut snaps, SelectorKind::Degree, 1, 2, 0);
    assert_eq!(row.coverage, 1.0); // empty truth counts as fully covered
}

#[test]
fn random_selector_differs_across_seeds_but_not_runs() {
    let t = DatasetProfile::scaled(DatasetKind::Facebook, 0.03).generate(4);
    let (g1, g2) = t.snapshot_pair(0.8, 1.0);
    let spec = TopKSpec::TopK(30);
    let run = |seed: u64| {
        let mut sel = SelectorKind::Random.build(seed);
        budgeted_top_k(&g1, &g2, sel.as_mut(), 10, &spec).candidates
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}
