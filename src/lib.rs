//! # converging-pairs
//!
//! A reproduction of *Identifying Converging Pairs of Nodes on a Budget*
//! (Lazaridou, Pitoura, Semertzidis, Tsaparas — EDBT 2015).
//!
//! Given two snapshots `G_t1 ⊆ G_t2` of a growing graph, the library finds
//! the **top-k converging pairs** — the connected pairs of `G_t1` whose
//! shortest-path distance decreased the most — either exactly (all-pairs
//! BFS) or under a *budget* of `2m` single-source shortest-path
//! computations using the paper's full suite of candidate-endpoint
//! selectors (centrality-, dispersion-, landmark-, hybrid-,
//! classification-based, plus the Incidence baselines).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`graph`] (`cp-graph`) — CSR snapshots, temporal streams, SSSP,
//!   components, diameter, betweenness.
//! * [`gen`] (`cp-gen`) — synthetic evolving-graph generators and the four
//!   dataset emulators used by the experiments.
//! * [`ml`] (`cp-ml`) — the logistic-regression substrate behind the
//!   classifier-based selectors.
//! * [`core`] (`cp-core`) — the paper's algorithms: exact baseline,
//!   `G^p_k` pair graph + greedy cover, budgeted top-k pipeline, selectors,
//!   coverage evaluation and the experiment runner.
//! * [`stream`] (`cp-stream`) — the streaming convergence engine: edge
//!   events in, budgeted reviews out on a policy, row cache chained across
//!   reviews, subscription watches, immutable published epochs.
//! * [`query`] (`cp-query`) — budget-free point queries (`d(u,v)`,
//!   `Δ(u,v)`), per-seed top-k and composable traversals served entirely
//!   from published epochs, with honest `Exact`/`Bounded`/`Unknown`
//!   answers.
//! * [`exec`] (`cp-exec`) — the persistent work-stealing executor every
//!   parallel phase runs on: workers spawned once per process (or per
//!   injected pool), parked between batches, with per-worker scratch that
//!   persists across batches.
//!
//! ## Quickstart
//!
//! ```
//! use converging_pairs::prelude::*;
//!
//! // An evolving graph: a long path that gets a shortcut.
//! let mut edges: Vec<(NodeId, NodeId)> =
//!     (0..9).map(|i| (NodeId(i), NodeId(i + 1))).collect();
//! edges.push((NodeId(0), NodeId(9))); // the late shortcut
//! let temporal = TemporalGraph::from_sequence(10, edges);
//! let (g1, g2) = temporal.snapshot_pair(0.9, 1.0);
//!
//! // Exact ground truth: endpoints of the shortcut converge the most.
//! let exact = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 0 }, 1);
//! assert_eq!(exact.pairs[0].pair, (NodeId(0), NodeId(9)));
//! assert_eq!(exact.pairs[0].delta, 9 - 1);
//!
//! // Budgeted: spend 4 SSSP computations per snapshot with the MMSD
//! // (MaxMin landmarks + SumDiff ranking) hybrid selector.
//! let mut selector = SelectorKind::Mmsd { landmarks: 2 }.build(7);
//! let result = budgeted_top_k(&g1, &g2, selector.as_mut(), 4, &exact.spec());
//! assert!(result.budget.total() <= 8);
//! ```

pub use cp_core as core;
pub use cp_exec as exec;
pub use cp_gen as gen;
pub use cp_graph as graph;
pub use cp_ml as ml;
pub use cp_query as query;
pub use cp_stream as stream;

/// Commonly used items, re-exported flat.
pub mod prelude {
    pub use cp_core::coverage::coverage;
    pub use cp_core::exact::{exact_top_k, ConvergingPair, ExactTopK, TopKSpec};
    pub use cp_core::gpk::PairGraph;
    pub use cp_core::selectors::{CandidateSelector, SelectorKind};
    pub use cp_core::topk::{budgeted_top_k, BudgetedResult};
    pub use cp_gen::datasets::{DatasetKind, DatasetProfile};
    pub use cp_graph::{Graph, GraphBuilder, NodeId, TemporalGraph, TimedEdge, INF};
    pub use cp_query::{Answer, EpochView, QueryEngine};
    pub use cp_stream::{
        ConvergenceMonitor, MonitorConfig, ReviewPolicy, StreamConfig, StreamEngine, StreamEvent,
    };
}
