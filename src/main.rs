//! `converging-pairs` — command-line front end.
//!
//! Reads a temporal edge list (`u v [time]` per line, `#`/`%` comments),
//! cuts two snapshots, and prints the top converging pairs found under an
//! SSSP budget — or exactly, with `--exact`.
//!
//! ```text
//! converging-pairs graph.txt --t1 0.8 --t2 1.0 --m 100 --selector mmsd
//! converging-pairs graph.txt --exact --delta-min 3
//! ```

use converging_pairs::gen::io::read_temporal_file;
use converging_pairs::prelude::*;
use std::process::ExitCode;

struct Args {
    path: String,
    t1: f64,
    t2: f64,
    m: u64,
    k: usize,
    delta_min: Option<u32>,
    selector: String,
    landmarks: usize,
    seed: u64,
    exact: bool,
    evaluate: bool,
}

const USAGE: &str = "\
usage: converging-pairs <edge-list> [options]

input: one edge per line, `u v [time]`; without the time column the line
order is the insertion order. Lines starting with # or % are skipped.

options:
  --t1 F           first snapshot: fraction of the edge stream  [0.8]
  --t2 F           second snapshot fraction                     [1.0]
  --m N            SSSP budget: N candidate endpoints (2N SSSPs) [100]
  --k N            report the top-N pairs                        [20]
  --delta-min D    report every pair with distance decrease >= D
                   (overrides --k)
  --selector NAME  degree|degdiff|degrel|maxmin|maxavg|sumdiff|maxdiff|
                   mmsd|mmmd|masd|mamd|incdeg|incbet|random      [mmsd]
  --landmarks L    landmarks for the landmark/hybrid selectors   [10]
  --seed N         RNG seed                                      [42]
  --exact          compute the exact answer (all-pairs BFS) instead
  --evaluate       additionally compute the exact answer and report the
                   budgeted run's coverage against it
  -h, --help       this text";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: String::new(),
        t1: 0.8,
        t2: 1.0,
        m: 100,
        k: 20,
        delta_min: None,
        selector: "mmsd".to_string(),
        landmarks: 10,
        seed: 42,
        exact: false,
        evaluate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => return Err(String::new()),
            "--t1" => args.t1 = take("--t1")?.parse().map_err(|e| format!("--t1: {e}"))?,
            "--t2" => args.t2 = take("--t2")?.parse().map_err(|e| format!("--t2: {e}"))?,
            "--m" => args.m = take("--m")?.parse().map_err(|e| format!("--m: {e}"))?,
            "--k" => args.k = take("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--delta-min" => {
                args.delta_min = Some(
                    take("--delta-min")?
                        .parse()
                        .map_err(|e| format!("--delta-min: {e}"))?,
                )
            }
            "--selector" => args.selector = take("--selector")?.to_lowercase(),
            "--landmarks" => {
                args.landmarks = take("--landmarks")?
                    .parse()
                    .map_err(|e| format!("--landmarks: {e}"))?
            }
            "--seed" => {
                args.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--exact" => args.exact = true,
            "--evaluate" => args.evaluate = true,
            other if other.starts_with('-') => return Err(format!("unknown option {other}")),
            path if args.path.is_empty() => args.path = path.to_string(),
            extra => return Err(format!("unexpected argument {extra}")),
        }
    }
    if args.path.is_empty() {
        return Err("missing <edge-list> argument".to_string());
    }
    if !(0.0..=1.0).contains(&args.t1) || !(0.0..=1.0).contains(&args.t2) || args.t1 > args.t2 {
        return Err("need 0 <= t1 <= t2 <= 1".to_string());
    }
    Ok(args)
}

fn selector_kind(name: &str, landmarks: usize) -> Option<SelectorKind> {
    Some(match name {
        "degree" => SelectorKind::Degree,
        "degdiff" => SelectorKind::DegDiff,
        "degrel" => SelectorKind::DegRel,
        "maxmin" => SelectorKind::MaxMin,
        "maxavg" => SelectorKind::MaxAvg,
        "sumdiff" => SelectorKind::SumDiff { landmarks },
        "maxdiff" => SelectorKind::MaxDiff { landmarks },
        "mmsd" => SelectorKind::Mmsd { landmarks },
        "mmmd" => SelectorKind::Mmmd { landmarks },
        "masd" => SelectorKind::Masd { landmarks },
        "mamd" => SelectorKind::Mamd { landmarks },
        "incdeg" => SelectorKind::IncDeg,
        "incbet" => SelectorKind::IncBet,
        "random" => SelectorKind::Random,
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{USAGE}");
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let temporal = match read_temporal_file(&args.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args.path);
            return ExitCode::from(1);
        }
    };
    let (g1, g2) = temporal.snapshot_pair(args.t1, args.t2);
    eprintln!(
        "snapshots: G_t1 {} nodes / {} edges  ->  G_t2 {} edges",
        g1.num_active_nodes(),
        g1.num_edges(),
        g2.num_edges()
    );

    let spec = match args.delta_min {
        Some(d) => TopKSpec::Threshold { delta_min: d },
        None => TopKSpec::TopK(args.k),
    };
    let threads = converging_pairs::graph::apsp::default_threads();

    let pairs = if args.exact {
        let exact = exact_top_k(&g1, &g2, &spec, threads);
        eprintln!(
            "exact: delta_max = {}, {} pairs ({}n SSSP equivalents spent)",
            exact.delta_max,
            exact.k(),
            2
        );
        exact.pairs
    } else {
        let Some(kind) = selector_kind(&args.selector, args.landmarks) else {
            eprintln!("error: unknown selector {:?}\n\n{USAGE}", args.selector);
            return ExitCode::from(2);
        };
        let mut selector = kind.build(args.seed);
        let result = budgeted_top_k(&g1, &g2, selector.as_mut(), args.m, &spec);
        eprintln!(
            "budgeted [{}]: {} SSSPs spent ({} generation + {} top-k), {} candidates",
            selector.name(),
            result.budget.total(),
            result.budget.generation,
            result.budget.topk,
            result.candidates.len()
        );
        if args.evaluate {
            let exact = exact_top_k(&g1, &g2, &spec, threads);
            eprintln!(
                "coverage vs exact: {:.1}% of {} true pairs",
                100.0 * coverage(&result.pairs, &exact),
                exact.k()
            );
        }
        result.pairs
    };

    println!("u\tv\tdelta");
    for p in &pairs {
        println!("{}\t{}\t{}", p.pair.0, p.pair.1, p.delta);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_names_map_to_kinds() {
        for name in [
            "degree", "degdiff", "degrel", "maxmin", "maxavg", "sumdiff", "maxdiff", "mmsd",
            "mmmd", "masd", "mamd", "incdeg", "incbet", "random",
        ] {
            let kind = selector_kind(name, 7).unwrap_or_else(|| panic!("{name} unmapped"));
            // Landmark-parameterized selectors carry the requested count.
            if let SelectorKind::Mmsd { landmarks } = kind {
                assert_eq!(landmarks, 7);
            }
        }
        assert!(selector_kind("nonsense", 10).is_none());
    }
}
