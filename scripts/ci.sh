#!/usr/bin/env bash
# Tier-1 CI gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all green"
