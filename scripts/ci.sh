#!/usr/bin/env bash
# Tier-1 CI gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> pipeline_baseline release smoke (--scale=0.1)"
smoke_out="$(mktemp -t bench_pipeline_smoke.XXXXXX.json)"
cargo run --release -q -p cp-bench --bin pipeline_baseline -- \
    --scale=0.1 --out="$smoke_out" > /dev/null
rm -f "$smoke_out"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all green"
