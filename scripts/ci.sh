#!/usr/bin/env bash
# Tier-1 CI gate: build, tests, lints, formatting. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q [CP_BFS_KERNEL=scalar, CP_ROW_CACHE=0]"
# Matrix leg: the reference scalar kernel with the snapshot-delta row
# cache disabled — keeps the pre-optimization compute path green too.
CP_BFS_KERNEL=scalar CP_ROW_CACHE=0 cargo test -q

echo "==> cargo test -q [CP_SCAN_KERNEL=scalar]"
# Matrix leg: the reference per-element Δ-scan loop — the blocked kernel
# and its pruning must be a pure wall-clock optimization.
CP_SCAN_KERNEL=scalar cargo test -q -p cp-core

echo "==> cargo test -q [CP_SSSP_PRUNE=off]"
# Matrix leg: the exhaustive SSSP reference — bound truncation and the
# landmark pre-filter must be invisible in every result.
CP_SSSP_PRUNE=off cargo test -q -p cp-core

echo "==> cargo test -q [CP_GRAPH_STORE=compressed]"
# Matrix leg: every kernel walking gap-compressed adjacency instead of
# the full CSR — storage must never change what is computed.
CP_GRAPH_STORE=compressed cargo test -q -p cp-core -p cp-stream

echo "==> cargo test -q -p cp-query [query conformance]"
# Query-serving leg: the differential conformance suite proves every
# Exact answer equals from-scratch BFS truth and every Bounded answer
# brackets it, plus the 8-reader concurrency stress.
cargo test -q -p cp-query

echo "==> cargo test -q [CP_THREADS=8]"
# Matrix leg: a wide persistent pool under every conformance suite —
# the executor's work-stealing schedule must be invisible in every
# result.
CP_THREADS=8 cargo test -q -p cp-core -p cp-stream

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> pipeline_baseline release smoke (CP_THREADS=2, --scale=0.1)"
smoke_out="$(mktemp -t bench_pipeline_smoke.XXXXXX.json)"
CP_THREADS=2 cargo run --release -q -p cp-bench --bin pipeline_baseline -- \
    --scale=0.1 --out="$smoke_out" > /dev/null
# The persistent executor must make threads a non-loss: no dataset's
# multi-thread rung may lose to its single-thread twin beyond the
# noise allowance.
if grep -q '"thread_regression": true' "$smoke_out"; then
    echo "ci.sh: a dataset regressed when threaded — the persistent pool is not paying off" >&2
    rm -f "$smoke_out"
    exit 1
fi
grep -q '"thread_regression": false' "$smoke_out" || {
    echo "ci.sh: thread_regression missing from the baseline JSON" >&2
    rm -f "$smoke_out"
    exit 1
}
# And work must actually migrate between lanes: the summed steal count
# over all sweeps is nonzero.
grep -q '"exec_steals": [1-9]' "$smoke_out" || {
    echo "ci.sh: no executor batch ever stole work between lanes" >&2
    rm -f "$smoke_out"
    exit 1
}
# The Δ-scan ladder must actually exercise chunk skipping somewhere:
# at least one dataset reports a nonzero scan_chunks_skipped.
grep -q '"scan_chunks_skipped": [1-9]' "$smoke_out" || {
    echo "ci.sh: no dataset skipped any Δ-scan chunks" >&2
    rm -f "$smoke_out"
    exit 1
}
# The bound-pruning ladder must actually truncate somewhere: at least
# one dataset's auto leg reports a nonzero rows_truncated.
grep -q '"rows_truncated": [1-9]' "$smoke_out" || {
    echo "ci.sh: no dataset truncated any t2 sweeps under CP_SSSP_PRUNE=auto" >&2
    rm -f "$smoke_out"
    exit 1
}
# The streaming ladder must actually chain: at least one chained review
# sequence serves charged rows straight from imported donor rows.
grep -q '"donor_chain_hits": [1-9]' "$smoke_out" || {
    echo "ci.sh: no streaming review ever hit a chained donor row" >&2
    rm -f "$smoke_out"
    exit 1
}
# The snapshot-store ladder must actually share structure: at least one
# overlay run borrows a nonzero number of base arcs instead of copying.
grep -q '"overlay_shared_arcs": [1-9]' "$smoke_out" || {
    echo "ci.sh: no overlay run ever shared a base arc" >&2
    rm -f "$smoke_out"
    exit 1
}
# The query ladder must produce partial-information answers: at least
# one point query answered Bounded (not just Exact/Unknown).
grep -q '"query_bounded_answers": [1-9]' "$smoke_out" || {
    echo "ci.sh: the query ladder never produced a Bounded answer" >&2
    rm -f "$smoke_out"
    exit 1
}
# And the query path must be budget-free: the ladder's summed ledger
# difference against its reader-free twin is exactly zero.
grep -q '"query_budget_charged": 0,' "$smoke_out" || {
    echo "ci.sh: concurrent queries charged the review ledger" >&2
    rm -f "$smoke_out"
    exit 1
}
rm -f "$smoke_out"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> ci.sh: all green"
