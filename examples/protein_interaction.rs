//! Protein–protein interaction screening (the paper's biology motivation):
//! "for two given proteins, the knowledge that they came closer together
//! in the graph makes them candidates for an upcoming interaction.
//! Furthermore, if a certain protein comes closer to multiple others, they
//! may be part of the same community."
//!
//! PPI networks are affiliation-like — complexes behave as near-cliques —
//! so the example reuses the affiliation generator, streams "experiments"
//! (new complexes) over time, and screens for the proteins that converge
//! toward many others, flagging them as putative complex members.
//!
//! ```text
//! cargo run --release --example protein_interaction
//! ```

use converging_pairs::core::gpk::PairGraph;
use converging_pairs::gen::affiliation::{affiliation, AffiliationParams};
use converging_pairs::gen::seeded_rng;
use converging_pairs::prelude::*;
use std::collections::HashMap;

fn main() {
    // 900 proteins organized into ~300 discovered complexes of size 3-6.
    let temporal = affiliation(
        AffiliationParams {
            members: 900,
            groups: 300,
            group_min: 3,
            group_max: 6,
            newcomer_prob: 0.35,
        },
        &mut seeded_rng(7),
    );
    let (g1, g2) = temporal.snapshot_pair(0.8, 1.0);
    println!(
        "PPI network: {} proteins, {} -> {} interactions",
        g1.num_active_nodes(),
        g1.num_edges(),
        g2.num_edges()
    );

    // Screen with a 3 % budget using the SumDiff landmark method.
    let m = (g1.num_nodes() as u64) * 3 / 100;
    let mut selector = SelectorKind::SumDiff { landmarks: 10 }.build(99);
    let spec = TopKSpec::Threshold { delta_min: 3 };
    let result = budgeted_top_k(&g1, &g2, selector.as_mut(), m, &spec);
    println!(
        "screen: m = {m}, {} SSSPs, {} protein pairs converged by >= 3 hops",
        result.budget.total(),
        result.pairs.len()
    );

    // Proteins that converge toward MANY others are community signals.
    let mut convergence_count: HashMap<NodeId, usize> = HashMap::new();
    for p in &result.pairs {
        *convergence_count.entry(p.pair.0).or_default() += 1;
        *convergence_count.entry(p.pair.1).or_default() += 1;
    }
    let mut hubs: Vec<(NodeId, usize)> = convergence_count.into_iter().collect();
    hubs.sort_by_key(|&(u, c)| (std::cmp::Reverse(c), u));

    println!("\nputative complex members (converged toward most partners):");
    for (protein, partners) in hubs.iter().take(8) {
        println!("  protein {protein:>4}: converged toward {partners} others");
    }

    // The cover view doubles as an assay plan: SSSPs from the greedy cover
    // of the found pairs re-verify every flagged pair.
    let gpk = PairGraph::new(&result.pairs);
    let cover = gpk.greedy_vertex_cover();
    println!(
        "\nverification plan: {} pairs re-checkable from {} probe proteins",
        gpk.num_pairs(),
        cover.nodes.len()
    );

    // Cheaper still: landmark bounds certify or rule out hypothesized
    // interactions without ANY per-pair shortest-path work.
    use converging_pairs::core::estimate::DeltaBounds;
    use converging_pairs::graph::landmark_index::LandmarkIndex;
    let landmarks: Vec<NodeId> = g1
        .nodes()
        .filter(|&u| g1.degree(u) > 0)
        .step_by(97)
        .take(10)
        .collect();
    let bounds = DeltaBounds::new(
        LandmarkIndex::build(&g1, &landmarks),
        LandmarkIndex::build(&g2, &landmarks),
    );
    let hypotheses: Vec<(NodeId, NodeId)> = result.pairs.iter().map(|p| p.pair).collect();
    let triage = bounds.triage(&hypotheses, 3);
    println!(
        "landmark triage of {} hypotheses: {} certified, {} ruled out, {} need a real probe",
        hypotheses.len(),
        triage.certified.len(),
        triage.ruled_out.len(),
        triage.undecided.len()
    );

    // Compare against the exhaustive screen.
    let exact = exact_top_k(&g1, &g2, &spec, 4);
    println!(
        "exhaustive screen finds {} pairs; the budget found {:.0}% of them",
        exact.k(),
        100.0 * coverage(&result.pairs, &exact)
    );
}
