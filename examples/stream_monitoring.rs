//! Continuous monitoring of a growing network — the streaming engine that
//! generalizes the paper's single snapshot pair to a whole edge stream.
//!
//! A DBLP-style collaboration graph is replayed as timestamped edge events
//! into a [`StreamEngine`]; each review spends a small SSSP budget, chains
//! its row cache into the next review, and pushes subscription events for
//! the watched top-k set. Persistent convergence (the same pair drawing
//! closer review after review) stands out from one-off jumps.
//!
//! ```text
//! cargo run --release --example stream_monitoring
//! ```

use converging_pairs::prelude::*;

fn main() {
    let temporal = DatasetProfile::scaled(DatasetKind::Dblp, 0.1).generate(2026);
    let events = temporal.events();
    let windows: Vec<f64> = (5..=10).map(|i| i as f64 / 10.0).collect();
    let cut = |f: f64| ((f * events.len() as f64).ceil() as usize).min(events.len());

    let first = temporal.snapshot_at_fraction(windows[0]);
    println!(
        "collaboration graph: {} authors, initial window has {} co-authorships",
        first.num_active_nodes(),
        first.num_edges()
    );

    let m = (first.num_nodes() as u64) / 100; // 1 % probe budget per review
    let config = StreamConfig::new(
        m,
        SelectorKind::SumDiff { landmarks: 10 },
        TopKSpec::Threshold { delta_min: 3 },
        11,
    );
    let mut engine = StreamEngine::from_snapshot(&first, config);
    engine.watch_topk(); // entered/left events for the reported set

    let mut fed = cut(windows[0]);
    for (i, &f) in windows[1..].iter().enumerate() {
        let end = cut(f);
        let mut duplicates = 0u64;
        for &e in &events[fed..end] {
            // Generators re-announce edges; the engine rejects those with a
            // typed error instead of skewing its event counts.
            match engine.ingest(e) {
                Ok(_) => {}
                Err(err) => {
                    duplicates += 1;
                    debug_assert!(matches!(
                        err,
                        converging_pairs::stream::StreamError::DuplicateEdge { .. }
                    ));
                }
            }
        }
        fed = end;
        let epoch = engine.review();
        println!(
            "review {}: window up to {:.0}% of the stream — {} pairs converged by >= 3 \
             ({} SSSPs spent, {} fresh edges, {} duplicate announcements rejected)",
            i + 1,
            100.0 * f,
            epoch.result.pairs.len(),
            epoch.result.budget.total(),
            epoch.stats.events_ingested,
            duplicates
        );
        for p in epoch.result.pairs.iter().take(3) {
            println!("    ({}, {})  delta {}", p.pair.0, p.pair.1, p.delta);
        }
        for ev in epoch.events.iter().take(3) {
            match ev {
                StreamEvent::EnteredTopK { pair, delta, .. } => {
                    println!(
                        "    -> entered top-k: ({}, {}) delta {}",
                        pair.0, pair.1, delta
                    )
                }
                StreamEvent::LeftTopK { pair, .. } => {
                    println!("    -> left top-k: ({}, {})", pair.0, pair.1)
                }
                _ => {}
            }
        }
        if epoch.stats.donor_rows_imported > 0 {
            println!(
                "    chained: {} donor rows imported, {} charges served by donors, \
                 {} rows repaired ({:.0}% of charges skipped a full sweep)",
                epoch.stats.donor_rows_imported,
                epoch.stats.donor_chain_hits,
                epoch.stats.repaired_rows,
                100.0 * epoch.stats.donor_hit_rate
            );
        }
    }

    println!("\nwatch list (pairs that converged in more than one review):");
    let persistent = engine.persistent_pairs(2);
    if persistent.is_empty() {
        println!("  none — every detected convergence was a single event");
    }
    for ((u, v), track) in persistent.iter().take(5) {
        println!(
            "  ({}, {}): total decrease {} over {} reviews (last at review {}, \
             longest streak {})",
            u, v, track.total_delta, track.times_seen, track.last_seen_review, track.longest_streak
        );
    }
}
