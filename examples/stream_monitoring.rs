//! Continuous monitoring of a growing network — the library extension that
//! generalizes the paper's single snapshot pair to a whole stream.
//!
//! A DBLP-style collaboration graph is observed in yearly windows; each
//! review step spends a small SSSP budget, and the monitor accumulates
//! per-pair history so persistent convergence (the same pair drawing
//! closer review after review) stands out from one-off jumps.
//!
//! ```text
//! cargo run --release --example stream_monitoring
//! ```

use converging_pairs::core::monitor::{ConvergenceMonitor, MonitorConfig};
use converging_pairs::prelude::*;

fn main() {
    let temporal = DatasetProfile::scaled(DatasetKind::Dblp, 0.1).generate(2026);
    let windows: Vec<f64> = (5..=10).map(|i| i as f64 / 10.0).collect();

    let first = temporal.snapshot_at_fraction(windows[0]);
    println!(
        "collaboration graph: {} authors, initial window has {} co-authorships",
        first.num_active_nodes(),
        first.num_edges()
    );

    let m = (first.num_nodes() as u64) / 100; // 1 % probe budget per review
    let mut monitor = ConvergenceMonitor::new(
        first,
        MonitorConfig {
            m,
            selector: SelectorKind::SumDiff { landmarks: 10 },
            spec: TopKSpec::Threshold { delta_min: 3 },
            seed: 11,
        },
    );

    for (i, &f) in windows[1..].iter().enumerate() {
        let snap = temporal.snapshot_at_fraction(f);
        let step = monitor.advance(snap);
        println!(
            "review {}: window up to {:.0}% of the stream — {} pairs converged by >= 3 \
             ({} SSSPs spent)",
            i + 1,
            100.0 * f,
            step.result.pairs.len(),
            step.result.budget.total()
        );
        for p in step.result.pairs.iter().take(3) {
            println!("    ({}, {})  delta {}", p.pair.0, p.pair.1, p.delta);
        }
    }

    println!("\nwatch list (pairs that converged in more than one review):");
    let persistent = monitor.persistent_pairs(2);
    if persistent.is_empty() {
        println!("  none — every detected convergence was a single event");
    }
    for (pair, history) in persistent.iter().take(5) {
        println!(
            "  ({}, {}): total decrease {} over {} reviews (last at review {})",
            pair.pair.0,
            pair.pair.1,
            history.total_delta,
            history.times_seen,
            history.last_seen_step
        );
    }
}
