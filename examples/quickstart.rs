//! Quickstart: find the top-k converging pairs of a small evolving graph,
//! exactly and on a budget.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use converging_pairs::prelude::*;

fn main() {
    // An evolving graph over 40 nodes: a ring (distance up to 20 between
    // opposite nodes), then chords arrive over time and pull regions of
    // the ring together.
    let n = 40u32;
    let mut edges: Vec<(NodeId, NodeId)> =
        (0..n).map(|i| (NodeId(i), NodeId((i + 1) % n))).collect();
    for &(a, b) in &[(0, 20), (5, 25), (10, 30), (3, 33), (15, 35), (8, 28)] {
        edges.push((NodeId(a), NodeId(b)));
    }
    let temporal = TemporalGraph::from_sequence(n as usize, edges);

    // The standard snapshot convention: G_t1 = 80 % of the edges, G_t2 = all.
    let (g1, g2) = temporal.snapshot_pair(0.8, 1.0);
    println!(
        "G_t1: {} nodes / {} edges; G_t2: {} edges",
        g1.num_active_nodes(),
        g1.num_edges(),
        g2.num_edges()
    );

    // Exact ground truth: all pairs whose distance dropped by at least
    // delta_max - 1 (the paper's tie-free top-k convention).
    let exact = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 1 }, 4);
    println!(
        "\nexact: delta_max = {}, k = {} pairs with delta >= {}",
        exact.delta_max,
        exact.k(),
        exact.delta_min
    );
    for p in exact.pairs.iter().take(5) {
        println!("  pair ({}, {})  delta = {}", p.pair.0, p.pair.1, p.delta);
    }

    // The cover view: how few SSSP sources would suffice in hindsight?
    let gpk = PairGraph::new(&exact.pairs);
    let cover = gpk.greedy_vertex_cover();
    println!(
        "pair graph: {} endpoints, greedy cover of size {}",
        gpk.num_endpoints(),
        cover.nodes.len()
    );

    // Budgeted run: m = 6 candidates (12 SSSPs on a 40-node graph) with
    // the MMSD hybrid selector.
    let mut selector = SelectorKind::Mmsd { landmarks: 3 }.build(42);
    let result = budgeted_top_k(&g1, &g2, selector.as_mut(), 6, &exact.spec());
    let cov = coverage(&result.pairs, &exact);
    println!(
        "\nbudgeted (m = 6, {} SSSPs spent): found {}/{} pairs ({:.0}% coverage)",
        result.budget.total(),
        result.pairs.len().min(exact.k()),
        exact.k(),
        100.0 * cov
    );
    for p in result.pairs.iter().take(5) {
        println!("  found ({}, {})  delta = {}", p.pair.0, p.pair.1, p.delta);
    }
}
