//! Watch-list monitoring over a live stream (the paper's criminal-network
//! motivation): "in a criminal or terrorist network, it is critical to know
//! which suspects have come closer to each other; such moves may be
//! indications of future actions or coalitions."
//!
//! An analyst observes a covert communication network as a stream of edge
//! events and can afford a handful of full trace-routes (SSSP probes) per
//! review cycle. Instead of hand-rolling history over batch runs, the
//! analyst registers subscriptions on a [`StreamEngine`] — per-suspect
//! `watch_node` alerts plus a `watch_topk` feed — and lets the review
//! policy fire automatically every fixed number of accepted events.
//!
//! ```text
//! cargo run --release --example watchlist_monitoring
//! ```

use converging_pairs::gen::forest_fire::forest_fire;
use converging_pairs::gen::seeded_rng;
use converging_pairs::prelude::*;
use converging_pairs::stream::StreamError;

fn main() {
    // Covert networks grow by recruitment with occasional cross-cell
    // contact — the forest-fire model's burn pattern is a reasonable
    // stand-in and is what the dynamic-graph literature often uses.
    let temporal = forest_fire(3_000, 0.32, &mut seeded_rng(17));
    let events = temporal.events();
    let observed = (events.len() * 2) / 5; // 40 % of the stream already seen
    let first = temporal.snapshot_of_prefix(observed);
    println!(
        "covert network: {} members, {} observed links, {} events still to arrive",
        first.num_active_nodes(),
        first.num_edges(),
        events.len() - observed
    );

    // Probe budget m is 1 % of the membership; a review fires on its own
    // every `chunk` accepted events.
    let m = (first.num_nodes() as u64) / 100;
    let chunk = (events.len() - observed) / 5;
    let config = StreamConfig::new(
        m,
        SelectorKind::Mmsd { landmarks: 10 },
        TopKSpec::Threshold { delta_min: 2 },
        17,
    )
    .with_policy(ReviewPolicy::EveryEvents(chunk));
    let mut engine = StreamEngine::from_snapshot(&first, config);

    // The watch list: the five best-connected members are the suspects.
    let mut suspects: Vec<NodeId> = first.nodes().collect();
    suspects.sort_by_key(|&u| std::cmp::Reverse(first.degree(u)));
    suspects.truncate(5);
    for &s in &suspects {
        engine.watch_node(s, 2);
    }
    engine.watch_topk();
    println!(
        "watching suspects {:?} (alert when a suspect pair draws >= 2 hops closer)\n",
        suspects.iter().map(|s| s.0).collect::<Vec<_>>()
    );

    // Replay the rest of the stream; the policy cuts the reviews.
    let mut rejected = 0u64;
    for &e in &events[observed..] {
        match engine.ingest(e) {
            Ok(None) => {}
            Ok(Some(epoch)) => {
                println!(
                    "review {} after {} fresh links ({} SSSPs spent, {} pairs reported, \
                     donor-chain hit rate {:.0}%):",
                    epoch.review,
                    epoch.stats.events_ingested,
                    epoch.result.budget.total(),
                    epoch.result.pairs.len(),
                    100.0 * epoch.stats.donor_hit_rate
                );
                for ev in epoch.events.iter().take(6) {
                    match ev {
                        StreamEvent::NodeConverged { pair, delta, .. } => println!(
                            "    ALERT suspect pair ({}, {}) drew {} hops closer",
                            pair.0, pair.1, delta
                        ),
                        StreamEvent::EnteredTopK { pair, delta, .. } => println!(
                            "    entered top-k: ({}, {}) delta {}",
                            pair.0, pair.1, delta
                        ),
                        StreamEvent::LeftTopK { pair, .. } => {
                            println!("    left top-k: ({}, {})", pair.0, pair.1)
                        }
                        StreamEvent::PairConverged { .. } => {}
                    }
                }
                if epoch.events.len() > 6 {
                    println!("    ... and {} more events", epoch.events.len() - 6);
                } else if epoch.events.is_empty() {
                    println!("    (no subscription events this cycle)");
                }
            }
            Err(StreamError::DuplicateEdge { .. }) => rejected += 1,
            Err(err) => panic!("stream violated the insert-only model: {err}"),
        }
    }

    println!(
        "\nstream drained: {} reviews, {} duplicate announcements rejected",
        engine.reviews(),
        rejected
    );
    println!("persistent pairs (reported in more than one review):");
    let persistent = engine.persistent_pairs(2);
    if persistent.is_empty() {
        println!("  none — every detected convergence was a single event");
    }
    for ((u, v), track) in persistent.iter().take(5) {
        println!(
            "  ({}, {}): total decrease {} over {} reviews, longest streak {}",
            u, v, track.total_delta, track.times_seen, track.longest_streak
        );
    }
}
