//! Watch-list monitoring with the classifier selector (the paper's
//! criminal-network motivation): "in a criminal or terrorist network, it
//! is critical to know which suspects have come closer to each other;
//! such moves may be indications of future actions or coalitions."
//!
//! An analyst sees periodic snapshots of a covert communication network
//! and can afford a handful of full trace-routes (SSSP probes) per review
//! cycle. The example trains the local classifier on an *earlier* pair of
//! snapshots and uses it to spend the probe budget on the next cycle,
//! comparing against the best single-feature heuristic.
//!
//! ```text
//! cargo run --release --example watchlist_monitoring
//! ```

use converging_pairs::core::experiment::{run_kind, run_selector, Snapshots};
use converging_pairs::core::selectors::{ClassifierConfig, SelectorKind};
use converging_pairs::gen::forest_fire::forest_fire;
use converging_pairs::gen::seeded_rng;

fn main() {
    // Covert networks grow by recruitment with occasional cross-cell
    // contact — the forest-fire model's burn pattern is a reasonable
    // stand-in and is what the dynamic-graph literature often uses.
    let temporal = forest_fire(3_000, 0.32, &mut seeded_rng(17));
    let mut snaps = Snapshots::from_temporal("covert-net", &temporal, 4);
    println!(
        "covert network: {} members, {} -> {} observed links",
        snaps.g1.num_active_nodes(),
        snaps.g1.num_edges(),
        snaps.g2.num_edges()
    );

    let slack = 1;
    {
        let truth = snaps.truth(slack);
        println!(
            "ground truth: {} pairs converged by >= {} hops (delta_max {})",
            truth.k(),
            truth.delta_min,
            truth.delta_max
        );
    }

    // Train the classifier on the 40 %/60 % history the analyst already
    // holds; the probe budget m is 1 % of the membership.
    let m = (snaps.g1.num_nodes() as u64) / 100;
    let config = ClassifierConfig {
        landmarks: 10,
        slack,
        threads: 4,
        ..ClassifierConfig::default()
    };
    let mut classifier = snaps.local_classifier(config, 17);
    let row = run_selector(&mut snaps, &mut classifier, m, slack);
    println!(
        "\nL-Classifier @ m = {m}: {:.1}% of the converging suspect pairs found \
         ({} SSSP probes: {} on features, {} on candidates)",
        100.0 * row.coverage,
        row.budget.total(),
        row.budget.generation,
        row.budget.topk
    );

    // Compare against each single-feature heuristic at the same budget.
    println!("\nsingle-feature heuristics at the same budget:");
    let mut best = ("-", -1.0f64);
    for kind in SelectorKind::table5_suite() {
        let r = run_kind(&mut snaps, kind, m, slack, 17);
        if r.coverage > best.1 {
            best = (kind.name(), r.coverage);
        }
        println!("  {:>8}: {:>5.1}%", kind.name(), 100.0 * r.coverage);
    }
    println!(
        "\nbest heuristic: {} at {:.1}% — the classifier should be close \
         without knowing in advance which heuristic fits this network.",
        best.0,
        100.0 * best.1
    );
}
