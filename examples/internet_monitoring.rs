//! AS-level Internet topology monitoring — the paper's headline number:
//! "for the Internet links dataset, with a budget of just 0.5 % of the
//! nodes, we are able to locate over 90 % of the top-k converging pairs."
//!
//! The example replays that experiment on the Internet-links emulator at a
//! reduced scale and reports coverage for several budgets around 0.5 %.
//!
//! ```text
//! cargo run --release --example internet_monitoring
//! ```

use converging_pairs::core::selectors::DEFAULT_LANDMARKS;
use converging_pairs::prelude::*;

fn main() {
    let profile = DatasetProfile::scaled(DatasetKind::InternetLinks, 0.25);
    let (g1, g2) = profile.eval_pair(42);
    let n = g1.num_active_nodes();
    println!(
        "AS topology: {} ASes, {} -> {} links",
        n,
        g1.num_edges(),
        g2.num_edges()
    );

    println!("computing exact ground truth (all-pairs BFS)...");
    let exact = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 1 }, 4);
    println!(
        "delta_max = {}, k = {} pairs with delta >= {}",
        exact.delta_max,
        exact.k(),
        exact.delta_min
    );

    println!(
        "\n{:>9} {:>8} {:>12} {:>10}",
        "budget m", "% of n", "coverage %", "SSSPs"
    );
    for pct_of_n in [0.25f64, 0.5, 1.0, 2.0] {
        let m = ((n as f64) * pct_of_n / 100.0).round().max(4.0) as u64;
        let mut selector = SelectorKind::Mmsd {
            landmarks: DEFAULT_LANDMARKS,
        }
        .build(7);
        let result = budgeted_top_k(&g1, &g2, selector.as_mut(), m, &exact.spec());
        println!(
            "{:>9} {:>8.2} {:>12.1} {:>10}",
            m,
            pct_of_n,
            100.0 * coverage(&result.pairs, &exact),
            result.budget.total()
        );
    }
    println!(
        "\n(The paper reports > 90 % coverage at 0.5 % of the nodes on the\n\
         real CAIDA trace; the emulator reproduces the trend, not the\n\
         absolute trace values.)"
    );
}
