//! Friend recommendation from converging pairs (the paper's Facebook
//! motivation): "if two distant users come closer over time, this could
//! imply the appearance of similar interests … this further knowledge can
//! help in making more suitable friendship recommendations."
//!
//! The example generates a Facebook-like community graph, finds the pairs
//! of *not yet connected* users whose network distance collapsed the most
//! under a small SSSP budget, and prints them as recommendation
//! candidates together with their community labels.
//!
//! ```text
//! cargo run --release --example social_recommendation
//! ```

use converging_pairs::core::selectors::DEFAULT_LANDMARKS;
use converging_pairs::gen::sbm::{sbm, SbmParams};
use converging_pairs::gen::seeded_rng;
use converging_pairs::graph::components::components;
use converging_pairs::prelude::*;

fn main() {
    // A 1200-user network with 8 friend circles and late cross-circle ties.
    let temporal = sbm(
        SbmParams {
            n: 1200,
            communities: 8,
            intra_degree: 9.0,
            inter_degree: 1.2,
        },
        &mut seeded_rng(2024),
    );
    let (g1, g2) = temporal.snapshot_pair(0.85, 1.0);
    println!(
        "social graph: {} users, {} -> {} friendships",
        g1.num_active_nodes(),
        g1.num_edges(),
        g2.num_edges()
    );

    // Budget: 2 % of the users.
    let m = (g1.num_nodes() as u64) / 50;
    let mut selector = SelectorKind::Mmsd {
        landmarks: DEFAULT_LANDMARKS,
    }
    .build(7);
    let result = budgeted_top_k(&g1, &g2, selector.as_mut(), m, &TopKSpec::TopK(200));
    println!(
        "budgeted run: m = {m} candidates, {} SSSPs spent, {} converging pairs found",
        result.budget.total(),
        result.pairs.len()
    );

    // Recommendation candidates: converging pairs that are STILL not
    // direct friends in the new snapshot — their worlds collided, yet no
    // edge exists.
    let circles = components(&g1);
    let mut recommendations: Vec<_> = result
        .pairs
        .iter()
        .filter(|p| !g2.has_edge(p.pair.0, p.pair.1))
        .take(10)
        .collect();
    recommendations.sort_by_key(|p| std::cmp::Reverse(p.delta));

    println!("\ntop friend recommendations (distance collapsed, no edge yet):");
    println!(
        "{:>6} {:>6}  {:>5}  same circle?",
        "user A", "user B", "delta"
    );
    for p in recommendations {
        let (a, b) = p.pair;
        let same = circles.connected(a, b) && circles.label(a) == circles.label(b);
        println!(
            "{:>6} {:>6}  {:>5}  {}",
            a,
            b,
            p.delta,
            if same { "yes" } else { "crossing circles" }
        );
    }

    // Sanity: how much of the exact answer did the tiny budget recover?
    let exact = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 1 }, 4);
    let found = coverage(&result.pairs, &exact);
    println!(
        "\ncoverage of the true top-{} (delta >= {}): {:.0}% at {:.1}% of the SSSP cost of the exact method",
        exact.k(),
        exact.delta_min,
        100.0 * found,
        100.0 * result.budget.total() as f64 / (2 * g1.num_nodes()) as f64,
    );
}
