//! Budget-free point queries over published epochs — an analyst dashboard
//! asking `d(u, v)` / `Δ(u, v)` questions *between* reviews.
//!
//! A collaboration network is replayed into a [`StreamEngine`]; each review
//! spends its SSSP budget and publishes an immutable epoch. A
//! [`QueryEngine`] then serves arbitrary point queries from the published
//! material alone — the resident rows the review already paid for plus a
//! handful of landmark rows — spending zero additional budget. Answers are
//! honest: `Exact` where a resident row proves the distance, `Bounded`
//! where only landmark triangle bounds apply, `Unknown` where the epoch
//! has nothing to say.
//!
//! ```text
//! cargo run --release --example point_queries
//! ```

use converging_pairs::prelude::*;

fn main() {
    let temporal = DatasetProfile::scaled(DatasetKind::Dblp, 0.05).generate(2026);
    let events = temporal.events();
    let first = temporal.snapshot_at_fraction(0.6);
    println!(
        "collaboration graph: {} authors, {} co-authorships in the first window",
        first.num_active_nodes(),
        first.num_edges()
    );

    let m = (first.num_nodes() as u64) / 50; // 2 % probe budget per review
    let config = StreamConfig::new(
        m,
        SelectorKind::Mmsd { landmarks: 10 },
        TopKSpec::Threshold { delta_min: 2 },
        11,
    );
    let mut engine = StreamEngine::from_snapshot(&first, config);

    // The query side holds only a reader handle — it can never touch the
    // engine, its ledger, or its locks.
    let q = QueryEngine::new(engine.reader());

    let cut = |f: f64| ((f * events.len() as f64).ceil() as usize).min(events.len());
    let mut fed = cut(0.6);
    for (i, f) in [0.8, 1.0].into_iter().enumerate() {
        let end = cut(f);
        for &e in &events[fed..end] {
            let _ = engine.ingest(e); // generators re-announce edges
        }
        fed = end;
        let epoch = engine.review();
        println!(
            "\nreview {}: {} SSSPs spent, {} pairs reported",
            i + 1,
            epoch.result.budget.total(),
            epoch.result.pairs.len()
        );

        // Pin the freshly published epoch and sweep point queries over it.
        // Every answer below is served without spending a single SSSP.
        let view = q.epoch();
        let n = epoch.graph.num_nodes() as u32;
        let (mut exact, mut bounded, mut unknown) = (0u64, 0u64, 0u64);
        for probe in 0..2_000u32 {
            let u = NodeId(probe % n);
            let v = NodeId((probe.wrapping_mul(31).wrapping_add(7)) % n);
            match view.distance(u, v) {
                Answer::Exact(_) => exact += 1,
                Answer::Bounded { .. } => bounded += 1,
                Answer::Unknown => unknown += 1,
            }
        }
        println!(
            "  2000 random d(u,v) probes against epoch {}: \
             {exact} exact, {bounded} bounded, {unknown} unknown",
            view.review()
        );

        // Drill into the top reported pair: its Δ is provable from the
        // epoch, and a resident seed's whole top-k carries a completeness
        // flag. A pair is discovered through one endpoint's charged row, so
        // probe both — the charged side answers in full.
        if let Some(p) = epoch.result.pairs.first() {
            let (u, v) = p.pair;
            println!(
                "  top pair ({u}, {v}): d = {:?}, delta = {:?}",
                view.distance(u, v),
                view.delta(u, v)
            );
            let seed = if view.topk_for_seed(u, 3).pairs.is_empty() {
                v
            } else {
                u
            };
            let top = view.topk_for_seed(seed, 3);
            println!(
                "  top-3 for seed {seed}: {:?}{}",
                top.pairs
                    .iter()
                    .map(|c| (c.pair.0 .0, c.pair.1 .0, c.delta))
                    .collect::<Vec<_>>(),
                if top.complete {
                    " (certified complete)"
                } else {
                    " (best effort)"
                }
            );

            // Composable traversal pinned to the same epoch's graph: the
            // seed's two-hop neighborhood, high-degree nodes only.
            let hub_ring = view
                .from(u)
                .step()
                .step()
                .filter(|w| epoch.graph.degree(w) >= 5)
                .collect();
            println!(
                "  {} nodes within two hops of {u} have degree >= 5",
                hub_ring.len()
            );
        }
    }
}
