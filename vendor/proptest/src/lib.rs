//! Vendored minimal `proptest`.
//!
//! A self-contained property-testing harness implementing the slice of the
//! real crate this workspace uses: range and tuple strategies, `Just`,
//! `prop_flat_map`, `collection::vec`, `any::<bool>()`, the `proptest!`
//! macro with optional `#![proptest_config(...)]`, and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG; there is no shrinking — a failing case
//! reports its assertion message and location instead.

pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Per-test deterministic random source.
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Builds an RNG seeded from the (module-qualified) test name, so
        /// each test sees a stable but distinct case stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            TestRng(rand::rngs::StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
    }

    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!`; it is skipped, not failed.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An assumption veto.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// True for `Reject`.
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> S,
            S: Strategy,
        {
            FlatMap { source: self, f }
        }

        /// Transforms each generated value.
        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
        T: Strategy,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let seed = self.source.generate(rng);
            (self.f)(seed).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical unconstrained strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any` returns for this type.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Uniform coin flip.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random::<bool>()
        }
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;

        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi_incl {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..=self.size.hi_incl)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} at {}:{}",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} at {}:{}: {}",
                    stringify!($cond),
                    file!(),
                    line!(),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?} == {:?}` at {}:{}",
                    __a,
                    __b,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?} == {:?}` at {}:{}: {}",
                    __a,
                    __b,
                    file!(),
                    line!(),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{:?} != {:?}` at {}:{}",
                    __a,
                    __b,
                    file!(),
                    line!()
                ),
            ));
        }
    }};
}

/// Skips (does not fail) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                ::std::format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        // Upstream convention: the `#[test]` attribute is written by the
        // caller (it arrives via `$meta`); emitting another here would
        // register every test twice.
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(20).max(1000),
                    "proptest: too many rejected cases ({} accepted of {} wanted)",
                    __accepted,
                    __config.cases
                );
                let ( $($pat,)+ ) =
                    ( $( $crate::strategy::Strategy::generate(&($strat), &mut __rng), )+ );
                let __result = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {
                        __accepted += 1;
                    }
                    ::std::result::Result::Err(ref __e) if __e.is_reject() => continue,
                    ::std::result::Result::Err(__e) => ::std::panic!("{}", __e),
                }
            }
        }
    )*};
}

pub mod prelude {
    //! Everything a property test module needs, mirroring upstream's prelude.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    pub mod prop {
        //! Module-style access (`prop::collection::vec`).
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn helper_with_question_mark(xs: &[u32]) -> Result<(), TestCaseError> {
        prop_assert!(xs.iter().all(|&x| x < 50), "element out of range");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_tuples_vec_and_flat_map(
            (n, edges) in (2u32..=10).prop_flat_map(|n| {
                (Just(n as usize), prop::collection::vec((0..n, 0..n), 0..20))
            }),
            flag in any::<bool>(),
            xs in prop::collection::vec(0u32..50, 3),
        ) {
            prop_assert!((2..=10).contains(&n));
            for &(u, v) in &edges {
                prop_assert!((u as usize) < n && (v as usize) < n);
            }
            prop_assert_eq!(xs.len(), 3);
            helper_with_question_mark(&xs)?;
            // Rejects roughly half the cases: exercises the reject path.
            prop_assume!(flag);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1000) {
            prop_assert!(x < 1000);
            prop_assert_ne!(x, 1000);
        }
    }

    #[test]
    fn rejects_skip_not_fail() {
        let e = TestCaseError::reject("nope");
        assert!(e.is_reject());
        let f = TestCaseError::fail("bad");
        assert!(!f.is_reject());
    }
}
