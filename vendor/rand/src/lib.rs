//! Vendored minimal `rand` shim.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of the rand 0.9 API it uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and the [`Rng`] extension methods `random`,
//! `random_range`, and `random_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (which is ChaCha12), but the repo only
//! relies on *determinism* (same seed, same stream), never on matching
//! upstream's exact values.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the uniform "standard" distribution:
/// `f64` in `[0, 1)`, `bool` fair coin, full-range integers.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (subset of rand's `SampleRange`).
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`. Panics on an empty range.
    fn random_range<Range: SampleRange>(&mut self, range: Range) -> Range::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.random_range(5u32..=5);
            assert_eq!(y, 5);
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_sampling_is_mixed() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!((300..700).contains(&heads), "heads = {heads}");
    }
}
