//! Vendored minimal `serde` facade.
//!
//! The build environment has no network access, so the workspace vendors a
//! self-contained replacement for the slice of serde it uses: derived
//! `Serialize`/`Deserialize` on plain structs and enums, round-tripped
//! through JSON by the sibling `serde_json` shim.
//!
//! Unlike upstream serde's visitor architecture, this shim serializes into
//! an owned [`value::Value`] tree — entirely sufficient for the repo's
//! experiment rows, graph snapshots, and model checkpoints, and two orders
//! of magnitude less code.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::Value;

/// A deserialization error: a human-readable path/expectation message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError::new(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = match v {
                    Value::Array(items) => items,
                    other => {
                        return Err(DeError::new(format!("expected tuple array, got {other:?}")))
                    }
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, got array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_string()));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::from_value(&v.to_value()), Ok(v));
        let o: Option<Vec<u32>> = None;
        assert_eq!(Option::<Vec<u32>>::from_value(&o.to_value()), Ok(None));
        let s: Option<Vec<u32>> = Some(vec![9]);
        assert_eq!(
            Option::<Vec<u32>>::from_value(&s.to_value()),
            Ok(Some(vec![9]))
        );
    }

    #[test]
    fn narrowing_is_checked() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
