//! The JSON-shaped value tree plus compact rendering and parsing.
//!
//! This is both serde's intermediate representation and serde_json's
//! `Value` type; the `serde_json` shim re-exports it.

use crate::DeError;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (kept exact up to `u64::MAX`).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A shared `null`, for lookups that miss.
pub static NULL: Value = Value::Null;

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup on objects: `v.get("key")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

/// Asserts that `v` is an object, with a type name for the error message.
pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
    v.as_object()
        .ok_or_else(|| DeError::new(format!("expected object for {ty}, got {v:?}")))
}

/// Field lookup used by derived `Deserialize` impls. Missing keys resolve
/// to `null` so `Option` fields deserialize to `None`; any other type will
/// raise its own "expected ..., got Null" error.
pub fn get_field<'v>(entries: &'v [(String, Value)], key: &str) -> &'v Value {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep the number a float on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn render_into(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    let (nl, pad, pad_close, colon) = match indent {
        None => (String::new(), String::new(), String::new(), ":".to_string()),
        Some(w) => (
            "\n".to_string(),
            " ".repeat(w * (depth + 1)),
            " ".repeat(w * depth),
            ": ".to_string(),
        ),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => render_float(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad);
                render_into(item, indent, depth + 1, out);
            }
            out.push_str(&nl);
            out.push_str(&pad_close);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&nl);
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(&colon);
                render_into(item, indent, depth + 1, out);
            }
            out.push_str(&nl);
            out.push_str(&pad_close);
            out.push('}');
        }
    }
}

impl Value {
    /// Compact JSON text.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        render_into(self, None, 0, &mut out);
        out
    }

    /// Pretty-printed JSON text (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        render_into(self, Some(2), 0, &mut out);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_compact())
    }
}

/// A JSON text parser producing [`Value`] trees.
pub struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

impl<'s> Parser<'s> {
    /// Creates a parser over `s`.
    pub fn new(s: &'s str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> DeError {
        DeError::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    /// Parses one complete value and asserts end of input.
    pub fn parse_document(mut self) -> Result<Value, DeError> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.eat(b'"', "string quote")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        _ if b < 0x80 => 1,
                        _ if b >> 5 == 0b110 => 2,
                        _ if b >> 4 == 0b1110 => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.eat(b'[', "array open")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.eat(b'{', "object open")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "':' after object key")?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        Parser::new(s).parse_document().unwrap()
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null"), Value::Null);
        assert_eq!(parse("true"), Value::Bool(true));
        assert_eq!(parse("42"), Value::UInt(42));
        assert_eq!(parse("-3"), Value::Int(-3));
        assert_eq!(parse("2.5"), Value::Float(2.5));
        assert_eq!(parse("\"a\\nb\""), Value::Str("a\nb".into()));
    }

    #[test]
    fn nested_round_trip() {
        let v = Value::Object(vec![
            ("xs".into(), Value::Array(vec![Value::UInt(1), Value::Null])),
            ("name".into(), Value::Str("q\"uote".into())),
            ("f".into(), Value::Float(1.0)),
        ]);
        let text = v.render_compact();
        assert_eq!(parse(&text), v);
        let pretty = v.render_pretty();
        assert_eq!(parse(&pretty), v);
    }

    #[test]
    fn floats_stay_floats() {
        let text = Value::Float(3.0).render_compact();
        assert_eq!(text, "3.0");
        assert_eq!(parse(&text), Value::Float(3.0));
    }

    #[test]
    fn unicode_survives() {
        let v = Value::Str("héllo ✓".into());
        assert_eq!(parse(&v.render_compact()), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Parser::new("{").parse_document().is_err());
        assert!(Parser::new("1 2").parse_document().is_err());
        assert!(Parser::new("[1,]").parse_document().is_err());
    }
}
