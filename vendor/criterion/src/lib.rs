//! Vendored minimal `criterion`.
//!
//! Keeps the upstream bench-authoring API surface (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`/`criterion_main!`) but replaces the statistical
//! engine with a plain timing loop: warm up once, time `sample_size`
//! iterations, report mean and best per-iteration wall clock. Good enough
//! for comparative numbers; not a statistics package.
//!
//! When invoked with `--test` (as `cargo test` does for harness-less bench
//! targets) every benchmark body runs exactly once, as a smoke test.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark inside a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and the input parameter shown next
    /// to it.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Units-of-work annotation; reported as elements (or bytes) per second.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    sample_size: usize,
    smoke_test: bool,
    /// Mean and best per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Warms up, then times `sample_size` iterations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        if self.smoke_test {
            self.result = Some((Duration::ZERO, Duration::ZERO));
            return;
        }
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            let once = start.elapsed();
            total += once;
            best = best.min(once);
        }
        self.result = Some((total / self.sample_size as u32, best));
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut body: F,
    ) -> &mut Self {
        self.run(&id.to_string(), |b| body(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self {
        self.run(&id.to_string(), |b| body(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, body: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            smoke_test: self.criterion.smoke_test,
            result: None,
        };
        body(&mut bencher);
        let full_id = format!("{}/{}", self.name, id);
        match bencher.result {
            Some(_) if self.criterion.smoke_test => {
                println!("{full_id}: ok (smoke test)");
            }
            Some((mean, best)) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                        format!("  {:.3e} elem/s", n as f64 / mean.as_secs_f64())
                    }
                    Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                        format!("  {:.3e} B/s", n as f64 / mean.as_secs_f64())
                    }
                    _ => String::new(),
                };
                println!(
                    "{full_id}: mean {:?}, best {:?} over {} iters{rate}",
                    mean, best, self.sample_size
                );
            }
            None => println!("{full_id}: no measurement (body never called iter)"),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            smoke_test: false,
        }
    }
}

impl Criterion {
    /// Applies command-line flags: `--test` switches to run-once smoke mode;
    /// everything else (criterion's filters, `--bench`) is ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.smoke_test = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let throughput = None;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut body: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, &mut body);
        self
    }
}

/// Declares a group-runner function calling each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("adds");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("to", 50u32), &50u32, |b, &n| {
            b.iter(|| (0u32..n).sum::<u32>())
        });
        group.finish();
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
