//! Vendored minimal `crossbeam` shim.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of crossbeam it actually uses: `crossbeam::thread::scope`
//! with scoped spawns. The implementation delegates to `std::thread::scope`
//! (stable since 1.63), which provides the same borrow-friendly guarantees.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// A scope for spawning borrowing threads (see [`scope`]).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope itself so
        /// workers can spawn siblings, exactly like crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// The result type of [`scope`]: `Err` carries a worker panic payload.
    ///
    /// `std::thread::scope` propagates worker panics by panicking on join,
    /// so in this shim the error variant is never constructed; it exists so
    /// call sites written against crossbeam (`.expect(...)`) compile and
    /// behave equivalently (a worker panic still aborts the scope).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Creates a scope in which borrowing threads can be spawned.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}
