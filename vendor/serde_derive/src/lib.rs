//! Vendored minimal `serde_derive`.
//!
//! Hand-rolled derives for the vendored serde facade: no `syn`/`quote`
//! (unavailable offline), just direct `proc_macro` token walking. Supports
//! exactly what the workspace derives on: non-generic structs (named,
//! tuple/newtype, unit) and enums (unit, newtype, tuple, and struct
//! variants). No `#[serde(...)]` attributes.
//!
//! Wire shapes mirror upstream serde's JSON conventions:
//! * named struct        -> object of fields
//! * newtype struct      -> the inner value (`NodeId(42)` -> `42`)
//! * tuple struct        -> array
//! * unit enum variant   -> `"Variant"`
//! * data enum variant   -> `{"Variant": <data>}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skips `#[...]` attributes (doc comments included).
    fn skip_attrs(&mut self) {
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(_)) => self.pos += 1,
                _ => panic!("serde_derive: malformed attribute"),
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.pos += 1;
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, got {other:?}"),
        }
    }

    /// Skips a type (or discriminant expression) up to a top-level `,`,
    /// tracking `<...>` nesting. The comma itself is consumed.
    /// Returns false when the end of the stream is reached instead.
    fn skip_past_comma(&mut self) -> bool {
        let mut angle_depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return true,
                    _ => {}
                }
            }
        }
        false
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_vis();
        fields.push(cur.expect_ident("field name"));
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected ':' after field, got {other:?}"),
        }
        if !cur.skip_past_comma() {
            break;
        }
    }
    fields
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut cur = Cursor::new(group);
    let mut count = 0;
    loop {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        cur.skip_vis();
        count += 1;
        if !cur.skip_past_comma() {
            break;
        }
    }
    count
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident("variant name");
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                cur.pos += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                cur.pos += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        match cur.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                cur.pos += 1;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the separating comma.
                cur.pos += 1;
                cur.skip_past_comma();
            }
            None => break,
            other => panic!("serde_derive: unexpected token after variant: {other:?}"),
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attrs();
    cur.skip_vis();
    let kw = cur.expect_ident("'struct' or 'enum'");
    let name = cur.expect_ident("type name");
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the vendored derive");
    }
    match (kw.as_str(), cur.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            }
        }
        ("struct", Some(TokenTree::Punct(p))) if p.as_char() == ';' => Item::Struct {
            name,
            fields: Fields::Unit,
        },
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        },
        (kw, other) => panic!("serde_derive: unsupported item shape: {kw} ... {other:?}"),
    }
}

fn serialize_fields_expr(path: &str, fields: &Fields, access_prefix: &str) -> String {
    match fields {
        Fields::Unit => format!("::serde::Value::Str(::std::string::String::from(\"{path}\"))"),
        Fields::Tuple(1) => format!("::serde::Serialize::to_value(&{access_prefix}0)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&{access_prefix}{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&{access_prefix}{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
    }
}

fn deserialize_fields_expr(ty_path: &str, fields: &Fields, source: &str) -> String {
    match fields {
        Fields::Unit => ty_path.to_string(),
        Fields::Tuple(1) => format!("{ty_path}(::serde::Deserialize::from_value({source})?)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = ({source}).as_array().ok_or_else(|| \
                 ::serde::DeError::new(\"expected array for {ty_path}\"))?; \
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::new(\"wrong arity for {ty_path}\")); }} \
                 {ty_path}({items}) }}",
                items = items.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::value::get_field(__obj, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "{{ let __obj = ::serde::value::expect_object({source}, \"{ty_path}\")?; \
                 {ty_path} {{ {inits} }} }}",
                inits = inits.join(", ")
            )
        }
    }
}

/// Derives `serde::Serialize` (vendored facade).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let expr = serialize_fields_expr(&name, &fields, "self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {expr} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 {inner})]),",
                                binds = binds.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{entries}]))]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
                 }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    };
    body.parse().expect("serde_derive: generated invalid Rust")
}

/// Derives `serde::Deserialize` (vendored facade).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_item(input) {
        Item::Struct { name, fields } => {
            let expr = deserialize_fields_expr(&name, &fields, "__v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({expr})\n\
                 }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    let expr =
                        deserialize_fields_expr(&format!("{name}::{vname}"), &v.fields, "__inner");
                    format!("\"{vname}\" => ::std::result::Result::Ok({expr}),")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n\
                 {data_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"expected {name} variant, got {{__other:?}}\"))),\n\
                 }}\n\
                 }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    };
    body.parse().expect("serde_derive: generated invalid Rust")
}
