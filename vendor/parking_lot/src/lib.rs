//! Vendored minimal `parking_lot` shim.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). A poisoned std lock means a
//! worker panicked while holding it; matching parking_lot semantics, the
//! data is handed out anyway.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
