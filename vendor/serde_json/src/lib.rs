//! Vendored minimal `serde_json`.
//!
//! Thin JSON front-end over the vendored serde facade's [`Value`] tree:
//! `to_string`/`to_string_pretty` render a serialized value, `from_str`
//! parses a JSON document and rebuilds the target type. Covers the slice
//! of the real crate this workspace uses (no streaming, no borrowed data).

pub use serde::value::Value;

use serde::{Deserialize, Serialize};

/// A JSON serialization or deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The usual `serde_json::Result` alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().render_compact())
}

/// Serializes `value` as human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_value().render_pretty())
}

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(|e| Error::new(e.to_string()))
}

/// Parses a JSON document and rebuilds a `T` from it.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = serde::value::Parser::new(s)
        .parse_document()
        .map_err(|e| Error::new(e.to_string()))?;
    T::from_value(&v).map_err(|e| Error::new(e.to_string()))
}

/// Builds a [`Value`] from JSON-looking syntax. Supports `null`, flat
/// arrays, and one level of object nesting with expression values — the
/// shapes this workspace actually writes.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => {
        ::serde::Serialize::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let rows = vec![(1u32, 2.5f64), (3, 4.0)];
        let text = to_string(&rows).unwrap();
        let back: Vec<(u32, f64)> = from_str(&text).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn pretty_output_parses_back() {
        let rows = vec![vec![1u64, 2], vec![3]];
        let text = to_string_pretty(&rows).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&text).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn json_macro_builds_objects() {
        let tags = vec![1u32, 2u32];
        let v = json!({ "name": "run", "n": 3u32, "tags": tags, "none": Option::<u32>::None });
        let text = v.render_compact();
        assert!(text.starts_with('{'));
        assert!(text.contains("\"name\":\"run\""));
        assert!(text.contains("\"tags\":[1,2]"));
        assert!(text.contains("\"none\":null"));
        assert_eq!(json!(null), Value::Null);
    }
}
