//! Differential query conformance: every answer the query layer produces
//! from published epochs is checked against from-scratch BFS truth.
//!
//! * `Exact` answers equal the true distance (or Δ) bit-for-bit.
//! * `Bounded` answers bracket the truth: `lb ≤ d ≤ ub`.
//! * `topk_for_seed` answers marked `complete` equal the exact per-seed
//!   top-k computed from full truth matrices.
//! * Suppressed entries of bound-truncated rows never leak as a wrong
//!   `Exact` — the `insert_truncated` regression this suite pins.
//!
//! The checks run across the full serving matrix — generators × graph
//! stores × BFS kernels × row-cache budgets × pruning modes — and as a
//! property test over arbitrary growing streams (the headline
//! bound-soundness proptest at the bottom).

use cp_core::exact::{sort_pairs, ConvergingPair, TopKSpec};
use cp_core::oracle::{BfsKernel, GraphStore, RowCacheBudget, Snapshot, SsspPrune};
use cp_core::scan::ScanKernel;
use cp_core::selectors::SelectorKind;
use cp_gen::ba::barabasi_albert;
use cp_gen::forest_fire::forest_fire;
use cp_gen::seeded_rng;
use cp_gen::ws::watts_strogatz;
use cp_graph::bfs::bfs;
use cp_graph::{distance_decrease, Graph, NodeId, TemporalGraph, INF};
use cp_query::{Answer, EpochView};
use cp_stream::{StreamConfig, StreamEngine, StreamError};
use proptest::prelude::*;

/// A few small evolving graphs with different growth shapes.
fn generator_cases() -> Vec<(&'static str, TemporalGraph)> {
    vec![
        (
            "barabasi_albert",
            barabasi_albert(70, 2, &mut seeded_rng(11)),
        ),
        (
            "watts_strogatz",
            watts_strogatz(64, 4, 0.2, &mut seeded_rng(13)),
        ),
        ("forest_fire", forest_fire(60, 0.35, &mut seeded_rng(17))),
    ]
}

/// Feeds the events between two prefix cuts into the engine, skipping the
/// announcements a snapshot would drop anyway (duplicates, self-loops).
fn feed(engine: &mut StreamEngine, t: &TemporalGraph, from: usize, to: usize) {
    for &e in &t.events()[from..to] {
        match engine.ingest(e) {
            Ok(_) | Err(StreamError::DuplicateEdge { .. }) | Err(StreamError::SelfLoop { .. }) => {}
            Err(err) => panic!("sorted generator stream was rejected: {err}"),
        }
    }
}

/// Full truth: all-pairs BFS distance matrix.
fn truth_matrix(g: &Graph) -> Vec<Vec<u32>> {
    (0..g.num_nodes()).map(|u| bfs(g, NodeId::new(u))).collect()
}

/// The Δ the pipeline counts for a pair: 0 when outside the problem.
fn truth_delta(d1: u32, d2: u32) -> u32 {
    distance_decrease(d1, d2).unwrap_or(0)
}

/// The exact per-seed top-k from truth matrices: all pairs of `u` with
/// `Δ ≥ 1`, canonically sorted, truncated to `k`.
fn truth_topk_for_seed(
    t1: &[Vec<u32>],
    t2: &[Vec<u32>],
    u: NodeId,
    k: usize,
) -> Vec<ConvergingPair> {
    let mut pairs = Vec::new();
    for v in 0..t1.len() {
        let v = NodeId::new(v);
        if v == u {
            continue;
        }
        if let Some(delta) = distance_decrease(t1[u.index()][v.index()], t2[u.index()][v.index()]) {
            if delta >= 1 {
                pairs.push(ConvergingPair::new(u, v, delta));
            }
        }
    }
    sort_pairs(&mut pairs);
    pairs.truncate(k);
    pairs
}

/// Per-epoch answer tallies, so the matrix test can prove it was not
/// vacuously checking `Unknown`s.
#[derive(Default)]
struct Tally {
    exact: u64,
    bounded: u64,
    unknown: u64,
    complete_topk: u64,
}

/// Checks every pair's `distance` and `delta` answer and every seed's
/// `topk_for_seed` against truth on one epoch. Panics with `ctx` on any
/// violation.
fn check_epoch(view: &EpochView, t1: &[Vec<u32>], t2: &[Vec<u32>], tally: &mut Tally, ctx: &str) {
    let n = t2.len();
    for u in 0..n {
        for v in 0..n {
            let (nu, nv) = (NodeId::new(u), NodeId::new(v));
            let d = t2[u][v];
            let ans = view.distance(nu, nv);
            match ans {
                Answer::Exact(got) => {
                    assert_eq!(got, d, "wrong exact distance({u},{v}): {ctx}");
                    tally.exact += 1;
                }
                Answer::Bounded { lb, ub } => {
                    assert!(
                        lb <= d && d <= ub,
                        "distance({u},{v})={d} outside [{lb},{ub}]: {ctx}"
                    );
                    tally.bounded += 1;
                }
                Answer::Unknown => tally.unknown += 1,
            }
            assert!(ans.admits(d), "admits() disagrees with match: {ctx}");
            let delta = truth_delta(t1[u][v], d);
            let ans = view.delta(nu, nv);
            match ans {
                Answer::Exact(got) => {
                    assert_eq!(got, delta, "wrong exact delta({u},{v}): {ctx}")
                }
                Answer::Bounded { lb, ub } => assert!(
                    lb <= delta && delta <= ub,
                    "delta({u},{v})={delta} outside [{lb},{ub}]: {ctx}"
                ),
                Answer::Unknown => {}
            }
        }
        let nu = NodeId::new(u);
        for k in [1usize, 5] {
            let got = view.topk_for_seed(nu, k);
            assert!(got.pairs.len() <= k, "overfull top-k: {ctx}");
            if got.complete {
                let want = truth_topk_for_seed(t1, t2, nu, k);
                assert_eq!(
                    got.pairs, want,
                    "complete topk_for_seed({u}, {k}) diverges from truth: {ctx}"
                );
                tally.complete_topk += 1;
            } else {
                // Incomplete answers still only report true pairs.
                for p in &got.pairs {
                    let (a, b) = (p.pair.0.index(), p.pair.1.index());
                    assert_eq!(
                        p.delta,
                        truth_delta(t1[a][b], t2[a][b]),
                        "incomplete topk reported a false pair: {ctx}"
                    );
                }
            }
        }
    }
}

/// The full serving matrix: on every generator × store × kernel × cache ×
/// prune leg, every published epoch's answers conform to from-scratch BFS
/// truth — and the run produces nonzero Exact, Bounded, and complete
/// top-k answers, so the conformance is not vacuous.
#[test]
fn answers_conform_across_the_matrix() {
    let cuts = [0.6, 0.8, 1.0];
    let mut tally = Tally::default();
    for (name, t) in generator_cases() {
        let n = t.num_nodes();
        let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
        let tiny = RowCacheBudget::Bytes(3 * 4 * n);
        for store in [GraphStore::Full, GraphStore::Overlay] {
            for (kernel, scan) in [
                (BfsKernel::Scalar, ScanKernel::Scalar),
                (BfsKernel::Auto, ScanKernel::Auto),
            ] {
                for cache in [RowCacheBudget::Bytes(0), tiny, RowCacheBudget::Unbounded] {
                    for prune in [SsspPrune::Off, SsspPrune::Auto] {
                        let mut cfg = StreamConfig::new(
                            8,
                            SelectorKind::Mmsd { landmarks: 3 },
                            TopKSpec::ThresholdFromMax { slack: 1 },
                            3,
                        );
                        cfg.graph_store = Some(store);
                        cfg.kernel = Some(kernel);
                        cfg.scan_kernel = Some(scan);
                        cfg.row_cache = Some(cache);
                        cfg.prune = Some(prune);
                        let mut engine = StreamEngine::from_snapshot(
                            &t.snapshot_of_prefix(prefix(cuts[0])),
                            cfg,
                        );
                        for w in cuts.windows(2) {
                            let (f1, f2) = (prefix(w[0]), prefix(w[1]));
                            let t1 = truth_matrix(&t.snapshot_of_prefix(f1));
                            let t2 = truth_matrix(&t.snapshot_of_prefix(f2));
                            feed(&mut engine, &t, f1, f2);
                            let view = EpochView::of(engine.review());
                            let ctx = format!(
                                "{name}/review={}/{store:?}/{kernel:?}/cache={cache:?}/prune={prune:?}",
                                view.review()
                            );
                            check_epoch(&view, &t1, &t2, &mut tally, &ctx);
                        }
                    }
                }
            }
        }
    }
    assert!(tally.exact > 0, "no Exact answer anywhere — vacuous run");
    assert!(
        tally.bounded > 0,
        "no Bounded answer anywhere — vacuous run"
    );
    assert!(
        tally.complete_topk > 0,
        "no complete top-k answer anywhere — vacuous run"
    );
}

/// Satellite regression: bound-truncated rows never leak a wrong `Exact`.
///
/// A high Δ floor plus `SsspPrune::Auto` forces truncated `t2` sweeps
/// whose suppressed entries read [`INF`] in the raw row. The query layer
/// must treat those entries as absent (the `insert_truncated` contract):
/// each such query answers `Bounded`/`Unknown` — or an `Exact` that
/// matches truth when landmarks happen to prove it — never the sentinel
/// as a fake disconnection.
#[test]
fn truncated_rows_never_answer_wrong_exact() {
    let mut suppressed_queries = 0u64;
    let mut truncated_rows = 0usize;
    for (name, t) in generator_cases() {
        let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
        let mut cfg = StreamConfig::new(
            12,
            SelectorKind::Mmsd { landmarks: 3 },
            TopKSpec::Threshold { delta_min: 2 },
            1,
        );
        cfg.prune = Some(SsspPrune::Auto);
        cfg.kernel = Some(BfsKernel::Scalar);
        cfg.scan_kernel = Some(ScanKernel::Scalar);
        // Zero cache: no resident t1 donors, so t2 rows come from fresh
        // (truncatable) sweeps instead of exact repairs. Truncated rows
        // are exempt from the byte budget (`insert_truncated` keeps them
        // resident but flagged), so the capture still sees them.
        cfg.row_cache = Some(RowCacheBudget::Bytes(0));
        let mut engine = StreamEngine::from_snapshot(&t.snapshot_of_prefix(prefix(0.7)), cfg);
        feed(&mut engine, &t, prefix(0.7), prefix(1.0));
        let epoch = engine.review();
        truncated_rows += epoch.query.truncated_rows();
        let t2 = truth_matrix(&epoch.graph);
        let view = EpochView::of(epoch.clone());
        let n = t2.len();
        for u in 0..n {
            let nu = NodeId::new(u);
            let Some(row) = epoch.query.row(Snapshot::Second, nu) else {
                continue;
            };
            if !row.truncated() {
                continue;
            }
            for v in 0..n {
                let nv = NodeId::new(v);
                if row.exact(nv).is_some() {
                    continue;
                }
                // A suppressed entry: the row alone proves nothing here.
                suppressed_queries += 1;
                let d = t2[u][v];
                match view.distance(nu, nv) {
                    Answer::Exact(got) => assert_eq!(
                        got, d,
                        "{name}: suppressed entry ({u},{v}) answered a wrong Exact"
                    ),
                    Answer::Bounded { lb, ub } => assert!(
                        lb <= d && d <= ub,
                        "{name}: suppressed entry ({u},{v})={d} outside [{lb},{ub}]"
                    ),
                    Answer::Unknown => {}
                }
            }
        }
    }
    assert!(
        truncated_rows > 0,
        "no epoch captured a truncated row — the regression test is vacuous"
    );
    assert!(
        suppressed_queries > 0,
        "no suppressed entry was ever queried — the regression test is vacuous"
    );
}

/// Strategy: a growing random edge list over up to `n` nodes.
fn edge_list(n: u32, max_edges: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4..=n).prop_flat_map(move |nodes| {
        let edges = prop::collection::vec((0..nodes, 0..nodes), 8..max_edges);
        (Just(nodes as usize), edges)
    })
}

proptest! {
    /// Headline bound-soundness property: on arbitrary growing streams cut
    /// at arbitrary points, every `distance`/`delta` answer of every
    /// published epoch admits the from-scratch BFS truth — Exact answers
    /// equal it, Bounded answers bracket it.
    #[test]
    fn every_answer_is_sound_on_arbitrary_streams(
        (n, edges) in edge_list(28, 80),
        cut in 2usize..40,
        m in 2u64..10,
    ) {
        let t = TemporalGraph::from_sequence(
            n,
            edges.iter().map(|&(u, v)| (NodeId(u), NodeId(v))),
        );
        let total = t.num_events();
        let cuts = [total / 4 + cut % (total / 2 + 1), total];
        let cfg = StreamConfig::new(
            m,
            SelectorKind::SumDiff { landmarks: 2 },
            TopKSpec::ThresholdFromMax { slack: 1 },
            9,
        );
        let mut engine = StreamEngine::new(n, cfg);
        let mut prev = 0;
        for &c in &cuts {
            let g1 = engine.latest().graph.clone();
            feed(&mut engine, &t, prev, c);
            prev = c;
            let view = EpochView::of(engine.review());
            let t1 = truth_matrix(&g1);
            let t2 = truth_matrix(&view.snapshot().graph);
            for u in 0..n {
                for v in 0..n {
                    let (nu, nv) = (NodeId::new(u), NodeId::new(v));
                    let d = t2[u][v];
                    let ans = view.distance(nu, nv);
                    prop_assert!(ans.admits(d), "distance({u},{v})={d} vs {ans:?}");
                    if let Answer::Exact(got) = ans {
                        prop_assert_eq!(got, d, "distance({},{})", u, v);
                    }
                    let delta = truth_delta(t1[u][v], d);
                    let ans = view.delta(nu, nv);
                    prop_assert!(ans.admits(delta), "delta({u},{v})={delta} vs {ans:?}");
                    if let Answer::Exact(got) = ans {
                        prop_assert_eq!(got, delta, "delta({},{})", u, v);
                    }
                }
            }
        }
    }
}
