//! Concurrency stress: readers hammer the query layer while the engine
//! advances reviews, and nothing bends.
//!
//! * Every reader observes internally consistent epochs — its epoch ids
//!   are monotone non-decreasing, each pinned view keeps answering about
//!   the same review, and answers on a pinned view are repeatable.
//! * Queries charge nothing: a twin engine fed the identical stream with
//!   zero readers produces bit-identical budget ledgers (and pairs) at
//!   every review, so the ledger spend attributable to queries is exactly
//!   zero.

use cp_core::exact::TopKSpec;
use cp_core::selectors::SelectorKind;
use cp_gen::ba::barabasi_albert;
use cp_gen::seeded_rng;
use cp_graph::{NodeId, TemporalGraph};
use cp_query::{QueryEngine, SeedTopK};
use cp_stream::{StreamConfig, StreamEngine, StreamError, StreamSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const READERS: usize = 8;
const REVIEWS: usize = 5;

fn feed(engine: &mut StreamEngine, t: &TemporalGraph, from: usize, to: usize) {
    for &e in &t.events()[from..to] {
        match engine.ingest(e) {
            Ok(_) | Err(StreamError::DuplicateEdge { .. }) | Err(StreamError::SelfLoop { .. }) => {}
            Err(err) => panic!("sorted generator stream was rejected: {err}"),
        }
    }
}

fn config() -> StreamConfig {
    StreamConfig::new(
        10,
        SelectorKind::Mmsd { landmarks: 3 },
        TopKSpec::ThresholdFromMax { slack: 1 },
        7,
    )
}

/// One reader's inner loop body: pin an epoch, sanity-check it, fire a
/// mix of queries, and return the epoch id observed.
fn read_once(q: &QueryEngine, n: usize, salt: usize, queries: &AtomicU64) -> u32 {
    let view = q.epoch();
    let review = view.review();
    assert_eq!(
        view.snapshot().stats.review,
        review,
        "epoch id and stats disagree — torn epoch observed"
    );
    let u = NodeId::new(salt % n);
    let v = NodeId::new((salt * 7 + 3) % n);
    let a = view.distance(u, v);
    let b = view.delta(u, v);
    // A pinned view is immutable: the same question answers identically,
    // whatever the engine is doing meanwhile.
    assert_eq!(view.distance(u, v), a, "pinned view changed its answer");
    assert_eq!(view.delta(u, v), b, "pinned view changed its answer");
    let SeedTopK { pairs, .. } = view.topk_for_seed(u, 3);
    assert!(pairs.len() <= 3);
    for p in &pairs {
        assert!(p.delta >= 1, "non-converging pair reported");
    }
    let hop = view.from(u).step().collect();
    for w in &hop {
        assert!(w.index() < n, "traversal escaped the universe");
    }
    queries.fetch_add(5, Ordering::Relaxed);
    review
}

/// 8 reader threads issue mixed point/top-k/traversal queries nonstop
/// while the engine advances 5 reviews; afterwards a query-free twin run
/// proves the readers cost the ledger nothing.
#[test]
fn readers_observe_consistent_epochs_and_spend_nothing() {
    let t = barabasi_albert(70, 2, &mut seeded_rng(11));
    let n = t.num_nodes();
    let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
    let cuts: Vec<usize> = (0..=REVIEWS)
        .map(|i| prefix(0.5 + 0.5 * i as f64 / REVIEWS as f64))
        .collect();

    let mut engine = StreamEngine::from_snapshot(&t.snapshot_of_prefix(cuts[0]), config());
    let q = QueryEngine::new(engine.reader());
    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);

    let mut epochs: Vec<Arc<StreamSnapshot>> = Vec::new();
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for r in 0..READERS {
            let q = q.clone();
            let (stop, queries) = (&stop, &queries);
            handles.push(s.spawn(move |_| {
                let mut last = 0u32;
                let mut iters = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let review = read_once(&q, n, r + iters, queries);
                    assert!(
                        review >= last,
                        "reader {r} saw the epoch id go backwards: {last} -> {review}"
                    );
                    last = review;
                    iters += 1;
                }
                (last, iters)
            }));
        }
        for w in cuts.windows(2) {
            feed(&mut engine, &t, w[0], w[1]);
            epochs.push(engine.review());
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let (last, iters) = h.join().expect("reader panicked");
            assert!(iters > 0, "a reader never ran");
            assert!(last <= REVIEWS as u32, "impossible epoch id {last}");
        }
    })
    .expect("scope panicked");
    assert!(
        queries.load(Ordering::Relaxed) > 0,
        "no queries were issued — the stress is vacuous"
    );

    // The query-free twin: same stream, same config, zero readers. Every
    // review's ledger (and output) is bit-identical, so the concurrent
    // queries above charged exactly nothing.
    let mut twin = StreamEngine::from_snapshot(&t.snapshot_of_prefix(cuts[0]), config());
    for (i, w) in cuts.windows(2).enumerate() {
        feed(&mut twin, &t, w[0], w[1]);
        let b = twin.review();
        let a = &epochs[i];
        assert_eq!(
            a.result.budget, b.result.budget,
            "review {}: queries changed the ledger",
            b.review
        );
        assert_eq!(
            a.result.pairs, b.result.pairs,
            "review {}: queries changed the pairs",
            b.review
        );
        assert_eq!(
            a.result.candidates, b.result.candidates,
            "review {}: queries changed the candidates",
            b.review
        );
    }
}
