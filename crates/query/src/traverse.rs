//! Composable traversal cursors over a pinned epoch's graph.

use cp_graph::NodeId;
use cp_stream::StreamSnapshot;
use std::sync::Arc;

/// A breadth-first frontier over one pinned epoch's graph, built by
/// chaining [`Cursor::step`] and [`Cursor::filter`] and drained by
/// [`Cursor::collect`].
///
/// The cursor owns an `Arc` of the epoch it was created on, so it stays
/// valid — and keeps answering about the *same* graph — however many
/// reviews the engine publishes while the traversal is being composed.
/// The frontier is kept sorted and deduplicated; traversal is read-only
/// and, like every query, spends no budget.
#[derive(Clone)]
pub struct Cursor {
    snap: Arc<StreamSnapshot>,
    frontier: Vec<NodeId>,
    depth: u32,
}

impl Cursor {
    /// A cursor whose frontier is exactly `{start}` at depth 0 (empty when
    /// `start` is outside the epoch's node universe).
    pub(crate) fn rooted(snap: Arc<StreamSnapshot>, start: NodeId) -> Self {
        let frontier = if start.index() < snap.graph.num_nodes() {
            vec![start]
        } else {
            Vec::new()
        };
        Cursor {
            snap,
            frontier,
            depth: 0,
        }
    }

    /// Advances the frontier one hop: the union of all neighbors of the
    /// current frontier, sorted and deduplicated. Note this is the *next
    /// ring as a set*, not a visited-set BFS — stepping twice from `u`
    /// can return to `u` through any neighbor.
    pub fn step(mut self) -> Self {
        let mut next = Vec::new();
        for &u in &self.frontier {
            next.extend_from_slice(self.snap.graph.neighbors(u));
        }
        next.sort_unstable();
        next.dedup();
        self.frontier = next;
        self.depth += 1;
        self
    }

    /// Keeps only frontier nodes satisfying `pred`.
    pub fn filter<F: FnMut(NodeId) -> bool>(mut self, mut pred: F) -> Self {
        self.frontier.retain(|&u| pred(u));
        self
    }

    /// The current frontier, sorted ascending.
    pub fn collect(self) -> Vec<NodeId> {
        self.frontier
    }

    /// The current frontier without consuming the cursor.
    pub fn nodes(&self) -> &[NodeId] {
        &self.frontier
    }

    /// How many [`Cursor::step`]s have been taken.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Whether the frontier is empty (further steps stay empty).
    pub fn is_empty(&self) -> bool {
        self.frontier.is_empty()
    }
}
