//! The query engine: budget-free answers over published epochs.

use crate::answer::Answer;
use crate::traverse::Cursor;
use cp_core::bounds::all_pairs_below;
use cp_core::exact::{sort_pairs, ConvergingPair};
use cp_core::oracle::Snapshot;
use cp_graph::{distance_decrease, NodeId, INF};
use cp_stream::{StreamReader, StreamSnapshot};
use std::sync::Arc;

/// A per-seed top-k answer (see [`EpochView::topk_for_seed`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedTopK {
    /// The seed's converging pairs, canonically sorted (descending Δ,
    /// ascending ids), at most `k`.
    pub pairs: Vec<ConvergingPair>,
    /// Whether `pairs` provably equals the exact per-seed top-k. `false`
    /// means the published rows could not certify the answer (seed not
    /// resident and not landmark-prunable, or a truncated row whose
    /// suppressed entries might hide a qualifying pair).
    pub complete: bool,
}

/// Budget-free queries over the engine's *latest* published epoch.
///
/// Wraps an epoch reader ([`StreamReader`]); every call pins the newest
/// epoch with one `Arc` clone and serves entirely from its published
/// [`cp_stream::QueryIndex`] — resident rows, chained donor rows and at
/// most 16 landmark row pairs. Queries never touch a budget ledger, never
/// lock the engine, and never block a concurrent review: the zero-budget
/// guarantee is structural (this type holds no oracle and no `&mut`
/// anything).
///
/// Each convenience method pins the latest epoch independently; a caller
/// that needs several reads from *one* consistent epoch should hold an
/// [`EpochView`] from [`Self::epoch`] instead.
#[derive(Clone)]
pub struct QueryEngine {
    reader: StreamReader,
}

impl QueryEngine {
    /// Wraps an epoch reader ([`cp_stream::StreamEngine::reader`]).
    pub fn new(reader: StreamReader) -> Self {
        QueryEngine { reader }
    }

    /// Pins the latest published epoch for a consistent multi-read view.
    pub fn epoch(&self) -> EpochView {
        EpochView {
            snap: self.reader.latest(),
        }
    }

    /// [`EpochView::distance`] on the latest epoch.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Answer {
        self.epoch().distance(u, v)
    }

    /// [`EpochView::delta`] on the latest epoch.
    pub fn delta(&self, u: NodeId, v: NodeId) -> Answer {
        self.epoch().delta(u, v)
    }

    /// [`EpochView::topk_for_seed`] on the latest epoch.
    pub fn topk_for_seed(&self, u: NodeId, k: usize) -> SeedTopK {
        self.epoch().topk_for_seed(u, k)
    }

    /// [`EpochView::from`] on the latest epoch.
    pub fn from(&self, start: NodeId) -> Cursor {
        self.epoch().from(start)
    }
}

/// One pinned epoch: every answer this view produces refers to the same
/// published review, however many epochs the engine advances meanwhile.
#[derive(Clone)]
pub struct EpochView {
    snap: Arc<StreamSnapshot>,
}

impl EpochView {
    /// Wraps one published epoch directly (readers that already hold an
    /// `Arc<StreamSnapshot>` — e.g. from [`cp_stream::StreamEngine::review`]
    /// — can query it without a [`StreamReader`]).
    pub fn of(snap: Arc<StreamSnapshot>) -> Self {
        EpochView { snap }
    }

    /// The pinned epoch's review index (0 = pre-first-review).
    pub fn review(&self) -> u32 {
        self.snap.review
    }

    /// The pinned epoch.
    pub fn snapshot(&self) -> &Arc<StreamSnapshot> {
        &self.snap
    }

    /// Whether `u` is inside the epoch's node universe.
    fn in_universe(&self, u: NodeId) -> bool {
        u.index() < self.snap.graph.num_nodes()
    }

    /// The certified interval on `d(u, v)` in one review snapshot:
    /// resident rows first (either endpoint — the graphs are undirected),
    /// landmark triangle bounds otherwise. `(INF, INF)` is *certified
    /// disconnected*; `(0, INF)` is "nothing known".
    ///
    /// Truncated resident rows follow the `insert_truncated` contract:
    /// finite entries are exact, suppressed ([`INF`]) entries prove
    /// nothing and fall through to the landmark bounds — never to a bogus
    /// "unreachable".
    fn dist_interval(&self, which: Snapshot, u: NodeId, v: NodeId) -> (u32, u32) {
        if u == v {
            return (0, 0);
        }
        let q = &self.snap.query;
        for (a, b) in [(u, v), (v, u)] {
            if let Some(row) = q.row(which, a) {
                if let Some(d) = row.exact(b) {
                    return (d, d);
                }
            }
        }
        match q.landmarks() {
            Some((i1, i2)) => {
                let idx = match which {
                    Snapshot::First => i1,
                    Snapshot::Second => i2,
                };
                idx.bounds(u, v)
            }
            None => (0, INF),
        }
    }

    /// What the epoch proves about `d(u, v)` in the epoch's graph (the
    /// review's second snapshot). `Answer::Exact(INF)` means certified
    /// disconnected. Out-of-universe endpoints answer `Unknown`.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Answer {
        if !self.in_universe(u) || !self.in_universe(v) {
            return Answer::Unknown;
        }
        let (lb, ub) = self.dist_interval(Snapshot::Second, u, v);
        Answer::from_interval(lb, ub)
    }

    /// What the epoch proves about `Δ(u, v) = d_t1(u, v) − d_t2(u, v)`,
    /// the review's distance decrease. Follows the pipeline's convention
    /// ([`cp_graph::distance_decrease`]): a pair disconnected in the first
    /// snapshot is outside the problem and answers `Exact(0)`.
    pub fn delta(&self, u: NodeId, v: NodeId) -> Answer {
        if !self.in_universe(u) || !self.in_universe(v) {
            return Answer::Unknown;
        }
        if u == v {
            return Answer::Exact(0);
        }
        let (lb1, ub1) = self.dist_interval(Snapshot::First, u, v);
        let (lb2, ub2) = self.dist_interval(Snapshot::Second, u, v);
        // Certified disconnection on either side forces Δ = 0: in the
        // first snapshot the pair is outside the problem; in the second it
        // implies (growth-only) disconnection in the first too.
        if lb1 == INF || lb2 == INF {
            return Answer::Exact(0);
        }
        if lb1 == ub1 && lb2 == ub2 {
            // Both sides exact (and finite, per the check above).
            return Answer::Exact(distance_decrease(lb1, lb2).unwrap_or(0));
        }
        // Interval arithmetic under the Δ-as-0 convention: when d1 may be
        // infinite (ub1 == INF) the decrease may legitimately be 0, so the
        // lower side collapses; the upper side is unbounded unless d1 has
        // a finite certificate.
        let dlb = if ub1 == INF {
            0
        } else {
            lb1.saturating_sub(ub2)
        };
        let dub = if ub1 == INF {
            INF
        } else {
            ub1.saturating_sub(lb2)
        };
        Answer::from_interval(dlb, dub.max(dlb))
    }

    /// The seed's top-k converging pairs from its resident rows, with
    /// landmark-certified pruning for non-resident seeds.
    ///
    /// * Seed resident in both snapshots: Δs are computed exactly from the
    ///   captured rows. Truncated rows stay sound — a suppressed entry's
    ///   pair provably has `Δ <` the review floor, so the answer is
    ///   `complete` whenever the floor is ≤ 1, or the k-th returned Δ
    ///   reaches the floor; otherwise `complete: false`.
    /// * Seed not resident: if the landmark bounds certify every pair of
    ///   the seed below Δ = 1, the empty answer is complete; otherwise the
    ///   epoch cannot serve the seed (`complete: false`).
    pub fn topk_for_seed(&self, u: NodeId, k: usize) -> SeedTopK {
        if !self.in_universe(u) {
            return SeedTopK {
                pairs: Vec::new(),
                complete: false,
            };
        }
        let q = &self.snap.query;
        let (r1, r2) = (q.row(Snapshot::First, u), q.row(Snapshot::Second, u));
        let (Some(r1), Some(r2)) = (r1, r2) else {
            // Landmark-certified pruning: every pair of `u` certified
            // below Δ = 1 proves the seed has no converging pair at all.
            let complete = match q.landmarks() {
                Some((i1, i2)) => {
                    let (mut ub1, mut lb2) = (Vec::new(), Vec::new());
                    all_pairs_below(i1, i2, u, 1, &mut ub1, &mut lb2)
                }
                None => false,
            };
            return SeedTopK {
                pairs: Vec::new(),
                complete,
            };
        };
        let mut pairs = Vec::new();
        let mut suppressed = false;
        for v in 0..q.num_nodes() {
            let v = NodeId::new(v);
            if v == u {
                continue;
            }
            match (r1.exact(v), r2.exact(v)) {
                (Some(d1), Some(d2)) => {
                    if let Some(delta) = distance_decrease(d1, d2) {
                        if delta >= 1 {
                            pairs.push(ConvergingPair::new(u, v, delta));
                        }
                    }
                }
                // A suppressed entry's Δ is provably below the review
                // floor (the truncation contract) — excluded, but it caps
                // what the answer can certify.
                _ => suppressed = true,
            }
        }
        sort_pairs(&mut pairs);
        pairs.truncate(k);
        let floor = q.floor();
        let complete = !suppressed
            || floor <= 1
            || (pairs.len() == k && pairs.last().is_some_and(|p| p.delta >= floor));
        SeedTopK { pairs, complete }
    }

    /// Starts a composable traversal over the epoch's graph at `start`
    /// (an empty cursor when `start` is outside the universe):
    /// `view.from(u).step().filter(pred).collect()`.
    pub fn from(&self, start: NodeId) -> Cursor {
        Cursor::rooted(Arc::clone(&self.snap), start)
    }
}
