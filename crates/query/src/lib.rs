//! Budget-free query serving over published streaming epochs.
//!
//! The budgeted pipeline (cp-core) spends its `2m` SSSP ledger deciding
//! *which* rows to materialize; the streaming engine (cp-stream) publishes
//! each review as an immutable epoch carrying those rows in a read-only
//! [`cp_stream::QueryIndex`]. This crate is the third act: answering
//! *point* questions — `d(u, v)`, `Δ(u, v)`, "this seed's top-k", "what
//! is two hops out of `u`" — entirely from that published material.
//! Queries spend **zero** budget, take no engine lock, and never block a
//! concurrent review; what an epoch cannot prove is reported honestly
//! through the [`Answer`] lattice (`Exact` / `Bounded` / `Unknown`)
//! rather than re-computed.
//!
//! * [`QueryEngine`] — wraps an epoch reader ([`EpochReader`]); each call
//!   pins the latest epoch.
//! * [`EpochView`] — one pinned epoch for consistent multi-read sessions.
//! * [`Answer`] — the three-valued answer lattice with sound intervals.
//! * [`SeedTopK`] — per-seed top-k with a completeness certificate.
//! * [`Cursor`] — composable traversal: `from(u).step().filter(p).collect()`.
//!
//! ```
//! use cp_query::{Answer, QueryEngine};
//! use cp_core::exact::TopKSpec;
//! use cp_core::selectors::SelectorKind;
//! use cp_graph::{NodeId, TimedEdge};
//! use cp_stream::{StreamConfig, StreamEngine};
//!
//! // A 10-node path that gains a shortcut: the pair (0, 9) converges.
//! let cfg = StreamConfig::new(10, SelectorKind::Degree,
//!                             TopKSpec::ThresholdFromMax { slack: 0 }, 7);
//! let mut engine = StreamEngine::new(10, cfg);
//! for i in 0..9u32 {
//!     engine.ingest(TimedEdge { u: NodeId(i), v: NodeId(i + 1), time: 0 }).unwrap();
//! }
//! engine.review();
//! engine.ingest(TimedEdge { u: NodeId(0), v: NodeId(9), time: 1 }).unwrap();
//! engine.review();
//!
//! // Queries are served from the published epoch — no budget, no locks.
//! let q = QueryEngine::new(engine.reader());
//! assert_eq!(q.distance(NodeId(0), NodeId(9)), Answer::Exact(1));
//! assert_eq!(q.delta(NodeId(0), NodeId(9)), Answer::Exact(8));
//!
//! let top = q.topk_for_seed(NodeId(0), 1);
//! assert!(top.complete);
//! assert_eq!(top.pairs[0].pair, (NodeId(0), NodeId(9)));
//!
//! // Composable traversal over the same epoch's graph.
//! let two_hops = q.from(NodeId(0)).step().step().filter(|n| n.0 % 2 == 0).collect();
//! assert!(two_hops.contains(&NodeId(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod engine;
pub mod traverse;

/// The epoch-reader handle queries are built on (re-export of
/// [`cp_stream::StreamReader`]).
pub use cp_stream::StreamReader as EpochReader;

pub use answer::Answer;
pub use engine::{EpochView, QueryEngine, SeedTopK};
pub use traverse::Cursor;
