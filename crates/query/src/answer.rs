//! The three-valued answer lattice of the query layer.

use cp_graph::INF;

/// What a budget-free query can say about a distance (or a Δ).
///
/// The lattice, from most to least informative:
///
/// * [`Answer::Exact`] — the value is proven. `Exact(INF)` means
///   *certified disconnected* (for distances) — a real answer, not a
///   failure.
/// * [`Answer::Bounded`] — the value is bracketed: `lb ≤ x ≤ ub` with
///   `lb < ub` and at least one side informative.
/// * [`Answer::Unknown`] — the published epoch proves nothing (no
///   resident row touches the pair and no landmark gives a nontrivial
///   bound).
///
/// Construction goes through [`Answer::from_interval`], which collapses
/// degenerate intervals (`lb == ub` → `Exact`, the vacuous `[0, ∞)` →
/// `Unknown`), so matches on `Bounded` can rely on it being genuinely
/// partial information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Answer {
    /// The value is proven ([`INF`] = certified disconnected).
    Exact(u32),
    /// The value lies in `[lb, ub]`; `ub == INF` means "no finite upper
    /// bound" (the value may even be infinite).
    Bounded {
        /// Inclusive lower bound.
        lb: u32,
        /// Inclusive upper bound ([`INF`] when only the lower side is
        /// known).
        ub: u32,
    },
    /// Nothing can be said from published state.
    Unknown,
}

impl Answer {
    /// Normalizes an interval into the lattice: `lb == ub` (including
    /// `INF == INF`) collapses to [`Answer::Exact`], the vacuous `[0,
    /// INF]` to [`Answer::Unknown`], anything else is [`Answer::Bounded`].
    pub fn from_interval(lb: u32, ub: u32) -> Self {
        debug_assert!(lb <= ub, "inverted interval [{lb}, {ub}]");
        if lb == ub {
            Answer::Exact(lb)
        } else if lb == 0 && ub == INF {
            Answer::Unknown
        } else {
            Answer::Bounded { lb, ub }
        }
    }

    /// The inclusive lower bound this answer proves (0 for `Unknown`).
    pub fn lb(&self) -> u32 {
        match *self {
            Answer::Exact(d) => d,
            Answer::Bounded { lb, .. } => lb,
            Answer::Unknown => 0,
        }
    }

    /// The inclusive upper bound this answer proves ([`INF`] for
    /// `Unknown`).
    pub fn ub(&self) -> u32 {
        match *self {
            Answer::Exact(d) => d,
            Answer::Bounded { ub, .. } => ub,
            Answer::Unknown => INF,
        }
    }

    /// Whether the answer is exact.
    pub fn is_exact(&self) -> bool {
        matches!(self, Answer::Exact(_))
    }

    /// Whether the answer carries *some* information (not `Unknown`).
    pub fn is_informative(&self) -> bool {
        !matches!(self, Answer::Unknown)
    }

    /// Whether `value` is consistent with this answer — the soundness
    /// predicate the conformance suite checks against from-scratch truth.
    pub fn admits(&self, value: u32) -> bool {
        self.lb() <= value && value <= self.ub()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_normalization() {
        assert_eq!(Answer::from_interval(3, 3), Answer::Exact(3));
        assert_eq!(Answer::from_interval(INF, INF), Answer::Exact(INF));
        assert_eq!(Answer::from_interval(0, INF), Answer::Unknown);
        assert_eq!(
            Answer::from_interval(2, 7),
            Answer::Bounded { lb: 2, ub: 7 }
        );
        assert_eq!(
            Answer::from_interval(0, 7),
            Answer::Bounded { lb: 0, ub: 7 }
        );
        assert_eq!(
            Answer::from_interval(2, INF),
            Answer::Bounded { lb: 2, ub: INF }
        );
    }

    #[test]
    fn bounds_and_admission() {
        assert_eq!(Answer::Exact(4).lb(), 4);
        assert_eq!(Answer::Exact(4).ub(), 4);
        assert!(Answer::Exact(4).admits(4));
        assert!(!Answer::Exact(4).admits(5));
        let b = Answer::Bounded { lb: 2, ub: 6 };
        assert!(b.admits(2) && b.admits(6) && !b.admits(7) && !b.admits(1));
        assert!(Answer::Unknown.admits(0) && Answer::Unknown.admits(INF));
        assert!(Answer::Unknown.ub() == INF && Answer::Unknown.lb() == 0);
        assert!(!Answer::Unknown.is_informative());
        assert!(Answer::Exact(0).is_informative() && Answer::Exact(0).is_exact());
    }
}
