//! The experiment harness behind every table and figure of the paper.
//!
//! A [`Snapshots`] bundle holds the four standard cuts of one evolving
//! graph (40 %/60 % for training, 80 %/100 % for evaluation) plus a cache
//! of exact answers per δ-slack, so the expensive all-pairs ground truth is
//! computed once per configuration. [`run_selector`] evaluates one
//! selector at one budget and returns a [`CoverageRow`] — the unit every
//! table/figure binary aggregates.

use crate::coverage::{candidate_precision_against, candidate_precision_endpoints, coverage};
use crate::exact::{exact_top_k, ExactTopK, TopKSpec};
use crate::gpk::PairGraph;
use crate::oracle::{BudgetLedger, SnapshotOracle};
use crate::selectors::{CandidateSelector, ClassifierConfig, ClassifierSelector, SelectorKind};
use crate::topk::{run_pipeline, BudgetedResult, PipelineStats};
use cp_graph::components::components;
use cp_graph::diameter::diameter_exact;
use cp_graph::{Graph, TemporalGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The standard snapshot cuts of one evolving graph.
pub struct Snapshots {
    /// Dataset display name.
    pub name: String,
    /// Evaluation snapshot `G_t1` (80 % of edges).
    pub g1: Graph,
    /// Evaluation snapshot `G_t2` (100 %).
    pub g2: Graph,
    /// Training snapshot `G_t'1` (40 %).
    pub train_g1: Graph,
    /// Training snapshot `G_t'2` (60 %).
    pub train_g2: Graph,
    /// BFS worker threads for exact computations.
    pub threads: usize,
    truth_cache: HashMap<u32, ExactTopK>,
}

impl Snapshots {
    /// Cuts the four standard snapshots from a temporal stream.
    pub fn from_temporal(name: impl Into<String>, t: &TemporalGraph, threads: usize) -> Self {
        let (train_g1, train_g2) = t.snapshot_pair(0.4, 0.6);
        let (g1, g2) = t.snapshot_pair(0.8, 1.0);
        Snapshots {
            name: name.into(),
            g1,
            g2,
            train_g1,
            train_g2,
            threads,
            truth_cache: HashMap::new(),
        }
    }

    /// Wraps pre-cut snapshots (training pair = evaluation pair; only
    /// valid when no classifier is evaluated).
    pub fn from_eval_pair(name: impl Into<String>, g1: Graph, g2: Graph, threads: usize) -> Self {
        Snapshots {
            name: name.into(),
            train_g1: g1.clone(),
            train_g2: g2.clone(),
            g1,
            g2,
            threads,
            truth_cache: HashMap::new(),
        }
    }

    /// The exact answer for `δ = Δmax − slack`, cached.
    ///
    /// Answers for smaller slacks are subsets of answers for larger ones,
    /// so once any slack `s >= slack` has been computed the request is
    /// served by filtering instead of re-running the all-pairs BFS.
    pub fn truth(&mut self, slack: u32) -> &ExactTopK {
        if !self.truth_cache.contains_key(&slack) {
            let derived = self
                .truth_cache
                .iter()
                .find(|(&cached_slack, _)| cached_slack >= slack)
                .map(|(_, bigger)| {
                    let floor = bigger.delta_max.saturating_sub(slack).max(1);
                    let pairs: Vec<_> = bigger
                        .pairs
                        .iter()
                        .filter(|p| p.delta >= floor)
                        .copied()
                        .collect();
                    let delta_min = pairs.last().map(|p| p.delta).unwrap_or(0);
                    ExactTopK {
                        pairs,
                        delta_max: bigger.delta_max,
                        delta_min,
                    }
                });
            let truth = derived.unwrap_or_else(|| {
                exact_top_k(
                    &self.g1,
                    &self.g2,
                    &TopKSpec::ThresholdFromMax { slack },
                    self.threads,
                )
            });
            self.truth_cache.insert(slack, truth);
        }
        &self.truth_cache[&slack]
    }

    /// Builds the local classifier for this dataset.
    pub fn local_classifier(&self, config: ClassifierConfig, seed: u64) -> ClassifierSelector {
        ClassifierSelector::train_local(&self.train_g1, &self.train_g2, config, seed)
    }
}

/// One evaluated (selector, budget, δ) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Dataset name.
    pub dataset: String,
    /// Selector name.
    pub selector: String,
    /// Candidate budget `m` (the SSSP cap is `2m`).
    pub m: u64,
    /// δ slack (`δ = Δmax − slack`).
    pub slack: u32,
    /// `k` = size of the unique optimal answer at this δ.
    pub k: usize,
    /// Fraction of the true top-k pairs retrieved.
    pub coverage: f64,
    /// SSSPs actually spent, by phase.
    pub budget: BudgetLedger,
    /// Size of the fully paid candidate set `M`.
    pub num_candidates: usize,
    /// Wall-clock and cache instrumentation of the pipeline run.
    pub stats: PipelineStats,
}

/// Runs the budgeted pipeline on a snapshot bundle, using the bundle's
/// worker-thread count for the oracle (an explicit `--threads` beats the
/// `CP_THREADS` default).
pub fn run_budgeted(
    snaps: &Snapshots,
    selector: &mut dyn CandidateSelector,
    m: u64,
    spec: &TopKSpec,
) -> BudgetedResult {
    let mut oracle =
        SnapshotOracle::with_budget(&snaps.g1, &snaps.g2, 2 * m).with_threads(snaps.threads);
    run_pipeline(&mut oracle, selector, spec)
}

/// Evaluates `selector` on the snapshot pair at budget `m` against the
/// cached exact answer for `slack`.
pub fn run_selector(
    snaps: &mut Snapshots,
    selector: &mut dyn CandidateSelector,
    m: u64,
    slack: u32,
) -> CoverageRow {
    let truth_spec;
    let truth_k;
    {
        let truth = snaps.truth(slack);
        truth_spec = truth.spec();
        truth_k = truth.k();
    }
    let result = run_budgeted(snaps, selector, m, &truth_spec);
    let truth = snaps.truth_cache.get(&slack).expect("cached above");
    CoverageRow {
        dataset: snaps.name.clone(),
        selector: selector.name(),
        m,
        slack,
        k: truth_k,
        coverage: coverage(&result.pairs, truth),
        budget: result.budget,
        num_candidates: result.candidates.len(),
        stats: result.stats,
    }
}

/// Evaluates a [`SelectorKind`] (building it fresh with `seed`).
pub fn run_kind(
    snaps: &mut Snapshots,
    kind: SelectorKind,
    m: u64,
    slack: u32,
    seed: u64,
) -> CoverageRow {
    let mut selector = kind.build(seed);
    run_selector(snaps, selector.as_mut(), m, slack)
}

/// Dataset characteristics — one row of the paper's Table 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub dataset: String,
    /// Active nodes in `G_t1` / `G_t2`.
    pub nodes: (usize, usize),
    /// Edges in `G_t1` / `G_t2`.
    pub edges: (usize, usize),
    /// Exact diameters.
    pub diameter: (u32, u32),
    /// Largest distance decrease between the snapshots.
    pub delta_max: u32,
    /// Unordered active-node pairs of `G_t1` that are not connected.
    pub not_connected: u64,
}

/// Computes the Table 2 row for a snapshot bundle.
pub fn dataset_stats(snaps: &mut Snapshots) -> DatasetStats {
    let d1 = diameter_exact(&snaps.g1, snaps.threads);
    let d2 = diameter_exact(&snaps.g2, snaps.threads);
    let comps = components(&snaps.g1);
    let not_connected = comps.not_connected_active_pairs(&snaps.g1);
    let delta_max = snaps.truth(0).delta_max;
    DatasetStats {
        dataset: snaps.name.clone(),
        nodes: (snaps.g1.num_active_nodes(), snaps.g2.num_active_nodes()),
        edges: (snaps.g1.num_edges(), snaps.g2.num_edges()),
        diameter: (d1, d2),
        delta_max,
        not_connected,
    }
}

/// Pair-graph characteristics — one cell of the paper's Table 3.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GpkStats {
    /// Dataset name.
    pub dataset: String,
    /// δ slack.
    pub slack: u32,
    /// δ itself (`Δmax − slack`).
    pub delta: u32,
    /// Distinct endpoints of the answer pairs.
    pub endpoints: usize,
    /// Number of answer pairs (`k`).
    pub pairs: usize,
    /// Size of the greedy vertex cover.
    pub maxcover: usize,
}

/// Computes the Table 3 cell for one δ slack.
pub fn gpk_stats(snaps: &mut Snapshots, slack: u32) -> GpkStats {
    let truth = snaps.truth(slack);
    let delta = truth.delta_max.saturating_sub(slack).max(1);
    let gpk = PairGraph::new(&truth.pairs);
    GpkStats {
        dataset: snaps.name.clone(),
        slack,
        delta,
        endpoints: gpk.num_endpoints(),
        pairs: gpk.num_pairs(),
        maxcover: gpk.greedy_vertex_cover().nodes.len(),
    }
}

/// Candidate-quality metrics at one budget — one x-position of the
/// paper's Figure 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CandidateQualityRow {
    /// Selector name.
    pub selector: String,
    /// Candidate budget.
    pub m: u64,
    /// Fraction of candidates that are endpoints of true pairs (Fig. 2a).
    pub in_gpk: f64,
    /// Fraction of candidates inside the greedy cover (Fig. 2b).
    pub in_greedy_cover: f64,
}

/// Evaluates how much of a selector's candidate set lands in `G^p_k` and
/// in its greedy cover.
pub fn candidate_quality(
    snaps: &mut Snapshots,
    kind: SelectorKind,
    m: u64,
    slack: u32,
    seed: u64,
) -> CandidateQualityRow {
    let truth_spec = snaps.truth(slack).spec();
    let mut selector = kind.build(seed);
    let result = run_budgeted(snaps, selector.as_mut(), m, &truth_spec);
    let truth = snaps.truth_cache.get(&slack).expect("cached above");
    let gpk = PairGraph::new(&truth.pairs);
    let cover = gpk.greedy_vertex_cover();
    CandidateQualityRow {
        selector: kind.name().to_string(),
        m,
        in_gpk: candidate_precision_endpoints(&result.candidates, truth),
        in_greedy_cover: candidate_precision_against(&result.candidates, &cover.nodes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::NodeId;

    fn toy_temporal() -> TemporalGraph {
        // A ring that accumulates chords over time.
        let n = 30u32;
        let mut edges: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (NodeId(i), NodeId((i + 1) % n))).collect();
        for (a, b) in [(0, 15), (5, 20), (10, 25), (3, 18), (7, 22)] {
            edges.push((NodeId(a), NodeId(b)));
        }
        TemporalGraph::from_sequence(n as usize, edges)
    }

    #[test]
    fn snapshots_cut_correctly() {
        let t = toy_temporal();
        let snaps = Snapshots::from_temporal("toy", &t, 2);
        assert!(snaps.train_g1.num_edges() < snaps.train_g2.num_edges());
        assert!(snaps.train_g2.num_edges() < snaps.g1.num_edges());
        assert!(snaps.g1.num_edges() < snaps.g2.num_edges());
    }

    #[test]
    fn truth_is_cached() {
        let t = toy_temporal();
        let mut snaps = Snapshots::from_temporal("toy", &t, 2);
        let k1 = snaps.truth(1).k();
        let k2 = snaps.truth(1).k();
        assert_eq!(k1, k2);
        assert_eq!(snaps.truth_cache.len(), 1);
        snaps.truth(0);
        assert_eq!(snaps.truth_cache.len(), 2);
    }

    #[test]
    fn run_kind_produces_sane_row() {
        let t = toy_temporal();
        let mut snaps = Snapshots::from_temporal("toy", &t, 2);
        let row = run_kind(&mut snaps, SelectorKind::MaxAvg, 5, 1, 0);
        assert_eq!(row.dataset, "toy");
        assert_eq!(row.selector, "MaxAvg");
        assert!(row.coverage >= 0.0 && row.coverage <= 1.0);
        assert!(row.budget.total() <= 10);
        assert!(row.k > 0);
        assert_eq!(row.stats.sssp_computed, row.budget.total());
        assert_eq!(row.stats.threads, snaps.threads);
        assert!(row.stats.cache_misses >= row.budget.total());
    }

    #[test]
    fn full_budget_reaches_full_coverage() {
        let t = toy_temporal();
        let mut snaps = Snapshots::from_temporal("toy", &t, 2);
        let n = snaps.g1.num_nodes() as u64;
        let row = run_kind(&mut snaps, SelectorKind::Degree, n, 1, 0);
        assert_eq!(row.coverage, 1.0);
    }

    #[test]
    fn stats_tables() {
        let t = toy_temporal();
        let mut snaps = Snapshots::from_temporal("toy", &t, 2);
        let stats = dataset_stats(&mut snaps);
        assert!(stats.nodes.1 >= stats.nodes.0);
        assert!(stats.edges.1 > stats.edges.0);
        assert!(stats.delta_max > 0);
        // Ring is connected: no not-connected pairs at 80%... the ring
        // closes only when all ring edges are in; just check consistency.
        let g = gpk_stats(&mut snaps, 0);
        assert!(g.pairs > 0);
        assert!(g.maxcover <= g.endpoints);
        assert!(g.endpoints <= 2 * g.pairs);
        assert_eq!(g.delta, stats.delta_max);
    }

    #[test]
    fn candidate_quality_bounds() {
        let t = toy_temporal();
        let mut snaps = Snapshots::from_temporal("toy", &t, 2);
        let q = candidate_quality(&mut snaps, SelectorKind::Mmsd { landmarks: 2 }, 6, 1, 0);
        assert!((0.0..=1.0).contains(&q.in_gpk));
        assert!((0.0..=1.0).contains(&q.in_greedy_cover));
        assert!(q.in_greedy_cover <= q.in_gpk + 1e-9);
    }

    #[test]
    fn from_eval_pair_wraps() {
        let t = toy_temporal();
        let (g1, g2) = t.snapshot_pair(0.8, 1.0);
        let mut snaps = Snapshots::from_eval_pair("wrap", g1, g2, 2);
        assert!(snaps.truth(0).k() > 0);
    }
}
