//! Coverage evaluation against the exact ground truth.
//!
//! The paper's quality metric is **coverage**: the fraction of the true
//! top-k converging pairs that a budgeted run retrieves. A pair is
//! retrieved when at least one of its endpoints is in the candidate set
//! (its Δ is then computed exactly from that endpoint's rows).

use crate::exact::{ConvergingPair, ExactTopK};
use cp_graph::NodeId;
use std::collections::HashSet;

/// Fraction of `truth` pairs present in `found` (1.0 for empty truth).
pub fn coverage(found: &[ConvergingPair], truth: &ExactTopK) -> f64 {
    if truth.pairs.is_empty() {
        return 1.0;
    }
    let found_set: HashSet<(NodeId, NodeId)> = found.iter().map(|p| p.pair).collect();
    let hits = truth
        .pairs
        .iter()
        .filter(|p| found_set.contains(&p.pair))
        .count();
    hits as f64 / truth.pairs.len() as f64
}

/// Fraction of `truth` pairs with at least one endpoint in `candidates`.
///
/// This is the coverage an ideal top-k phase would achieve from the given
/// candidate set; it equals [`coverage`] of the pipeline output whenever
/// the spec threshold matches the truth cut.
pub fn candidate_coverage(candidates: &[NodeId], truth: &ExactTopK) -> f64 {
    if truth.pairs.is_empty() {
        return 1.0;
    }
    let set: HashSet<NodeId> = candidates.iter().copied().collect();
    let hits = truth
        .pairs
        .iter()
        .filter(|p| set.contains(&p.pair.0) || set.contains(&p.pair.1))
        .count();
    hits as f64 / truth.pairs.len() as f64
}

/// Fraction of `candidates` that are endpoints of truth pairs — the
/// quantity of the paper's Figure 2(a).
pub fn candidate_precision_endpoints(candidates: &[NodeId], truth: &ExactTopK) -> f64 {
    if candidates.is_empty() {
        return 0.0;
    }
    let endpoints: HashSet<NodeId> = truth
        .pairs
        .iter()
        .flat_map(|p| [p.pair.0, p.pair.1])
        .collect();
    let hits = candidates.iter().filter(|u| endpoints.contains(u)).count();
    hits as f64 / candidates.len() as f64
}

/// Fraction of `candidates` inside a given reference node set (the
/// greedy-cover intersection of the paper's Figure 2(b)).
pub fn candidate_precision_against(candidates: &[NodeId], reference: &[NodeId]) -> f64 {
    if candidates.is_empty() {
        return 0.0;
    }
    let set: HashSet<NodeId> = reference.iter().copied().collect();
    let hits = candidates.iter().filter(|u| set.contains(u)).count();
    hits as f64 / candidates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::TopKSpec;

    fn truth() -> ExactTopK {
        ExactTopK {
            pairs: vec![
                ConvergingPair::new(NodeId(0), NodeId(5), 4),
                ConvergingPair::new(NodeId(1), NodeId(6), 3),
                ConvergingPair::new(NodeId(2), NodeId(7), 3),
                ConvergingPair::new(NodeId(3), NodeId(8), 3),
            ],
            delta_max: 4,
            delta_min: 3,
        }
    }

    #[test]
    fn pair_coverage() {
        let t = truth();
        let found = vec![
            ConvergingPair::new(NodeId(0), NodeId(5), 4),
            ConvergingPair::new(NodeId(2), NodeId(7), 3),
            ConvergingPair::new(NodeId(9), NodeId(10), 2), // not in truth
        ];
        assert_eq!(coverage(&found, &t), 0.5);
        assert_eq!(coverage(&[], &t), 0.0);
    }

    #[test]
    fn empty_truth_is_fully_covered() {
        let empty = ExactTopK {
            pairs: vec![],
            delta_max: 0,
            delta_min: 0,
        };
        assert_eq!(coverage(&[], &empty), 1.0);
        assert_eq!(candidate_coverage(&[], &empty), 1.0);
    }

    #[test]
    fn candidate_set_coverage() {
        let t = truth();
        // Node 0 covers pair 0; node 6 covers pair 1.
        assert_eq!(candidate_coverage(&[NodeId(0), NodeId(6)], &t), 0.5);
        assert_eq!(candidate_coverage(&[NodeId(99)], &t), 0.0);
        assert_eq!(
            candidate_coverage(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)], &t),
            1.0
        );
    }

    #[test]
    fn precision_measures() {
        let t = truth();
        let cands = vec![NodeId(0), NodeId(5), NodeId(99), NodeId(100)];
        assert_eq!(candidate_precision_endpoints(&cands, &t), 0.5);
        assert_eq!(candidate_precision_endpoints(&[], &t), 0.0);
        let cover = vec![NodeId(0), NodeId(1)];
        assert_eq!(candidate_precision_against(&cands, &cover), 0.25);
        assert_eq!(candidate_precision_against(&[], &cover), 0.0);
    }

    #[test]
    fn spec_of_truth_matches_threshold() {
        let t = truth();
        assert_eq!(t.spec(), TopKSpec::Threshold { delta_min: 3 });
    }
}
