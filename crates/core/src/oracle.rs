//! The budget-enforcing SSSP oracle over a snapshot pair.
//!
//! The paper's cost model counts *single-source shortest-path computations*:
//! every algorithm, selector phase included, is allowed exactly `2m` of
//! them (Table 1). [`SnapshotOracle`] makes that model executable — all
//! distance rows flow through it, each fresh row is charged to the current
//! [`Phase`], cached rows are free (that is precisely how the dispersion
//! selectors reuse their `G_t1` rows), and a hard cap turns overdraft into
//! an error instead of a silently broken experiment.

use cp_graph::bfs::{bfs_into, bfs_scalar_into, BfsWorkspace};
use cp_graph::dijkstra::dijkstra_into;
use cp_graph::msbfs::{msbfs_into, MsBfsWorkspace, WAVE_WIDTH};
use cp_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of pending rows below which a batched prefetch computes inline
/// instead of spawning workers.
const PARALLEL_ROW_CUTOFF: usize = 8;

/// Worker threads for batched row computation: `CP_THREADS` when set to a
/// positive integer, the capped hardware parallelism otherwise.
pub fn threads_from_env() -> usize {
    match std::env::var("CP_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        Some(t) if t > 0 => t,
        _ => cp_graph::apsp::default_threads(),
    }
}

/// Which unweighted SSSP kernel the oracle runs.
///
/// Kernel choice never changes *what* is computed: BFS distance rows are
/// uniquely determined by the graph, so pairs, candidates, and ledger are
/// bit-identical under either kernel (property-tested in
/// `crates/core/tests/parallel_equivalence.rs`). Weighted snapshots always
/// fall back to Dijkstra regardless of this setting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BfsKernel {
    /// The reference scalar top-down BFS, one source at a time — the
    /// pre-optimization behaviour, kept for A/B runs.
    Scalar,
    /// Direction-optimizing single-source BFS plus bit-parallel
    /// multi-source waves (≤ 64 admitted sources per graph sweep) for
    /// batched prefetches. The default.
    #[default]
    Auto,
}

impl BfsKernel {
    /// Reads `CP_BFS_KERNEL` (`scalar` | `auto`); anything else (or unset)
    /// means [`BfsKernel::Auto`].
    pub fn from_env() -> Self {
        match std::env::var("CP_BFS_KERNEL") {
            Ok(s) if s.trim().eq_ignore_ascii_case("scalar") => BfsKernel::Scalar,
            _ => BfsKernel::Auto,
        }
    }

    /// The knob spelling of this kernel (`"scalar"` / `"auto"`).
    pub fn name(self) -> &'static str {
        match self {
            BfsKernel::Scalar => "scalar",
            BfsKernel::Auto => "auto",
        }
    }
}

/// Per-kernel work counters: how the charged SSSPs were actually computed.
///
/// `msbfs_rows + bfs_rows + dijkstra_rows` equals the number of fresh rows
/// (= ledger total); `msbfs_waves` counts graph sweeps, each covering up
/// to 64 of the `msbfs_rows`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Multi-source waves run (one graph sweep each).
    pub msbfs_waves: u64,
    /// Rows produced by multi-source waves.
    pub msbfs_rows: u64,
    /// Rows produced by single-source BFS (scalar or direction-optimizing).
    pub bfs_rows: u64,
    /// Rows produced by Dijkstra (weighted snapshots).
    pub dijkstra_rows: u64,
}

/// Which accounting bucket an SSSP computation lands in (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Candidate-endpoint generation (landmark rows, dispersion picks,
    /// classifier features).
    Generation,
    /// The top-k phase: rows of the chosen candidates in both snapshots.
    TopK,
}

/// The SSSP spend, split by phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetLedger {
    /// SSSPs spent generating candidates.
    pub generation: u64,
    /// SSSPs spent computing candidate rows for the top-k phase.
    pub topk: u64,
}

impl BudgetLedger {
    /// Total SSSPs spent.
    pub fn total(&self) -> u64 {
        self.generation + self.topk
    }
}

/// Attempted to exceed the SSSP budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetError {
    /// The configured cap.
    pub limit: u64,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SSSP budget of {} computations exhausted", self.limit)
    }
}

impl std::error::Error for BudgetError {}

/// Which snapshot a row belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Snapshot {
    /// The earlier snapshot `G_t1`.
    First,
    /// The later snapshot `G_t2`.
    Second,
}

/// Outcome of a batched prefetch: how each request was resolved.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchReport {
    /// Fresh rows admitted and computed, each charged one SSSP.
    pub computed: usize,
    /// Requests already satisfied by the cache (free).
    pub cached: usize,
    /// Requests the remaining budget could not cover.
    pub skipped: usize,
}

/// Outcome of a node-level (pair-atomic) batched prefetch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodePrefetchReport {
    /// Requested nodes that ended with **both** rows cached, in request
    /// order (duplicates preserved). Exactly the nodes a sequential
    /// `remaining() < cost_of(u) → skip, else rows(u)` walk would have
    /// served.
    pub usable: Vec<NodeId>,
    /// Per-request accounting.
    pub rows: PrefetchReport,
}

/// A pair of snapshots behind a counting, capping, caching SSSP interface.
///
/// ```
/// use cp_core::oracle::SnapshotOracle;
/// use cp_graph::builder::graph_from_edges;
/// use cp_graph::NodeId;
///
/// let g1 = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let g2 = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
/// let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 4);
///
/// let (d1, d2) = oracle.rows(NodeId(0))?; // 2 SSSPs charged
/// assert_eq!(d1[3], 3);
/// assert_eq!(d2[3], 1); // the new chord
/// assert_eq!(oracle.remaining(), 2);
///
/// oracle.rows(NodeId(0))?; // cached: free
/// assert_eq!(oracle.remaining(), 2);
/// # Ok::<(), cp_core::oracle::BudgetError>(())
/// ```
pub struct SnapshotOracle<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    limit: Option<u64>,
    phase: Phase,
    ledger: BudgetLedger,
    rows1: HashMap<u32, Vec<u32>>,
    rows2: HashMap<u32, Vec<u32>>,
    ws: BfsWorkspace,
    msws: MsBfsWorkspace,
    threads: usize,
    kernel: BfsKernel,
    kstats: KernelStats,
    sssp_secs: f64,
    cache_hits: u64,
    cache_misses: u64,
}

impl<'a> SnapshotOracle<'a> {
    /// Creates an oracle with a hard cap of `limit` SSSP computations
    /// across both snapshots (the paper's `2m`).
    pub fn with_budget(g1: &'a Graph, g2: &'a Graph, limit: u64) -> Self {
        Self::new_inner(g1, g2, Some(limit))
    }

    /// Creates an uncapped oracle (used by the exact baseline's
    /// bookkeeping and the unbudgeted Incidence algorithm; it still counts).
    pub fn unbounded(g1: &'a Graph, g2: &'a Graph) -> Self {
        Self::new_inner(g1, g2, None)
    }

    fn new_inner(g1: &'a Graph, g2: &'a Graph, limit: Option<u64>) -> Self {
        assert_eq!(
            g1.num_nodes(),
            g2.num_nodes(),
            "snapshots must share a node universe"
        );
        SnapshotOracle {
            g1,
            g2,
            limit,
            phase: Phase::Generation,
            ledger: BudgetLedger::default(),
            rows1: HashMap::new(),
            rows2: HashMap::new(),
            ws: BfsWorkspace::new(),
            msws: MsBfsWorkspace::new(),
            threads: threads_from_env(),
            kernel: BfsKernel::from_env(),
            kstats: KernelStats::default(),
            sssp_secs: 0.0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Sets the worker-thread count for batched prefetches. Thread count
    /// never changes results — only wall clock.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Sets the worker-thread count for batched prefetches.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the unweighted SSSP kernel (builder style). Kernel choice
    /// never changes results — only wall clock.
    pub fn with_kernel(mut self, kernel: BfsKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the unweighted SSSP kernel.
    pub fn set_kernel(&mut self, kernel: BfsKernel) {
        self.kernel = kernel;
    }

    /// The configured kernel.
    pub fn kernel(&self) -> BfsKernel {
        self.kernel
    }

    /// Per-kernel work counters accumulated so far.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kstats
    }

    /// Wall-clock seconds spent computing distance rows (single requests
    /// and batched fan-outs alike), across every phase. This is the time
    /// the BFS kernels own — the number `pipeline_baseline` compares
    /// across kernels; it excludes selector scoring, Δ scans, and
    /// anything else outside the oracle.
    pub fn sssp_secs(&self) -> f64 {
        self.sssp_secs
    }

    /// `(hits, misses)`: row requests served from cache vs. computed.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// The first snapshot.
    pub fn g1(&self) -> &'a Graph {
        self.g1
    }

    /// The second snapshot.
    pub fn g2(&self) -> &'a Graph {
        self.g2
    }

    /// Number of nodes in the shared universe.
    pub fn num_nodes(&self) -> usize {
        self.g1.num_nodes()
    }

    /// Switches the accounting bucket for subsequent computations.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// The spend so far.
    pub fn ledger(&self) -> BudgetLedger {
        self.ledger
    }

    /// Remaining SSSP allowance (`u64::MAX` when uncapped).
    pub fn remaining(&self) -> u64 {
        match self.limit {
            None => u64::MAX,
            Some(l) => l.saturating_sub(self.ledger.total()),
        }
    }

    /// The configured cap, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// How many fresh SSSPs it would cost to have both rows of `u`
    /// available (0, 1 or 2 depending on what is cached).
    pub fn cost_of(&self, u: NodeId) -> u64 {
        let mut c = 0;
        if !self.rows1.contains_key(&u.0) {
            c += 1;
        }
        if !self.rows2.contains_key(&u.0) {
            c += 1;
        }
        c
    }

    /// Whether both rows of `u` are already cached (i.e. `u` is already a
    /// fully paid candidate).
    pub fn has_both(&self, u: NodeId) -> bool {
        self.rows1.contains_key(&u.0) && self.rows2.contains_key(&u.0)
    }

    /// Nodes with both rows cached, ascending. These are exactly the nodes
    /// whose pairs the top-k phase can evaluate.
    pub fn fully_cached_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .rows1
            .keys()
            .filter(|k| self.rows2.contains_key(k))
            .map(|&k| NodeId(k))
            .collect();
        out.sort_unstable();
        out
    }

    fn charge(&mut self) -> Result<(), BudgetError> {
        if let Some(limit) = self.limit {
            if self.ledger.total() >= limit {
                return Err(BudgetError { limit });
            }
        }
        match self.phase {
            Phase::Generation => self.ledger.generation += 1,
            Phase::TopK => self.ledger.topk += 1,
        }
        Ok(())
    }

    /// The distance row of `u` in the chosen snapshot, computing (and
    /// charging) it on first use.
    pub fn row(&mut self, which: Snapshot, u: NodeId) -> Result<&[u32], BudgetError> {
        let present = match which {
            Snapshot::First => self.rows1.contains_key(&u.0),
            Snapshot::Second => self.rows2.contains_key(&u.0),
        };
        if !present {
            self.charge()?;
            self.cache_misses += 1;
            let graph = match which {
                Snapshot::First => self.g1,
                Snapshot::Second => self.g2,
            };
            let started = std::time::Instant::now();
            let mut dist = Vec::new();
            if graph.is_weighted() {
                dijkstra_into(graph, u, &mut dist);
                self.kstats.dijkstra_rows += 1;
            } else {
                match self.kernel {
                    BfsKernel::Scalar => bfs_scalar_into(graph, u, &mut dist, &mut self.ws),
                    BfsKernel::Auto => bfs_into(graph, u, &mut dist, &mut self.ws),
                }
                self.kstats.bfs_rows += 1;
            }
            self.sssp_secs += started.elapsed().as_secs_f64();
            match which {
                Snapshot::First => self.rows1.insert(u.0, dist),
                Snapshot::Second => self.rows2.insert(u.0, dist),
            };
        } else {
            self.cache_hits += 1;
        }
        let rows = match which {
            Snapshot::First => &self.rows1,
            Snapshot::Second => &self.rows2,
        };
        Ok(rows.get(&u.0).expect("just inserted").as_slice())
    }

    /// Both rows of `u` at once (for Δ computation).
    pub fn rows(&mut self, u: NodeId) -> Result<(&[u32], &[u32]), BudgetError> {
        self.row(Snapshot::First, u)?;
        self.row(Snapshot::Second, u)?;
        Ok((
            self.rows1.get(&u.0).expect("cached").as_slice(),
            self.rows2.get(&u.0).expect("cached").as_slice(),
        ))
    }

    /// The cached row of `u` in the chosen snapshot, if present. Never
    /// computes or charges; safe to call from parallel readers via `&self`.
    pub fn cached_row(&self, which: Snapshot, u: NodeId) -> Option<&[u32]> {
        match which {
            Snapshot::First => self.rows1.get(&u.0).map(Vec::as_slice),
            Snapshot::Second => self.rows2.get(&u.0).map(Vec::as_slice),
        }
    }

    /// Both cached rows of `u`, if both are present. Never computes or
    /// charges.
    pub fn cached_rows(&self, u: NodeId) -> Option<(&[u32], &[u32])> {
        Some((
            self.rows1.get(&u.0)?.as_slice(),
            self.rows2.get(&u.0)?.as_slice(),
        ))
    }

    /// Batched row prefetch. Admission is **sequential and deterministic**:
    /// requests are walked in order and each uncached row is charged to the
    /// current [`Phase`] exactly as a one-at-a-time [`Self::row`] walk
    /// would, skipping requests once the cap is reached (cached requests
    /// stay free throughout). The admitted rows are then computed in
    /// parallel — row contents do not depend on thread count, so the cache,
    /// the ledger, and every later read are identical at any [`Self::threads`]
    /// setting.
    pub fn prefetch_rows(&mut self, requests: &[(Snapshot, NodeId)]) -> PrefetchReport {
        let mut report = PrefetchReport::default();
        let mut planned1: HashSet<u32> = HashSet::new();
        let mut planned2: HashSet<u32> = HashSet::new();
        let mut jobs: Vec<(Snapshot, u32)> = Vec::new();
        for &(which, u) in requests {
            let (cache, planned) = match which {
                Snapshot::First => (&self.rows1, &mut planned1),
                Snapshot::Second => (&self.rows2, &mut planned2),
            };
            if cache.contains_key(&u.0) || planned.contains(&u.0) {
                report.cached += 1;
                self.cache_hits += 1;
                continue;
            }
            if self.charge().is_err() {
                report.skipped += 1;
                continue;
            }
            self.cache_misses += 1;
            planned.insert(u.0);
            jobs.push((which, u.0));
            report.computed += 1;
        }
        self.compute_jobs(&jobs);
        report
    }

    /// Node-level batched prefetch with the pipeline's **pair-atomic**
    /// admission: a node is admitted only if the remaining budget covers
    /// *both* of its missing rows, and skipped (scanning continues) when it
    /// does not — the exact `remaining() < cost_of(u) → continue` walk of
    /// the sequential pipeline and landmark probes, so ledger and candidate
    /// set are bit-identical to the one-at-a-time path.
    pub fn prefetch_node_rows(&mut self, nodes: &[NodeId]) -> NodePrefetchReport {
        let mut report = NodePrefetchReport::default();
        let mut planned1: HashSet<u32> = HashSet::new();
        let mut planned2: HashSet<u32> = HashSet::new();
        let mut jobs: Vec<(Snapshot, u32)> = Vec::new();
        let mut planned_spend: u64 = 0;
        for &u in nodes {
            let have1 = self.rows1.contains_key(&u.0) || planned1.contains(&u.0);
            let have2 = self.rows2.contains_key(&u.0) || planned2.contains(&u.0);
            let cost = u64::from(!have1) + u64::from(!have2);
            let remaining = match self.limit {
                None => u64::MAX,
                Some(l) => l.saturating_sub(self.ledger.total() + planned_spend),
            };
            if remaining < cost {
                report.rows.skipped += (!have1) as usize + (!have2) as usize;
                continue;
            }
            if !have1 {
                planned1.insert(u.0);
                jobs.push((Snapshot::First, u.0));
            } else {
                report.rows.cached += 1;
                self.cache_hits += 1;
            }
            if !have2 {
                planned2.insert(u.0);
                jobs.push((Snapshot::Second, u.0));
            } else {
                report.rows.cached += 1;
                self.cache_hits += 1;
            }
            planned_spend += cost;
            report.rows.computed += cost as usize;
            self.cache_misses += cost;
            report.usable.push(u);
        }
        match self.phase {
            Phase::Generation => self.ledger.generation += planned_spend,
            Phase::TopK => self.ledger.topk += planned_spend,
        }
        self.compute_jobs(&jobs);
        report
    }

    fn graph_of(&self, which: Snapshot) -> &'a Graph {
        match which {
            Snapshot::First => self.g1,
            Snapshot::Second => self.g2,
        }
    }

    /// Plans the kernel work items for a job batch: under [`BfsKernel::Auto`]
    /// the unweighted jobs of each snapshot are chunked, in admission order,
    /// into multi-source waves of at most [`WAVE_WIDTH`] sources; weighted
    /// jobs (and every job under [`BfsKernel::Scalar`]) become single-source
    /// items. Each item carries the indices of the jobs it resolves.
    fn plan_items(&self, jobs: &[(Snapshot, u32)]) -> Vec<(Snapshot, Vec<usize>)> {
        let mut items: Vec<(Snapshot, Vec<usize>)> = Vec::new();
        if self.kernel == BfsKernel::Auto {
            let mut snap1: Vec<usize> = Vec::new();
            let mut snap2: Vec<usize> = Vec::new();
            for (i, &(which, _)) in jobs.iter().enumerate() {
                if self.graph_of(which).is_weighted() {
                    items.push((which, vec![i]));
                } else {
                    match which {
                        Snapshot::First => snap1.push(i),
                        Snapshot::Second => snap2.push(i),
                    }
                }
            }
            for (which, idxs) in [(Snapshot::First, snap1), (Snapshot::Second, snap2)] {
                for chunk in idxs.chunks(WAVE_WIDTH) {
                    items.push((which, chunk.to_vec()));
                }
            }
        } else {
            items.extend(
                jobs.iter()
                    .enumerate()
                    .map(|(i, &(which, _))| (which, vec![i])),
            );
        }
        items
    }

    /// Computes the (deduplicated, already charged) row jobs and merges
    /// them into the caches — in parallel above [`PARALLEL_ROW_CUTOFF`],
    /// inline otherwise. Jobs are grouped into kernel work items first
    /// (multi-source waves under [`BfsKernel::Auto`]); the scoped-worker
    /// fan-out then distributes *items*, so wave batching composes with
    /// thread parallelism. Each worker owns its scratch; the shared state
    /// is one atomic item cursor and disjoint per-item result slots. Row
    /// contents are kernel- and thread-invariant, so cache, ledger, and
    /// every later read are identical under any configuration.
    fn compute_jobs(&mut self, jobs: &[(Snapshot, u32)]) {
        if jobs.is_empty() {
            return;
        }
        let started = std::time::Instant::now();
        let items = self.plan_items(jobs);
        for (which, idxs) in &items {
            if self.graph_of(*which).is_weighted() {
                self.kstats.dijkstra_rows += idxs.len() as u64;
            } else if idxs.len() >= 2 {
                self.kstats.msbfs_waves += 1;
                self.kstats.msbfs_rows += idxs.len() as u64;
            } else {
                self.kstats.bfs_rows += idxs.len() as u64;
            }
        }
        let threads = self.threads.min(items.len()).max(1);
        if threads == 1 || jobs.len() < PARALLEL_ROW_CUTOFF {
            for (which, idxs) in &items {
                let graph = self.graph_of(*which);
                let computed =
                    compute_item(graph, self.kernel, jobs, idxs, &mut self.ws, &mut self.msws);
                self.merge_rows(jobs, computed);
            }
            self.sssp_secs += started.elapsed().as_secs_f64();
            return;
        }
        let (g1, g2) = (self.g1, self.g2);
        let kernel = self.kernel;
        type ItemSlot = parking_lot::Mutex<Vec<(usize, Vec<u32>)>>;
        let slots: Vec<ItemSlot> = (0..items.len())
            .map(|_| parking_lot::Mutex::new(Vec::new()))
            .collect();
        let cursor = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| {
                    let mut ws = BfsWorkspace::new();
                    let mut msws = MsBfsWorkspace::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let (which, idxs) = &items[i];
                        let graph = match which {
                            Snapshot::First => g1,
                            Snapshot::Second => g2,
                        };
                        *slots[i].lock() =
                            compute_item(graph, kernel, jobs, idxs, &mut ws, &mut msws);
                    }
                });
            }
        })
        .expect("prefetch worker panicked");
        for slot in slots {
            self.merge_rows(jobs, slot.into_inner());
        }
        self.sssp_secs += started.elapsed().as_secs_f64();
    }

    /// Inserts computed `(job index, row)` results into the snapshot caches.
    fn merge_rows(&mut self, jobs: &[(Snapshot, u32)], computed: Vec<(usize, Vec<u32>)>) {
        for (idx, dist) in computed {
            let (which, u) = jobs[idx];
            match which {
                Snapshot::First => self.rows1.insert(u, dist),
                Snapshot::Second => self.rows2.insert(u, dist),
            };
        }
    }
}

/// Runs one kernel work item — a multi-source wave (≥ 2 unweighted
/// sources) or a single-source BFS/Dijkstra — returning the produced rows
/// tagged with their job indices.
fn compute_item(
    graph: &Graph,
    kernel: BfsKernel,
    jobs: &[(Snapshot, u32)],
    idxs: &[usize],
    ws: &mut BfsWorkspace,
    msws: &mut MsBfsWorkspace,
) -> Vec<(usize, Vec<u32>)> {
    if idxs.len() >= 2 && !graph.is_weighted() {
        let sources: Vec<NodeId> = idxs.iter().map(|&i| NodeId(jobs[i].1)).collect();
        let mut rows: Vec<Vec<u32>> = (0..idxs.len()).map(|_| Vec::new()).collect();
        msbfs_into(graph, &sources, &mut rows, msws);
        return idxs.iter().copied().zip(rows).collect();
    }
    idxs.iter()
        .map(|&i| {
            let u = NodeId(jobs[i].1);
            let mut dist = Vec::new();
            if graph.is_weighted() {
                dijkstra_into(graph, u, &mut dist);
            } else {
                match kernel {
                    BfsKernel::Scalar => bfs_scalar_into(graph, u, &mut dist, ws),
                    BfsKernel::Auto => bfs_into(graph, u, &mut dist, ws),
                }
            }
            (i, dist)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::graph_from_edges;
    use cp_graph::INF;

    fn graphs() -> (Graph, Graph) {
        let g1 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let g2 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        (g1, g2)
    }

    #[test]
    fn counts_and_caches() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 4);
        assert_eq!(o.cost_of(NodeId(0)), 2);
        let (d1, d2) = o.rows(NodeId(0)).unwrap();
        assert_eq!(d1[4], 4);
        assert_eq!(d2[4], 1);
        assert_eq!(o.ledger().total(), 2);
        assert_eq!(o.cost_of(NodeId(0)), 0);
        assert!(o.has_both(NodeId(0)));
        // Cached access is free.
        o.rows(NodeId(0)).unwrap();
        assert_eq!(o.ledger().total(), 2);
        assert_eq!(o.remaining(), 2);
    }

    #[test]
    fn enforces_cap() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 3);
        o.rows(NodeId(0)).unwrap(); // 2 spent
        o.row(Snapshot::First, NodeId(1)).unwrap(); // 3 spent
        let err = o.row(Snapshot::Second, NodeId(1)).unwrap_err();
        assert_eq!(err, BudgetError { limit: 3 });
        assert_eq!(o.remaining(), 0);
        // Cached rows remain readable after exhaustion.
        assert!(o.rows(NodeId(0)).is_ok());
    }

    #[test]
    fn phase_accounting() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 10);
        o.row(Snapshot::First, NodeId(2)).unwrap();
        o.set_phase(Phase::TopK);
        o.row(Snapshot::Second, NodeId(2)).unwrap();
        let ledger = o.ledger();
        assert_eq!(ledger.generation, 1);
        assert_eq!(ledger.topk, 1);
        assert_eq!(ledger.total(), 2);
    }

    #[test]
    fn fully_cached_nodes_sorted() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        o.rows(NodeId(3)).unwrap();
        o.rows(NodeId(1)).unwrap();
        o.row(Snapshot::First, NodeId(4)).unwrap(); // only one side
        assert_eq!(o.fully_cached_nodes(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(o.remaining(), u64::MAX);
        assert_eq!(o.limit(), None);
    }

    #[test]
    fn rows_reflect_each_snapshot() {
        let g1 = graph_from_edges(3, &[(0, 1)]);
        let g2 = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let (d1, d2) = o.rows(NodeId(0)).unwrap();
        assert_eq!(d1[2], INF);
        assert_eq!(d2[2], 2);
    }

    #[test]
    #[should_panic(expected = "share a node universe")]
    fn universe_mismatch_panics() {
        let g1 = graph_from_edges(3, &[(0, 1)]);
        let g2 = graph_from_edges(4, &[(0, 1)]);
        SnapshotOracle::unbounded(&g1, &g2);
    }
}
