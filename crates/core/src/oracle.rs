//! The budget-enforcing SSSP oracle over a snapshot pair.
//!
//! The paper's cost model counts *single-source shortest-path computations*:
//! every algorithm, selector phase included, is allowed exactly `2m` of
//! them (Table 1). [`SnapshotOracle`] makes that model executable — all
//! distance rows flow through it, each fresh row is charged to the current
//! [`Phase`], cached rows are free (that is precisely how the dispersion
//! selectors reuse their `G_t1` rows), and a hard cap turns overdraft into
//! an error instead of a silently broken experiment.
//!
//! # The snapshot-delta row cache
//!
//! Two orthogonal facts about a row are tracked separately:
//!
//! * **Paid** — the row has been charged to the ledger once. Admission,
//!   [`Self::cost_of`], [`Self::has_both`] and [`Self::fully_cached_nodes`]
//!   read *only* this, so the ledger and the candidate set are bit-identical
//!   at any cache size, thread count, or kernel.
//! * **Resident** — the row's bytes are currently held. Residency is
//!   bounded by a [`RowCacheBudget`] (LRU eviction, `CP_ROW_CACHE`); a paid
//!   row that was evicted is recomputed **free of charge** on its next
//!   read. Residency only moves wall clock and memory, never results.
//!
//! Residency is what powers **snapshot-delta repair**: the evolution model
//! grows the graph (`G_t1 ⊆ G_t2`), so when the `t1` row of a source is
//! resident, its `t2` row is derived by [`cp_graph::repair`] — seed a
//! frontier from the inserted edges and relax only the shrinking region —
//! instead of a full sweep. Repaired rows bypass the multi-source BFS
//! waves but still charge one SSSP each: the paper's cost model counts
//! rows, not how cleverly they were produced.

use crate::scan::ScanKernel;
use cp_graph::bfs::{bfs_limited_into, bfs_scalar_limited_into, BfsWorkspace, TraversalWork};
use cp_graph::dijkstra::dijkstra_limited_into;
use cp_graph::msbfs::{msbfs_limited_into, MsBfsWorkspace, WAVE_WIDTH};
use cp_graph::repair::{
    bfs_repair_into, dijkstra_repair_into, snapshot_delta, RepairWorkspace, SnapshotDelta,
};
use cp_graph::rowpack::{
    fits_u16, pack_u16_into, pack_u16_slice, widen_u16_into, RowArena, RowId, RowRef,
};
use cp_graph::{CompressedCsr, Graph, GraphView, GraphViewRef, NodeId, OverlayGraph};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Number of pending rows below which a batched prefetch computes inline
/// instead of spawning workers.
const PARALLEL_ROW_CUTOFF: usize = 8;

/// Number of most-recently-touched rows the LRU never evicts, so the
/// borrows returned by [`SnapshotOracle::rows`] (one row per snapshot)
/// stay resident for the duration of the call that produced them.
const ROW_PIN_COUNT: usize = 2;

/// Per-worker persistent scratch of the batched full-sweep pass: the BFS
/// and multi-source-wave workspaces live across batches (and across
/// oracles) in the executor's [`cp_exec::WorkerScratch`], so a steady
/// stream of prefetches allocates nothing per batch.
#[derive(Default)]
struct PrefetchScratch {
    ws: BfsWorkspace,
    msws: MsBfsWorkspace,
}

/// Per-worker persistent scratch of the batched repair pass.
#[derive(Default)]
struct RepairScratch {
    ws: BfsWorkspace,
    rws: RepairWorkspace,
    wide: Vec<u32>,
}

/// Emits a one-time (per knob, per process) stderr warning for an
/// unparseable environment-knob value. Every knob falls back to a safe
/// default, but a typo like `CP_ROW_CACHE=64x` silently running unbounded
/// has burned enough CI legs that the fallback is no longer silent.
pub(crate) fn warn_bad_knob(knob: &'static str, value: &str, fallback: &str) {
    static WARNED: std::sync::OnceLock<parking_lot::Mutex<HashSet<&'static str>>> =
        std::sync::OnceLock::new();
    let warned = WARNED.get_or_init(|| parking_lot::Mutex::new(HashSet::new()));
    if warned.lock().insert(knob) {
        eprintln!("warning: unparseable {knob}={value:?}; falling back to {fallback}");
    }
}

/// Parses a `CP_THREADS` spelling. Delegates to [`cp_exec::parse_threads`]:
/// out-of-range values (`0`, or more than [`cp_exec::MAX_THREADS`]) are
/// clamped with a one-time warning rather than rejected; only unparseable
/// strings return `None`.
pub fn parse_threads(s: &str) -> Option<usize> {
    cp_exec::parse_threads(s)
}

/// Worker threads for batched row computation: `CP_THREADS` when set
/// (clamped into `1..=`[`cp_exec::MAX_THREADS`]), the capped hardware
/// parallelism otherwise (with a one-time warning when the value is set
/// but unparseable). Delegates to [`cp_exec::threads_from_env`].
pub fn threads_from_env() -> usize {
    cp_exec::threads_from_env()
}

/// Which unweighted SSSP kernel the oracle runs.
///
/// Kernel choice never changes *what* is computed: BFS distance rows are
/// uniquely determined by the graph, so pairs, candidates, and ledger are
/// bit-identical under either kernel (property-tested in
/// `crates/core/tests/parallel_equivalence.rs`). Weighted snapshots always
/// fall back to Dijkstra regardless of this setting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BfsKernel {
    /// The reference scalar top-down BFS, one source at a time — the
    /// pre-optimization behaviour, kept for A/B runs.
    Scalar,
    /// Direction-optimizing single-source BFS plus bit-parallel
    /// multi-source waves (≤ 64 admitted sources per graph sweep) for
    /// batched prefetches. The default.
    #[default]
    Auto,
}

impl BfsKernel {
    /// Parses a knob spelling (`scalar` | `auto`, case-insensitive; empty
    /// means the default).
    pub fn parse(s: &str) -> Option<Self> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("scalar") {
            Some(BfsKernel::Scalar)
        } else if t.is_empty() || t.eq_ignore_ascii_case("auto") {
            Some(BfsKernel::Auto)
        } else {
            None
        }
    }

    /// Reads `CP_BFS_KERNEL` (`scalar` | `auto`); unset means
    /// [`BfsKernel::Auto`], anything unparseable warns once and falls back
    /// to [`BfsKernel::Auto`].
    pub fn from_env() -> Self {
        match std::env::var("CP_BFS_KERNEL") {
            Ok(s) => Self::parse(&s).unwrap_or_else(|| {
                warn_bad_knob("CP_BFS_KERNEL", &s, "auto");
                BfsKernel::Auto
            }),
            Err(_) => BfsKernel::Auto,
        }
    }

    /// The knob spelling of this kernel (`"scalar"` / `"auto"`).
    pub fn name(self) -> &'static str {
        match self {
            BfsKernel::Scalar => "scalar",
            BfsKernel::Auto => "auto",
        }
    }
}

/// Which physical snapshot storage the oracle's kernels traverse
/// (`CP_GRAPH_STORE`).
///
/// Storage never changes *what* is computed: every store presents the
/// same logical adjacency in the same ascending neighbor order, so pairs,
/// candidates, ledger — and even the per-kernel work counters — are
/// bit-identical across stores (property-tested in
/// `crates/core/tests/conformance.rs`). What moves is graph memory, and
/// with it wall clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphStore {
    /// Both snapshots as materialized CSR — the reference layout and the
    /// default.
    #[default]
    Full,
    /// `G_t2` as a shared-structure overlay over `G_t1`'s CSR: the base
    /// adjacency is borrowed, only the inserted edges are stored — `O(Δ)`
    /// extra memory instead of a second full CSR. Requires a growth-only
    /// pair; otherwise the oracle silently falls back to the full layout.
    Overlay,
    /// Both snapshots as delta-gap varint-compressed adjacency
    /// ([`cp_graph::CompressedCsr`]), decoded on the fly during traversal.
    Compressed,
}

impl GraphStore {
    /// Parses a knob spelling (`full` | `overlay` | `compressed`,
    /// case-insensitive; empty means the default).
    pub fn parse(s: &str) -> Option<Self> {
        let t = s.trim();
        if t.is_empty() || t.eq_ignore_ascii_case("full") {
            Some(GraphStore::Full)
        } else if t.eq_ignore_ascii_case("overlay") {
            Some(GraphStore::Overlay)
        } else if t.eq_ignore_ascii_case("compressed") {
            Some(GraphStore::Compressed)
        } else {
            None
        }
    }

    /// Reads `CP_GRAPH_STORE` (`full` | `overlay` | `compressed`); unset
    /// means [`GraphStore::Full`], anything unparseable warns once and
    /// falls back to [`GraphStore::Full`].
    pub fn from_env() -> Self {
        match std::env::var("CP_GRAPH_STORE") {
            Ok(s) => Self::parse(&s).unwrap_or_else(|| {
                warn_bad_knob("CP_GRAPH_STORE", &s, "full");
                GraphStore::Full
            }),
            Err(_) => GraphStore::Full,
        }
    }

    /// The knob spelling of this store
    /// (`"full"` / `"overlay"` / `"compressed"`).
    pub fn name(self) -> &'static str {
        match self {
            GraphStore::Full => "full",
            GraphStore::Overlay => "overlay",
            GraphStore::Compressed => "compressed",
        }
    }
}

/// Matches a [`GraphViewRef`] once and runs `$body` with `$g` bound to the
/// concrete store, monomorphizing the generic kernels per store — enum
/// dispatch at the kernel entry point, zero per-edge indirection.
macro_rules! with_view {
    ($view:expr, $g:ident => $body:expr) => {
        match $view {
            GraphViewRef::Full($g) => $body,
            GraphViewRef::Overlay($g) => $body,
            GraphViewRef::Compressed($g) => $body,
        }
    };
}

/// Resolves the [`GraphViewRef`] a kernel should traverse for one
/// snapshot. A free function over the individual fields (rather than a
/// `&self` method) so call sites holding disjoint `&mut` borrows of the
/// oracle's scratch spaces can still build a view. A store whose derived
/// structure is absent (overlay on a non-growth-only pair) falls back to
/// the full CSR.
fn view_parts<'v>(
    store: GraphStore,
    which: Snapshot,
    g1: &'v Graph,
    g2: &'v Graph,
    overlay2: &'v Option<OverlayGraph<'v>>,
    comp1: &'v Option<CompressedCsr>,
    comp2: &'v Option<CompressedCsr>,
) -> GraphViewRef<'v> {
    let full = match which {
        Snapshot::First => g1,
        Snapshot::Second => g2,
    };
    match (store, which) {
        (GraphStore::Overlay, Snapshot::Second) => match overlay2 {
            Some(o) => GraphViewRef::Overlay(o),
            None => GraphViewRef::Full(full),
        },
        (GraphStore::Compressed, _) => {
            let comp = match which {
                Snapshot::First => comp1,
                Snapshot::Second => comp2,
            };
            match comp {
                Some(c) => GraphViewRef::Compressed(c),
                None => GraphViewRef::Full(full),
            }
        }
        _ => GraphViewRef::Full(full),
    }
}

/// Byte budget of the oracle's resident-row cache (`CP_ROW_CACHE`).
///
/// The budget bounds *residency only*: which rows' bytes are held. Paid
/// status — and with it admission, the ledger, and the candidate set — is
/// tracked separately, so every budget produces bit-identical results;
/// a smaller budget just trades recomputation for memory and disables
/// fewer/more snapshot-delta repairs (a repair needs its `t1` donor row
/// resident).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowCacheBudget {
    /// Keep every paid row resident (the default): repair always finds its
    /// donor and nothing is ever recomputed.
    #[default]
    Unbounded,
    /// Hold at most this many row-payload bytes at the *packed* width —
    /// 2 bytes per node for `u16`-packed unweighted rows, 4 for `u32`
    /// rows, so packing fits about twice the rows in the same budget —
    /// evicting least-recently-used rows beyond the [`ROW_PIN_COUNT`]
    /// most recent. `Bytes(0)` additionally disables snapshot-delta
    /// repair entirely — the pre-cache compute path, used by A/B runs and
    /// the conformance suite.
    Bytes(usize),
}

impl RowCacheBudget {
    /// Reads `CP_ROW_CACHE`: unset or `unbounded` → [`Self::Unbounded`];
    /// a byte count with optional `k`/`m`/`g` (or `kb`/`mb`/`gb`) suffix →
    /// [`Self::Bytes`]; `0` disables the delta cache. Unparseable values
    /// warn once and fall back to the default.
    pub fn from_env() -> Self {
        match std::env::var("CP_ROW_CACHE") {
            Ok(s) => Self::parse(&s).unwrap_or_else(|| {
                warn_bad_knob("CP_ROW_CACHE", &s, "unbounded");
                RowCacheBudget::Unbounded
            }),
            Err(_) => RowCacheBudget::Unbounded,
        }
    }

    /// Parses a knob spelling (see [`Self::from_env`]).
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim().to_ascii_lowercase();
        if s.is_empty() || s == "unbounded" {
            return Some(RowCacheBudget::Unbounded);
        }
        let (digits, mult) = ["gb", "g", "mb", "m", "kb", "k"]
            .iter()
            .find_map(|suf| {
                s.strip_suffix(suf).map(|d| {
                    let mult = match suf.as_bytes()[0] {
                        b'g' => 1usize << 30,
                        b'm' => 1 << 20,
                        _ => 1 << 10,
                    };
                    (d.trim_end().to_string(), mult)
                })
            })
            .unwrap_or((s, 1));
        let n: usize = digits.parse().ok()?;
        Some(RowCacheBudget::Bytes(n.checked_mul(mult)?))
    }

    /// The knob spelling of this budget (`"unbounded"` or a byte count).
    pub fn describe(self) -> String {
        match self {
            RowCacheBudget::Unbounded => "unbounded".to_string(),
            RowCacheBudget::Bytes(b) => b.to_string(),
        }
    }

    /// Whether snapshot-delta repair may run under this budget.
    fn repair_enabled(self) -> bool {
        self != RowCacheBudget::Bytes(0)
    }
}

/// Whether the oracle's bound-based pruning layer is active
/// (`CP_SSSP_PRUNE`).
///
/// Pruning never changes *what* the pipeline outputs: a truncated row
/// still charges its one SSSP, only distances that provably cannot emit a
/// `Δ ≥ floor` pair are dropped, and the landmark pre-filter only skips
/// computing rows whose every pair is certified below the floor. Pairs,
/// candidates, and ledger are bit-identical under either setting
/// (property-tested in `crates/core/tests/conformance.rs`); what moves is
/// the *internal* work — settled nodes and relaxed edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SsspPrune {
    /// Every charged SSSP runs to completion — the pre-pruning behaviour,
    /// kept for A/B runs.
    Off,
    /// Truncate top-k-phase `t2` expansions at the per-source depth bound
    /// and pre-filter candidates via landmark triangle-inequality bounds.
    /// The default.
    #[default]
    Auto,
}

impl SsspPrune {
    /// Parses a knob spelling (`off` | `auto`, case-insensitive; empty
    /// means the default).
    pub fn parse(s: &str) -> Option<Self> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("off") {
            Some(SsspPrune::Off)
        } else if t.is_empty() || t.eq_ignore_ascii_case("auto") {
            Some(SsspPrune::Auto)
        } else {
            None
        }
    }

    /// Reads `CP_SSSP_PRUNE` (`off` | `auto`); unset means
    /// [`SsspPrune::Auto`], anything unparseable warns once and falls back
    /// to [`SsspPrune::Auto`].
    pub fn from_env() -> Self {
        match std::env::var("CP_SSSP_PRUNE") {
            Ok(s) => Self::parse(&s).unwrap_or_else(|| {
                warn_bad_knob("CP_SSSP_PRUNE", &s, "auto");
                SsspPrune::Auto
            }),
            Err(_) => SsspPrune::Auto,
        }
    }

    /// The knob spelling of this setting (`"off"` / `"auto"`).
    pub fn name(self) -> &'static str {
        match self {
            SsspPrune::Off => "off",
            SsspPrune::Auto => "auto",
        }
    }
}

/// Per-kernel work counters: how the charged SSSPs were actually computed.
///
/// `msbfs_rows + bfs_rows + dijkstra_rows + repair_rows` plus the oracle's
/// [`SnapshotOracle::rows_prefiltered`] (rows charged but never computed,
/// thanks to the landmark pre-filter) and
/// [`SnapshotOracle::chained_rows`] (rows charged whose bytes arrived via
/// a donor hand-off) equals the number of fresh *charged* rows (= ledger
/// total); free recomputations of evicted rows are counted by
/// [`SnapshotOracle::recomputed_rows`] instead. `msbfs_waves` counts
/// graph sweeps, each covering up to 64 of the `msbfs_rows`. Truncated
/// rows count normally here — a bound-truncated wave is still the wave
/// that produced the row.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Multi-source waves run (one graph sweep each).
    pub msbfs_waves: u64,
    /// Rows produced by multi-source waves.
    pub msbfs_rows: u64,
    /// Rows produced by single-source BFS (scalar or direction-optimizing).
    pub bfs_rows: u64,
    /// Rows produced by Dijkstra (weighted snapshots).
    pub dijkstra_rows: u64,
    /// `t2` rows produced by snapshot-delta repair from a resident `t1`
    /// donor row (BFS-repair or Dijkstra-repair by weightedness).
    pub repair_rows: u64,
}

/// Which accounting bucket an SSSP computation lands in (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Candidate-endpoint generation (landmark rows, dispersion picks,
    /// classifier features).
    Generation,
    /// The top-k phase: rows of the chosen candidates in both snapshots.
    TopK,
}

/// The SSSP spend, split by phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetLedger {
    /// SSSPs spent generating candidates.
    pub generation: u64,
    /// SSSPs spent computing candidate rows for the top-k phase.
    pub topk: u64,
}

impl BudgetLedger {
    /// Total SSSPs spent.
    pub fn total(&self) -> u64 {
        self.generation + self.topk
    }
}

/// Attempted to exceed the SSSP budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetError {
    /// The configured cap.
    pub limit: u64,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SSSP budget of {} computations exhausted", self.limit)
    }
}

impl std::error::Error for BudgetError {}

/// Which snapshot a row belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Snapshot {
    /// The earlier snapshot `G_t1`.
    First,
    /// The later snapshot `G_t2`.
    Second,
}

/// Outcome of a batched prefetch: how each request was resolved.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchReport {
    /// Fresh rows admitted and computed, each charged one SSSP.
    pub computed: usize,
    /// Requests already paid for (free — served from residency or, if
    /// evicted, recomputed without charge on their next read).
    pub cached: usize,
    /// Requests the remaining budget could not cover.
    pub skipped: usize,
}

/// Outcome of a node-level (pair-atomic) batched prefetch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodePrefetchReport {
    /// Requested nodes that ended with **both** rows paid, in request
    /// order (duplicates preserved). Exactly the nodes a sequential
    /// `remaining() < cost_of(u) → skip, else rows(u)` walk would have
    /// served.
    pub usable: Vec<NodeId>,
    /// Per-request accounting.
    pub rows: PrefetchReport,
}

/// Exact distance rows exported from one oracle's resident cache
/// ([`SnapshotOracle::export_resident_rows`]), keyed by source node and
/// sorted by id — the donor hand-off that chains successive streaming
/// reviews (step *t*'s `t2` rows seed step *t+1*'s `t1` side, see
/// [`SnapshotOracle::import_donor_rows`]).
#[derive(Clone, Debug, Default)]
pub struct RowHandoff {
    num_nodes: usize,
    /// `(source, exact u32 distance row)`, ascending by source.
    rows: Vec<(u32, Vec<u32>)>,
}

impl RowHandoff {
    /// Size of the node universe the rows were computed over.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of exported rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the hand-off carries no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A resident row's arena slot, tagged with its storage width.
enum RowSlot {
    /// `u16`-packed row in the compact arena (unweighted snapshots on a
    /// `u16`-sized node universe).
    U16(RowId),
    /// Full-width row (weighted Dijkstra rows, or universes beyond `u16`).
    U32(RowId),
}

/// One resident row with its LRU recency stamp.
struct CacheEntry {
    slot: RowSlot,
    tick: u64,
}

/// The paid/resident row store behind the oracle (see the module docs for
/// the paid-vs-resident split). Row bytes live in pooled slab arenas —
/// `u16`-packed where the snapshot allows it, so a byte budget fits about
/// twice the rows — and eviction recycles slots through the arenas' free
/// lists instead of reallocating. All mutation happens on the oracle's
/// single-threaded control path, so recency stamps — and therefore
/// evictions — are deterministic at any worker-thread count.
struct RowCache {
    budget: RowCacheBudget,
    resident: HashMap<u64, CacheEntry>,
    paid1: HashSet<u32>,
    paid2: HashSet<u32>,
    /// Resident rows whose expansion was bound-truncated: entries beyond
    /// the prune depth read [`cp_graph::INF`]. Such a row is *scan-exact*
    /// (every suppressed entry provably scans below the floor) but not
    /// distance-exact, so the exact-row readers treat it as non-resident
    /// and recompute, while the Δ-scan path uses it as-is.
    truncated: HashSet<u64>,
    bytes: usize,
    tick: u64,
    evictions: u64,
    arena16: RowArena<u16>,
    arena32: RowArena<u32>,
    /// Whether each snapshot's rows pack to `u16` (decided once at
    /// construction from weightedness and universe size).
    pack1: bool,
    pack2: bool,
}

fn cache_key(which: Snapshot, u: NodeId) -> u64 {
    let snap = match which {
        Snapshot::First => 0u64,
        Snapshot::Second => 1u64 << 32,
    };
    snap | u64::from(u.0)
}

impl RowCache {
    fn new(budget: RowCacheBudget, row_len: usize, pack1: bool, pack2: bool) -> Self {
        RowCache {
            budget,
            resident: HashMap::new(),
            paid1: HashSet::new(),
            paid2: HashSet::new(),
            truncated: HashSet::new(),
            bytes: 0,
            tick: 0,
            evictions: 0,
            arena16: RowArena::new(row_len),
            arena32: RowArena::new(row_len),
            pack1,
            pack2,
        }
    }

    fn is_paid(&self, which: Snapshot, u: NodeId) -> bool {
        match which {
            Snapshot::First => self.paid1.contains(&u.0),
            Snapshot::Second => self.paid2.contains(&u.0),
        }
    }

    fn mark_paid(&mut self, which: Snapshot, u: NodeId) {
        match which {
            Snapshot::First => self.paid1.insert(u.0),
            Snapshot::Second => self.paid2.insert(u.0),
        };
    }

    /// Whether this snapshot's rows are stored `u16`-packed.
    fn packs(&self, which: Snapshot) -> bool {
        match which {
            Snapshot::First => self.pack1,
            Snapshot::Second => self.pack2,
        }
    }

    fn is_resident(&self, which: Snapshot, u: NodeId) -> bool {
        self.resident.contains_key(&cache_key(which, u))
    }

    /// The resident row at its storage width, if present. This is the
    /// *raw* accessor: a truncated row is returned as-is, which only the
    /// Δ-scan path may consume. Exact-distance readers go through
    /// [`Self::get_exact_ref`].
    fn get_ref(&self, which: Snapshot, u: NodeId) -> Option<RowRef<'_>> {
        self.resident
            .get(&cache_key(which, u))
            .map(|e| match e.slot {
                RowSlot::U16(id) => RowRef::U16(self.arena16.row(id)),
                RowSlot::U32(id) => RowRef::U32(self.arena32.row(id)),
            })
    }

    /// Whether the resident row of `u` is bound-truncated.
    fn is_truncated(&self, which: Snapshot, u: NodeId) -> bool {
        self.truncated.contains(&cache_key(which, u))
    }

    /// The resident row, but only when it is distance-exact: truncated
    /// rows read as absent, so exact consumers (repair donors, the
    /// landmark estimators, [`SnapshotOracle::row`]) recompute instead of
    /// trusting an [`cp_graph::INF`] entry that merely means "beyond the
    /// prune depth".
    fn get_exact_ref(&self, which: Snapshot, u: NodeId) -> Option<RowRef<'_>> {
        if self.is_truncated(which, u) {
            return None;
        }
        self.get_ref(which, u)
    }

    /// Bumps the recency of a resident row; `false` if it was evicted.
    fn touch(&mut self, which: Snapshot, u: NodeId) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.resident.get_mut(&cache_key(which, u)) {
            Some(e) => {
                e.tick = tick;
                true
            }
            None => false,
        }
    }

    /// Packs a computed row into an arena slot (recycling freed slots) and
    /// makes it resident as a distance-exact row (clearing any stale
    /// truncation mark from an earlier bound-truncated compute).
    fn insert(&mut self, which: Snapshot, u: NodeId, row: Vec<u32>) {
        self.truncated.remove(&cache_key(which, u));
        self.insert_raw(which, u, row);
    }

    /// [`Self::insert`] for a bound-truncated row: resident, but flagged
    /// so exact readers recompute.
    fn insert_truncated(&mut self, which: Snapshot, u: NodeId, row: Vec<u32>) {
        self.truncated.insert(cache_key(which, u));
        self.insert_raw(which, u, row);
    }

    fn insert_raw(&mut self, which: Snapshot, u: NodeId, row: Vec<u32>) {
        self.tick += 1;
        let key = cache_key(which, u);
        if let Some(old) = self.resident.remove(&key) {
            self.release_slot(old.slot);
        }
        let slot = if self.packs(which) {
            let id = self.arena16.alloc();
            pack_u16_slice(&row, self.arena16.row_mut(id));
            self.bytes += self.arena16.row_bytes();
            RowSlot::U16(id)
        } else {
            let id = self.arena32.alloc();
            self.arena32.row_mut(id).copy_from_slice(&row);
            self.bytes += self.arena32.row_bytes();
            RowSlot::U32(id)
        };
        self.resident.insert(
            key,
            CacheEntry {
                slot,
                tick: self.tick,
            },
        );
        self.enforce();
    }

    /// Returns a slot to its arena's free list and settles the byte
    /// accounting (at the packed width).
    fn release_slot(&mut self, slot: RowSlot) {
        match slot {
            RowSlot::U16(id) => {
                self.bytes -= self.arena16.row_bytes();
                self.arena16.release(id);
            }
            RowSlot::U32(id) => {
                self.bytes -= self.arena32.row_bytes();
                self.arena32.release(id);
            }
        }
    }

    fn remove(&mut self, which: Snapshot, u: NodeId) {
        if let Some(e) = self.resident.remove(&cache_key(which, u)) {
            self.release_slot(e.slot);
        }
        self.truncated.remove(&cache_key(which, u));
    }

    fn clear_resident(&mut self) {
        self.resident.clear();
        self.truncated.clear();
        self.arena16.clear();
        self.arena32.clear();
        self.bytes = 0;
    }

    /// Evicts least-recently-used rows until the byte budget holds, always
    /// keeping the [`ROW_PIN_COUNT`] most recent (so borrows handed out by
    /// the current call remain valid even under `Bytes(0)`). Evicted slots
    /// go back to the arena free lists for the next insert to reuse.
    fn enforce(&mut self) {
        let cap = match self.budget {
            RowCacheBudget::Unbounded => return,
            RowCacheBudget::Bytes(b) => b,
        };
        while self.bytes > cap && self.resident.len() > ROW_PIN_COUNT {
            let victim = self
                .resident
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(&k, _)| k)
                .expect("non-empty cache");
            let e = self.resident.remove(&victim).expect("victim resident");
            self.release_slot(e.slot);
            self.truncated.remove(&victim);
            self.evictions += 1;
        }
    }

    fn repair_enabled(&self) -> bool {
        self.budget.repair_enabled()
    }
}

/// Occupancy counters of the row cache's slab arenas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArenaStats {
    /// Live `u16`-packed rows.
    pub u16_rows: u64,
    /// Live full-width `u32` rows.
    pub u32_rows: u64,
    /// Slot allocations served from the free lists (eviction/refill
    /// traffic that reused warm slabs instead of growing them).
    pub reused_rows: u64,
    /// Bytes of slab capacity held across both arenas (live and free
    /// slots alike).
    pub slab_bytes: u64,
}

/// Heap footprint of the graph structures the oracle's kernels traverse,
/// split by store role (see [`GraphStore`]) — the numbers behind the
/// benchmark's memory table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphMemStats {
    /// Heap bytes of the two materialized CSR snapshots (always present —
    /// they are the oracle's inputs).
    pub base_bytes: u64,
    /// Heap bytes private to the `t2` overlay (inserted edges only; the
    /// base CSR is shared with `G_t1`). 0 unless the overlay store is
    /// active on a growth-only pair.
    pub overlay_bytes: u64,
    /// Arcs the overlay shares with its base instead of re-storing.
    pub overlay_shared_arcs: u64,
    /// Heap bytes of the compressed adjacency of both snapshots. 0 unless
    /// the compressed store is active.
    pub compressed_bytes: u64,
    /// Mean compressed bytes per stored arc (offsets and degree tables
    /// included), for direct comparison against the full CSR's
    /// `base_bytes / arcs`.
    pub compressed_bytes_per_arc: f64,
}

/// Thread-private scratch for [`SnapshotOracle::read_rows`] and
/// [`SnapshotOracle::read_rows_packed`]: buffers a recomputed row per
/// snapshot (plus its `u16`-packed form and a BFS workspace), so
/// shared-`&self` readers (the Δ scan workers) can resolve evicted rows
/// without touching the oracle.
#[derive(Default)]
pub struct RowScratch {
    d1: Vec<u32>,
    d2: Vec<u32>,
    p1: Vec<u16>,
    p2: Vec<u16>,
    ws: BfsWorkspace,
}

impl RowScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A pair of snapshots behind a counting, capping, caching SSSP interface.
///
/// ```
/// use cp_core::oracle::SnapshotOracle;
/// use cp_graph::builder::graph_from_edges;
/// use cp_graph::NodeId;
///
/// let g1 = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let g2 = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
/// let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 4);
///
/// let (d1, d2) = oracle.rows(NodeId(0))?; // 2 SSSPs charged
/// assert_eq!(d1[3], 3);
/// assert_eq!(d2[3], 1); // the new chord
/// assert_eq!(oracle.remaining(), 2);
///
/// oracle.rows(NodeId(0))?; // cached: free
/// assert_eq!(oracle.remaining(), 2);
/// # Ok::<(), cp_core::oracle::BudgetError>(())
/// ```
pub struct SnapshotOracle<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    /// Which physical storage the kernels traverse (`CP_GRAPH_STORE`).
    store: GraphStore,
    /// `G_t2` as a shared-structure overlay over `g1`'s CSR — present
    /// only under [`GraphStore::Overlay`] on a growth-only pair.
    overlay2: Option<OverlayGraph<'a>>,
    /// Compressed adjacency of each snapshot ([`GraphStore::Compressed`]).
    comp1: Option<CompressedCsr>,
    comp2: Option<CompressedCsr>,
    limit: Option<u64>,
    phase: Phase,
    ledger: BudgetLedger,
    cache: RowCache,
    /// Lazily computed edge delta; `Some` once any `t2` row was requested
    /// while repair was enabled.
    delta: Option<SnapshotDelta>,
    ws: BfsWorkspace,
    msws: MsBfsWorkspace,
    rws: RepairWorkspace,
    /// Widening buffers for the `u32` row API over `u16`-packed residents
    /// (one per snapshot so [`Self::rows`] can return both at once).
    wide1: Vec<u32>,
    wide2: Vec<u32>,
    threads: usize,
    kernel: BfsKernel,
    scan_kernel: ScanKernel,
    prune: SsspPrune,
    /// The Δ floor the bound-truncation derives its depth limits from —
    /// the *initial* scan floor of the running spec (deterministic, set by
    /// the pipeline before its top-k prefetch). `None` keeps pruning
    /// inert even under [`SsspPrune::Auto`].
    prune_floor: Option<u32>,
    /// Exact `G_t1` eccentricity per source whose `t1` row this oracle
    /// computed (recorded under [`SsspPrune::Auto`]): the `Δ ≤ ecc1(u) −
    /// d2(u, v)` bound that turns the scan floor into a `t2` depth limit.
    ecc1: HashMap<u32, u32>,
    kstats: KernelStats,
    work: TraversalWork,
    rows_truncated: u64,
    rows_prefiltered: u64,
    sssp_secs: f64,
    sssp_t2_secs: f64,
    cache_hits: u64,
    cache_misses: u64,
    repaired_rows: u64,
    repair_frontier: u64,
    recomputed_rows: u64,
    chained_rows: u64,
    /// The injected worker pool (callers that need isolated
    /// [`cp_exec::ExecStats`], e.g. the conformance tests); `None` fans
    /// batched passes out on the process-wide [`cp_exec::global`] pool.
    exec: Option<Arc<cp_exec::Executor>>,
    /// Reused result slots for the batched full-sweep pass — the slot
    /// vector allocation is amortized across batches (satellite of the
    /// executor PR: no per-item `Mutex`, one writer per slot).
    item_slots: Vec<(ItemResult, f64)>,
    /// Reused result slots for the batched repair pass.
    repair_slots: Vec<(Vec<u32>, Option<usize>, f64)>,
}

impl<'a> SnapshotOracle<'a> {
    /// Creates an oracle with a hard cap of `limit` SSSP computations
    /// across both snapshots (the paper's `2m`).
    pub fn with_budget(g1: &'a Graph, g2: &'a Graph, limit: u64) -> Self {
        Self::new_inner(g1, g2, Some(limit))
    }

    /// Creates an uncapped oracle (used by the exact baseline's
    /// bookkeeping and the unbudgeted Incidence algorithm; it still counts).
    pub fn unbounded(g1: &'a Graph, g2: &'a Graph) -> Self {
        Self::new_inner(g1, g2, None)
    }

    fn new_inner(g1: &'a Graph, g2: &'a Graph, limit: Option<u64>) -> Self {
        assert_eq!(
            g1.num_nodes(),
            g2.num_nodes(),
            "snapshots must share a node universe"
        );
        let mut oracle = SnapshotOracle {
            g1,
            g2,
            store: GraphStore::from_env(),
            overlay2: None,
            comp1: None,
            comp2: None,
            limit,
            phase: Phase::Generation,
            ledger: BudgetLedger::default(),
            cache: RowCache::new(
                RowCacheBudget::from_env(),
                g1.num_nodes(),
                fits_u16(g1),
                fits_u16(g2),
            ),
            delta: None,
            ws: BfsWorkspace::new(),
            msws: MsBfsWorkspace::new(),
            rws: RepairWorkspace::new(),
            wide1: Vec::new(),
            wide2: Vec::new(),
            threads: threads_from_env(),
            kernel: BfsKernel::from_env(),
            scan_kernel: ScanKernel::from_env(),
            prune: SsspPrune::from_env(),
            prune_floor: None,
            ecc1: HashMap::new(),
            kstats: KernelStats::default(),
            work: TraversalWork::default(),
            rows_truncated: 0,
            rows_prefiltered: 0,
            sssp_secs: 0.0,
            sssp_t2_secs: 0.0,
            cache_hits: 0,
            cache_misses: 0,
            repaired_rows: 0,
            repair_frontier: 0,
            recomputed_rows: 0,
            chained_rows: 0,
            exec: None,
            item_slots: Vec::new(),
            repair_slots: Vec::new(),
        };
        oracle.apply_store();
        oracle
    }

    /// (Re)derives the store-specific structures for the configured
    /// [`GraphStore`]. The overlay needs a growth-only pair — otherwise
    /// the store silently falls back to the full CSR (the computed delta
    /// stays cached for repair either way).
    fn apply_store(&mut self) {
        self.overlay2 = None;
        self.comp1 = None;
        self.comp2 = None;
        match self.store {
            GraphStore::Full => {}
            GraphStore::Overlay => {
                let (g1, g2) = (self.g1, self.g2);
                let delta = self.delta.take().unwrap_or_else(|| snapshot_delta(g1, g2));
                if delta.growth_only {
                    let overlay =
                        OverlayGraph::from_delta(g1, delta.inserted.clone(), g2.is_weighted());
                    debug_assert_eq!(overlay.num_edges(), g2.num_edges());
                    self.overlay2 = Some(overlay);
                }
                self.delta = Some(delta);
            }
            GraphStore::Compressed => {
                self.comp1 = Some(CompressedCsr::from_graph(self.g1));
                self.comp2 = Some(CompressedCsr::from_graph(self.g2));
            }
        }
    }

    /// The [`GraphViewRef`] the kernels traverse for one snapshot under
    /// the configured store.
    fn view_of(&self, which: Snapshot) -> GraphViewRef<'_> {
        view_parts(
            self.store,
            which,
            self.g1,
            self.g2,
            &self.overlay2,
            &self.comp1,
            &self.comp2,
        )
    }

    /// Sets the worker-thread count for batched prefetches. Thread count
    /// never changes results — only wall clock.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Sets the worker-thread count for batched prefetches.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Injects a dedicated worker pool (builder style). Without one,
    /// batched passes fan out on the process-wide [`cp_exec::global`]
    /// pool. The pool only changes *where* work runs — rows, pairs, and
    /// ledger are pool-invariant.
    pub fn with_executor(mut self, exec: Arc<cp_exec::Executor>) -> Self {
        self.set_executor(exec);
        self
    }

    /// Injects a dedicated worker pool for batched passes.
    pub fn set_executor(&mut self, exec: Arc<cp_exec::Executor>) {
        self.exec = Some(exec);
    }

    /// A snapshot of the cumulative counters of the pool this oracle
    /// fans out on (the injected executor, or the global pool). Stats
    /// are advisory wall-clock instrumentation — they are excluded from
    /// the bit-identical output contract.
    pub fn exec_stats(&self) -> cp_exec::ExecStats {
        self.executor().stats()
    }

    /// The worker pool batched passes fan out on: the injected executor,
    /// or the process-wide [`cp_exec::global`] pool.
    pub(crate) fn executor(&self) -> &cp_exec::Executor {
        match self.exec.as_deref() {
            Some(e) => e,
            None => cp_exec::global(),
        }
    }

    /// Sets the unweighted SSSP kernel (builder style). Kernel choice
    /// never changes results — only wall clock.
    pub fn with_kernel(mut self, kernel: BfsKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the unweighted SSSP kernel.
    pub fn set_kernel(&mut self, kernel: BfsKernel) {
        self.kernel = kernel;
    }

    /// The configured kernel.
    pub fn kernel(&self) -> BfsKernel {
        self.kernel
    }

    /// Sets the snapshot storage layout (builder style). The store never
    /// changes results — only graph memory and wall clock (see
    /// [`GraphStore`]).
    pub fn with_graph_store(mut self, store: GraphStore) -> Self {
        self.set_graph_store(store);
        self
    }

    /// Sets the snapshot storage layout, (re)deriving the overlay or the
    /// compressed adjacency as needed.
    pub fn set_graph_store(&mut self, store: GraphStore) {
        self.store = store;
        self.apply_store();
    }

    /// The configured snapshot storage layout.
    pub fn graph_store(&self) -> GraphStore {
        self.store
    }

    /// Installs a caller-built `t2` overlay (the stream engine's
    /// insert-only accumulator produces one in `O(Δ)` without ever
    /// materializing the delta by rescanning). Switches the store to
    /// [`GraphStore::Overlay`] and seeds the repair delta from the
    /// overlay's own edge list — the `O(Δ)` fast path that skips the
    /// `O(E)` containment scan of [`cp_graph::repair::snapshot_delta`].
    ///
    /// The caller asserts the overlay is `g1`-based and presents exactly
    /// `g2`'s adjacency (debug-asserted here via the edge counts).
    pub fn set_t2_overlay(&mut self, overlay: OverlayGraph<'a>) {
        debug_assert_eq!(overlay.base().num_edges(), self.g1.num_edges());
        debug_assert_eq!(overlay.num_edges(), self.g2.num_edges());
        debug_assert_eq!(overlay.num_nodes(), self.g2.num_nodes());
        self.store = GraphStore::Overlay;
        self.delta = Some(overlay.to_delta());
        self.overlay2 = Some(overlay);
        self.comp1 = None;
        self.comp2 = None;
    }

    /// Heap bytes of the graph structures this oracle traverses, split by
    /// store role.
    pub fn graph_mem_stats(&self) -> GraphMemStats {
        let mut stats = GraphMemStats {
            base_bytes: (self.g1.heap_bytes() + self.g2.heap_bytes()) as u64,
            ..GraphMemStats::default()
        };
        if let Some(o) = &self.overlay2 {
            stats.overlay_bytes = o.heap_bytes() as u64;
            stats.overlay_shared_arcs = o.shared_arcs() as u64;
        }
        if let (Some(c1), Some(c2)) = (&self.comp1, &self.comp2) {
            stats.compressed_bytes = (c1.heap_bytes() + c2.heap_bytes()) as u64;
            let arcs = 2 * (c1.num_edges() + c2.num_edges());
            if arcs > 0 {
                stats.compressed_bytes_per_arc = stats.compressed_bytes as f64 / arcs as f64;
            }
        }
        stats
    }

    /// Sets the Δ-scan kernel (builder style). Kernel choice never changes
    /// results — only wall clock (see [`ScanKernel`]).
    pub fn with_scan_kernel(mut self, kernel: ScanKernel) -> Self {
        self.scan_kernel = kernel;
        self
    }

    /// Sets the Δ-scan kernel.
    pub fn set_scan_kernel(&mut self, kernel: ScanKernel) {
        self.scan_kernel = kernel;
    }

    /// The configured Δ-scan kernel.
    pub fn scan_kernel(&self) -> ScanKernel {
        self.scan_kernel
    }

    /// Sets the bound-based pruning mode (builder style). Pruning never
    /// changes pairs, candidates, or ledger — only internal work (see
    /// [`SsspPrune`]).
    pub fn with_prune(mut self, prune: SsspPrune) -> Self {
        self.prune = prune;
        self
    }

    /// Sets the bound-based pruning mode.
    pub fn set_prune(&mut self, prune: SsspPrune) {
        self.prune = prune;
    }

    /// The configured pruning mode.
    pub fn prune(&self) -> SsspPrune {
        self.prune
    }

    /// Arms the bound-truncation with the spec's *initial* scan floor:
    /// from the next top-k-phase batched prefetch on, a `t2` expansion
    /// from source `u` stops at depth `ecc1(u) − floor` — no node beyond
    /// it can yield `Δ ≥ floor` for `u` (Δ = d1 − d2 ≤ ecc1(u) − d2).
    /// The floor must be a *static* lower bound on the final retention
    /// floor (the pipeline uses the spec's initial floor, which the scan
    /// only ever raises), so truncation can never suppress an emitted
    /// pair. Inert under [`SsspPrune::Off`] or until a floor is set.
    pub fn set_prune_floor(&mut self, floor: u32) {
        self.prune_floor = floor.max(1).into();
    }

    /// Depth limits begin to bite only once all three hold: pruning on, a
    /// floor armed, and the spend accounted to the top-k phase (candidate
    /// rows feed the Δ scan; generation rows feed selectors, which need
    /// exact distances).
    fn prune_active(&self) -> Option<u32> {
        match (self.prune, self.phase) {
            (SsspPrune::Auto, Phase::TopK) => self.prune_floor,
            _ => None,
        }
    }

    /// Total nodes settled and adjacency entries examined by the SSSP
    /// kernels across every charged or free row this oracle computed (the
    /// work bound-truncation cuts; repair-frontier work is tracked by
    /// [`Self::repair_frontier_nodes`] instead).
    pub fn traversal_work(&self) -> TraversalWork {
        self.work
    }

    /// Rows whose expansion was bound-truncated before the frontier
    /// drained (each still charged exactly one SSSP).
    pub fn rows_truncated(&self) -> u64 {
        self.rows_truncated
    }

    /// Rows charged to the ledger but never computed: the landmark
    /// pre-filter certified every pair of their candidate below the scan
    /// floor. The paid-vs-computed analogue of PR 3's paid-vs-resident
    /// split — admission (and thus the ledger) is untouched; only the
    /// compute fan-out is skipped.
    pub fn rows_prefiltered(&self) -> u64 {
        self.rows_prefiltered
    }

    /// Whether the chosen snapshot's rows are stored `u16`-packed (half
    /// the bytes of the canonical `u32` rows). Decided once at
    /// construction: unit weights and a node universe that keeps every
    /// finite distance below the `u16` sentinel.
    pub fn row_packed(&self, which: Snapshot) -> bool {
        self.cache.packs(which)
    }

    /// Occupancy counters of the row cache's slab arenas.
    pub fn arena_stats(&self) -> ArenaStats {
        ArenaStats {
            u16_rows: self.cache.arena16.live_rows(),
            u32_rows: self.cache.arena32.live_rows(),
            reused_rows: self.cache.arena16.reused_rows() + self.cache.arena32.reused_rows(),
            slab_bytes: self.cache.arena16.slab_bytes() + self.cache.arena32.slab_bytes(),
        }
    }

    /// Sets the resident-row byte budget (builder style). Cache size never
    /// changes results — only wall clock and memory (see [`RowCacheBudget`]).
    pub fn with_row_cache(mut self, budget: RowCacheBudget) -> Self {
        self.set_row_cache(budget);
        self
    }

    /// Sets the resident-row byte budget, evicting immediately if the new
    /// budget is smaller than the current residency.
    pub fn set_row_cache(&mut self, budget: RowCacheBudget) {
        self.cache.budget = budget;
        self.cache.enforce();
    }

    /// The configured resident-row budget.
    pub fn row_cache(&self) -> RowCacheBudget {
        self.cache.budget
    }

    /// Bytes of row payload currently resident.
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes
    }

    /// Rows evicted by the LRU so far.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions
    }

    /// Per-kernel work counters accumulated so far.
    pub fn kernel_stats(&self) -> KernelStats {
        self.kstats
    }

    /// `t2` rows produced by snapshot-delta repair (charged or free).
    pub fn repaired_rows(&self) -> u64 {
        self.repaired_rows
    }

    /// Total nodes settled by repair frontiers — the work actually done in
    /// place of full sweeps; divide by [`Self::repaired_rows`] for the mean
    /// shrinking-region size.
    pub fn repair_frontier_nodes(&self) -> u64 {
        self.repair_frontier
    }

    /// Paid rows recomputed free of charge after LRU eviction (always 0
    /// under [`RowCacheBudget::Unbounded`]).
    pub fn recomputed_rows(&self) -> u64 {
        self.recomputed_rows
    }

    /// Rows charged to the ledger whose bytes were already resident from a
    /// cross-oracle donor hand-off ([`Self::import_donor_rows`]): the row
    /// is paid — the paper's cost model charges every first use — but no
    /// kernel runs. Always 0 unless donors were imported.
    pub fn chained_rows(&self) -> u64 {
        self.chained_rows
    }

    /// Exports every resident **distance-exact** row of one snapshot
    /// (truncated rows are skipped — their [`cp_graph::INF`] entries only
    /// mean "beyond the prune depth"), widened to canonical `u32` and
    /// sorted by source id. The streaming engine feeds step *t*'s `t2`
    /// export into step *t+1*'s oracle as `t1` donors: the two oracles
    /// index the *same* graph object, so the rows carry over exactly.
    pub fn export_resident_rows(&self, which: Snapshot) -> RowHandoff {
        let snap_bit = match which {
            Snapshot::First => 0u64,
            Snapshot::Second => 1u64 << 32,
        };
        let mut rows = Vec::new();
        for &key in self.cache.resident.keys() {
            if key & (1u64 << 32) != snap_bit {
                continue;
            }
            let u = NodeId(key as u32);
            let Some(r) = self.cache.get_exact_ref(which, u) else {
                continue;
            };
            let mut wide = Vec::new();
            match r {
                RowRef::U32(row) => wide.extend_from_slice(row),
                RowRef::U16(packed) => widen_u16_into(packed, &mut wide),
            }
            rows.push((u.0, wide));
        }
        rows.sort_unstable_by_key(|&(u, _)| u);
        RowHandoff {
            num_nodes: self.num_nodes(),
            rows,
        }
    }

    /// Every resident row of one snapshot — bound-truncated rows
    /// *included*, each tagged — widened to canonical `u32` and sorted by
    /// source id: `(source, row, truncated)`.
    ///
    /// This is the read-only capture behind the streaming query index: a
    /// truncated row's finite entries are exact distances (the sweep
    /// settled them before hitting its depth limit), while its
    /// [`cp_graph::INF`] entries only mean "beyond the prune depth" —
    /// consumers must treat those entries as *unknown*, never as
    /// "unreachable" (the [`Self::export_resident_rows`] hand-off skips
    /// such rows entirely because donors need whole-row exactness).
    pub fn export_rows_with_flags(&self, which: Snapshot) -> Vec<(u32, Vec<u32>, bool)> {
        let snap_bit = match which {
            Snapshot::First => 0u64,
            Snapshot::Second => 1u64 << 32,
        };
        let mut rows = Vec::new();
        for &key in self.cache.resident.keys() {
            if key & (1u64 << 32) != snap_bit {
                continue;
            }
            let u = NodeId(key as u32);
            let Some(r) = self.cache.get_ref(which, u) else {
                continue;
            };
            let mut wide = Vec::new();
            match r {
                RowRef::U32(row) => wide.extend_from_slice(row),
                RowRef::U16(packed) => widen_u16_into(packed, &mut wide),
            }
            rows.push((u.0, wide, self.cache.is_truncated(which, u)));
        }
        rows.sort_unstable_by_key(|&(u, _, _)| u);
        rows
    }

    /// Seeds the resident cache with donor rows exported from another
    /// oracle — resident but **unpaid**, so the first use of each row is
    /// still charged to this oracle's own ledger (and then counted in
    /// [`Self::chained_rows`] instead of running a kernel), and repair can
    /// use the `t1` imports as donors for `t2` sweeps. Ledger, admission
    /// order, and results are bit-identical with or without an import;
    /// only the work done per charge changes.
    ///
    /// The caller asserts each row holds the exact distances of `which`'s
    /// graph from its source. Rows already paid or resident are left
    /// untouched; imports land through the normal LRU (so a byte budget
    /// still holds) and, for [`Snapshot::First`] under active pruning,
    /// record the donor's eccentricity so bound-truncation stays armed.
    /// Configure pruning *before* importing. Returns the rows admitted.
    ///
    /// # Panics
    /// Panics if the hand-off's node universe differs from this oracle's.
    pub fn import_donor_rows(&mut self, which: Snapshot, handoff: &RowHandoff) -> u64 {
        assert_eq!(
            handoff.num_nodes,
            self.num_nodes(),
            "donor hand-off node universe mismatch"
        );
        let mut imported = 0u64;
        for (u, row) in &handoff.rows {
            let u = NodeId(*u);
            if self.cache.is_paid(which, u) || self.cache.is_resident(which, u) {
                continue;
            }
            self.record_ecc1(which, u, row);
            self.cache.insert(which, u, row.clone());
            imported += 1;
        }
        imported
    }

    /// Wall-clock seconds spent computing distance rows (single requests
    /// and batched fan-outs alike), across every phase. This is the time
    /// the BFS kernels own — the number `pipeline_baseline` compares
    /// across kernels; it excludes selector scoring, Δ scans, and
    /// anything else outside the oracle.
    pub fn sssp_secs(&self) -> f64 {
        self.sssp_secs
    }

    /// Seconds spent producing `G_t2` rows specifically, summed per work
    /// item across workers (so it is comparable across thread counts).
    /// This is the time snapshot-delta repair attacks; `pipeline_baseline`
    /// reports `repair off / repair on` of this number as the repair
    /// speedup.
    pub fn sssp_t2_secs(&self) -> f64 {
        self.sssp_t2_secs
    }

    /// `(hits, misses)`: row requests served without charge vs. charged.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    /// The first snapshot.
    pub fn g1(&self) -> &'a Graph {
        self.g1
    }

    /// The second snapshot.
    pub fn g2(&self) -> &'a Graph {
        self.g2
    }

    /// Number of nodes in the shared universe.
    pub fn num_nodes(&self) -> usize {
        self.g1.num_nodes()
    }

    /// Switches the accounting bucket for subsequent computations.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// The spend so far.
    pub fn ledger(&self) -> BudgetLedger {
        self.ledger
    }

    /// Remaining SSSP allowance (`u64::MAX` when uncapped).
    pub fn remaining(&self) -> u64 {
        match self.limit {
            None => u64::MAX,
            Some(l) => l.saturating_sub(self.ledger.total()),
        }
    }

    /// The configured cap, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// How many fresh SSSPs it would cost to have both rows of `u`
    /// available (0, 1 or 2 depending on what is already paid). Paid rows
    /// cost nothing even if their bytes were evicted.
    pub fn cost_of(&self, u: NodeId) -> u64 {
        u64::from(!self.cache.is_paid(Snapshot::First, u))
            + u64::from(!self.cache.is_paid(Snapshot::Second, u))
    }

    /// Whether both rows of `u` are already paid (i.e. `u` is already a
    /// fully paid candidate).
    pub fn has_both(&self, u: NodeId) -> bool {
        self.cache.is_paid(Snapshot::First, u) && self.cache.is_paid(Snapshot::Second, u)
    }

    /// Nodes with both rows paid, ascending. These are exactly the nodes
    /// whose pairs the top-k phase can evaluate — independent of which row
    /// bytes happen to be resident.
    pub fn fully_cached_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .cache
            .paid1
            .iter()
            .filter(|k| self.cache.paid2.contains(k))
            .map(|&k| NodeId(k))
            .collect();
        out.sort_unstable();
        out
    }

    /// Drops the resident bytes of one row. Paid status and ledger are
    /// untouched: a later read recomputes the row free of charge.
    pub fn invalidate_row(&mut self, which: Snapshot, u: NodeId) {
        self.cache.remove(which, u);
    }

    /// Drops every resident row (memory pressure relief); paid statuses
    /// and the ledger survive, so results are unaffected.
    pub fn invalidate_resident(&mut self) {
        self.cache.clear_resident();
    }

    fn charge(&mut self) -> Result<(), BudgetError> {
        if let Some(limit) = self.limit {
            if self.ledger.total() >= limit {
                return Err(BudgetError { limit });
            }
        }
        match self.phase {
            Phase::Generation => self.ledger.generation += 1,
            Phase::TopK => self.ledger.topk += 1,
        }
        Ok(())
    }

    /// Ensures the snapshot delta is computed; `true` iff repair may run
    /// (cache budget allows it and the pair is growth-only).
    fn repair_ready(&mut self) -> bool {
        if !self.cache.repair_enabled() {
            return false;
        }
        if self.delta.is_none() {
            // When a `t2` overlay exists its edge list *is* the delta —
            // read it back in O(Δ) instead of the O(E) containment scan.
            self.delta = Some(match &self.overlay2 {
                Some(overlay) => overlay.to_delta(),
                None => snapshot_delta(self.g1, self.g2),
            });
        }
        self.delta.as_ref().expect("just computed").growth_only
    }

    /// Computes one row with the configured kernel, repairing `t2` rows
    /// from a resident (exact, never truncated) `t1` donor when possible.
    /// `charged` routes the per-kernel accounting (free recomputations
    /// stay out of [`KernelStats`] so its row sum keeps matching the
    /// ledger). Single-row computes are always full sweeps: callers of
    /// [`Self::row`] / [`Self::rows`] get exact distances — only the
    /// batched top-k prefetch truncates.
    fn compute_one(&mut self, which: Snapshot, u: NodeId, charged: bool) -> Vec<u32> {
        let started = std::time::Instant::now();
        let try_repair = which == Snapshot::Second && self.repair_ready();
        let weighted = self.graph_of(which).is_weighted();
        let mut dist = Vec::new();
        let mut work = TraversalWork::new();
        let mut settled = None;
        let SnapshotOracle {
            g1,
            g2,
            store,
            overlay2,
            comp1,
            comp2,
            cache,
            delta,
            ws,
            rws,
            kernel,
            ..
        } = self;
        let view = view_parts(*store, which, g1, g2, &*overlay2, &*comp1, &*comp2);
        if try_repair {
            let delta = delta.as_ref().expect("repair_ready computed it");
            let mut donor_wide = Vec::new();
            let t1: Option<&[u32]> = match cache.get_exact_ref(Snapshot::First, u) {
                Some(RowRef::U32(r)) => Some(r),
                Some(RowRef::U16(p)) => {
                    widen_u16_into(p, &mut donor_wide);
                    Some(donor_wide.as_slice())
                }
                None => None,
            };
            if let Some(t1) = t1 {
                settled = Some(with_view!(view, g => if weighted {
                    dijkstra_repair_into(g, t1, &delta.inserted, &mut dist, rws)
                } else {
                    bfs_repair_into(g, t1, &delta.inserted, &mut dist, rws)
                }));
            }
        }
        if settled.is_none() {
            with_view!(view, g => if weighted {
                dijkstra_limited_into(g, u, &mut dist, cp_graph::INF, &mut work);
            } else {
                match *kernel {
                    BfsKernel::Scalar => {
                        bfs_scalar_limited_into(g, u, &mut dist, ws, cp_graph::INF, &mut work);
                    }
                    BfsKernel::Auto => {
                        bfs_limited_into(g, u, &mut dist, ws, cp_graph::INF, &mut work);
                    }
                }
            });
        }
        match settled {
            Some(settled) => {
                self.repaired_rows += 1;
                self.repair_frontier += settled as u64;
                if charged {
                    self.kstats.repair_rows += 1;
                }
            }
            None if weighted => {
                if charged {
                    self.kstats.dijkstra_rows += 1;
                }
            }
            None => {
                if charged {
                    self.kstats.bfs_rows += 1;
                }
            }
        }
        self.work.merge(work);
        self.record_ecc1(which, u, &dist);
        let secs = started.elapsed().as_secs_f64();
        self.sssp_secs += secs;
        if which == Snapshot::Second {
            self.sssp_t2_secs += secs;
        }
        dist
    }

    /// Records the exact `G_t1` eccentricity of a freshly computed (full,
    /// never truncated) `t1` row — the per-source ingredient of the `t2`
    /// depth bound. Skipped entirely under [`SsspPrune::Off`] so the A/B
    /// baseline carries zero pruning overhead.
    fn record_ecc1(&mut self, which: Snapshot, u: NodeId, dist: &[u32]) {
        if self.prune == SsspPrune::Off || which != Snapshot::First {
            return;
        }
        let ecc = dist
            .iter()
            .copied()
            .filter(|&d| d != cp_graph::INF)
            .max()
            .unwrap_or(0);
        self.ecc1.insert(u.0, ecc);
    }

    /// Makes the row of `u` paid and resident *as an exact row*, charging
    /// it on first use. A bound-truncated resident counts as absent here:
    /// it is recomputed in full, free of charge, exactly like an evicted
    /// row (truncation trades this occasional recompute for the far larger
    /// batched-sweep savings; the Δ scan itself never takes this path).
    fn ensure_row(&mut self, which: Snapshot, u: NodeId) -> Result<(), BudgetError> {
        if self.cache.is_paid(which, u) {
            self.cache_hits += 1;
            if !self.cache.touch(which, u) || self.cache.is_truncated(which, u) {
                let dist = self.compute_one(which, u, false);
                self.recomputed_rows += 1;
                self.cache.insert(which, u, dist);
            }
        } else {
            self.charge()?;
            self.cache_misses += 1;
            self.cache.mark_paid(which, u);
            if self.cache.get_exact_ref(which, u).is_some() {
                // Imported donor row: charged on first use like any other
                // row, but its bytes are already exact — no kernel runs.
                self.chained_rows += 1;
                self.cache.touch(which, u);
            } else {
                let dist = self.compute_one(which, u, true);
                self.cache.insert(which, u, dist);
            }
        }
        Ok(())
    }

    /// The distance row of `u` in the chosen snapshot, computing (and
    /// charging) it on first use. Paid rows are free forever — if their
    /// bytes were evicted they are recomputed without touching the ledger.
    /// `u16`-packed residents are widened into an oracle-owned buffer, so
    /// callers always see canonical `u32` distances.
    pub fn row(&mut self, which: Snapshot, u: NodeId) -> Result<&[u32], BudgetError> {
        self.ensure_row(which, u)?;
        let wide = match which {
            Snapshot::First => &mut self.wide1,
            Snapshot::Second => &mut self.wide2,
        };
        Ok(
            match self
                .cache
                .get_ref(which, u)
                .expect("row just made resident")
            {
                RowRef::U32(r) => r,
                RowRef::U16(p) => {
                    widen_u16_into(p, wide);
                    wide.as_slice()
                }
            },
        )
    }

    /// Both rows of `u` at once (for Δ computation). The returned pair is
    /// protected from eviction by the LRU's recency pin.
    pub fn rows(&mut self, u: NodeId) -> Result<(&[u32], &[u32]), BudgetError> {
        self.ensure_row(Snapshot::First, u)?;
        self.ensure_row(Snapshot::Second, u)?;
        let SnapshotOracle {
            cache,
            wide1,
            wide2,
            ..
        } = self;
        let r1 = match cache.get_ref(Snapshot::First, u).expect("pinned") {
            RowRef::U32(r) => r,
            RowRef::U16(p) => {
                widen_u16_into(p, wide1);
                wide1.as_slice()
            }
        };
        let r2 = match cache.get_ref(Snapshot::Second, u).expect("pinned") {
            RowRef::U32(r) => r,
            RowRef::U16(p) => {
                widen_u16_into(p, wide2);
                wide2.as_slice()
            }
        };
        Ok((r1, r2))
    }

    /// The *resident, distance-exact* row of `u` in the chosen snapshot
    /// at its storage width, if present. Never computes or charges; safe
    /// to call from parallel readers via `&self`. Under a bounded
    /// [`RowCacheBudget`] a paid row may be absent — use
    /// [`Self::read_rows`] for eviction-safe shared reads. Bound-truncated
    /// rows read as absent: their [`cp_graph::INF`] entries mean "beyond
    /// the prune depth", not "unreachable".
    pub fn cached_row(&self, which: Snapshot, u: NodeId) -> Option<RowRef<'_>> {
        self.cache.get_exact_ref(which, u)
    }

    /// Both resident exact rows of `u`, if both are present. Never
    /// computes or charges.
    pub fn cached_rows(&self, u: NodeId) -> Option<(RowRef<'_>, RowRef<'_>)> {
        Some((
            self.cache.get_exact_ref(Snapshot::First, u)?,
            self.cache.get_exact_ref(Snapshot::Second, u)?,
        ))
    }

    /// Eviction-safe shared read of both rows of `u`: resident rows are
    /// returned directly (widened into the caller's scratch when
    /// `u16`-packed), evicted ones are recomputed into the caller's
    /// [`RowScratch`]. Never charges and never mutates the oracle — the
    /// landmark probes call this via `&self`. Rows are uniquely determined
    /// by the graphs, so a recomputed row is bit-identical to the
    /// original; recomputation time here surfaces in the caller's phase
    /// timing, not in [`Self::sssp_secs`].
    pub fn read_rows<'s>(
        &'s self,
        u: NodeId,
        scratch: &'s mut RowScratch,
    ) -> (&'s [u32], &'s [u32]) {
        let RowScratch { d1, d2, ws, .. } = scratch;
        let r1 = match self.cache.get_exact_ref(Snapshot::First, u) {
            Some(RowRef::U32(r)) => r,
            Some(RowRef::U16(p)) => {
                widen_u16_into(p, d1);
                d1.as_slice()
            }
            None => {
                compute_row_fresh(self.view_of(Snapshot::First), self.kernel, u, d1, ws);
                d1.as_slice()
            }
        };
        let r2 = match self.cache.get_exact_ref(Snapshot::Second, u) {
            Some(RowRef::U32(r)) => r,
            Some(RowRef::U16(p)) => {
                widen_u16_into(p, d2);
                d2.as_slice()
            }
            None => {
                compute_row_fresh(self.view_of(Snapshot::Second), self.kernel, u, d2, ws);
                d2.as_slice()
            }
        };
        (r1, r2)
    }

    /// Eviction-safe shared read of both rows of `u` at their *storage*
    /// width — the Δ-scan entry point. Resident rows are returned
    /// directly from the arena; evicted ones are recomputed into the
    /// caller's [`RowScratch`] and packed to the snapshot's width, so the
    /// scan kernel sees the same representation whether or not a row was
    /// resident. A mixed-width pair (one snapshot packed, the other not)
    /// is normalized to `u32` on both sides. Never charges and never
    /// mutates the oracle.
    ///
    /// Unlike the exact readers, this path consumes bound-truncated
    /// residents **as-is**: a truncated entry reads [`cp_graph::INF`],
    /// which the Δ rule maps to `Δ = 0` — and truncation only suppresses
    /// entries whose Δ is provably below the scan floor, so the emitted
    /// pair stream is bit-identical to scanning full rows.
    pub fn read_rows_packed<'s>(
        &'s self,
        u: NodeId,
        scratch: &'s mut RowScratch,
    ) -> (RowRef<'s>, RowRef<'s>) {
        let RowScratch { d1, d2, p1, p2, ws } = scratch;
        let have1 = self.cache.is_resident(Snapshot::First, u);
        let have2 = self.cache.is_resident(Snapshot::Second, u);
        let (k1, k2) = (self.cache.pack1, self.cache.pack2);
        let mixed = k1 != k2;
        if !have1 {
            compute_row_fresh(self.view_of(Snapshot::First), self.kernel, u, d1, ws);
            if k1 && !mixed {
                pack_u16_into(d1, p1);
            }
        }
        if !have2 {
            compute_row_fresh(self.view_of(Snapshot::Second), self.kernel, u, d2, ws);
            if k2 && !mixed {
                pack_u16_into(d2, p2);
            }
        }
        if mixed {
            if have1 && k1 {
                if let Some(RowRef::U16(p)) = self.cache.get_ref(Snapshot::First, u) {
                    widen_u16_into(p, d1);
                }
            }
            if have2 && k2 {
                if let Some(RowRef::U16(p)) = self.cache.get_ref(Snapshot::Second, u) {
                    widen_u16_into(p, d2);
                }
            }
        }
        let r1 = if have1 && !(mixed && k1) {
            self.cache.get_ref(Snapshot::First, u).expect("resident")
        } else if k1 && !mixed {
            RowRef::U16(p1)
        } else {
            RowRef::U32(d1)
        };
        let r2 = if have2 && !(mixed && k2) {
            self.cache.get_ref(Snapshot::Second, u).expect("resident")
        } else if k2 && !mixed {
            RowRef::U16(p2)
        } else {
            RowRef::U32(d2)
        };
        (r1, r2)
    }

    /// Batched row prefetch. Admission is **sequential and deterministic**:
    /// requests are walked in order and each unpaid row is charged to the
    /// current [`Phase`] exactly as a one-at-a-time [`Self::row`] walk
    /// would, skipping requests once the cap is reached (paid requests
    /// stay free throughout). The admitted rows are then computed in
    /// parallel — row contents do not depend on thread count, so the cache,
    /// the ledger, and every later read are identical at any [`Self::threads`]
    /// setting.
    pub fn prefetch_rows(&mut self, requests: &[(Snapshot, NodeId)]) -> PrefetchReport {
        let mut report = PrefetchReport::default();
        let mut jobs: Vec<(Snapshot, u32)> = Vec::new();
        for &(which, u) in requests {
            if self.cache.is_paid(which, u) {
                report.cached += 1;
                self.cache_hits += 1;
                continue;
            }
            if self.charge().is_err() {
                report.skipped += 1;
                continue;
            }
            self.cache_misses += 1;
            self.cache.mark_paid(which, u);
            if self.cache.get_exact_ref(which, u).is_some() {
                self.chained_rows += 1;
                self.cache.touch(which, u);
            } else {
                jobs.push((which, u.0));
            }
            report.computed += 1;
        }
        self.compute_jobs(&jobs);
        report
    }

    /// Node-level batched prefetch with the pipeline's **pair-atomic**
    /// admission: a node is admitted only if the remaining budget covers
    /// *both* of its missing rows, and skipped (scanning continues) when it
    /// does not — the exact `remaining() < cost_of(u) → continue` walk of
    /// the sequential pipeline and landmark probes, so ledger and candidate
    /// set are bit-identical to the one-at-a-time path.
    pub fn prefetch_node_rows(&mut self, nodes: &[NodeId]) -> NodePrefetchReport {
        self.prefetch_node_rows_filtered(nodes, &HashSet::new())
    }

    /// [`Self::prefetch_node_rows`] with a **charge-without-compute** set:
    /// nodes in `skip_compute` go through the identical pair-atomic
    /// admission — marked paid, charged to the ledger, reported, counted
    /// in [`Self::fully_cached_nodes`] — but no compute job is pushed for
    /// their rows ([`Self::rows_prefiltered`] counts them instead). The
    /// pipeline passes the candidates whose every pair the landmark
    /// pre-filter certified below the scan floor: their rows could only
    /// ever prove what is already proven, so the paper's cost model
    /// charges them while the machine skips them. Ledger, admission
    /// order, and the candidate set are bit-identical to the unfiltered
    /// call; a later exact read of a skipped row recomputes it free, like
    /// any evicted row.
    pub fn prefetch_node_rows_filtered(
        &mut self,
        nodes: &[NodeId],
        skip_compute: &HashSet<NodeId>,
    ) -> NodePrefetchReport {
        let mut report = NodePrefetchReport::default();
        let mut jobs: Vec<(Snapshot, u32)> = Vec::new();
        let mut planned_spend: u64 = 0;
        for &u in nodes {
            let have1 = self.cache.is_paid(Snapshot::First, u);
            let have2 = self.cache.is_paid(Snapshot::Second, u);
            let cost = u64::from(!have1) + u64::from(!have2);
            let remaining = match self.limit {
                None => u64::MAX,
                Some(l) => l.saturating_sub(self.ledger.total() + planned_spend),
            };
            if remaining < cost {
                report.rows.skipped += (!have1) as usize + (!have2) as usize;
                continue;
            }
            let prefiltered = skip_compute.contains(&u);
            if !have1 {
                self.cache.mark_paid(Snapshot::First, u);
                if prefiltered {
                    self.rows_prefiltered += 1;
                } else if self.cache.get_exact_ref(Snapshot::First, u).is_some() {
                    self.chained_rows += 1;
                    self.cache.touch(Snapshot::First, u);
                } else {
                    jobs.push((Snapshot::First, u.0));
                }
            } else {
                report.rows.cached += 1;
                self.cache_hits += 1;
            }
            if !have2 {
                self.cache.mark_paid(Snapshot::Second, u);
                if prefiltered {
                    self.rows_prefiltered += 1;
                } else if self.cache.get_exact_ref(Snapshot::Second, u).is_some() {
                    self.chained_rows += 1;
                    self.cache.touch(Snapshot::Second, u);
                } else {
                    jobs.push((Snapshot::Second, u.0));
                }
            } else {
                report.rows.cached += 1;
                self.cache_hits += 1;
            }
            planned_spend += cost;
            report.rows.computed += cost as usize;
            self.cache_misses += cost;
            report.usable.push(u);
        }
        match self.phase {
            Phase::Generation => self.ledger.generation += planned_spend,
            Phase::TopK => self.ledger.topk += planned_spend,
        }
        self.compute_jobs(&jobs);
        report
    }

    fn graph_of(&self, which: Snapshot) -> &'a Graph {
        match which {
            Snapshot::First => self.g1,
            Snapshot::Second => self.g2,
        }
    }

    /// Computes an admitted (deduplicated, already charged) job batch.
    /// When the snapshot pair is growth-only and repair is enabled, `t2`
    /// jobs whose `t1` donor row is either already resident or planned in
    /// this very batch peel off into a repair pass that runs **after** the
    /// full computations have merged — so a candidate's freshly computed
    /// `t1` row immediately donates to its own `t2` row. Repaired rows
    /// bypass the multi-source waves; each still carries its one-SSSP
    /// charge from admission.
    fn compute_jobs(&mut self, jobs: &[(Snapshot, u32)]) {
        if jobs.is_empty() {
            return;
        }
        if !self.repair_ready() {
            self.compute_full_jobs(jobs);
            return;
        }
        let planned1: HashSet<u32> = jobs
            .iter()
            .filter(|j| j.0 == Snapshot::First)
            .map(|j| j.1)
            .collect();
        type Jobs = Vec<(Snapshot, u32)>;
        let (repairable, full): (Jobs, Jobs) = jobs.iter().copied().partition(|&(which, u)| {
            which == Snapshot::Second
                && (planned1.contains(&u)
                    || self
                        .cache
                        .get_exact_ref(Snapshot::First, NodeId(u))
                        .is_some())
        });
        self.compute_full_jobs(&full);
        self.compute_repair_jobs(&repairable);
    }

    /// Full-sweep computation of a job batch — in parallel above
    /// [`PARALLEL_ROW_CUTOFF`], inline otherwise. Jobs are grouped into
    /// kernel work items first (multi-source waves under
    /// [`BfsKernel::Auto`]); the scoped-worker fan-out then distributes
    /// *items*, so wave batching composes with thread parallelism. Each
    /// worker owns its scratch; the shared state is one atomic item cursor
    /// and disjoint per-item result slots. Row contents are kernel- and
    /// thread-invariant, so cache, ledger, and every later read are
    /// identical under any configuration.
    fn compute_full_jobs(&mut self, jobs: &[(Snapshot, u32)]) {
        if jobs.is_empty() {
            return;
        }
        let started = std::time::Instant::now();
        let items = self.plan_items(jobs);
        for (which, idxs) in &items {
            if self.graph_of(*which).is_weighted() {
                self.kstats.dijkstra_rows += idxs.len() as u64;
            } else if idxs.len() >= 2 {
                self.kstats.msbfs_waves += 1;
                self.kstats.msbfs_rows += idxs.len() as u64;
            } else {
                self.kstats.bfs_rows += idxs.len() as u64;
            }
        }
        if let Some(floor) = self.prune_active() {
            // Two deterministic passes: every `t1` item first — their
            // merges record the exact eccentricities — then the `t2`
            // items with depth limits derived from the now-complete
            // `ecc1` map. Items never race a limit they feed, so the
            // truncation pattern (and with it residency and every work
            // counter) is identical at any thread count.
            type Items = Vec<(Snapshot, Vec<usize>)>;
            let (second, first): (Items, Items) = items
                .into_iter()
                .partition(|(which, _)| *which == Snapshot::Second);
            self.run_item_pass(jobs, &first, &[]);
            let limits: Vec<u32> = second
                .iter()
                .map(|(_, idxs)| self.wave_limit(jobs, idxs, floor))
                .collect();
            self.run_item_pass(jobs, &second, &limits);
        } else {
            self.run_item_pass(jobs, &items, &[]);
        }
        self.sssp_secs += started.elapsed().as_secs_f64();
    }

    /// The depth limit of one `t2` work item: the loosest member bound
    /// `ecc1(u) − floor` across its sources (a wave stops only once every
    /// member's bound is passed). A source without a recorded `t1`
    /// eccentricity contributes no bound, disabling truncation for the
    /// whole item — correctness never depends on the map being complete.
    fn wave_limit(&self, jobs: &[(Snapshot, u32)], idxs: &[usize], floor: u32) -> u32 {
        let mut limit = 0u32;
        for &i in idxs {
            match self.ecc1.get(&jobs[i].1) {
                Some(&ecc) => limit = limit.max(ecc.saturating_sub(floor)),
                None => return cp_graph::INF,
            }
        }
        limit
    }

    /// Runs one batch of planned items — in parallel above
    /// [`PARALLEL_ROW_CUTOFF`], inline otherwise — and merges the
    /// results. `limits[i]` is item `i`'s depth limit (absent entries
    /// mean unlimited). Each worker owns its scratch; the shared state is
    /// one atomic item cursor and disjoint per-item result slots, and
    /// merging happens after the join in item order, so rows, truncation
    /// flags, and work counters are thread-count-invariant.
    fn run_item_pass(
        &mut self,
        jobs: &[(Snapshot, u32)],
        items: &[(Snapshot, Vec<usize>)],
        limits: &[u32],
    ) {
        if items.is_empty() {
            return;
        }
        let pass_jobs: usize = items.iter().map(|(_, idxs)| idxs.len()).sum();
        let threads = self.threads.min(items.len()).max(1);
        if threads == 1 || pass_jobs < PARALLEL_ROW_CUTOFF {
            for (i, (which, idxs)) in items.iter().enumerate() {
                let limit = limits.get(i).copied().unwrap_or(cp_graph::INF);
                let t_item = std::time::Instant::now();
                let SnapshotOracle {
                    g1,
                    g2,
                    store,
                    overlay2,
                    comp1,
                    comp2,
                    ws,
                    msws,
                    kernel,
                    ..
                } = &mut *self;
                let view = view_parts(*store, *which, g1, g2, &*overlay2, &*comp1, &*comp2);
                let res = compute_item(view, *kernel, jobs, idxs, limit, ws, msws);
                if *which == Snapshot::Second {
                    self.sssp_t2_secs += t_item.elapsed().as_secs_f64();
                }
                self.merge_item(jobs, res);
            }
            return;
        }
        // Pre-sized one-writer-per-slot results (no per-item locking);
        // the slot vector itself is reused across batches. The fan-out
        // runs on the persistent pool — workers are woken, not spawned.
        let mut slots = std::mem::take(&mut self.item_slots);
        slots.clear();
        slots.resize_with(items.len(), || (ItemResult::default(), 0.0));
        let (v1, v2) = (
            self.view_of(Snapshot::First),
            self.view_of(Snapshot::Second),
        );
        let kernel = self.kernel;
        let exec = self.exec.clone();
        let exec: &cp_exec::Executor = match exec.as_deref() {
            Some(e) => e,
            None => cp_exec::global(),
        };
        exec.run(&mut slots, threads, |i, slot, ctx| {
            let scratch = ctx.scratch.get_or(PrefetchScratch::default);
            let (which, idxs) = &items[i];
            let view = match which {
                Snapshot::First => v1,
                Snapshot::Second => v2,
            };
            let limit = limits.get(i).copied().unwrap_or(cp_graph::INF);
            let t_item = std::time::Instant::now();
            let res = compute_item(
                view,
                kernel,
                jobs,
                idxs,
                limit,
                &mut scratch.ws,
                &mut scratch.msws,
            );
            *slot = (res, t_item.elapsed().as_secs_f64());
        });
        // Merge strictly in item (admission) order, after the batch —
        // identical at any thread count.
        for (i, (res, secs)) in slots.drain(..).enumerate() {
            if items[i].0 == Snapshot::Second {
                self.sssp_t2_secs += secs;
            }
            self.merge_item(jobs, res);
        }
        self.item_slots = slots;
    }

    /// The repair pass of a batch: every job is a `t2` row whose donor was
    /// expected. Donor lookups are frozen against the post-full-pass cache
    /// state *before* any computation (identical inline or fanned out, at
    /// any thread count); a job whose donor was meanwhile evicted falls
    /// back to a full sweep — same bits either way.
    fn compute_repair_jobs(&mut self, jobs: &[(Snapshot, u32)]) {
        if jobs.is_empty() {
            return;
        }
        let started = std::time::Instant::now();
        let weighted = self.g2.is_weighted();
        let mut slots = std::mem::take(&mut self.repair_slots);
        slots.clear();
        let exec = self.exec.clone();
        let SnapshotOracle {
            g1,
            g2,
            store,
            overlay2,
            comp1,
            comp2,
            cache,
            delta,
            ws,
            rws,
            kernel,
            threads,
            ..
        } = &mut *self;
        let delta = delta.as_ref().expect("repair pass needs the delta");
        let donors: Vec<Option<RowRef<'_>>> = jobs
            .iter()
            .map(|&(_, u)| cache.get_ref(Snapshot::First, NodeId(u)))
            .collect();
        let view2 = view_parts(
            *store,
            Snapshot::Second,
            g1,
            g2,
            &*overlay2,
            &*comp1,
            &*comp2,
        );
        let kernel = *kernel;
        let threads = (*threads).min(jobs.len()).max(1);
        if threads == 1 || jobs.len() < PARALLEL_ROW_CUTOFF {
            let mut wide = Vec::new();
            slots.extend(jobs.iter().zip(&donors).map(|(&(_, u), &donor)| {
                repair_item(view2, kernel, NodeId(u), donor, delta, ws, rws, &mut wide)
            }));
        } else {
            // Pre-sized one-writer-per-slot results on the persistent
            // pool; the slot vector is reused across batches.
            slots.resize_with(jobs.len(), Default::default);
            let exec: &cp_exec::Executor = match exec.as_deref() {
                Some(e) => e,
                None => cp_exec::global(),
            };
            let donors = &donors;
            exec.run(&mut slots, threads, |i, slot, ctx| {
                let RepairScratch { ws, rws, wide } = ctx.scratch.get_or(RepairScratch::default);
                *slot = repair_item(
                    view2,
                    kernel,
                    NodeId(jobs[i].1),
                    donors[i],
                    delta,
                    ws,
                    rws,
                    wide,
                );
            });
        }
        drop(donors);
        for (i, (dist, settled, secs)) in slots.drain(..).enumerate() {
            let u = NodeId(jobs[i].1);
            self.sssp_t2_secs += secs;
            match settled {
                Some(s) => {
                    self.repaired_rows += 1;
                    self.repair_frontier += s as u64;
                    self.kstats.repair_rows += 1;
                }
                None => {
                    if weighted {
                        self.kstats.dijkstra_rows += 1;
                    } else {
                        self.kstats.bfs_rows += 1;
                    }
                }
            }
            self.cache.insert(Snapshot::Second, u, dist);
        }
        self.repair_slots = slots;
        self.sssp_secs += started.elapsed().as_secs_f64();
    }

    /// Plans the kernel work items for a job batch: under [`BfsKernel::Auto`]
    /// the unweighted jobs of each snapshot are chunked, in admission order,
    /// into multi-source waves of at most [`WAVE_WIDTH`] sources; weighted
    /// jobs (and every job under [`BfsKernel::Scalar`]) become single-source
    /// items. Each item carries the indices of the jobs it resolves.
    fn plan_items(&self, jobs: &[(Snapshot, u32)]) -> Vec<(Snapshot, Vec<usize>)> {
        let mut items: Vec<(Snapshot, Vec<usize>)> = Vec::new();
        if self.kernel == BfsKernel::Auto {
            let mut snap1: Vec<usize> = Vec::new();
            let mut snap2: Vec<usize> = Vec::new();
            for (i, &(which, _)) in jobs.iter().enumerate() {
                if self.graph_of(which).is_weighted() {
                    items.push((which, vec![i]));
                } else {
                    match which {
                        Snapshot::First => snap1.push(i),
                        Snapshot::Second => snap2.push(i),
                    }
                }
            }
            for (which, idxs) in [(Snapshot::First, snap1), (Snapshot::Second, snap2)] {
                for chunk in idxs.chunks(WAVE_WIDTH) {
                    items.push((which, chunk.to_vec()));
                }
            }
        } else {
            items.extend(
                jobs.iter()
                    .enumerate()
                    .map(|(i, &(which, _))| (which, vec![i])),
            );
        }
        items
    }

    /// Merges one item's results: rows into the resident cache (flagged
    /// when bound-truncated), eccentricities into the `ecc1` map, work
    /// into the traversal counters.
    fn merge_item(&mut self, jobs: &[(Snapshot, u32)], res: ItemResult) {
        self.work.merge(res.work);
        for (idx, dist, truncated) in res.rows {
            let (which, u) = jobs[idx];
            self.record_ecc1(which, NodeId(u), &dist);
            if truncated {
                self.rows_truncated += 1;
                self.cache.insert_truncated(which, NodeId(u), dist);
            } else {
                self.cache.insert(which, NodeId(u), dist);
            }
        }
    }
}

/// One computed work item: produced rows (tagged with their job index and
/// whether the expansion was bound-truncated) plus the traversal work the
/// item cost.
#[derive(Default)]
struct ItemResult {
    rows: Vec<(usize, Vec<u32>, bool)>,
    work: TraversalWork,
}

/// Computes one row from scratch with the configured kernel (no repair, no
/// stats — the shared-read fallback of [`SnapshotOracle::read_rows`]).
fn compute_row_fresh(
    view: GraphViewRef<'_>,
    kernel: BfsKernel,
    u: NodeId,
    dist: &mut Vec<u32>,
    ws: &mut BfsWorkspace,
) {
    with_view!(view, g => compute_row_fresh_on(g, kernel, u, dist, ws))
}

/// [`compute_row_fresh`], monomorphized per store.
fn compute_row_fresh_on<V: GraphView>(
    graph: &V,
    kernel: BfsKernel,
    u: NodeId,
    dist: &mut Vec<u32>,
    ws: &mut BfsWorkspace,
) {
    let mut work = TraversalWork::new();
    if graph.is_weighted() {
        dijkstra_limited_into(graph, u, dist, cp_graph::INF, &mut work);
    } else {
        match kernel {
            BfsKernel::Scalar => {
                bfs_scalar_limited_into(graph, u, dist, ws, cp_graph::INF, &mut work)
            }
            BfsKernel::Auto => bfs_limited_into(graph, u, dist, ws, cp_graph::INF, &mut work),
        };
    }
}

/// Runs one kernel work item — a multi-source wave (≥ 2 unweighted
/// sources) or a single-source BFS/Dijkstra — under the given depth limit
/// ([`cp_graph::INF`] for unlimited), returning the produced rows tagged
/// with their job indices and truncation flags, plus the work counters.
fn compute_item(
    view: GraphViewRef<'_>,
    kernel: BfsKernel,
    jobs: &[(Snapshot, u32)],
    idxs: &[usize],
    limit: u32,
    ws: &mut BfsWorkspace,
    msws: &mut MsBfsWorkspace,
) -> ItemResult {
    with_view!(view, g => compute_item_on(g, kernel, jobs, idxs, limit, ws, msws))
}

/// [`compute_item`], monomorphized per store.
fn compute_item_on<V: GraphView>(
    graph: &V,
    kernel: BfsKernel,
    jobs: &[(Snapshot, u32)],
    idxs: &[usize],
    limit: u32,
    ws: &mut BfsWorkspace,
    msws: &mut MsBfsWorkspace,
) -> ItemResult {
    let mut work = TraversalWork::new();
    if idxs.len() >= 2 && !graph.is_weighted() {
        let sources: Vec<NodeId> = idxs.iter().map(|&i| NodeId(jobs[i].1)).collect();
        let mut rows: Vec<Vec<u32>> = (0..idxs.len()).map(|_| Vec::new()).collect();
        let mask = msbfs_limited_into(graph, &sources, &mut rows, msws, limit, &mut work);
        let rows = idxs
            .iter()
            .copied()
            .zip(rows)
            .enumerate()
            .map(|(b, (i, row))| (i, row, mask & (1u64 << b) != 0))
            .collect();
        return ItemResult { rows, work };
    }
    let rows = idxs
        .iter()
        .map(|&i| {
            let u = NodeId(jobs[i].1);
            let mut dist = Vec::new();
            let truncated = if graph.is_weighted() {
                dijkstra_limited_into(graph, u, &mut dist, limit, &mut work)
            } else {
                match kernel {
                    BfsKernel::Scalar => {
                        bfs_scalar_limited_into(graph, u, &mut dist, ws, limit, &mut work)
                    }
                    BfsKernel::Auto => bfs_limited_into(graph, u, &mut dist, ws, limit, &mut work),
                }
            };
            (i, dist, truncated)
        })
        .collect();
    ItemResult { rows, work }
}

/// Runs one repair-pass job: a snapshot-delta repair when the donor row is
/// available, a full sweep otherwise. A `u16`-packed donor is widened into
/// the worker's `wide` buffer first (the repair kernels take canonical
/// `u32` rows). Returns the row, `Some(settled)` iff repaired, and the
/// item's seconds.
#[allow(clippy::too_many_arguments)]
fn repair_item(
    view2: GraphViewRef<'_>,
    kernel: BfsKernel,
    u: NodeId,
    donor: Option<RowRef<'_>>,
    delta: &SnapshotDelta,
    ws: &mut BfsWorkspace,
    rws: &mut RepairWorkspace,
    wide: &mut Vec<u32>,
) -> (Vec<u32>, Option<usize>, f64) {
    with_view!(view2, g => repair_item_on(g, kernel, u, donor, delta, ws, rws, wide))
}

/// [`repair_item`], monomorphized per store.
#[allow(clippy::too_many_arguments)]
fn repair_item_on<V: GraphView>(
    g2: &V,
    kernel: BfsKernel,
    u: NodeId,
    donor: Option<RowRef<'_>>,
    delta: &SnapshotDelta,
    ws: &mut BfsWorkspace,
    rws: &mut RepairWorkspace,
    wide: &mut Vec<u32>,
) -> (Vec<u32>, Option<usize>, f64) {
    let started = std::time::Instant::now();
    let mut dist = Vec::new();
    let settled = match donor {
        Some(r) => {
            let t1: &[u32] = match r {
                RowRef::U32(s) => s,
                RowRef::U16(p) => {
                    widen_u16_into(p, wide);
                    wide.as_slice()
                }
            };
            Some(if g2.is_weighted() {
                dijkstra_repair_into(g2, t1, &delta.inserted, &mut dist, rws)
            } else {
                bfs_repair_into(g2, t1, &delta.inserted, &mut dist, rws)
            })
        }
        None => {
            compute_row_fresh_on(g2, kernel, u, &mut dist, ws);
            None
        }
    };
    (dist, settled, started.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::{graph_from_edges, GraphBuilder};
    use cp_graph::INF;

    fn graphs() -> (Graph, Graph) {
        let g1 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let g2 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        (g1, g2)
    }

    #[test]
    fn counts_and_caches() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 4);
        assert_eq!(o.cost_of(NodeId(0)), 2);
        let (d1, d2) = o.rows(NodeId(0)).unwrap();
        assert_eq!(d1[4], 4);
        assert_eq!(d2[4], 1);
        assert_eq!(o.ledger().total(), 2);
        assert_eq!(o.cost_of(NodeId(0)), 0);
        assert!(o.has_both(NodeId(0)));
        // Cached access is free.
        o.rows(NodeId(0)).unwrap();
        assert_eq!(o.ledger().total(), 2);
        assert_eq!(o.remaining(), 2);
    }

    #[test]
    fn knob_parsers_accept_canonical_spellings() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        // Out-of-range values clamp (with a one-time warning) instead of
        // silently falling back to hardware parallelism.
        assert_eq!(parse_threads("0"), Some(1));
        assert_eq!(parse_threads("9999"), Some(cp_exec::MAX_THREADS));
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads("-2"), None);

        assert_eq!(BfsKernel::parse("scalar"), Some(BfsKernel::Scalar));
        assert_eq!(BfsKernel::parse(" SCALAR "), Some(BfsKernel::Scalar));
        assert_eq!(BfsKernel::parse("auto"), Some(BfsKernel::Auto));
        assert_eq!(BfsKernel::parse(""), Some(BfsKernel::Auto));
        assert_eq!(BfsKernel::parse("vectorized"), None);

        assert_eq!(SsspPrune::parse("off"), Some(SsspPrune::Off));
        assert_eq!(SsspPrune::parse(" Off "), Some(SsspPrune::Off));
        assert_eq!(SsspPrune::parse("auto"), Some(SsspPrune::Auto));
        assert_eq!(SsspPrune::parse(""), Some(SsspPrune::Auto));
        assert_eq!(SsspPrune::parse("on"), None);

        assert_eq!(GraphStore::parse("full"), Some(GraphStore::Full));
        assert_eq!(GraphStore::parse(""), Some(GraphStore::Full));
        assert_eq!(GraphStore::parse(" Overlay "), Some(GraphStore::Overlay));
        assert_eq!(
            GraphStore::parse("COMPRESSED"),
            Some(GraphStore::Compressed)
        );
        assert_eq!(GraphStore::parse("csr"), None);
        assert_eq!(GraphStore::parse("gzip"), None);
    }

    #[test]
    fn row_cache_parser_handles_suffixes_and_overflow() {
        use RowCacheBudget::{Bytes, Unbounded};
        assert_eq!(RowCacheBudget::parse(""), Some(Unbounded));
        assert_eq!(RowCacheBudget::parse("unbounded"), Some(Unbounded));
        assert_eq!(RowCacheBudget::parse("0"), Some(Bytes(0)));
        assert_eq!(RowCacheBudget::parse("4096"), Some(Bytes(4096)));
        assert_eq!(RowCacheBudget::parse("64k"), Some(Bytes(64 << 10)));
        // Uppercase suffixes and a space before the unit both parse.
        assert_eq!(RowCacheBudget::parse("64 KB"), Some(Bytes(64 << 10)));
        assert_eq!(RowCacheBudget::parse("2 Mb"), Some(Bytes(2 << 20)));
        assert_eq!(RowCacheBudget::parse("1G"), Some(Bytes(1 << 30)));
        // Empty digits, junk suffixes, and multiplier overflow are
        // rejected (not silently clamped).
        assert_eq!(RowCacheBudget::parse("k"), None);
        assert_eq!(RowCacheBudget::parse("64x"), None);
        assert_eq!(RowCacheBudget::parse("12.5m"), None);
        assert_eq!(RowCacheBudget::parse("18446744073709551615k"), None);
    }

    /// Growth-reversed snapshots (an edge removed) disable repair, so
    /// `t2` rows take full sweeps — the path bound-truncation attacks.
    fn shrink_graphs() -> (Graph, Graph) {
        let g1 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        let g2 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        (g1, g2)
    }

    #[test]
    fn topk_t2_sweeps_truncate_at_the_bound() {
        let (g1, g2) = shrink_graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2)
            .with_prune(SsspPrune::Auto)
            .with_row_cache(RowCacheBudget::Unbounded);
        o.set_phase(Phase::TopK);
        // ecc1(0) = 2 on the 5-cycle; floor 2 bounds the t2 sweep at
        // depth 0, and the 4-path's distances from 0 exceed it.
        o.set_prune_floor(2);
        o.prefetch_node_rows(&[NodeId(0)]);
        assert_eq!(o.rows_truncated(), 1);
        // The truncated t2 row is not exact: exact readers refuse it...
        assert!(o.cached_row(Snapshot::First, NodeId(0)).is_some());
        assert!(o.cached_row(Snapshot::Second, NodeId(0)).is_none());
        // ...and a later exact read recomputes it in full, free.
        let spent = o.ledger().total();
        let (d1, d2) = o.rows(NodeId(0)).unwrap();
        assert_eq!(d1, &[0, 1, 2, 2, 1]);
        assert_eq!(d2, &[0, 1, 2, 3, 4]);
        assert_eq!(o.ledger().total(), spent, "recompute must be free");
        assert!(o.cached_row(Snapshot::Second, NodeId(0)).is_some());
        assert!(o.recomputed_rows() >= 1);
        assert!(o.traversal_work().settled > 0);
    }

    #[test]
    fn pruning_off_never_truncates() {
        let (g1, g2) = shrink_graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2)
            .with_prune(SsspPrune::Off)
            .with_row_cache(RowCacheBudget::Unbounded);
        o.set_phase(Phase::TopK);
        o.set_prune_floor(2);
        o.prefetch_node_rows(&[NodeId(0)]);
        assert_eq!(o.rows_truncated(), 0);
        assert!(o.cached_row(Snapshot::Second, NodeId(0)).is_some());
    }

    #[test]
    fn truncation_stays_off_outside_the_topk_phase() {
        let (g1, g2) = shrink_graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2).with_prune(SsspPrune::Auto);
        // Generation phase: floor armed but phase gating keeps sweeps full.
        o.set_prune_floor(2);
        o.prefetch_node_rows(&[NodeId(0)]);
        assert_eq!(o.rows_truncated(), 0);
        assert!(o.cached_row(Snapshot::Second, NodeId(0)).is_some());
    }

    #[test]
    fn enforces_cap() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 3);
        o.rows(NodeId(0)).unwrap(); // 2 spent
        o.row(Snapshot::First, NodeId(1)).unwrap(); // 3 spent
        let err = o.row(Snapshot::Second, NodeId(1)).unwrap_err();
        assert_eq!(err, BudgetError { limit: 3 });
        assert_eq!(o.remaining(), 0);
        // Cached rows remain readable after exhaustion.
        assert!(o.rows(NodeId(0)).is_ok());
    }

    #[test]
    fn phase_accounting() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 10);
        o.row(Snapshot::First, NodeId(2)).unwrap();
        o.set_phase(Phase::TopK);
        o.row(Snapshot::Second, NodeId(2)).unwrap();
        let ledger = o.ledger();
        assert_eq!(ledger.generation, 1);
        assert_eq!(ledger.topk, 1);
        assert_eq!(ledger.total(), 2);
    }

    #[test]
    fn fully_cached_nodes_sorted() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        o.rows(NodeId(3)).unwrap();
        o.rows(NodeId(1)).unwrap();
        o.row(Snapshot::First, NodeId(4)).unwrap(); // only one side
        assert_eq!(o.fully_cached_nodes(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(o.remaining(), u64::MAX);
        assert_eq!(o.limit(), None);
    }

    #[test]
    fn rows_reflect_each_snapshot() {
        let g1 = graph_from_edges(3, &[(0, 1)]);
        let g2 = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let (d1, d2) = o.rows(NodeId(0)).unwrap();
        assert_eq!(d1[2], INF);
        assert_eq!(d2[2], 2);
    }

    #[test]
    #[should_panic(expected = "share a node universe")]
    fn universe_mismatch_panics() {
        let g1 = graph_from_edges(3, &[(0, 1)]);
        let g2 = graph_from_edges(4, &[(0, 1)]);
        SnapshotOracle::unbounded(&g1, &g2);
    }

    #[test]
    fn t2_rows_are_repaired_from_t1_donors() {
        let (g1, g2) = graphs();
        // Pin the cache on: this test asserts repairs happen even when the
        // environment (e.g. the CI matrix leg) sets CP_ROW_CACHE=0.
        let mut o = SnapshotOracle::unbounded(&g1, &g2).with_row_cache(RowCacheBudget::Unbounded);
        for u in g1.nodes() {
            let (d1, d2) = o.rows(u).unwrap();
            assert_eq!(d1, cp_graph::bfs::bfs(&g1, u).as_slice(), "t1 of {u:?}");
            assert_eq!(d2, cp_graph::bfs::bfs(&g2, u).as_slice(), "t2 of {u:?}");
        }
        // Every t2 row had its donor resident: all were repaired.
        assert_eq!(o.repaired_rows(), 5);
        assert_eq!(o.kernel_stats().repair_rows, 5);
        assert_eq!(o.kernel_stats().bfs_rows, 5);
        assert!(o.repair_frontier_nodes() > 0);
    }

    #[test]
    fn disabled_cache_means_no_repairs_and_same_rows() {
        let (g1, g2) = graphs();
        let mut on = SnapshotOracle::unbounded(&g1, &g2).with_row_cache(RowCacheBudget::Unbounded);
        let mut off = SnapshotOracle::unbounded(&g1, &g2).with_row_cache(RowCacheBudget::Bytes(0));
        for u in g1.nodes() {
            let (a1, a2) = on.rows(u).map(|(a, b)| (a.to_vec(), b.to_vec())).unwrap();
            let (b1, b2) = off.rows(u).map(|(a, b)| (a.to_vec(), b.to_vec())).unwrap();
            assert_eq!(a1, b1);
            assert_eq!(a2, b2);
        }
        assert!(on.repaired_rows() > 0);
        assert_eq!(off.repaired_rows(), 0);
        assert_eq!(on.ledger(), off.ledger());
    }

    #[test]
    fn tiny_cache_evicts_but_results_and_ledger_survive() {
        let (g1, g2) = graphs();
        // Room for ~2 rows of 5 nodes (20 bytes each): constant eviction.
        let mut o =
            SnapshotOracle::with_budget(&g1, &g2, 10).with_row_cache(RowCacheBudget::Bytes(40));
        let mut reference = SnapshotOracle::with_budget(&g1, &g2, 10);
        for u in g1.nodes() {
            let (d1, d2) = o.rows(u).map(|(a, b)| (a.to_vec(), b.to_vec())).unwrap();
            let (r1, r2) = reference
                .rows(u)
                .map(|(a, b)| (a.to_vec(), b.to_vec()))
                .unwrap();
            assert_eq!(d1, r1, "t1 of {u:?}");
            assert_eq!(d2, r2, "t2 of {u:?}");
        }
        assert!(o.cache_evictions() > 0);
        assert!(o.cache_bytes() <= 40 + 2 * 20, "pinned rows may overhang");
        // All ten rows paid once; re-reads stay free even though evicted.
        assert_eq!(o.ledger(), reference.ledger());
        o.rows(NodeId(0)).unwrap();
        assert_eq!(o.ledger().total(), 10);
        assert!(o.recomputed_rows() > 0);
        assert_eq!(o.fully_cached_nodes(), reference.fully_cached_nodes());
    }

    #[test]
    fn invalidation_keeps_paid_status() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 4);
        let before = o
            .rows(NodeId(2))
            .map(|(a, b)| (a.to_vec(), b.to_vec()))
            .unwrap();
        o.invalidate_row(Snapshot::First, NodeId(2));
        assert!(o.cached_row(Snapshot::First, NodeId(2)).is_none());
        assert_eq!(o.cost_of(NodeId(2)), 0, "paid status survives invalidation");
        let after = o
            .rows(NodeId(2))
            .map(|(a, b)| (a.to_vec(), b.to_vec()))
            .unwrap();
        assert_eq!(before, after);
        assert_eq!(o.ledger().total(), 2, "recomputation is free");
        o.invalidate_resident();
        assert_eq!(o.cache_bytes(), 0);
        assert!(o.has_both(NodeId(2)));
    }

    #[test]
    fn weighted_snapshots_use_dijkstra_repair() {
        let mut b1 = GraphBuilder::new(4);
        b1.add_weighted_edge(NodeId(0), NodeId(1), 3);
        b1.add_weighted_edge(NodeId(1), NodeId(2), 4);
        let g1 = b1.build();
        let mut b2 = GraphBuilder::new(4);
        b2.add_weighted_edge(NodeId(0), NodeId(1), 3);
        b2.add_weighted_edge(NodeId(1), NodeId(2), 4);
        b2.add_weighted_edge(NodeId(0), NodeId(2), 1);
        b2.add_weighted_edge(NodeId(2), NodeId(3), 2);
        let g2 = b2.build();
        let mut o = SnapshotOracle::unbounded(&g1, &g2).with_row_cache(RowCacheBudget::Unbounded);
        for u in g1.nodes() {
            let (d1, d2) = o.rows(u).unwrap();
            assert_eq!(d1, cp_graph::dijkstra::dijkstra(&g1, u).as_slice());
            assert_eq!(d2, cp_graph::dijkstra::dijkstra(&g2, u).as_slice());
        }
        assert_eq!(o.repaired_rows(), 4);
        assert_eq!(o.kernel_stats().dijkstra_rows, 4); // the four t1 rows
    }

    #[test]
    fn non_growth_pairs_never_repair() {
        let g1 = graph_from_edges(4, &[(0, 1), (1, 2)]);
        let g2 = graph_from_edges(4, &[(0, 1), (2, 3)]); // (1,2) removed
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        for u in g1.nodes() {
            o.rows(u).unwrap();
        }
        assert_eq!(o.repaired_rows(), 0);
        assert_eq!(o.kernel_stats().bfs_rows, 8);
    }

    #[test]
    fn unweighted_rows_pack_to_u16_and_recycle_arena_slots() {
        let (g1, g2) = graphs();
        assert!(fits_u16(&g1) && fits_u16(&g2));
        // Room for ~4 packed rows (10 bytes each): constant eviction, so
        // freed slots must be recycled through the arena free list.
        let mut o =
            SnapshotOracle::with_budget(&g1, &g2, 10).with_row_cache(RowCacheBudget::Bytes(40));
        assert!(o.row_packed(Snapshot::First) && o.row_packed(Snapshot::Second));
        let mut reference = SnapshotOracle::with_budget(&g1, &g2, 10);
        for u in g1.nodes() {
            let (d1, d2) = o.rows(u).map(|(a, b)| (a.to_vec(), b.to_vec())).unwrap();
            let (r1, r2) = reference
                .rows(u)
                .map(|(a, b)| (a.to_vec(), b.to_vec()))
                .unwrap();
            assert_eq!(d1, r1, "widened t1 of {u:?}");
            assert_eq!(d2, r2, "widened t2 of {u:?}");
        }
        let stats = o.arena_stats();
        assert_eq!(stats.u32_rows, 0, "unweighted rows must pack");
        assert!(stats.u16_rows > 0);
        assert!(stats.reused_rows > 0, "evicted slots must be recycled");
        assert!(stats.slab_bytes > 0);
        assert!(o.cache_evictions() > 0);
        // Packed accounting: resident bytes are 2/node, so the 40-byte
        // budget holds twice the rows the u32 layout would.
        assert!(o.cache_bytes() <= 40 + 2 * 10, "pinned rows may overhang");
        // The resident view is served at the packed width.
        let some_resident = g1
            .nodes()
            .find_map(|u| o.cached_row(Snapshot::First, u))
            .expect("something is resident");
        assert!(matches!(some_resident, RowRef::U16(_)));
    }

    #[test]
    fn packed_reads_match_across_residency() {
        let (g1, g2) = graphs();
        let mut resident =
            SnapshotOracle::unbounded(&g1, &g2).with_row_cache(RowCacheBudget::Unbounded);
        let mut evicted =
            SnapshotOracle::unbounded(&g1, &g2).with_row_cache(RowCacheBudget::Bytes(0));
        for u in g1.nodes() {
            resident.rows(u).unwrap();
            evicted.rows(u).unwrap();
        }
        let mut s1 = RowScratch::new();
        let mut s2 = RowScratch::new();
        for u in g1.nodes() {
            let (a1, a2) = resident.read_rows_packed(u, &mut s1);
            let (b1, b2) = evicted.read_rows_packed(u, &mut s2);
            // Same width and same bits whether the row was resident or
            // recomputed into scratch — the scan kernel cannot tell.
            assert_eq!(a1, b1, "t1 of {u:?}");
            assert_eq!(a2, b2, "t2 of {u:?}");
            assert!(matches!(a1, RowRef::U16(_)), "unweighted rows pack");
            assert_eq!(a1.to_u32_vec(), resident.read_rows(u, &mut s1).0);
        }
    }

    #[test]
    fn row_cache_budget_parses() {
        use RowCacheBudget::*;
        assert_eq!(RowCacheBudget::parse(""), Some(Unbounded));
        assert_eq!(RowCacheBudget::parse("unbounded"), Some(Unbounded));
        assert_eq!(RowCacheBudget::parse("0"), Some(Bytes(0)));
        assert_eq!(RowCacheBudget::parse("4096"), Some(Bytes(4096)));
        assert_eq!(RowCacheBudget::parse("64k"), Some(Bytes(64 << 10)));
        assert_eq!(RowCacheBudget::parse("64KB"), Some(Bytes(64 << 10)));
        assert_eq!(RowCacheBudget::parse("2m"), Some(Bytes(2 << 20)));
        assert_eq!(RowCacheBudget::parse("1g"), Some(Bytes(1 << 30)));
        assert_eq!(RowCacheBudget::parse("nope"), None);
        assert_eq!(Bytes(0).describe(), "0");
        assert_eq!(Unbounded.describe(), "unbounded");
        assert!(!Bytes(0).repair_enabled());
        assert!(Bytes(1).repair_enabled());
        assert!(Unbounded.repair_enabled());
    }

    #[test]
    fn read_rows_recomputes_evicted_rows() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2).with_row_cache(RowCacheBudget::Bytes(0));
        let expected: Vec<(Vec<u32>, Vec<u32>)> = g1
            .nodes()
            .map(|u| {
                let (a, b) = o.rows(u).unwrap();
                (a.to_vec(), b.to_vec())
            })
            .collect();
        // All but the two pinned rows are gone; shared reads still resolve.
        let mut scratch = RowScratch::new();
        for (u, (e1, e2)) in g1.nodes().zip(&expected) {
            let (r1, r2) = o.read_rows(u, &mut scratch);
            assert_eq!(r1, e1.as_slice(), "t1 of {u:?}");
            assert_eq!(r2, e2.as_slice(), "t2 of {u:?}");
        }
        assert_eq!(o.ledger().total(), 10, "shared reads never charge");
    }

    #[test]
    fn donor_handoff_chains_rows_across_oracles() {
        // Three growing snapshots; step 1 reviews (g0, g1), step 2 reviews
        // (g1, g2) with step 1's t2 residents imported as t1 donors.
        let g0 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let (g1, g2) = graphs();
        let mut step1 = SnapshotOracle::unbounded(&g0, &g1);
        for u in g0.nodes() {
            step1.rows(u).unwrap();
        }
        let handoff = step1.export_resident_rows(Snapshot::Second);
        assert_eq!(handoff.len(), 5);
        assert_eq!(handoff.num_nodes(), 5);
        assert!(!handoff.is_empty());

        let mut chained = SnapshotOracle::unbounded(&g1, &g2);
        assert_eq!(chained.import_donor_rows(Snapshot::First, &handoff), 5);
        let mut scratch = SnapshotOracle::unbounded(&g1, &g2);
        for u in g1.nodes() {
            let (c1, c2) = chained.rows(u).unwrap();
            let (c1, c2) = (c1.to_vec(), c2.to_vec());
            let (s1, s2) = scratch.rows(u).unwrap();
            assert_eq!(c1, s1, "t1 of {u:?}");
            assert_eq!(c2, s2, "t2 of {u:?}");
        }
        // Every charge is honest: the ledgers agree, but the chained
        // oracle served all five t1 rows from the import without a kernel
        // (its t2 rows were then repaired from those donors).
        assert_eq!(chained.ledger().total(), scratch.ledger().total());
        assert_eq!(chained.chained_rows(), 5);
        assert_eq!(scratch.chained_rows(), 0);
        let ks = chained.kernel_stats();
        assert_eq!(
            ks.msbfs_rows
                + ks.bfs_rows
                + ks.dijkstra_rows
                + ks.repair_rows
                + chained.rows_prefiltered()
                + chained.chained_rows(),
            chained.ledger().total(),
            "charged-row invariant with chaining"
        );
    }

    #[test]
    fn donor_import_skips_paid_and_resident_rows() {
        let (g1, g2) = graphs();
        let mut donor = SnapshotOracle::unbounded(&g1, &g2);
        for u in g1.nodes() {
            donor.rows(u).unwrap();
        }
        // Exporting t1 of (g1, g2) and importing it back as t1 of another
        // (g1, g2) oracle that already paid for node 0's rows.
        let handoff = donor.export_resident_rows(Snapshot::First);
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        o.rows(NodeId(0)).unwrap();
        assert_eq!(o.import_donor_rows(Snapshot::First, &handoff), 4);
        o.rows(NodeId(0)).unwrap();
        assert_eq!(o.chained_rows(), 0, "already-paid rows never chain");
        o.rows(NodeId(1)).unwrap();
        assert_eq!(o.chained_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn donor_import_rejects_foreign_universe() {
        let (g1, g2) = graphs();
        let donor = SnapshotOracle::unbounded(&g1, &g2);
        let handoff = donor.export_resident_rows(Snapshot::First);
        let h1 = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let h2 = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        SnapshotOracle::unbounded(&h1, &h2).import_donor_rows(Snapshot::First, &handoff);
    }
}
