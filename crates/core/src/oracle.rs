//! The budget-enforcing SSSP oracle over a snapshot pair.
//!
//! The paper's cost model counts *single-source shortest-path computations*:
//! every algorithm, selector phase included, is allowed exactly `2m` of
//! them (Table 1). [`SnapshotOracle`] makes that model executable — all
//! distance rows flow through it, each fresh row is charged to the current
//! [`Phase`], cached rows are free (that is precisely how the dispersion
//! selectors reuse their `G_t1` rows), and a hard cap turns overdraft into
//! an error instead of a silently broken experiment.

use cp_graph::bfs::{bfs_into, BfsWorkspace};
use cp_graph::dijkstra::dijkstra_into;
use cp_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which accounting bucket an SSSP computation lands in (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Candidate-endpoint generation (landmark rows, dispersion picks,
    /// classifier features).
    Generation,
    /// The top-k phase: rows of the chosen candidates in both snapshots.
    TopK,
}

/// The SSSP spend, split by phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetLedger {
    /// SSSPs spent generating candidates.
    pub generation: u64,
    /// SSSPs spent computing candidate rows for the top-k phase.
    pub topk: u64,
}

impl BudgetLedger {
    /// Total SSSPs spent.
    pub fn total(&self) -> u64 {
        self.generation + self.topk
    }
}

/// Attempted to exceed the SSSP budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetError {
    /// The configured cap.
    pub limit: u64,
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SSSP budget of {} computations exhausted", self.limit)
    }
}

impl std::error::Error for BudgetError {}

/// Which snapshot a row belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Snapshot {
    /// The earlier snapshot `G_t1`.
    First,
    /// The later snapshot `G_t2`.
    Second,
}

/// A pair of snapshots behind a counting, capping, caching SSSP interface.
///
/// ```
/// use cp_core::oracle::SnapshotOracle;
/// use cp_graph::builder::graph_from_edges;
/// use cp_graph::NodeId;
///
/// let g1 = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let g2 = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
/// let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 4);
///
/// let (d1, d2) = oracle.rows(NodeId(0))?; // 2 SSSPs charged
/// assert_eq!(d1[3], 3);
/// assert_eq!(d2[3], 1); // the new chord
/// assert_eq!(oracle.remaining(), 2);
///
/// oracle.rows(NodeId(0))?; // cached: free
/// assert_eq!(oracle.remaining(), 2);
/// # Ok::<(), cp_core::oracle::BudgetError>(())
/// ```
pub struct SnapshotOracle<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    limit: Option<u64>,
    phase: Phase,
    ledger: BudgetLedger,
    rows1: HashMap<u32, Vec<u32>>,
    rows2: HashMap<u32, Vec<u32>>,
    ws: BfsWorkspace,
}

impl<'a> SnapshotOracle<'a> {
    /// Creates an oracle with a hard cap of `limit` SSSP computations
    /// across both snapshots (the paper's `2m`).
    pub fn with_budget(g1: &'a Graph, g2: &'a Graph, limit: u64) -> Self {
        Self::new_inner(g1, g2, Some(limit))
    }

    /// Creates an uncapped oracle (used by the exact baseline's
    /// bookkeeping and the unbudgeted Incidence algorithm; it still counts).
    pub fn unbounded(g1: &'a Graph, g2: &'a Graph) -> Self {
        Self::new_inner(g1, g2, None)
    }

    fn new_inner(g1: &'a Graph, g2: &'a Graph, limit: Option<u64>) -> Self {
        assert_eq!(
            g1.num_nodes(),
            g2.num_nodes(),
            "snapshots must share a node universe"
        );
        SnapshotOracle {
            g1,
            g2,
            limit,
            phase: Phase::Generation,
            ledger: BudgetLedger::default(),
            rows1: HashMap::new(),
            rows2: HashMap::new(),
            ws: BfsWorkspace::new(),
        }
    }

    /// The first snapshot.
    pub fn g1(&self) -> &'a Graph {
        self.g1
    }

    /// The second snapshot.
    pub fn g2(&self) -> &'a Graph {
        self.g2
    }

    /// Number of nodes in the shared universe.
    pub fn num_nodes(&self) -> usize {
        self.g1.num_nodes()
    }

    /// Switches the accounting bucket for subsequent computations.
    pub fn set_phase(&mut self, phase: Phase) {
        self.phase = phase;
    }

    /// The spend so far.
    pub fn ledger(&self) -> BudgetLedger {
        self.ledger
    }

    /// Remaining SSSP allowance (`u64::MAX` when uncapped).
    pub fn remaining(&self) -> u64 {
        match self.limit {
            None => u64::MAX,
            Some(l) => l.saturating_sub(self.ledger.total()),
        }
    }

    /// The configured cap, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    /// How many fresh SSSPs it would cost to have both rows of `u`
    /// available (0, 1 or 2 depending on what is cached).
    pub fn cost_of(&self, u: NodeId) -> u64 {
        let mut c = 0;
        if !self.rows1.contains_key(&u.0) {
            c += 1;
        }
        if !self.rows2.contains_key(&u.0) {
            c += 1;
        }
        c
    }

    /// Whether both rows of `u` are already cached (i.e. `u` is already a
    /// fully paid candidate).
    pub fn has_both(&self, u: NodeId) -> bool {
        self.rows1.contains_key(&u.0) && self.rows2.contains_key(&u.0)
    }

    /// Nodes with both rows cached, ascending. These are exactly the nodes
    /// whose pairs the top-k phase can evaluate.
    pub fn fully_cached_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .rows1
            .keys()
            .filter(|k| self.rows2.contains_key(k))
            .map(|&k| NodeId(k))
            .collect();
        out.sort_unstable();
        out
    }

    fn charge(&mut self) -> Result<(), BudgetError> {
        if let Some(limit) = self.limit {
            if self.ledger.total() >= limit {
                return Err(BudgetError { limit });
            }
        }
        match self.phase {
            Phase::Generation => self.ledger.generation += 1,
            Phase::TopK => self.ledger.topk += 1,
        }
        Ok(())
    }

    /// The distance row of `u` in the chosen snapshot, computing (and
    /// charging) it on first use.
    pub fn row(&mut self, which: Snapshot, u: NodeId) -> Result<&[u32], BudgetError> {
        let present = match which {
            Snapshot::First => self.rows1.contains_key(&u.0),
            Snapshot::Second => self.rows2.contains_key(&u.0),
        };
        if !present {
            self.charge()?;
            let graph = match which {
                Snapshot::First => self.g1,
                Snapshot::Second => self.g2,
            };
            let mut dist = Vec::new();
            if graph.is_weighted() {
                dijkstra_into(graph, u, &mut dist);
            } else {
                bfs_into(graph, u, &mut dist, &mut self.ws);
            }
            match which {
                Snapshot::First => self.rows1.insert(u.0, dist),
                Snapshot::Second => self.rows2.insert(u.0, dist),
            };
        }
        let rows = match which {
            Snapshot::First => &self.rows1,
            Snapshot::Second => &self.rows2,
        };
        Ok(rows.get(&u.0).expect("just inserted").as_slice())
    }

    /// Both rows of `u` at once (for Δ computation).
    pub fn rows(&mut self, u: NodeId) -> Result<(&[u32], &[u32]), BudgetError> {
        self.row(Snapshot::First, u)?;
        self.row(Snapshot::Second, u)?;
        Ok((
            self.rows1.get(&u.0).expect("cached").as_slice(),
            self.rows2.get(&u.0).expect("cached").as_slice(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::graph_from_edges;
    use cp_graph::INF;

    fn graphs() -> (Graph, Graph) {
        let g1 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let g2 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        (g1, g2)
    }

    #[test]
    fn counts_and_caches() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 4);
        assert_eq!(o.cost_of(NodeId(0)), 2);
        let (d1, d2) = o.rows(NodeId(0)).unwrap();
        assert_eq!(d1[4], 4);
        assert_eq!(d2[4], 1);
        assert_eq!(o.ledger().total(), 2);
        assert_eq!(o.cost_of(NodeId(0)), 0);
        assert!(o.has_both(NodeId(0)));
        // Cached access is free.
        o.rows(NodeId(0)).unwrap();
        assert_eq!(o.ledger().total(), 2);
        assert_eq!(o.remaining(), 2);
    }

    #[test]
    fn enforces_cap() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 3);
        o.rows(NodeId(0)).unwrap(); // 2 spent
        o.row(Snapshot::First, NodeId(1)).unwrap(); // 3 spent
        let err = o.row(Snapshot::Second, NodeId(1)).unwrap_err();
        assert_eq!(err, BudgetError { limit: 3 });
        assert_eq!(o.remaining(), 0);
        // Cached rows remain readable after exhaustion.
        assert!(o.rows(NodeId(0)).is_ok());
    }

    #[test]
    fn phase_accounting() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 10);
        o.row(Snapshot::First, NodeId(2)).unwrap();
        o.set_phase(Phase::TopK);
        o.row(Snapshot::Second, NodeId(2)).unwrap();
        let ledger = o.ledger();
        assert_eq!(ledger.generation, 1);
        assert_eq!(ledger.topk, 1);
        assert_eq!(ledger.total(), 2);
    }

    #[test]
    fn fully_cached_nodes_sorted() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        o.rows(NodeId(3)).unwrap();
        o.rows(NodeId(1)).unwrap();
        o.row(Snapshot::First, NodeId(4)).unwrap(); // only one side
        assert_eq!(o.fully_cached_nodes(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(o.remaining(), u64::MAX);
        assert_eq!(o.limit(), None);
    }

    #[test]
    fn rows_reflect_each_snapshot() {
        let g1 = graph_from_edges(3, &[(0, 1)]);
        let g2 = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let (d1, d2) = o.rows(NodeId(0)).unwrap();
        assert_eq!(d1[2], INF);
        assert_eq!(d2[2], 2);
    }

    #[test]
    #[should_panic(expected = "share a node universe")]
    fn universe_mismatch_panics() {
        let g1 = graph_from_edges(3, &[(0, 1)]);
        let g2 = graph_from_edges(4, &[(0, 1)]);
        SnapshotOracle::unbounded(&g1, &g2);
    }
}
