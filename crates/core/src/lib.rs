//! Budgeted identification of converging node pairs in evolving graphs.
//!
//! Reproduction of *Identifying Converging Pairs of Nodes on a Budget*
//! (Lazaridou, Pitoura, Semertzidis, Tsaparas — EDBT 2015).
//!
//! # Problem
//!
//! Given two snapshots `G_t1 ⊆ G_t2` of a growing undirected graph and a
//! value `k`, the **top-k converging pairs** are the `k` pairs of nodes,
//! connected in `G_t1`, with the largest distance decrease
//! `Δ(u, v) = d_t1(u, v) − d_t2(u, v)` (Problem 1 in the paper). Computing
//! them exactly requires all-pairs shortest paths — quadratic output — so
//! the paper's *budgeted path cover* version (Problem 2) fixes a budget of
//! `2m` single-source shortest-path (SSSP) computations and asks for a set
//! `M` of candidate endpoints that covers as many top-k pairs as possible;
//! the quality yardstick is the greedy vertex cover of the *pair graph*
//! [`PairGraph`] whose edges are the top-k pairs.
//!
//! # Layout
//!
//! * [`exact`] — the exact all-pairs baseline and the δ-threshold top-k
//!   specification used throughout the evaluation.
//! * [`gpk`] — the pair graph `G^p_k`, greedy vertex cover and greedy
//!   max-coverage.
//! * [`oracle`] — [`SnapshotOracle`]: a pair of
//!   snapshots behind an SSSP interface that *counts and caps* every
//!   computation; this is how the budget of Table 1 is enforced rather
//!   than merely reported.
//! * [`scan`] — the blocked, branch-free Δ-scan kernel with chunk
//!   skipping and a shared rising Δ floor (`CP_SCAN_KERNEL`), shared by
//!   the budgeted pipeline and the exact baseline.
//! * [`topk`] — the generic budgeted pipeline (Algorithm 1 of the paper).
//! * [`selectors`] — the candidate-endpoint generation suite: Degree /
//!   DegDiff / DegRel, MaxMin / MaxAvg dispersion, SumDiff / MaxDiff
//!   landmarks, the four dispersion-landmark hybrids, the Incidence
//!   baselines of prior work, a uniform-random control, and the local /
//!   global logistic-regression classifiers.
//! * [`coverage`] — evaluation of a result against the exact ground truth.
//! * [`experiment`] — the harness that regenerates every table and figure
//!   of the paper's evaluation section.
//! * [`bounds`] — an extension beyond the paper: certified Δ lower/upper
//!   bounds for arbitrary pairs from landmark rows alone (no per-pair
//!   SSSP), enabling certify/rule-out/undecided triage of hypothesized
//!   pairs; also the resident-row landmark indexes shared by the
//!   pipeline's pre-filter and the streaming query path ([`estimate`] is
//!   the compatibility shim of its former home).
//!
//! Continuous monitoring over whole snapshot sequences lives in the
//! `cp-stream` crate, built on this crate's oracle and pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod coverage;
pub mod estimate;
pub mod exact;
pub mod experiment;
pub mod gpk;
pub mod oracle;
pub mod scan;
pub mod selectors;
pub mod topk;

pub use bounds::{DeltaBounds, Triage};
pub use exact::{exact_top_k, ConvergingPair, ExactTopK, TopKSpec};
pub use gpk::PairGraph;
pub use oracle::{BudgetError, BudgetLedger, Phase, SnapshotOracle};
pub use selectors::{CandidateSelector, SelectorKind};
pub use topk::{budgeted_top_k, BudgetedResult};
