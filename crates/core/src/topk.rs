//! The generic budgeted top-k pipeline (Algorithm 1 of the paper).
//!
//! 1. A [`CandidateSelector`] ranks candidate endpoints, spending part of
//!    the SSSP budget on whatever structural probes it needs (landmark
//!    rows, dispersion picks, classifier features).
//! 2. The pipeline pays for the distance rows of candidates, in rank
//!    order, in both snapshots, until the `2m` budget is exhausted. Rows
//!    the selector already computed are free — this is how dispersion
//!    reuses its `G_t1` rows and why hybrid landmarks "come for free" as
//!    candidates.
//! 3. Every pair in `M × V` gets its Δ computed from the candidate rows;
//!    the pairs matching the [`TopKSpec`] are returned.

use crate::bounds::{all_pairs_below, resident_landmark_indexes, MAX_RESIDENT_LANDMARKS};
use crate::exact::{sort_pairs, ConvergingPair, TopKSpec};
use crate::oracle::{
    ArenaStats, BfsKernel, BudgetLedger, GraphMemStats, GraphStore, KernelStats, Phase, RowScratch,
    SnapshotOracle, SsspPrune,
};
use crate::scan::{scan_delta_row, ScanCounters, ScanKernel};
use crate::selectors::CandidateSelector;
use cp_graph::{distance_decrease, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// Candidate count below which the Δ scan runs inline instead of spawning
/// workers.
const PARALLEL_SCAN_CUTOFF: usize = 8;

/// Wall-clock and cache instrumentation of one pipeline run. Timings are
/// measurements, not results: everything else in [`BudgetedResult`] is
/// bit-identical at any thread count.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Seconds spent in the selector's ranking (Generation phase probes
    /// included).
    pub selector_secs: f64,
    /// Seconds spent admitting and computing candidate rows (TopK phase).
    pub prefetch_secs: f64,
    /// Seconds spent in the `M × V` Δ scan.
    pub scan_secs: f64,
    /// Seconds the oracle spent computing distance rows across *all*
    /// phases (selector probes included) — the time the BFS kernels own.
    pub sssp_secs: f64,
    /// Seconds of `sssp_secs` spent on `G_t2` rows specifically, summed
    /// per work item (comparable across thread counts) — the time
    /// snapshot-delta repair attacks.
    pub sssp_t2_secs: f64,
    /// Total SSSP computations charged (equals the ledger total).
    pub sssp_computed: u64,
    /// Row requests served from cache (free).
    pub cache_hits: u64,
    /// Row requests that required a fresh computation.
    pub cache_misses: u64,
    /// `t2` rows derived by snapshot-delta repair from a resident `t1`
    /// donor row instead of a full sweep.
    pub repaired_rows: u64,
    /// Total nodes settled by repair frontiers; divide by
    /// `repaired_rows` for the mean shrinking-region size.
    pub repair_frontier_nodes: u64,
    /// Paid rows recomputed free of charge after LRU eviction (0 under
    /// the default unbounded row cache).
    pub recomputed_rows: u64,
    /// Bytes of row payload resident in the oracle's cache at the end of
    /// the run.
    pub cache_bytes: usize,
    /// Worker threads the oracle was configured with.
    pub threads: usize,
    /// The unweighted SSSP kernel the oracle ran (`scalar` | `auto`).
    pub kernel: BfsKernel,
    /// Per-kernel work counters: multi-source waves and how many rows each
    /// kernel produced (`msbfs_rows + bfs_rows + dijkstra_rows +
    /// repair_rows` equals `sssp_computed`).
    pub kernel_stats: KernelStats,
    /// The Δ-scan kernel the `M × V` phase ran (`scalar` | `auto`).
    pub scan_kernel: ScanKernel,
    /// Δ-scan chunks whose elements were walked (blocked kernel only;
    /// zero under the scalar reference scan).
    pub scan_chunks_scanned: u64,
    /// Δ-scan chunks skipped whole because their maximum Δ was below the
    /// shared floor.
    pub scan_chunks_skipped: u64,
    /// Individual Δ ≥ 1 values pruned below the shared floor inside
    /// scanned chunks (pairs never materialized).
    pub scan_pairs_pruned: u64,
    /// Occupancy of the oracle's pooled row arenas at the end of the run.
    pub arena: ArenaStats,
    /// The SSSP pruning mode the oracle ran (`off` | `auto`).
    pub sssp_prune: SsspPrune,
    /// Nodes settled across every traversal-kernel invocation, all phases
    /// — the internal-work number bound-truncation shrinks while the
    /// ledger (`sssp_computed`) stays bit-identical.
    pub settled_nodes: u64,
    /// Adjacency entries relaxed / scanned across every traversal.
    pub relaxed_edges: u64,
    /// Charged `t2` full sweeps cut short at their bound-derived depth
    /// limit (each still carries its one-SSSP charge).
    pub rows_truncated: u64,
    /// Admitted rows charged to the ledger but never computed: the
    /// landmark pre-filter certified every pair of their candidate below
    /// the initial scan floor.
    pub rows_prefiltered: u64,
    /// `M × V` pairs never scanned because the pre-filter dropped their
    /// candidate (`n − 1` per dropped candidate).
    pub pairs_prefiltered: u64,
    /// Rows charged to the ledger whose bytes were already resident from a
    /// cross-oracle donor hand-off (the streaming engine's review-to-review
    /// cache chaining; 0 on the batch path).
    pub chained_rows: u64,
    /// The snapshot storage layout the oracle's kernels traversed
    /// (`full` | `overlay` | `compressed`).
    pub graph_store: GraphStore,
    /// Heap bytes of the graph structures the kernels traversed, split by
    /// store role (base CSR / overlay extras / compressed adjacency).
    pub graph_mem: GraphMemStats,
    /// Persistent-executor activity attributed to this run (batches,
    /// tasks, steals, park/unpark events as deltas over the run;
    /// `workers_spawned` is the pool's absolute size). Advisory
    /// instrumentation — on the shared global pool, concurrent users
    /// bleed into the deltas, so these are excluded from the
    /// bit-identical output contract.
    pub exec: cp_exec::ExecStats,
}

/// Output of a budgeted run.
#[derive(Clone, Debug)]
pub struct BudgetedResult {
    /// The pairs found, canonically sorted (descending Δ, ascending ids).
    pub pairs: Vec<ConvergingPair>,
    /// The candidate endpoints `M` whose rows were fully paid for, in
    /// ascending id order.
    pub candidates: Vec<NodeId>,
    /// The SSSP spend, split by phase (compare with the paper's Table 1).
    pub budget: BudgetLedger,
    /// Instrumentation of this run (wall clock, cache traffic, threads).
    pub stats: PipelineStats,
}

impl BudgetedResult {
    /// The found pairs as a set of normalized endpoint tuples.
    pub fn pair_set(&self) -> HashSet<(NodeId, NodeId)> {
        self.pairs.iter().map(|p| p.pair).collect()
    }
}

/// Runs the budgeted pipeline with a budget of `2 * m` SSSP computations.
///
/// `m` is the paper's candidate budget: the number of nodes whose
/// single-source shortest paths can be afforded in both snapshots.
pub fn budgeted_top_k(
    g1: &Graph,
    g2: &Graph,
    selector: &mut dyn CandidateSelector,
    m: u64,
    spec: &TopKSpec,
) -> BudgetedResult {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m);
    run_pipeline(&mut oracle, selector, spec)
}

/// Runs the pipeline on a pre-built oracle (callers control the cap; the
/// unbudgeted Incidence baseline passes an unbounded oracle).
pub fn run_pipeline(
    oracle: &mut SnapshotOracle<'_>,
    selector: &mut dyn CandidateSelector,
    spec: &TopKSpec,
) -> BudgetedResult {
    let exec_before = oracle.exec_stats();
    let t_select = Instant::now();
    let ranked = selector.rank(oracle);
    let selector_secs = t_select.elapsed().as_secs_f64();
    oracle.set_phase(Phase::TopK);

    // The spec's a-priori Δ floor arms the oracle's bound-truncation: a
    // top-k-phase `t2` sweep may stop at the depth past which no pair
    // could reach the floor. Conservative by construction — the shared
    // scan floor only ever rises from this value.
    let initial_floor = spec.initial_floor();
    oracle.set_prune_floor(initial_floor);

    // Nodes outside V_t1 cannot be the endpoint of a pair connected in
    // G_t1, so rows from them would be pure waste. The surviving ranking
    // goes through one batched prefetch: admission stays sequential (same
    // ledger and candidate set as paying one node at a time — a later,
    // partially cached candidate can still fit after an unaffordable one
    // is skipped), only the row computation fans out. Candidates whose
    // every pair the landmark pre-filter certifies below the floor are
    // charged without being computed.
    let t_prefetch = Instant::now();
    let wanted: Vec<NodeId> = ranked
        .into_iter()
        .filter(|&u| oracle.g1().degree(u) > 0)
        .collect();
    let prefiltered = prefilter_candidates(oracle, &wanted, initial_floor);
    oracle.prefetch_node_rows_filtered(&wanted, &prefiltered);
    let prefetch_secs = t_prefetch.elapsed().as_secs_f64();

    let candidates = oracle.fully_cached_nodes();
    let n_minus_1 = (oracle.g1().num_nodes() as u64).saturating_sub(1);
    let pairs_prefiltered = candidates
        .iter()
        .filter(|u| prefiltered.contains(u))
        .count() as u64
        * n_minus_1;
    let t_scan = Instant::now();
    let (pairs, scan_counters) = pairs_from_candidates(oracle, &candidates, &prefiltered, spec);
    let scan_secs = t_scan.elapsed().as_secs_f64();

    let (cache_hits, cache_misses) = oracle.cache_stats();
    BudgetedResult {
        pairs,
        candidates,
        budget: oracle.ledger(),
        stats: PipelineStats {
            selector_secs,
            prefetch_secs,
            scan_secs,
            sssp_secs: oracle.sssp_secs(),
            sssp_t2_secs: oracle.sssp_t2_secs(),
            sssp_computed: oracle.ledger().total(),
            cache_hits,
            cache_misses,
            repaired_rows: oracle.repaired_rows(),
            repair_frontier_nodes: oracle.repair_frontier_nodes(),
            recomputed_rows: oracle.recomputed_rows(),
            cache_bytes: oracle.cache_bytes(),
            threads: oracle.threads(),
            kernel: oracle.kernel(),
            kernel_stats: oracle.kernel_stats(),
            scan_kernel: oracle.scan_kernel(),
            scan_chunks_scanned: scan_counters.chunks_scanned,
            scan_chunks_skipped: scan_counters.chunks_skipped,
            scan_pairs_pruned: scan_counters.pairs_pruned,
            arena: oracle.arena_stats(),
            sssp_prune: oracle.prune(),
            settled_nodes: oracle.traversal_work().settled,
            relaxed_edges: oracle.traversal_work().relaxed,
            rows_truncated: oracle.rows_truncated(),
            rows_prefiltered: oracle.rows_prefiltered(),
            pairs_prefiltered,
            chained_rows: oracle.chained_rows(),
            graph_store: oracle.graph_store(),
            graph_mem: oracle.graph_mem_stats(),
            exec: oracle.exec_stats().since(&exec_before),
        },
    }
}

/// The landmark triangle-inequality pre-filter over the wanted
/// candidates: returns the candidates whose **every** `M × V` pair is
/// certified below `floor` before any row of theirs is materialized.
///
/// Landmarks are nodes whose rows are already resident and exact in both
/// snapshots when the top-k phase starts — the probe rows a landmark-style
/// selector paid for during Generation (a selector that leaves none makes
/// this a no-op). For a candidate `u` and any node `v`,
///
/// ```text
/// Δ(u, v) = d1(u, v) − d2(u, v) ≤ UB1(u, v) − LB2(u, v)
/// ```
///
/// with `UB1 = min_w (d1(u,w) + d1(w,v))` and `LB2 = max_w |d2(u,w) −
/// d2(w,v)|`. When that gap is below `floor` for every `v` — or `LB2` is
/// infinite, which proves `d2(u,v) = ∞` and therefore Δ = 0 under the
/// scan's convention — no pair of `u` can survive the final cut, so its
/// rows can only prove what is already proven. The paper's cost model
/// still charges them ([`SnapshotOracle::prefetch_node_rows_filtered`]);
/// only the machine work is skipped. Disabled under [`SsspPrune::Off`].
///
/// The bound machinery itself lives in [`crate::bounds`], shared with the
/// streaming query index captured at epoch publish.
fn prefilter_candidates(
    oracle: &mut SnapshotOracle<'_>,
    wanted: &[NodeId],
    floor: u32,
) -> HashSet<NodeId> {
    let mut dropped = HashSet::new();
    if oracle.prune() != SsspPrune::Auto || wanted.is_empty() {
        return dropped;
    }
    let Some((index1, index2)) = resident_landmark_indexes(oracle, MAX_RESIDENT_LANDMARKS) else {
        return dropped;
    };
    let mut ub1 = Vec::new();
    let mut lb2 = Vec::new();
    for &u in wanted {
        if all_pairs_below(&index1, &index2, u, floor, &mut ub1, &mut lb2) {
            dropped.insert(u);
        }
    }
    dropped
}

/// Computes the Δ values of all pairs `M × V` from cached candidate rows
/// and cuts them per `spec`.
///
/// Pairs with *both* endpoints in `M` would be seen twice; they are
/// emitted only by their lowest-indexed candidate endpoint (the scan skips
/// `v` when `v ∈ M` and `v < u`), so the merged output needs no global
/// dedup set — for a sorted candidate list this emits exactly the pairs
/// the old first-seen `HashSet` kept, in the same order.
///
/// The shared Δ floor starts at the spec's lower bound and only rises:
/// under `ThresholdFromMax` it follows the exact running maximum, under
/// `TopK(k)` each worker raises it to the minimum of its local top-k
/// buffer once full (k distinct pairs at Δ ≥ m prove every Δ < m pair is
/// outside the top k). Pruning is therefore conservative, and the final
/// retain/sort/truncate below cuts exactly as the unpruned scan would —
/// results are bit-identical across kernels, thread counts and cache
/// budgets.
fn pairs_from_candidates(
    oracle: &SnapshotOracle<'_>,
    candidates: &[NodeId],
    prefiltered: &HashSet<NodeId>,
    spec: &TopKSpec,
) -> (Vec<ConvergingPair>, ScanCounters) {
    // For TopK(0) the floor starts at its ceiling so the blocked kernel
    // skips every chunk instead of materializing pairs the truncate below
    // would discard anyway (see `TopKSpec::initial_floor`).
    let floor = AtomicU32::new(spec.initial_floor());
    let observed_max = AtomicU32::new(0);
    let mut in_m = vec![false; oracle.g1().num_nodes()];
    for &u in candidates {
        in_m[u.index()] = true;
    }
    let (mut all, counters) = scan_candidate_rows(
        oracle,
        candidates,
        prefiltered,
        &in_m,
        spec,
        &floor,
        &observed_max,
    );

    // Resolve the final Δ floor. For ThresholdFromMax the max is taken
    // over the pairs *visible to this run* (the exact Δmax is unknown
    // within the budget; evaluation harnesses pass an explicit Threshold
    // from the exact baseline instead) — and it is exact even under the
    // blocked kernel, because skipped chunks still fold their maxima into
    // `observed_max`.
    let final_floor = match spec {
        TopKSpec::Threshold { delta_min } => (*delta_min).max(1),
        TopKSpec::ThresholdFromMax { slack } => observed_max
            .load(Ordering::Relaxed)
            .saturating_sub(*slack)
            .max(1),
        TopKSpec::TopK(_) => 1,
    };
    all.retain(|p| p.delta >= final_floor);
    sort_pairs(&mut all);
    if let TopKSpec::TopK(k) = spec {
        all.truncate(*k);
    }
    (all, counters)
}

/// The Δ-emitting pairs contributed by each candidate's row pair, merged
/// in candidate order.
///
/// Rows are fetched with [`SnapshotOracle::read_rows_packed`]: candidates
/// are *paid* by construction, but under a bounded row cache their bytes
/// may have been evicted, in which case each worker recomputes them into
/// its own [`RowScratch`] — same bits, no charge, no shared mutation.
///
/// No locks: the executor hands each worker contiguous candidate ranges
/// (stealing half of the largest remaining range when it runs dry); each
/// appends into a private flat buffer kept in its persistent
/// [`cp_exec::WorkerScratch`] (no allocation per candidate — and across
/// batches, none per batch either) and writes its `(worker, start, end)`
/// range into the candidate's pre-sized slot. Slots are merged in
/// candidate order after the batch, so the output is identical to a
/// sequential scan at any thread count.
fn scan_candidate_rows(
    oracle: &SnapshotOracle<'_>,
    candidates: &[NodeId],
    prefiltered: &HashSet<NodeId>,
    in_m: &[bool],
    spec: &TopKSpec,
    floor: &AtomicU32,
    observed_max: &AtomicU32,
) -> (Vec<ConvergingPair>, ScanCounters) {
    let kernel = oracle.scan_kernel();
    let from_max_slack = match spec {
        TopKSpec::ThresholdFromMax { slack } => Some(*slack),
        _ => None,
    };
    let topk = match spec {
        TopKSpec::TopK(k) if *k > 0 => Some(*k),
        _ => None,
    };

    // One candidate's scan, appending its pairs to the worker's flat
    // buffer. `heap` is the worker-local min-heap of its k largest
    // emitted Δs — every emitted pair is globally distinct (the `v ∈ M,
    // v < u` skip), so a full heap's minimum is a valid global floor.
    let scan_one = |i: usize, s: &mut ScanScratch| {
        let ScanScratch {
            rows,
            out,
            counters,
            heap,
        } = s;
        let u = candidates[i];
        let u_idx = u.index();
        // A pre-filtered candidate's rows were never computed: every
        // pair of its scan is certified below the initial floor, so
        // its range is simply empty — reading the rows here would
        // recompute them and undo the saving.
        if prefiltered.contains(&u) {
            return;
        }
        match kernel {
            ScanKernel::Auto => {
                let (r1, r2) = oracle.read_rows_packed(u, rows);
                scan_delta_row(
                    r1,
                    r2,
                    0,
                    floor,
                    observed_max,
                    from_max_slack,
                    counters,
                    &mut |v_idx, delta| {
                        if v_idx == u_idx || (in_m[v_idx] && v_idx < u_idx) {
                            return;
                        }
                        out.push(ConvergingPair::new(u, NodeId::new(v_idx), delta));
                        let Some(k) = topk else { return };
                        if heap.len() < k {
                            heap.push(Reverse(delta));
                        } else if delta > heap.peek().expect("nonempty").0 {
                            heap.pop();
                            heap.push(Reverse(delta));
                        } else {
                            return;
                        }
                        if heap.len() == k {
                            floor.fetch_max(heap.peek().expect("nonempty").0, Ordering::Relaxed);
                        }
                    },
                );
            }
            ScanKernel::Scalar => {
                // The reference per-element loop: no chunking, no
                // pruning — the pre-optimization behaviour, kept for
                // A/B runs and conformance tests.
                let (d1, d2) = oracle.read_rows(u, rows);
                for v_idx in 0..d1.len() {
                    if v_idx == u_idx || (in_m[v_idx] && v_idx < u_idx) {
                        continue;
                    }
                    let Some(delta) = distance_decrease(d1[v_idx], d2[v_idx]) else {
                        continue;
                    };
                    if delta == 0 {
                        continue;
                    }
                    observed_max.fetch_max(delta, Ordering::Relaxed);
                    out.push(ConvergingPair::new(u, NodeId::new(v_idx), delta));
                }
            }
        }
    };

    let threads = oracle.threads().min(candidates.len()).max(1);
    // `slots[i] = (worker, start, end)`: candidate `i`'s pair run within
    // worker `worker`'s flat buffer. Every task writes exactly its own
    // slot; slots are read back in candidate order.
    let mut slots: Vec<(usize, usize, usize)> = vec![(usize::MAX, 0, 0); candidates.len()];
    let mut outputs: Vec<Vec<ConvergingPair>> = Vec::new();
    let mut counters = ScanCounters::default();
    if threads == 1 || candidates.len() < PARALLEL_SCAN_CUTOFF {
        let mut s = ScanScratch::default();
        for (i, slot) in slots.iter_mut().enumerate() {
            let start = s.out.len();
            scan_one(i, &mut s);
            *slot = (0, start, s.out.len());
        }
        counters.absorb(&s.counters);
        outputs.push(s.out);
    } else {
        outputs.resize_with(threads, Vec::new);
        oracle.executor().run_collect(
            &mut slots,
            threads,
            |i, slot, ctx| {
                let w = ctx.index();
                let s = ctx.scratch.get_or(ScanScratch::default);
                let start = s.out.len();
                scan_one(i, s);
                *slot = (w, start, s.out.len());
            },
            |w, scratch| {
                // Drain each participating worker's buffers while the
                // batch still owns the pool: the pair runs move out, the
                // floor heap and counters reset so the next batch (on
                // this or any other oracle) starts clean.
                if let Some(s) = scratch.get_if::<ScanScratch>() {
                    counters.absorb(&s.counters);
                    s.counters = ScanCounters::default();
                    s.heap.clear();
                    outputs[w] = std::mem::take(&mut s.out);
                }
            },
        );
    }

    let total = slots.iter().map(|&(_, s, e)| e - s).sum();
    let mut all: Vec<ConvergingPair> = Vec::with_capacity(total);
    for &(w, start, end) in &slots {
        debug_assert_ne!(w, usize::MAX, "candidate never scanned");
        all.extend_from_slice(&outputs[w][start..end]);
    }
    (all, counters)
}

/// Per-worker persistent Δ-scan scratch, living across batches in the
/// executor's [`cp_exec::WorkerScratch`]: the row-resolution buffers,
/// the flat pair output, the scan counters and the top-k floor heap.
/// The latter three are drained/reset at the end of every batch.
#[derive(Default)]
struct ScanScratch {
    rows: RowScratch,
    out: Vec<ConvergingPair>,
    counters: ScanCounters,
    heap: BinaryHeap<Reverse<u32>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_top_k;
    use crate::selectors::SelectorKind;
    use cp_graph::builder::graph_from_edges;

    /// Path 0..=7 plus a late chord (0,7) and (2,6).
    fn graphs() -> (Graph, Graph) {
        let base: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let g1 = graph_from_edges(8, &base);
        let mut all = base;
        all.push((0, 7));
        all.push((2, 6));
        let g2 = graph_from_edges(8, &all);
        (g1, g2)
    }

    #[test]
    fn full_budget_recovers_exact_answer() {
        let (g1, g2) = graphs();
        let exact = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 1 }, 2);
        // Budget m = n: every node can be a candidate -> full recovery,
        // regardless of selector.
        for kind in [
            SelectorKind::Degree,
            SelectorKind::MaxAvg,
            SelectorKind::Random,
        ] {
            let mut sel = kind.build(1);
            let res = budgeted_top_k(&g1, &g2, sel.as_mut(), 8, &exact.spec());
            assert_eq!(res.pair_set(), exact.pair_set(), "selector {}", sel.name());
        }
    }

    #[test]
    fn budget_is_respected() {
        let (g1, g2) = graphs();
        for m in [1u64, 2, 3, 5] {
            let mut sel = SelectorKind::Degree.build(0);
            let res = budgeted_top_k(&g1, &g2, sel.as_mut(), m, &TopKSpec::TopK(10));
            assert!(
                res.budget.total() <= 2 * m,
                "m={m}: spent {}",
                res.budget.total()
            );
            assert!(res.candidates.len() as u64 <= m);
        }
    }

    #[test]
    fn found_pairs_all_touch_candidates() {
        let (g1, g2) = graphs();
        let mut sel = SelectorKind::MaxMin.build(0);
        let res = budgeted_top_k(&g1, &g2, sel.as_mut(), 3, &TopKSpec::TopK(100));
        let cand: HashSet<NodeId> = res.candidates.iter().copied().collect();
        for p in &res.pairs {
            assert!(cand.contains(&p.pair.0) || cand.contains(&p.pair.1));
        }
    }

    #[test]
    fn deltas_are_correct() {
        let (g1, g2) = graphs();
        let exact = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 1 }, 2);
        let truth: std::collections::HashMap<_, _> =
            exact.pairs.iter().map(|p| (p.pair, p.delta)).collect();
        let mut sel = SelectorKind::MaxAvg.build(0);
        let res = budgeted_top_k(
            &g1,
            &g2,
            sel.as_mut(),
            4,
            &TopKSpec::Threshold { delta_min: 1 },
        );
        assert!(!res.pairs.is_empty());
        for p in &res.pairs {
            assert_eq!(truth.get(&p.pair), Some(&p.delta), "pair {:?}", p.pair);
        }
    }

    #[test]
    fn zero_budget_yields_nothing() {
        let (g1, g2) = graphs();
        let mut sel = SelectorKind::Degree.build(0);
        let res = budgeted_top_k(&g1, &g2, sel.as_mut(), 0, &TopKSpec::TopK(5));
        assert!(res.pairs.is_empty());
        assert!(res.candidates.is_empty());
        assert_eq!(res.budget.total(), 0);
    }

    #[test]
    fn pairs_sorted_canonically() {
        let (g1, g2) = graphs();
        let mut sel = SelectorKind::MaxAvg.build(0);
        let res = budgeted_top_k(
            &g1,
            &g2,
            sel.as_mut(),
            8,
            &TopKSpec::Threshold { delta_min: 1 },
        );
        for w in res.pairs.windows(2) {
            assert!(w[0].delta > w[1].delta || (w[0].delta == w[1].delta && w[0].pair < w[1].pair));
        }
    }
}
