//! The generic budgeted top-k pipeline (Algorithm 1 of the paper).
//!
//! 1. A [`CandidateSelector`] ranks candidate endpoints, spending part of
//!    the SSSP budget on whatever structural probes it needs (landmark
//!    rows, dispersion picks, classifier features).
//! 2. The pipeline pays for the distance rows of candidates, in rank
//!    order, in both snapshots, until the `2m` budget is exhausted. Rows
//!    the selector already computed are free — this is how dispersion
//!    reuses its `G_t1` rows and why hybrid landmarks "come for free" as
//!    candidates.
//! 3. Every pair in `M × V` gets its Δ computed from the candidate rows;
//!    the pairs matching the [`TopKSpec`] are returned.

use crate::exact::{sort_pairs, ConvergingPair, TopKSpec};
use crate::oracle::{BfsKernel, BudgetLedger, KernelStats, Phase, RowScratch, SnapshotOracle};
use crate::selectors::CandidateSelector;
use cp_graph::{distance_decrease, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Candidate count below which the Δ scan runs inline instead of spawning
/// workers.
const PARALLEL_SCAN_CUTOFF: usize = 8;

/// Wall-clock and cache instrumentation of one pipeline run. Timings are
/// measurements, not results: everything else in [`BudgetedResult`] is
/// bit-identical at any thread count.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Seconds spent in the selector's ranking (Generation phase probes
    /// included).
    pub selector_secs: f64,
    /// Seconds spent admitting and computing candidate rows (TopK phase).
    pub prefetch_secs: f64,
    /// Seconds spent in the `M × V` Δ scan.
    pub scan_secs: f64,
    /// Seconds the oracle spent computing distance rows across *all*
    /// phases (selector probes included) — the time the BFS kernels own.
    pub sssp_secs: f64,
    /// Seconds of `sssp_secs` spent on `G_t2` rows specifically, summed
    /// per work item (comparable across thread counts) — the time
    /// snapshot-delta repair attacks.
    pub sssp_t2_secs: f64,
    /// Total SSSP computations charged (equals the ledger total).
    pub sssp_computed: u64,
    /// Row requests served from cache (free).
    pub cache_hits: u64,
    /// Row requests that required a fresh computation.
    pub cache_misses: u64,
    /// `t2` rows derived by snapshot-delta repair from a resident `t1`
    /// donor row instead of a full sweep.
    pub repaired_rows: u64,
    /// Total nodes settled by repair frontiers; divide by
    /// `repaired_rows` for the mean shrinking-region size.
    pub repair_frontier_nodes: u64,
    /// Paid rows recomputed free of charge after LRU eviction (0 under
    /// the default unbounded row cache).
    pub recomputed_rows: u64,
    /// Bytes of row payload resident in the oracle's cache at the end of
    /// the run.
    pub cache_bytes: usize,
    /// Worker threads the oracle was configured with.
    pub threads: usize,
    /// The unweighted SSSP kernel the oracle ran (`scalar` | `auto`).
    pub kernel: BfsKernel,
    /// Per-kernel work counters: multi-source waves and how many rows each
    /// kernel produced (`msbfs_rows + bfs_rows + dijkstra_rows +
    /// repair_rows` equals `sssp_computed`).
    pub kernel_stats: KernelStats,
}

/// Output of a budgeted run.
#[derive(Clone, Debug)]
pub struct BudgetedResult {
    /// The pairs found, canonically sorted (descending Δ, ascending ids).
    pub pairs: Vec<ConvergingPair>,
    /// The candidate endpoints `M` whose rows were fully paid for, in
    /// ascending id order.
    pub candidates: Vec<NodeId>,
    /// The SSSP spend, split by phase (compare with the paper's Table 1).
    pub budget: BudgetLedger,
    /// Instrumentation of this run (wall clock, cache traffic, threads).
    pub stats: PipelineStats,
}

impl BudgetedResult {
    /// The found pairs as a set of normalized endpoint tuples.
    pub fn pair_set(&self) -> HashSet<(NodeId, NodeId)> {
        self.pairs.iter().map(|p| p.pair).collect()
    }
}

/// Runs the budgeted pipeline with a budget of `2 * m` SSSP computations.
///
/// `m` is the paper's candidate budget: the number of nodes whose
/// single-source shortest paths can be afforded in both snapshots.
pub fn budgeted_top_k(
    g1: &Graph,
    g2: &Graph,
    selector: &mut dyn CandidateSelector,
    m: u64,
    spec: &TopKSpec,
) -> BudgetedResult {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m);
    run_pipeline(&mut oracle, selector, spec)
}

/// Runs the pipeline on a pre-built oracle (callers control the cap; the
/// unbudgeted Incidence baseline passes an unbounded oracle).
pub fn run_pipeline(
    oracle: &mut SnapshotOracle<'_>,
    selector: &mut dyn CandidateSelector,
    spec: &TopKSpec,
) -> BudgetedResult {
    let t_select = Instant::now();
    let ranked = selector.rank(oracle);
    let selector_secs = t_select.elapsed().as_secs_f64();
    oracle.set_phase(Phase::TopK);

    // Nodes outside V_t1 cannot be the endpoint of a pair connected in
    // G_t1, so rows from them would be pure waste. The surviving ranking
    // goes through one batched prefetch: admission stays sequential (same
    // ledger and candidate set as paying one node at a time — a later,
    // partially cached candidate can still fit after an unaffordable one
    // is skipped), only the row computation fans out.
    let t_prefetch = Instant::now();
    let wanted: Vec<NodeId> = ranked
        .into_iter()
        .filter(|&u| oracle.g1().degree(u) > 0)
        .collect();
    oracle.prefetch_node_rows(&wanted);
    let prefetch_secs = t_prefetch.elapsed().as_secs_f64();

    let candidates = oracle.fully_cached_nodes();
    let t_scan = Instant::now();
    let pairs = pairs_from_candidates(oracle, &candidates, spec);
    let scan_secs = t_scan.elapsed().as_secs_f64();

    let (cache_hits, cache_misses) = oracle.cache_stats();
    BudgetedResult {
        pairs,
        candidates,
        budget: oracle.ledger(),
        stats: PipelineStats {
            selector_secs,
            prefetch_secs,
            scan_secs,
            sssp_secs: oracle.sssp_secs(),
            sssp_t2_secs: oracle.sssp_t2_secs(),
            sssp_computed: oracle.ledger().total(),
            cache_hits,
            cache_misses,
            repaired_rows: oracle.repaired_rows(),
            repair_frontier_nodes: oracle.repair_frontier_nodes(),
            recomputed_rows: oracle.recomputed_rows(),
            cache_bytes: oracle.cache_bytes(),
            threads: oracle.threads(),
            kernel: oracle.kernel(),
            kernel_stats: oracle.kernel_stats(),
        },
    }
}

/// Computes the Δ values of all pairs `M × V` from cached candidate rows
/// and cuts them per `spec`.
///
/// The per-candidate scans are independent, so they fan out over the
/// oracle's worker threads; each candidate fills a private buffer and the
/// buffers are merged **in candidate order**, which keeps the first-seen
/// pair deduplication — and therefore the output — bit-identical to a
/// sequential scan at any thread count.
fn pairs_from_candidates(
    oracle: &SnapshotOracle<'_>,
    candidates: &[NodeId],
    spec: &TopKSpec,
) -> Vec<ConvergingPair> {
    let per_candidate = scan_candidate_rows(oracle, candidates);

    // Resolve the Δ floor. For ThresholdFromMax the max is taken over the
    // pairs *visible to this run* (the exact Δmax is unknown within the
    // budget; evaluation harnesses pass an explicit Threshold from the
    // exact baseline instead).
    let mut all: Vec<ConvergingPair> = Vec::new();
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut observed_max = 0u32;
    for bucket in per_candidate {
        for p in bucket {
            observed_max = observed_max.max(p.delta);
            if seen.insert(p.pair) {
                all.push(p);
            }
        }
    }
    let floor = match spec {
        TopKSpec::Threshold { delta_min } => (*delta_min).max(1),
        TopKSpec::ThresholdFromMax { slack } => observed_max.saturating_sub(*slack).max(1),
        TopKSpec::TopK(_) => 1,
    };
    all.retain(|p| p.delta >= floor);
    sort_pairs(&mut all);
    if let TopKSpec::TopK(k) = spec {
        all.truncate(*k);
    }
    all
}

/// The Δ > 0 pairs contributed by each candidate's row pair, one bucket
/// per candidate (not yet deduplicated across candidates).
///
/// Rows are fetched with [`SnapshotOracle::read_rows`]: candidates are
/// *paid* by construction, but under a bounded row cache their bytes may
/// have been evicted, in which case each worker recomputes them into its
/// own [`RowScratch`] — same bits, no charge, no shared mutation.
fn scan_candidate_rows(
    oracle: &SnapshotOracle<'_>,
    candidates: &[NodeId],
) -> Vec<Vec<ConvergingPair>> {
    let scan_one = |u: NodeId, scratch: &mut RowScratch| -> Vec<ConvergingPair> {
        let (d1, d2) = oracle.read_rows(u, scratch);
        let mut found = Vec::new();
        for v_idx in 0..d1.len() {
            if v_idx == u.index() {
                continue;
            }
            let Some(delta) = distance_decrease(d1[v_idx], d2[v_idx]) else {
                continue;
            };
            if delta == 0 {
                continue;
            }
            found.push(ConvergingPair::new(u, NodeId::new(v_idx), delta));
        }
        found
    };

    let threads = oracle.threads().min(candidates.len()).max(1);
    if threads == 1 || candidates.len() < PARALLEL_SCAN_CUTOFF {
        let mut scratch = RowScratch::new();
        return candidates
            .iter()
            .map(|&u| scan_one(u, &mut scratch))
            .collect();
    }
    let slots: Vec<parking_lot::Mutex<Vec<ConvergingPair>>> = (0..candidates.len())
        .map(|_| parking_lot::Mutex::new(Vec::new()))
        .collect();
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut scratch = RowScratch::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= candidates.len() {
                        break;
                    }
                    *slots[i].lock() = scan_one(candidates[i], &mut scratch);
                }
            });
        }
    })
    .expect("scan worker panicked");
    slots.into_iter().map(|m| m.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_top_k;
    use crate::selectors::SelectorKind;
    use cp_graph::builder::graph_from_edges;

    /// Path 0..=7 plus a late chord (0,7) and (2,6).
    fn graphs() -> (Graph, Graph) {
        let base: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let g1 = graph_from_edges(8, &base);
        let mut all = base;
        all.push((0, 7));
        all.push((2, 6));
        let g2 = graph_from_edges(8, &all);
        (g1, g2)
    }

    #[test]
    fn full_budget_recovers_exact_answer() {
        let (g1, g2) = graphs();
        let exact = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 1 }, 2);
        // Budget m = n: every node can be a candidate -> full recovery,
        // regardless of selector.
        for kind in [
            SelectorKind::Degree,
            SelectorKind::MaxAvg,
            SelectorKind::Random,
        ] {
            let mut sel = kind.build(1);
            let res = budgeted_top_k(&g1, &g2, sel.as_mut(), 8, &exact.spec());
            assert_eq!(res.pair_set(), exact.pair_set(), "selector {}", sel.name());
        }
    }

    #[test]
    fn budget_is_respected() {
        let (g1, g2) = graphs();
        for m in [1u64, 2, 3, 5] {
            let mut sel = SelectorKind::Degree.build(0);
            let res = budgeted_top_k(&g1, &g2, sel.as_mut(), m, &TopKSpec::TopK(10));
            assert!(
                res.budget.total() <= 2 * m,
                "m={m}: spent {}",
                res.budget.total()
            );
            assert!(res.candidates.len() as u64 <= m);
        }
    }

    #[test]
    fn found_pairs_all_touch_candidates() {
        let (g1, g2) = graphs();
        let mut sel = SelectorKind::MaxMin.build(0);
        let res = budgeted_top_k(&g1, &g2, sel.as_mut(), 3, &TopKSpec::TopK(100));
        let cand: HashSet<NodeId> = res.candidates.iter().copied().collect();
        for p in &res.pairs {
            assert!(cand.contains(&p.pair.0) || cand.contains(&p.pair.1));
        }
    }

    #[test]
    fn deltas_are_correct() {
        let (g1, g2) = graphs();
        let exact = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 1 }, 2);
        let truth: std::collections::HashMap<_, _> =
            exact.pairs.iter().map(|p| (p.pair, p.delta)).collect();
        let mut sel = SelectorKind::MaxAvg.build(0);
        let res = budgeted_top_k(
            &g1,
            &g2,
            sel.as_mut(),
            4,
            &TopKSpec::Threshold { delta_min: 1 },
        );
        assert!(!res.pairs.is_empty());
        for p in &res.pairs {
            assert_eq!(truth.get(&p.pair), Some(&p.delta), "pair {:?}", p.pair);
        }
    }

    #[test]
    fn zero_budget_yields_nothing() {
        let (g1, g2) = graphs();
        let mut sel = SelectorKind::Degree.build(0);
        let res = budgeted_top_k(&g1, &g2, sel.as_mut(), 0, &TopKSpec::TopK(5));
        assert!(res.pairs.is_empty());
        assert!(res.candidates.is_empty());
        assert_eq!(res.budget.total(), 0);
    }

    #[test]
    fn pairs_sorted_canonically() {
        let (g1, g2) = graphs();
        let mut sel = SelectorKind::MaxAvg.build(0);
        let res = budgeted_top_k(
            &g1,
            &g2,
            sel.as_mut(),
            8,
            &TopKSpec::Threshold { delta_min: 1 },
        );
        for w in res.pairs.windows(2) {
            assert!(w[0].delta > w[1].delta || (w[0].delta == w[1].delta && w[0].pair < w[1].pair));
        }
    }
}
