//! The blocked, branch-free Δ-scan kernel behind the `M × V` pair scan.
//!
//! The scan is a pure reduction over two distance rows: for every node `v`
//! compute `Δ(u, v) = d_t1[v] − d_t2[v]` and keep the pairs above the
//! [`TopKSpec`](crate::exact::TopKSpec) floor. The reference
//! implementation is a per-element `Option` loop; this module replaces it
//! (under [`ScanKernel::Auto`]) with a blocked kernel that is
//! memory-bandwidth-bound instead of branch-bound:
//!
//! * **Branch-free deltas.** `Δ = saturating_sub(d1, d2) · (d1 ≠ INF)` —
//!   the saturating subtraction zeroes the `d2 = INF` case on its own
//!   (growth-only snapshots never shrink distances), the finiteness mask
//!   zeroes the excluded `d1 = INF` pairs. Straight-line code over `u16`
//!   or `u32` lanes, which the compiler autovectorizes.
//! * **Chunk skipping.** Rows are walked in [`SCAN_CHUNK`]-element chunks.
//!   Each chunk's maximum Δ is computed branch-free first; a chunk whose
//!   maximum is below the current shared floor is skipped without
//!   materializing anything — and because the floor is at least 1, the
//!   common all-zero chunks (regions untouched by the snapshot delta) are
//!   always skipped.
//! * **A shared rising floor.** The floor is an `AtomicU32` that only
//!   rises: fixed for `Threshold`, raised from the exact running maximum
//!   for `ThresholdFromMax`, raised by workers' full local top-k buffers
//!   for `TopK` (see `topk.rs`). Every chunk maximum — skipped chunks
//!   included — is folded into the shared `observed_max` first, so the
//!   running maximum (and with it the final cut) is exact regardless of
//!   which chunks were skipped.
//!
//! Skipping is conservative by construction: a pair emitted by the
//! reference loop and surviving the final cut has `Δ ≥ final floor ≥` any
//! intermediate floor, so its chunk maximum can never test below the floor
//! and per-element filtering can never drop it. Pruned pairs are exactly
//! those the final cut would discard, which is why results stay
//! bit-identical to [`ScanKernel::Scalar`] at any thread count while
//! [`ScanCounters`] (a wall-clock statistic, like timings) may vary run to
//! run.

use cp_graph::rowpack::{widen_u16_into, RowRef, INF_U16};
use cp_graph::INF;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};

/// Elements per scan chunk: the granularity of the skip test (and of
/// `observed_max`/floor updates).
pub const SCAN_CHUNK: usize = 1024;

/// Which Δ-scan kernel the pipeline runs.
///
/// Kernel choice never changes *what* is found: pairs, candidates, and
/// ledger are bit-identical under either kernel at any thread count and
/// cache budget (conformance-tested in `crates/core/tests/conformance.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanKernel {
    /// The reference per-element loop — the pre-optimization behaviour,
    /// kept for A/B runs.
    Scalar,
    /// The blocked, branch-free, chunk-skipping kernel. The default.
    #[default]
    Auto,
}

impl ScanKernel {
    /// Parses a knob spelling: `scalar`, `auto`, or empty (→ default).
    /// Unknown spellings are `None` so callers can warn instead of
    /// silently falling back.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() || s.eq_ignore_ascii_case("auto") {
            Some(ScanKernel::Auto)
        } else if s.eq_ignore_ascii_case("scalar") {
            Some(ScanKernel::Scalar)
        } else {
            None
        }
    }

    /// Reads `CP_SCAN_KERNEL` (`scalar` | `auto`); anything else (or
    /// unset) means [`ScanKernel::Auto`] — mirroring `CP_BFS_KERNEL`,
    /// with a one-time stderr warning on an unparseable value.
    pub fn from_env() -> Self {
        match std::env::var("CP_SCAN_KERNEL") {
            Ok(s) => Self::parse(&s).unwrap_or_else(|| {
                crate::oracle::warn_bad_knob("CP_SCAN_KERNEL", &s, "auto");
                ScanKernel::Auto
            }),
            Err(_) => ScanKernel::Auto,
        }
    }

    /// The knob spelling of this kernel (`"scalar"` / `"auto"`).
    pub fn name(self) -> &'static str {
        match self {
            ScanKernel::Scalar => "scalar",
            ScanKernel::Auto => "auto",
        }
    }
}

/// Per-worker Δ-scan work counters, flushed into the run's totals after
/// each row. Counters are wall-clock statistics: they depend on floor
/// timing across workers and may vary run to run, unlike results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanCounters {
    /// Chunks whose elements were walked (their maximum met the floor).
    pub chunks_scanned: u64,
    /// Chunks skipped whole: maximum Δ below the floor, nothing
    /// materialized.
    pub chunks_skipped: u64,
    /// Individual Δ ≥ 1 values in scanned chunks that tested below the
    /// floor — pairs the reference kernel would have materialized and the
    /// final cut would have discarded.
    pub pairs_pruned: u64,
}

impl ScanCounters {
    /// Accumulates another counter set (worker flush).
    pub fn absorb(&mut self, other: &ScanCounters) {
        self.chunks_scanned += other.chunks_scanned;
        self.chunks_skipped += other.chunks_skipped;
        self.pairs_pruned += other.pairs_pruned;
    }
}

/// A distance element the blocked kernel can scan: `u16`-packed or full
/// `u32` rows, each with its own sentinel.
trait PackedDelta: Copy {
    /// Branch-free `Δ(v)`: `saturating_sub(d1, d2)` masked to zero when
    /// `d1` is the unreachable sentinel (matching
    /// [`cp_graph::distance_decrease`]: `d1 = INF` pairs are excluded and
    /// `d2 = INF` saturates to no decrease).
    fn delta_u32(d1: Self, d2: Self) -> u32;

    /// Maximum `Δ` over a chunk, accumulated at native width — a
    /// straight-line loop the compiler autovectorizes.
    fn chunk_max(d1: &[Self], d2: &[Self]) -> u32;
}

impl PackedDelta for u16 {
    #[inline(always)]
    fn delta_u32(d1: u16, d2: u16) -> u32 {
        let fin = (d1 != INF_U16) as u16;
        u32::from(d1.saturating_sub(d2) * fin)
    }

    fn chunk_max(d1: &[u16], d2: &[u16]) -> u32 {
        let mut m = 0u16;
        for (&a, &b) in d1.iter().zip(d2) {
            let fin = (a != INF_U16) as u16;
            m = m.max(a.saturating_sub(b) * fin);
        }
        u32::from(m)
    }
}

impl PackedDelta for u32 {
    #[inline(always)]
    fn delta_u32(d1: u32, d2: u32) -> u32 {
        let fin = (d1 != INF) as u32;
        d1.saturating_sub(d2) * fin
    }

    fn chunk_max(d1: &[u32], d2: &[u32]) -> u32 {
        let mut m = 0u32;
        for (&a, &b) in d1.iter().zip(d2) {
            let fin = (a != INF) as u32;
            m = m.max(a.saturating_sub(b) * fin);
        }
        m
    }
}

/// The blocked kernel over one row pair at a single storage width.
#[allow(clippy::too_many_arguments)]
fn scan_packed<T: PackedDelta>(
    d1: &[T],
    d2: &[T],
    start: usize,
    floor: &AtomicU32,
    observed_max: &AtomicU32,
    from_max_slack: Option<u32>,
    counters: &mut ScanCounters,
    emit: &mut dyn FnMut(usize, u32),
) {
    let n = d1.len();
    debug_assert_eq!(n, d2.len(), "row length mismatch");
    let mut base = start;
    while base < n {
        let end = (base + SCAN_CHUNK).min(n);
        let cmax = T::chunk_max(&d1[base..end], &d2[base..end]);
        // Fold every chunk maximum — skipped ones included — into the
        // shared running maximum, so it is exact at the end of the scan.
        let prev = observed_max.fetch_max(cmax, Ordering::Relaxed);
        if let Some(slack) = from_max_slack {
            let new_floor = prev.max(cmax).saturating_sub(slack).max(1);
            floor.fetch_max(new_floor, Ordering::Relaxed);
        }
        let f = floor.load(Ordering::Relaxed);
        if cmax < f {
            counters.chunks_skipped += 1;
            base = end;
            continue;
        }
        counters.chunks_scanned += 1;
        for i in base..end {
            let delta = T::delta_u32(d1[i], d2[i]);
            if delta == 0 {
                continue;
            }
            if delta >= f {
                emit(i, delta);
            } else {
                counters.pairs_pruned += 1;
            }
        }
        base = end;
    }
}

/// Runs the blocked kernel over a row pair at whatever width the rows are
/// stored, emitting `(node index, Δ)` for every surviving `Δ ≥ 1` element
/// from `start` onward.
///
/// * `floor` — the shared rising Δ lower bound; elements and whole chunks
///   below it are pruned. Must start at the spec's initial floor (≥ 1).
/// * `observed_max` — the shared running maximum Δ; exact after the scan
///   (skipped chunks still contribute their maxima).
/// * `from_max_slack` — `Some(slack)` under `ThresholdFromMax`: the floor
///   is raised to `running max − slack` as the scan discovers larger Δs.
///
/// A mixed-width pair (one snapshot packed, the other not — e.g. an
/// unweighted `t1` against a weighted `t2`) is widened to `u32` first;
/// the oracle's packed reads normalize widths, so this path is cold.
#[allow(clippy::too_many_arguments)]
pub fn scan_delta_row(
    r1: RowRef<'_>,
    r2: RowRef<'_>,
    start: usize,
    floor: &AtomicU32,
    observed_max: &AtomicU32,
    from_max_slack: Option<u32>,
    counters: &mut ScanCounters,
    emit: &mut dyn FnMut(usize, u32),
) {
    match (r1, r2) {
        (RowRef::U16(a), RowRef::U16(b)) => scan_packed(
            a,
            b,
            start,
            floor,
            observed_max,
            from_max_slack,
            counters,
            emit,
        ),
        (RowRef::U32(a), RowRef::U32(b)) => scan_packed(
            a,
            b,
            start,
            floor,
            observed_max,
            from_max_slack,
            counters,
            emit,
        ),
        (a, b) => {
            let (mut w1, mut w2) = (Vec::new(), Vec::new());
            let a = match a {
                RowRef::U16(p) => {
                    widen_u16_into(p, &mut w1);
                    w1.as_slice()
                }
                RowRef::U32(r) => r,
            };
            let b = match b {
                RowRef::U16(p) => {
                    widen_u16_into(p, &mut w2);
                    w2.as_slice()
                }
                RowRef::U32(r) => r,
            };
            scan_packed(
                a,
                b,
                start,
                floor,
                observed_max,
                from_max_slack,
                counters,
                emit,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::distance_decrease;
    use cp_graph::rowpack::pack_u16_into;

    #[test]
    fn kernel_parser_accepts_canonical_spellings() {
        assert_eq!(ScanKernel::parse("scalar"), Some(ScanKernel::Scalar));
        assert_eq!(ScanKernel::parse(" Scalar "), Some(ScanKernel::Scalar));
        assert_eq!(ScanKernel::parse("auto"), Some(ScanKernel::Auto));
        assert_eq!(ScanKernel::parse(""), Some(ScanKernel::Auto));
        assert_eq!(ScanKernel::parse("blocked"), None);
    }

    /// Deterministic pseudo-random row pair with INF holes and a planted
    /// spike, long enough to span several chunks.
    fn synthetic_rows(n: usize, spike_at: usize, spike: u32) -> (Vec<u32>, Vec<u32>) {
        let mut d1 = Vec::with_capacity(n);
        let mut d2 = Vec::with_capacity(n);
        let mut x = 0x9e37_79b9u32;
        for i in 0..n {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let base = x % 40_000;
            if x % 17 == 0 {
                d1.push(INF);
                d2.push(x % 5);
            } else if x % 23 == 0 {
                d1.push(base);
                d2.push(INF);
            } else {
                let dec = if i == spike_at { spike } else { x % 3 };
                d1.push(base.max(dec));
                d2.push(base.max(dec) - dec);
            }
        }
        (d1, d2)
    }

    fn reference_emissions(d1: &[u32], d2: &[u32], start: usize) -> Vec<(usize, u32)> {
        (start..d1.len())
            .filter_map(|i| {
                distance_decrease(d1[i], d2[i])
                    .filter(|&d| d > 0)
                    .map(|d| (i, d))
            })
            .collect()
    }

    fn run_kernel(
        r1: RowRef<'_>,
        r2: RowRef<'_>,
        start: usize,
        floor0: u32,
        slack: Option<u32>,
    ) -> (Vec<(usize, u32)>, u32, u32, ScanCounters) {
        let floor = AtomicU32::new(floor0);
        let omax = AtomicU32::new(0);
        let mut counters = ScanCounters::default();
        let mut out = Vec::new();
        scan_delta_row(
            r1,
            r2,
            start,
            &floor,
            &omax,
            slack,
            &mut counters,
            &mut |i, d| out.push((i, d)),
        );
        (
            out,
            omax.load(Ordering::Relaxed),
            floor.load(Ordering::Relaxed),
            counters,
        )
    }

    #[test]
    fn matches_reference_loop_with_floor_one() {
        let (d1, d2) = synthetic_rows(5000, 2345, 9);
        let expected = reference_emissions(&d1, &d2, 0);
        let (got, omax, _, _) = run_kernel(RowRef::U32(&d1), RowRef::U32(&d2), 0, 1, None);
        assert_eq!(got, expected);
        assert_eq!(omax, expected.iter().map(|&(_, d)| d).max().unwrap());
    }

    #[test]
    fn u16_and_u32_paths_agree() {
        let (mut d1, mut d2) = synthetic_rows(4000, 100, 7);
        // Clamp finite distances into u16 range for the packed variant.
        for v in d1.iter_mut().chain(d2.iter_mut()) {
            if *v != INF {
                *v %= 60_000;
            }
        }
        // Re-impose monotonicity after clamping.
        for (a, b) in d1.iter_mut().zip(d2.iter_mut()) {
            if *a != INF && *b != INF && *b > *a {
                *b = *a;
            }
        }
        let (mut p1, mut p2) = (Vec::new(), Vec::new());
        pack_u16_into(&d1, &mut p1);
        pack_u16_into(&d2, &mut p2);
        let wide = run_kernel(RowRef::U32(&d1), RowRef::U32(&d2), 0, 1, None);
        let packed = run_kernel(RowRef::U16(&p1), RowRef::U16(&p2), 0, 1, None);
        let mixed = run_kernel(RowRef::U16(&p1), RowRef::U32(&d2), 0, 1, None);
        assert_eq!(wide.0, packed.0);
        assert_eq!(wide.1, packed.1);
        assert_eq!(wide.0, mixed.0);
    }

    #[test]
    fn chunks_below_the_floor_are_skipped_and_counted() {
        // One spike of 9 far into the row; floor 5 kills everything else.
        let (d1, d2) = synthetic_rows(8 * SCAN_CHUNK, 6 * SCAN_CHUNK + 17, 9);
        let expected: Vec<(usize, u32)> = reference_emissions(&d1, &d2, 0)
            .into_iter()
            .filter(|&(_, d)| d >= 5)
            .collect();
        let (got, omax, _, counters) = run_kernel(RowRef::U32(&d1), RowRef::U32(&d2), 0, 5, None);
        assert_eq!(got, expected);
        assert_eq!(omax, 9, "skipped chunks still feed the running max");
        assert!(counters.chunks_skipped >= 6, "cold chunks must be skipped");
        assert!(counters.chunks_scanned >= 1);
        assert_eq!(
            counters.chunks_scanned + counters.chunks_skipped,
            8,
            "every chunk is either scanned or skipped"
        );
    }

    #[test]
    fn from_max_raises_the_floor_as_the_scan_proceeds() {
        // Spike early so later chunks see the raised floor and skip.
        let (d1, d2) = synthetic_rows(8 * SCAN_CHUNK, 10, 12);
        let (got, omax, floor, counters) =
            run_kernel(RowRef::U32(&d1), RowRef::U32(&d2), 0, 1, Some(1));
        assert_eq!(omax, 12);
        assert_eq!(floor, 11, "floor follows max − slack");
        assert!(counters.chunks_skipped >= 6);
        // Everything the final ThresholdFromMax cut keeps must be emitted.
        let surviving: Vec<(usize, u32)> = reference_emissions(&d1, &d2, 0)
            .into_iter()
            .filter(|&(_, d)| d >= 11)
            .collect();
        for p in &surviving {
            assert!(got.contains(p), "answer pair {p:?} was pruned");
        }
    }

    #[test]
    fn start_offset_is_honored() {
        let (d1, d2) = synthetic_rows(3000, 40, 6);
        let start = 1500;
        let expected = reference_emissions(&d1, &d2, start);
        let (got, omax, _, _) = run_kernel(RowRef::U32(&d1), RowRef::U32(&d2), start, 1, None);
        assert_eq!(got, expected);
        // The pre-start spike is invisible to this scan.
        assert_eq!(
            omax,
            expected.iter().map(|&(_, d)| d).max().unwrap_or(0),
            "observed max covers [start, n) only"
        );
    }

    #[test]
    fn kernel_knob_parses() {
        assert_eq!(ScanKernel::default(), ScanKernel::Auto);
        assert_eq!(ScanKernel::Scalar.name(), "scalar");
        assert_eq!(ScanKernel::Auto.name(), "auto");
    }

    #[test]
    fn counters_absorb() {
        let mut a = ScanCounters {
            chunks_scanned: 1,
            chunks_skipped: 2,
            pairs_pruned: 3,
        };
        a.absorb(&ScanCounters {
            chunks_scanned: 10,
            chunks_skipped: 20,
            pairs_pruned: 30,
        });
        assert_eq!(a.chunks_scanned, 11);
        assert_eq!(a.chunks_skipped, 22);
        assert_eq!(a.pairs_pruned, 33);
    }
}
