//! Exact computation of the top-k converging pairs (the baseline that the
//! budgeted algorithms are measured against).
//!
//! The exact solution computes, for every node, its BFS distance row in
//! both snapshots and keeps the pairs with the largest decrease. Rows are
//! streamed in parallel (never materializing an `n × n` matrix); workers
//! keep pruned local buffers and share a global lower bound on the
//! interesting Δ, so memory stays proportional to the answer.

use crate::scan::{scan_delta_row, ScanCounters, ScanKernel};
use cp_graph::apsp::for_each_source_pairwise;
use cp_graph::rowpack::RowRef;
use cp_graph::{distance_decrease, Graph, NodeId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};

/// A converging pair: normalized endpoints (`pair.0 < pair.1`) and the
/// distance decrease between the snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergingPair {
    /// The node pair, normalized so `pair.0 < pair.1`.
    pub pair: (NodeId, NodeId),
    /// `Δ = d_t1 − d_t2`.
    pub delta: u32,
}

impl ConvergingPair {
    /// Creates a normalized pair.
    pub fn new(u: NodeId, v: NodeId, delta: u32) -> Self {
        let pair = if u < v { (u, v) } else { (v, u) };
        ConvergingPair { pair, delta }
    }
}

/// How the answer set is cut.
///
/// The paper evaluates with a *threshold* convention: because many pairs tie
/// on Δ, it sets `k` to the number of pairs with `Δ ≥ δ` where
/// `δ ∈ {Δmax, Δmax−1, Δmax−2}`, which makes the optimal answer unique
/// ("Setting k as above makes the problem harder", §5.1). Plain top-k with
/// deterministic tie-breaking is also provided.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopKSpec {
    /// The `k` pairs with the largest Δ; ties broken by ascending node ids,
    /// so the answer is deterministic but not canonical.
    TopK(usize),
    /// All pairs with `Δ ≥ delta_min` (and `Δ ≥ 1`).
    Threshold {
        /// The minimum distance decrease to include.
        delta_min: u32,
    },
    /// All pairs with `Δ ≥ Δmax − slack`, where `Δmax` is the largest
    /// decrease observed between the snapshots. `slack = i` is the paper's
    /// `δ = Δmax − i` setting.
    ThresholdFromMax {
        /// How far below the maximum decrease to cut.
        slack: u32,
    },
}

impl TopKSpec {
    /// The Δ floor known *before* any row is scanned: a pair below this
    /// value can never appear in the answer, whatever the snapshots hold.
    ///
    /// `Threshold` fixes its floor outright (clamped to ≥ 1 — a
    /// converging pair needs a positive decrease); `TopK(0)` keeps
    /// nothing, so its floor is the ceiling `u32::MAX`; the remaining
    /// specs only learn their final cut from the data and start at 1.
    /// This is the initial value of the scan's shared rising floor and
    /// the bound the oracle's SSSP truncation and the landmark pre-filter
    /// prune against — all three prune conservatively below a floor that
    /// only ever rises, which is why pruning never changes results.
    pub fn initial_floor(&self) -> u32 {
        match self {
            TopKSpec::Threshold { delta_min } => (*delta_min).max(1),
            TopKSpec::TopK(0) => u32::MAX,
            TopKSpec::ThresholdFromMax { .. } | TopKSpec::TopK(_) => 1,
        }
    }
}

/// The exact answer, plus the effective threshold it was cut at.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExactTopK {
    /// Answer pairs, sorted by descending Δ then ascending ids.
    pub pairs: Vec<ConvergingPair>,
    /// The maximum Δ over all connected pairs of `G_t1`.
    pub delta_max: u32,
    /// The smallest Δ present in `pairs` (0 if empty).
    pub delta_min: u32,
}

impl ExactTopK {
    /// Number of answer pairs (`k`).
    pub fn k(&self) -> usize {
        self.pairs.len()
    }

    /// A [`TopKSpec`] that reproduces exactly this answer set on the same
    /// snapshots: a threshold at `delta_min`. Budgeted runs use this so
    /// that "the algorithm found a pair" means "a pair of the unique
    /// optimal answer".
    pub fn spec(&self) -> TopKSpec {
        TopKSpec::Threshold {
            delta_min: self.delta_min.max(1),
        }
    }

    /// The answer as a hash set of normalized pairs.
    pub fn pair_set(&self) -> std::collections::HashSet<(NodeId, NodeId)> {
        self.pairs.iter().map(|p| p.pair).collect()
    }
}

/// Sorts pairs canonically: descending Δ, then ascending `(u, v)` — the
/// order every answer list in the library uses (the budgeted pipeline,
/// the exact baseline, and `cp-query`'s per-seed top-k).
pub fn sort_pairs(pairs: &mut [ConvergingPair]) {
    pairs.sort_unstable_by(|a, b| b.delta.cmp(&a.delta).then(a.pair.cmp(&b.pair)));
}

/// Computes the exact top-k converging pairs between two snapshots.
///
/// `threads` bounds the BFS worker count. The full computation is
/// `2n` single-source shortest paths — the cost the budgeted algorithms
/// avoid — so expect seconds at the paper's graph sizes.
///
/// The Δ scan over each row pair runs the kernel selected by
/// `CP_SCAN_KERNEL` (see [`ScanKernel::from_env`]); results are identical
/// under either kernel.
pub fn exact_top_k(g1: &Graph, g2: &Graph, spec: &TopKSpec, threads: usize) -> ExactTopK {
    exact_top_k_with_kernel(g1, g2, spec, threads, ScanKernel::from_env())
}

/// [`exact_top_k`] with an explicit Δ-scan kernel (conformance tests
/// sweep this; normal callers go through the env knob).
pub fn exact_top_k_with_kernel(
    g1: &Graph,
    g2: &Graph,
    spec: &TopKSpec,
    threads: usize,
    kernel: ScanKernel,
) -> ExactTopK {
    // Workers keep pairs with Δ >= the current global pruning threshold,
    // which only grows. For Threshold specs it is fixed; for the other
    // specs it starts at 1 and rises as better pairs are discovered.
    let prune_floor = AtomicU32::new(match spec {
        TopKSpec::Threshold { delta_min } => (*delta_min).max(1),
        _ => 1,
    });
    let delta_max = AtomicU32::new(0);
    let merged: Mutex<Vec<ConvergingPair>> = Mutex::new(Vec::new());
    let from_max_slack = match spec {
        TopKSpec::ThresholdFromMax { slack } => Some(*slack),
        _ => None,
    };

    // Per-buffer soft capacity before a worker re-prunes locally.
    const PRUNE_AT: usize = 1 << 16;

    for_each_source_pairwise(g1, g2, threads, |src, d1, d2| {
        let mut local: Vec<ConvergingPair> = Vec::new();
        let u = src;
        // Only the upper triangle: v > u, each pair visited from its
        // lower endpoint.
        let start = u.index() + 1;
        match kernel {
            ScanKernel::Auto => {
                // The blocked kernel folds every chunk maximum into
                // `delta_max` (skipped chunks included), so the final
                // floor resolution below sees the exact maximum; per-row
                // counters are not surfaced here.
                let mut counters = ScanCounters::default();
                scan_delta_row(
                    RowRef::U32(d1),
                    RowRef::U32(d2),
                    start,
                    &prune_floor,
                    &delta_max,
                    from_max_slack,
                    &mut counters,
                    &mut |v_idx, delta| {
                        local.push(ConvergingPair::new(u, NodeId::new(v_idx), delta));
                        if local.len() >= PRUNE_AT {
                            let floor = prune_floor.load(Ordering::Relaxed);
                            local.retain(|p| p.delta >= floor);
                            if local.len() >= PRUNE_AT {
                                // Genuinely that many qualifying pairs;
                                // flush to bound worker memory.
                                merged.lock().append(&mut local);
                            }
                        }
                    },
                );
            }
            ScanKernel::Scalar => {
                for v_idx in start..d1.len() {
                    let Some(delta) = distance_decrease(d1[v_idx], d2[v_idx]) else {
                        continue;
                    };
                    if delta == 0 {
                        continue;
                    }
                    let old_max = delta_max.fetch_max(delta, Ordering::Relaxed).max(delta);
                    if let Some(slack) = from_max_slack {
                        let new_floor = old_max.saturating_sub(slack).max(1);
                        prune_floor.fetch_max(new_floor, Ordering::Relaxed);
                    }
                    if delta >= prune_floor.load(Ordering::Relaxed) {
                        local.push(ConvergingPair::new(u, NodeId::new(v_idx), delta));
                        if local.len() >= PRUNE_AT {
                            let floor = prune_floor.load(Ordering::Relaxed);
                            local.retain(|p| p.delta >= floor);
                            if local.len() >= PRUNE_AT {
                                // Genuinely that many qualifying pairs;
                                // flush to the shared buffer to bound
                                // worker memory.
                                merged.lock().append(&mut local);
                            }
                        }
                    }
                }
            }
        }
        if !local.is_empty() {
            merged.lock().append(&mut local);
        }
    });

    let dmax = delta_max.load(Ordering::Relaxed);
    let mut pairs = merged.into_inner();
    let floor = match spec {
        TopKSpec::Threshold { delta_min } => (*delta_min).max(1),
        TopKSpec::ThresholdFromMax { slack } => dmax.saturating_sub(*slack).max(1),
        TopKSpec::TopK(_) => 1,
    };
    pairs.retain(|p| p.delta >= floor);
    sort_pairs(&mut pairs);
    if let TopKSpec::TopK(k) = spec {
        pairs.truncate(*k);
    }
    let delta_min = pairs.last().map(|p| p.delta).unwrap_or(0);
    ExactTopK {
        pairs,
        delta_max: dmax,
        delta_min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::graph_from_edges;

    /// Path 0-1-2-3-4-5 in g1; g2 adds the chord (0,5) and the edge (1,4).
    fn shortcut_pair() -> (Graph, Graph) {
        let base = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)];
        let g1 = graph_from_edges(6, &base);
        let mut all = base.to_vec();
        all.push((0, 5));
        all.push((1, 4));
        let g2 = graph_from_edges(6, &all);
        (g1, g2)
    }

    #[test]
    fn finds_the_maximal_pair() {
        let (g1, g2) = shortcut_pair();
        let res = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 0 }, 2);
        // d1(0,5)=5, d2(0,5)=1 -> delta 4, the unique max.
        assert_eq!(res.delta_max, 4);
        assert_eq!(
            res.pairs,
            vec![ConvergingPair::new(NodeId(0), NodeId(5), 4)]
        );
        assert_eq!(res.delta_min, 4);
        assert_eq!(res.k(), 1);
    }

    #[test]
    fn threshold_from_max_with_slack() {
        let (g1, g2) = shortcut_pair();
        let res = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 1 }, 2);
        // delta >= 3: (0,5)=4, (0,4): d1=4,d2=2 -> 2; (1,5): d1=4, d2=2 -> 2;
        // (1,4): d1=3, d2=1 -> 2. So only delta 4 and... check delta 3 pairs:
        // (2,5): d1=3, d2=min(2+? ) g2 dists from 5: 5-0=1,5-4=1; d2(2,5)=
        // min over: 2-1-0-5 = 3, 2-3-4-5=3, 2-1-4-5? 1-4 edge: 2-1-4-5 = 3 -> 3? No decrease? d1(2,5)=3 -> delta 0.
        // Only (0,5) has delta >= 3.
        assert_eq!(res.pairs.len(), 1);
        let res2 = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 2 }, 2);
        // Now delta >= 2 pairs join.
        assert!(res2.pairs.len() > 1);
        assert!(res2.pairs.iter().all(|p| p.delta >= 2));
        assert_eq!(res2.pairs[0].delta, 4);
        assert_eq!(res2.delta_min, 2);
    }

    #[test]
    fn explicit_threshold() {
        let (g1, g2) = shortcut_pair();
        let res = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 2 }, 1);
        assert!(res.pairs.iter().all(|p| p.delta >= 2));
        let res_all = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 1 }, 1);
        assert!(res_all.pairs.len() >= res.pairs.len());
    }

    #[test]
    fn plain_top_k_truncates_deterministically() {
        let (g1, g2) = shortcut_pair();
        let res = exact_top_k(&g1, &g2, &TopKSpec::TopK(3), 2);
        assert_eq!(res.pairs.len(), 3);
        // Sorted descending by delta.
        assert!(res.pairs.windows(2).all(|w| w[0].delta >= w[1].delta));
        // Deterministic across runs.
        let res2 = exact_top_k(&g1, &g2, &TopKSpec::TopK(3), 4);
        assert_eq!(res.pairs, res2.pairs);
    }

    #[test]
    fn disconnected_pairs_excluded() {
        // g1: two components; g2 connects them. The newly connected pairs
        // must NOT appear (they were not connected in g1).
        let g1 = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let g2 = graph_from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let res = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 1 }, 2);
        assert!(res.pairs.is_empty());
        assert_eq!(res.delta_max, 0);
    }

    #[test]
    fn identical_snapshots_have_no_pairs() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let res = exact_top_k(&g, &g, &TopKSpec::ThresholdFromMax { slack: 2 }, 2);
        assert!(res.pairs.is_empty());
        assert_eq!(res.delta_max, 0);
        assert_eq!(res.delta_min, 0);
    }

    #[test]
    fn spec_roundtrip_reproduces_answer() {
        let (g1, g2) = shortcut_pair();
        let res = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 2 }, 2);
        let again = exact_top_k(&g1, &g2, &res.spec(), 2);
        assert_eq!(res.pairs, again.pairs);
    }

    #[test]
    fn pair_normalization() {
        let p = ConvergingPair::new(NodeId(5), NodeId(2), 3);
        assert_eq!(p.pair, (NodeId(2), NodeId(5)));
    }

    #[test]
    fn pair_set_contains_all() {
        let (g1, g2) = shortcut_pair();
        let res = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 2 }, 2);
        let set = res.pair_set();
        assert_eq!(set.len(), res.pairs.len());
        for p in &res.pairs {
            assert!(set.contains(&p.pair));
        }
    }
}
