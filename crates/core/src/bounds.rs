//! Reusable landmark bound machinery: certified Δ bounds for arbitrary
//! pairs, and the resident-row landmark indexes behind the pipeline's
//! pre-filter and the streaming query path.
//!
//! The budgeted pipeline *verifies* a pair's Δ by owning one endpoint's
//! full distance rows. But the `2l` landmark rows the landmark selectors
//! already paid for support a cheaper, weaker statement: by the triangle
//! inequality,
//!
//! ```text
//! Δ(u, v) = d1(u, v) − d2(u, v)
//!         ≥ LB1(u, v) − UB2(u, v)
//!         = max_w |d1(u,w) − d1(v,w)|  −  min_w (d2(u,w) + d2(w,v))
//! ```
//!
//! so any pair whose bound gap reaches `δ` is a **certified** converging
//! pair — no SSSP from either endpoint required, `O(l)` time per queried
//! pair. This turns the landmark rows into a verification oracle: screen
//! hypothesized pairs (from any source — an analyst, another heuristic, a
//! recommender) at almost zero cost, falling back to the budgeted pipeline
//! only for the uncertain ones.
//!
//! Two consumers share this module:
//!
//! * the pipeline's landmark **pre-filter** ([`all_pairs_below`]), which
//!   drops candidates whose every pair is certified below the scan floor
//!   before any of their rows is materialized, and
//! * the streaming **query index**, which captures
//!   [`resident_landmark_indexes`] at epoch publish so point queries can
//!   be bracketed after the oracle is gone.

use crate::exact::ConvergingPair;
use crate::oracle::{Snapshot, SnapshotOracle};
use cp_graph::landmark_index::LandmarkIndex;
use cp_graph::rowpack::{widen_u16_into, RowRef};
use cp_graph::{NodeId, INF};

/// Cap on the landmark rows folded into resident-row triangle bounds:
/// each landmark costs one `O(n)` sweep per bounded node, so past a
/// handful the marginal bound tightening stops paying for itself.
pub const MAX_RESIDENT_LANDMARKS: usize = 16;

/// One resident row widened to canonical `u32`.
fn widen(r: RowRef<'_>) -> Vec<u32> {
    match r {
        RowRef::U32(row) => row.to_vec(),
        RowRef::U16(packed) => {
            let mut wide = Vec::new();
            widen_u16_into(packed, &mut wide);
            wide
        }
    }
}

/// Builds one landmark index per snapshot from rows the oracle already
/// holds — fully paid candidates whose exact rows are resident in *both*
/// snapshots, the first `max` in ascending id order. Free: nothing is
/// computed or charged (`&self` access only). `None` when no such node
/// exists (e.g. a selector that paid for nothing, or a `Bytes(0)` cache).
pub fn resident_landmark_indexes(
    oracle: &SnapshotOracle<'_>,
    max: usize,
) -> Option<(LandmarkIndex, LandmarkIndex)> {
    let mut landmarks = Vec::new();
    let mut rows1 = Vec::new();
    let mut rows2 = Vec::new();
    for w in oracle.fully_cached_nodes() {
        let Some((r1, r2)) = oracle.cached_rows(w) else {
            continue;
        };
        landmarks.push(w);
        rows1.push(widen(r1));
        rows2.push(widen(r2));
        if landmarks.len() >= max {
            break;
        }
    }
    if landmarks.is_empty() {
        return None;
    }
    Some((
        LandmarkIndex::from_rows(landmarks.clone(), rows1),
        LandmarkIndex::from_rows(landmarks, rows2),
    ))
}

/// Whether **every** pair of `u` is certified to scan below `floor`:
/// `UB1(u, v) − LB2(u, v) < floor` for all `v ≠ u`, or `LB2(u, v) = ∞`
/// (which proves `d2(u, v) = ∞`, hence Δ = 0 under the scan's convention).
/// When this holds, no pair of `u` can survive the final cut, so its rows
/// can only prove what is already proven.
///
/// `ub1`/`lb2` are caller-owned scratch (resized and overwritten) so a
/// sweep over many candidates reuses two allocations.
pub fn all_pairs_below(
    index1: &LandmarkIndex,
    index2: &LandmarkIndex,
    u: NodeId,
    floor: u32,
    ub1: &mut Vec<u32>,
    lb2: &mut Vec<u32>,
) -> bool {
    index1.accumulate_upper_bounds(u, ub1);
    index2.accumulate_lower_bounds(u, lb2);
    ub1.iter()
        .zip(lb2.iter())
        .enumerate()
        .all(|(v, (&ub, &lb))| {
            v == u.index() || lb == INF || (ub != INF && ub.saturating_sub(lb) < floor)
        })
}

/// Landmark bounds over a snapshot pair.
pub struct DeltaBounds {
    index1: LandmarkIndex,
    index2: LandmarkIndex,
}

impl DeltaBounds {
    /// Builds bounds from explicit landmark indexes (one per snapshot;
    /// they may use different landmark sets, though sharing one set is
    /// the economical choice).
    pub fn new(index1: LandmarkIndex, index2: LandmarkIndex) -> Self {
        DeltaBounds { index1, index2 }
    }

    /// Builds bounds through the budget oracle, charging (at most) `2·|L|`
    /// SSSPs to the current phase — rows the oracle already holds are
    /// free, so calling this after a landmark selector ran costs nothing.
    pub fn from_oracle(
        oracle: &mut SnapshotOracle<'_>,
        landmarks: &[NodeId],
    ) -> Result<Self, crate::oracle::BudgetError> {
        let mut rows1 = Vec::with_capacity(landmarks.len());
        let mut rows2 = Vec::with_capacity(landmarks.len());
        let mut used = Vec::with_capacity(landmarks.len());
        for &w in landmarks {
            let r1 = oracle.row(Snapshot::First, w)?.to_vec();
            let r2 = oracle.row(Snapshot::Second, w)?.to_vec();
            rows1.push(r1);
            rows2.push(r2);
            used.push(w);
        }
        Ok(DeltaBounds {
            index1: LandmarkIndex::from_rows(used.clone(), rows1),
            index2: LandmarkIndex::from_rows(used, rows2),
        })
    }

    /// The first snapshot's landmark index.
    pub fn index1(&self) -> &LandmarkIndex {
        &self.index1
    }

    /// The second snapshot's landmark index.
    pub fn index2(&self) -> &LandmarkIndex {
        &self.index2
    }

    /// A certified lower bound on `Δ(u, v)` (0 when nothing can be said).
    ///
    /// Returns `None` when the pair is provably not connected in `G_t1`
    /// (such pairs are outside the problem definition) or when no landmark
    /// reaches both endpoints in `G_t2`.
    pub fn delta_lower_bound(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let lb1 = self.index1.lower_bound(u, v);
        if lb1 == INF {
            return None; // disconnected in G_t1
        }
        let ub2 = self.index2.upper_bound(u, v);
        if ub2 == INF {
            return None; // no landmark spans the pair in G_t2
        }
        Some(lb1.saturating_sub(ub2))
    }

    /// An upper bound on `Δ(u, v)`: `UB1 − LB2` (clamped at 0). Useful to
    /// *rule out* pairs cheaply. `None` when `G_t1` gives no finite upper
    /// bound through the landmarks.
    pub fn delta_upper_bound(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let ub1 = self.index1.upper_bound(u, v);
        if ub1 == INF {
            return None;
        }
        let lb2 = self.index2.lower_bound(u, v);
        if lb2 == INF {
            return Some(0);
        }
        Some(ub1.saturating_sub(lb2))
    }

    /// Screens hypothesized pairs: returns those **certified** to have
    /// `Δ ≥ delta_min`, with their certified lower bounds (not the exact
    /// Δ, which may be higher).
    pub fn certify(&self, pairs: &[(NodeId, NodeId)], delta_min: u32) -> Vec<ConvergingPair> {
        let mut out = Vec::new();
        for &(u, v) in pairs {
            if u == v {
                continue;
            }
            if let Some(lb) = self.delta_lower_bound(u, v) {
                if lb >= delta_min.max(1) {
                    out.push(ConvergingPair::new(u, v, lb));
                }
            }
        }
        crate::exact::sort_pairs(&mut out);
        out
    }

    /// Splits hypothesized pairs into certified / ruled-out / undecided
    /// using both bounds — the undecided remainder is what a caller should
    /// spend real SSSPs on.
    pub fn triage(&self, pairs: &[(NodeId, NodeId)], delta_min: u32) -> Triage {
        let mut certified = Vec::new();
        let mut ruled_out = Vec::new();
        let mut undecided = Vec::new();
        let floor = delta_min.max(1);
        for &(u, v) in pairs {
            if u == v {
                ruled_out.push((u, v));
                continue;
            }
            let lb = self.delta_lower_bound(u, v);
            let ub = self.delta_upper_bound(u, v);
            match (lb, ub) {
                (Some(lb), _) if lb >= floor => certified.push((u, v)),
                (None, _) => ruled_out.push((u, v)), // outside the problem
                (_, Some(ub)) if ub < floor => ruled_out.push((u, v)),
                _ => undecided.push((u, v)),
            }
        }
        Triage {
            certified,
            ruled_out,
            undecided,
        }
    }
}

/// Result of [`DeltaBounds::triage`]: a partition of the queried pairs.
#[derive(Clone, Debug, Default)]
pub struct Triage {
    /// Pairs certified to have `Δ ≥ delta_min`.
    pub certified: Vec<(NodeId, NodeId)>,
    /// Pairs proven to have `Δ < delta_min` (or outside the problem).
    pub ruled_out: Vec<(NodeId, NodeId)>,
    /// Pairs the bounds cannot decide; verify these with real SSSPs.
    pub undecided: Vec<(NodeId, NodeId)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_top_k, TopKSpec};
    use cp_graph::builder::graph_from_edges;
    use cp_graph::Graph;

    /// Path 0..=9; g2 adds chord (0,9).
    fn graphs() -> (Graph, Graph) {
        let base: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let g1 = graph_from_edges(10, &base);
        let mut all = base;
        all.push((0, 9));
        let g2 = graph_from_edges(10, &all);
        (g1, g2)
    }

    fn bounds(g1: &Graph, g2: &Graph, landmarks: &[u32]) -> DeltaBounds {
        let l: Vec<NodeId> = landmarks.iter().map(|&i| NodeId(i)).collect();
        DeltaBounds::new(LandmarkIndex::build(g1, &l), LandmarkIndex::build(g2, &l))
    }

    #[test]
    fn bounds_bracket_true_delta() {
        let (g1, g2) = graphs();
        let b = bounds(&g1, &g2, &[0, 5]);
        let exact = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 1 }, 2);
        for p in &exact.pairs {
            let (u, v) = p.pair;
            let lb = b.delta_lower_bound(u, v).unwrap_or(0);
            let ub = b.delta_upper_bound(u, v).unwrap_or(u32::MAX);
            assert!(
                lb <= p.delta,
                "lb {lb} > delta {} for {:?}",
                p.delta,
                p.pair
            );
            assert!(
                ub >= p.delta,
                "ub {ub} < delta {} for {:?}",
                p.delta,
                p.pair
            );
        }
    }

    #[test]
    fn certification_is_sound() {
        let (g1, g2) = graphs();
        let b = bounds(&g1, &g2, &[0, 4, 9]);
        let all_pairs: Vec<(NodeId, NodeId)> = (0..10u32)
            .flat_map(|u| ((u + 1)..10).map(move |v| (NodeId(u), NodeId(v))))
            .collect();
        let certified = b.certify(&all_pairs, 3);
        assert!(
            !certified.is_empty(),
            "landmark at the chord certifies pairs"
        );
        let exact = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 3 }, 2);
        let truth = exact.pair_set();
        for c in &certified {
            assert!(
                truth.contains(&c.pair),
                "{:?} certified but not real",
                c.pair
            );
        }
    }

    #[test]
    fn triage_partitions_exhaustively() {
        let (g1, g2) = graphs();
        let b = bounds(&g1, &g2, &[0, 9]);
        let pairs: Vec<(NodeId, NodeId)> = (0..10u32)
            .flat_map(|u| ((u + 1)..10).map(move |v| (NodeId(u), NodeId(v))))
            .collect();
        let t = b.triage(&pairs, 2);
        let (certified, ruled_out, undecided) = (t.certified, t.ruled_out, t.undecided);
        assert_eq!(
            certified.len() + ruled_out.len() + undecided.len(),
            pairs.len()
        );
        // Soundness of both certain sets.
        let exact = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 2 }, 2);
        let truth = exact.pair_set();
        for &(u, v) in &certified {
            let key = if u < v { (u, v) } else { (v, u) };
            assert!(truth.contains(&key));
        }
        for &(u, v) in &ruled_out {
            let key = if u < v { (u, v) } else { (v, u) };
            assert!(!truth.contains(&key), "{key:?} ruled out but real");
        }
    }

    #[test]
    fn disconnected_pairs_are_excluded() {
        let g1 = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let g2 = graph_from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let b = bounds(&g1, &g2, &[0, 2]);
        assert_eq!(b.delta_lower_bound(NodeId(0), NodeId(3)), None);
        let certified = b.certify(&[(NodeId(0), NodeId(3))], 1);
        assert!(certified.is_empty());
    }

    #[test]
    fn from_oracle_reuses_cached_rows() {
        let (g1, g2) = graphs();
        let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 4);
        oracle.rows(NodeId(0)).unwrap(); // pre-pay one landmark
        let b = DeltaBounds::from_oracle(&mut oracle, &[NodeId(0), NodeId(9)]).unwrap();
        assert_eq!(oracle.ledger().total(), 4); // only node 9 was fresh
        assert!(b.delta_lower_bound(NodeId(0), NodeId(9)).unwrap_or(0) > 0);
        // Budget exhausted: a third landmark errors.
        assert!(DeltaBounds::from_oracle(&mut oracle, &[NodeId(5)]).is_err());
    }

    #[test]
    fn self_pairs_never_certify() {
        let (g1, g2) = graphs();
        let b = bounds(&g1, &g2, &[0]);
        assert!(b.certify(&[(NodeId(3), NodeId(3))], 1).is_empty());
    }

    #[test]
    fn resident_indexes_capture_paid_rows_for_free() {
        let (g1, g2) = graphs();
        let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 8);
        oracle.rows(NodeId(0)).unwrap();
        oracle.rows(NodeId(5)).unwrap();
        let spent = oracle.ledger().total();
        let (i1, i2) =
            resident_landmark_indexes(&oracle, MAX_RESIDENT_LANDMARKS).expect("two residents");
        assert_eq!(oracle.ledger().total(), spent, "capture charged the ledger");
        assert_eq!(i1.landmarks(), &[NodeId(0), NodeId(5)]);
        assert_eq!(i2.landmarks(), &[NodeId(0), NodeId(5)]);
        // The captured rows are the exact rows: bounds at a landmark are
        // tight.
        assert_eq!(
            i2.upper_bound(NodeId(0), NodeId(9)),
            1,
            "chord distance through the landmark itself"
        );
        // The cap is honored.
        let (one, _) = resident_landmark_indexes(&oracle, 1).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn resident_indexes_absent_without_paid_rows() {
        let (g1, g2) = graphs();
        let oracle = SnapshotOracle::with_budget(&g1, &g2, 8);
        assert!(resident_landmark_indexes(&oracle, 16).is_none());
    }

    #[test]
    fn all_pairs_below_matches_bruteforce() {
        let (g1, g2) = graphs();
        let l: Vec<NodeId> = [0u32, 9].iter().map(|&i| NodeId(i)).collect();
        let i1 = LandmarkIndex::build(&g1, &l);
        let i2 = LandmarkIndex::build(&g2, &l);
        let (mut ub1, mut lb2) = (Vec::new(), Vec::new());
        for floor in [1u32, 2, 5] {
            for u in 0..10u32 {
                let u = NodeId(u);
                let brute = (0..10u32).map(NodeId).all(|v| {
                    if v == u {
                        return true;
                    }
                    let ub = i1.upper_bound(u, v);
                    let lb = i2.lower_bound(u, v);
                    lb == INF || (ub != INF && ub.saturating_sub(lb) < floor)
                });
                assert_eq!(
                    all_pairs_below(&i1, &i2, u, floor, &mut ub1, &mut lb2),
                    brute,
                    "u={u:?} floor={floor}"
                );
            }
        }
    }
}
