//! Compatibility shim: the certified Δ-bound machinery moved to
//! [`crate::bounds`] when the streaming query path started sharing it
//! with the pipeline's landmark pre-filter. Existing imports through
//! `cp_core::estimate` keep working.

pub use crate::bounds::{DeltaBounds, Triage};
