//! Classification-based selection: the local and global classifiers.
//!
//! All single-feature selectors can be read as *features* that correlate
//! with membership in a cover of `G^p_k`. The classifier selectors combine
//! them: a logistic regression is trained on an *earlier* snapshot pair
//! (40 %/60 % of the edges) whose exact answer — and hence greedy cover —
//! can be computed offline, and at test time nodes are ranked by the
//! predicted probability of belonging to that cover.
//!
//! Per-node features (normalized to `[-1, 1]`, as in the paper):
//! `deg_t1`, `deg_t2`, degree difference, relative degree difference, and
//! the L1/L∞ landmark change norms for three landmark placements (random,
//! MaxMin, MaxAvg). The **global** classifier appends graph-level features
//! (density and max degree of both snapshots) and trains on several
//! datasets in equal proportion, so one model serves any graph.
//!
//! At test time the three landmark sets cost `3 · 2l` SSSPs out of the
//! budget (paper Table 1); training cost is offline and unbudgeted, as in
//! the paper.

use super::dispersion::{dispersion_pick, DispersionMode};
use super::landmark::{landmark_change_scores, sample_active_nodes};
use super::CandidateSelector;
use crate::exact::{exact_top_k, TopKSpec};
use crate::gpk::PairGraph;
use crate::oracle::SnapshotOracle;
use cp_graph::degrees::top_m_by_score_f64;
use cp_graph::{Graph, NodeId};
use cp_ml::{Dataset, LogisticRegression, MinMaxScaler, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of per-node features.
pub const NODE_FEATURES: usize = 10;
/// Number of graph-level features appended by the global classifier.
pub const GRAPH_FEATURES: usize = 4;

/// What the positive class of the classifier is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PositiveClass {
    /// Nodes of the greedy vertex cover of the training `G^p_k`
    /// (the paper's choice).
    GreedyCover,
    /// All endpoints of the training `G^p_k` (the paper reports "very
    /// similar" results; kept as an ablation).
    AllEndpoints,
}

/// Classifier training / inference configuration.
#[derive(Clone, Copy, Debug)]
pub struct ClassifierConfig {
    /// Landmarks per placement set (`l`); three sets are used.
    pub landmarks: usize,
    /// The δ slack: training labels come from the pairs with
    /// `Δ ≥ Δmax − slack` on the training snapshot pair (the paper uses
    /// the same δ level for training and testing).
    pub slack: u32,
    /// Positive-class definition.
    pub positive_class: PositiveClass,
    /// Inverse-frequency class weighting during training. Cover nodes are
    /// a vanishing fraction of all nodes; without reweighting the learned
    /// probabilities are tiny but the *ranking* — all the selector needs —
    /// is usually still usable. Defaults to `true`.
    pub balanced: bool,
    /// L2 regularization for the logistic regression.
    pub l2: f64,
    /// BFS worker threads for the offline exact computation.
    pub threads: usize,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            landmarks: super::DEFAULT_LANDMARKS,
            slack: 1,
            positive_class: PositiveClass::GreedyCover,
            balanced: true,
            l2: 1e-4,
            threads: cp_graph::apsp::default_threads(),
        }
    }
}

/// A per-node feature matrix over the whole node universe.
#[derive(Clone, Debug)]
pub struct NodeFeatures {
    rows: Vec<f64>,
    arity: usize,
    n: usize,
}

impl NodeFeatures {
    /// The feature row of node `u`.
    pub fn row(&self, u: NodeId) -> &[f64] {
        &self.rows[u.index() * self.arity..(u.index() + 1) * self.arity]
    }

    /// Feature arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }
}

/// Human-readable names of the per-node features, in row order.
pub const NODE_FEATURE_NAMES: [&str; NODE_FEATURES] = [
    "deg_t1",
    "deg_t2",
    "deg_diff",
    "deg_rel_diff",
    "rand_sumdiff",
    "rand_maxdiff",
    "maxmin_sumdiff",
    "maxmin_maxdiff",
    "maxavg_sumdiff",
    "maxavg_maxdiff",
];

/// Extracts the 10 per-node features, spending up to `6l` SSSPs through
/// the oracle (three landmark sets, two snapshots each).
pub fn extract_node_features(
    oracle: &mut SnapshotOracle<'_>,
    landmarks: usize,
    seed: u64,
) -> NodeFeatures {
    let n = oracle.num_nodes();
    let g1 = oracle.g1();
    let g2 = oracle.g2();
    let mut rng = StdRng::seed_from_u64(seed);

    let rand_set = sample_active_nodes(oracle, landmarks, &mut rng);
    let rand_scores = landmark_change_scores(oracle, &rand_set);
    let mm_set = dispersion_pick(oracle, landmarks, DispersionMode::MaxMin);
    let mm_scores = landmark_change_scores(oracle, &mm_set);
    let ma_set = dispersion_pick(oracle, landmarks, DispersionMode::MaxAvg);
    let ma_scores = landmark_change_scores(oracle, &ma_set);

    let mut rows = Vec::with_capacity(n * NODE_FEATURES);
    for i in 0..n {
        let u = NodeId::new(i);
        let d1 = g1.degree(u) as f64;
        let d2 = g2.degree(u) as f64;
        rows.extend_from_slice(&[
            d1,
            d2,
            d2 - d1,
            (d2 - d1) / d1.max(1.0),
            rand_scores.sum[i] as f64,
            rand_scores.max[i] as f64,
            mm_scores.sum[i] as f64,
            mm_scores.max[i] as f64,
            ma_scores.sum[i] as f64,
            ma_scores.max[i] as f64,
        ]);
    }
    NodeFeatures {
        rows,
        arity: NODE_FEATURES,
        n,
    }
}

/// Graph-level features of a snapshot pair, used by the global classifier.
#[derive(Clone, Copy, Debug)]
pub struct GraphLevelFeatures {
    /// `[density_t1, density_t2, max_degree_t1, max_degree_t2]`.
    pub values: [f64; GRAPH_FEATURES],
}

impl GraphLevelFeatures {
    /// Computes the graph-level features of a snapshot pair.
    pub fn of(g1: &Graph, g2: &Graph) -> Self {
        GraphLevelFeatures {
            values: [
                g1.density(),
                g2.density(),
                g1.max_degree() as f64,
                g2.max_degree() as f64,
            ],
        }
    }
}

/// Builds the labeled training dataset for one snapshot pair: one row per
/// *active* node of `g1`, labeled by membership in the positive set.
fn build_training_rows(
    g1: &Graph,
    g2: &Graph,
    config: &ClassifierConfig,
    seed: u64,
    graph_features: Option<GraphLevelFeatures>,
) -> Dataset {
    let exact = exact_top_k(
        g1,
        g2,
        &TopKSpec::ThresholdFromMax {
            slack: config.slack,
        },
        config.threads,
    );
    let gpk = PairGraph::new(&exact.pairs);
    let positives: std::collections::HashSet<NodeId> = match config.positive_class {
        PositiveClass::GreedyCover => gpk.greedy_vertex_cover().nodes.into_iter().collect(),
        PositiveClass::AllEndpoints => gpk.endpoints().into_iter().collect(),
    };
    let mut oracle = SnapshotOracle::unbounded(g1, g2);
    let features = extract_node_features(&mut oracle, config.landmarks, seed);
    let arity = NODE_FEATURES
        + if graph_features.is_some() {
            GRAPH_FEATURES
        } else {
            0
        };
    let mut data = Dataset::new(arity);
    let mut row_buf = Vec::with_capacity(arity);
    for u in g1.nodes() {
        if g1.degree(u) == 0 {
            continue; // not a node of V_t1
        }
        row_buf.clear();
        row_buf.extend_from_slice(features.row(u));
        if let Some(gf) = graph_features {
            row_buf.extend_from_slice(&gf.values);
        }
        data.push(&row_buf, positives.contains(&u));
    }
    data
}

/// Subsamples `data` to `target` rows, keeping every positive row and a
/// seeded uniform sample of the negatives ("equal proportions" across
/// datasets for the global classifier without discarding the rare
/// positives).
fn equalize(data: &Dataset, target: usize, rng: &mut StdRng) -> Dataset {
    if data.len() <= target {
        return data.clone();
    }
    let mut neg_idx: Vec<usize> = (0..data.len()).filter(|&i| !data.label(i)).collect();
    let keep_neg = target
        .saturating_sub(data.num_positive())
        .min(neg_idx.len());
    // Partial Fisher-Yates.
    for i in 0..keep_neg {
        let j = rng.random_range(i..neg_idx.len());
        neg_idx.swap(i, j);
    }
    let kept: std::collections::HashSet<usize> = neg_idx[..keep_neg].iter().copied().collect();
    let mut out = Dataset::new(data.num_features());
    for i in 0..data.len() {
        if data.label(i) || kept.contains(&i) {
            out.push(data.row(i), data.label(i));
        }
    }
    out
}

/// The trained classifier selector (local or global).
pub struct ClassifierSelector {
    model: LogisticRegression,
    scaler: MinMaxScaler,
    config: ClassifierConfig,
    global: bool,
    seed: u64,
}

impl ClassifierSelector {
    /// Trains a **local** classifier on one training snapshot pair
    /// (typically the 40 %/60 % snapshots of the same dataset that will be
    /// tested at 80 %/100 %).
    pub fn train_local(
        train_g1: &Graph,
        train_g2: &Graph,
        config: ClassifierConfig,
        seed: u64,
    ) -> Self {
        let mut data = build_training_rows(train_g1, train_g2, &config, seed, None);
        let scaler = MinMaxScaler::fit(&data);
        scaler.transform(&mut data);
        let model = Self::fit(&data, &config);
        ClassifierSelector {
            model,
            scaler,
            config,
            global: false,
            seed,
        }
    }

    /// Trains a **global** classifier on several datasets' training pairs,
    /// contributing equal row counts per dataset, with graph-level
    /// features appended so the model can adapt to unseen graphs.
    pub fn train_global(
        training_pairs: &[(&Graph, &Graph)],
        config: ClassifierConfig,
        seed: u64,
    ) -> Self {
        assert!(!training_pairs.is_empty(), "need at least one dataset");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x61_0b_a1);
        let per_dataset: Vec<Dataset> = training_pairs
            .iter()
            .enumerate()
            .map(|(i, (g1, g2))| {
                let gf = GraphLevelFeatures::of(g1, g2);
                build_training_rows(g1, g2, &config, seed.wrapping_add(i as u64), Some(gf))
            })
            .collect();
        let target = per_dataset.iter().map(|d| d.len()).min().unwrap_or(0);
        let mut data = Dataset::new(NODE_FEATURES + GRAPH_FEATURES);
        for d in &per_dataset {
            data.extend_from(&equalize(d, target, &mut rng));
        }
        let scaler = MinMaxScaler::fit(&data);
        scaler.transform(&mut data);
        let model = Self::fit(&data, &config);
        ClassifierSelector {
            model,
            scaler,
            config,
            global: true,
            seed,
        }
    }

    fn fit(data: &Dataset, config: &ClassifierConfig) -> LogisticRegression {
        let mut train_cfg = TrainConfig {
            l2: config.l2,
            ..TrainConfig::default()
        };
        if config.balanced {
            train_cfg = train_cfg.balanced(data);
        }
        LogisticRegression::train(data, &train_cfg)
    }

    /// Whether this is the global variant.
    pub fn is_global(&self) -> bool {
        self.global
    }

    /// The underlying model (for weight inspection / ablations).
    pub fn model(&self) -> &LogisticRegression {
        &self.model
    }
}

impl CandidateSelector for ClassifierSelector {
    fn name(&self) -> String {
        if self.global {
            "G-Classifier"
        } else {
            "L-Classifier"
        }
        .to_string()
    }

    fn rank(&mut self, oracle: &mut SnapshotOracle<'_>) -> Vec<NodeId> {
        // Three landmark sets at 2l each: keep probes within half the
        // budget.
        let affordable = (oracle.remaining() / 12) as usize;
        let l = self
            .config
            .landmarks
            .min(affordable)
            .max(usize::from(oracle.remaining() >= 6));
        if l == 0 {
            return Vec::new();
        }
        let features = extract_node_features(oracle, l, self.seed);
        let gf = self
            .global
            .then(|| GraphLevelFeatures::of(oracle.g1(), oracle.g2()));
        let g1 = oracle.g1();
        let n = oracle.num_nodes();
        let mut scores = vec![f64::NEG_INFINITY; n];
        let mut row_buf = Vec::with_capacity(self.scaler.num_features());
        for u in g1.nodes() {
            if g1.degree(u) == 0 {
                continue; // cannot be an endpoint of a connected pair in G_t1
            }
            row_buf.clear();
            row_buf.extend_from_slice(features.row(u));
            if let Some(gf) = gf {
                row_buf.extend_from_slice(&gf.values);
            }
            self.scaler.transform_row(&mut row_buf);
            scores[u.index()] = self.model.predict_proba(&row_buf);
        }
        top_m_by_score_f64(&scores, n)
            .into_iter()
            .filter(|u| scores[u.index()] > f64::NEG_INFINITY)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::graph_from_edges;

    /// A growing graph with a clear pattern: shortcut chords appear over
    /// time between ring positions; training and test pairs share the
    /// mechanics so a classifier can transfer.
    fn ring_with_chords(n: u32, chords: &[(u32, u32)]) -> Graph {
        let mut edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.extend_from_slice(chords);
        graph_from_edges(n as usize, &edges)
    }

    fn train_pair() -> (Graph, Graph) {
        (
            ring_with_chords(24, &[]),
            ring_with_chords(24, &[(0, 12), (5, 17)]),
        )
    }

    fn test_pair() -> (Graph, Graph) {
        (
            ring_with_chords(24, &[(0, 12), (5, 17)]),
            ring_with_chords(24, &[(0, 12), (5, 17), (3, 15), (8, 20)]),
        )
    }

    fn config() -> ClassifierConfig {
        ClassifierConfig {
            landmarks: 3,
            slack: 1,
            threads: 2,
            ..ClassifierConfig::default()
        }
    }

    #[test]
    fn local_classifier_trains_and_ranks() {
        let (tg1, tg2) = train_pair();
        let mut sel = ClassifierSelector::train_local(&tg1, &tg2, config(), 1);
        assert_eq!(sel.name(), "L-Classifier");
        assert!(!sel.is_global());
        let (g1, g2) = test_pair();
        let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 60);
        let ranked = sel.rank(&mut oracle);
        assert!(!ranked.is_empty());
        // Feature probes stay within budget (3 sets * 2 * l <= 18).
        assert!(oracle.ledger().generation <= 18);
        // New chord endpoints should rank well: check at least one of
        // {3, 15, 8, 20} in the top quarter.
        let top: Vec<NodeId> = ranked[..6].to_vec();
        assert!(
            top.iter().any(|u| [3u32, 15, 8, 20].contains(&u.0)),
            "top6 {top:?}"
        );
    }

    #[test]
    fn global_classifier_trains_on_multiple_pairs() {
        let (a1, a2) = train_pair();
        let b1 = ring_with_chords(16, &[]);
        let b2 = ring_with_chords(16, &[(0, 8)]);
        let mut sel = ClassifierSelector::train_global(&[(&a1, &a2), (&b1, &b2)], config(), 2);
        assert_eq!(sel.name(), "G-Classifier");
        assert!(sel.is_global());
        let (g1, g2) = test_pair();
        let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 60);
        let ranked = sel.rank(&mut oracle);
        assert!(!ranked.is_empty());
        assert_eq!(sel.model().weights().len(), NODE_FEATURES + GRAPH_FEATURES);
    }

    #[test]
    fn tiny_budget_degrades_gracefully() {
        let (tg1, tg2) = train_pair();
        let mut sel = ClassifierSelector::train_local(&tg1, &tg2, config(), 1);
        let (g1, g2) = test_pair();
        let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 2);
        let _ = sel.rank(&mut oracle); // must not panic
        assert!(oracle.ledger().total() <= 2);
    }

    #[test]
    fn feature_extraction_charges_six_l() {
        let (g1, g2) = test_pair();
        let mut oracle = SnapshotOracle::unbounded(&g1, &g2);
        let f = extract_node_features(&mut oracle, 4, 0);
        // At most 6l; overlapping landmark sets share cached rows so the
        // actual spend can be lower (the paper's 3·2l is the worst case).
        let spent = oracle.ledger().total();
        assert!(spent > 0 && spent <= 6 * 4, "spent {spent}");
        assert_eq!(f.arity(), NODE_FEATURES);
        assert_eq!(f.num_nodes(), 24);
        assert_eq!(NODE_FEATURE_NAMES.len(), NODE_FEATURES);
    }

    #[test]
    fn equalize_keeps_positives() {
        let mut d = Dataset::new(1);
        for i in 0..50 {
            d.push(&[i as f64], i < 3); // 3 positives
        }
        let mut rng = StdRng::seed_from_u64(0);
        let small = equalize(&d, 10, &mut rng);
        assert_eq!(small.len(), 10);
        assert_eq!(small.num_positive(), 3);
        // Target larger than data: unchanged.
        let same = equalize(&d, 100, &mut rng);
        assert_eq!(same.len(), 50);
    }

    #[test]
    fn endpoint_positive_class_works() {
        let (tg1, tg2) = train_pair();
        let cfg = ClassifierConfig {
            positive_class: PositiveClass::AllEndpoints,
            ..config()
        };
        let sel = ClassifierSelector::train_local(&tg1, &tg2, cfg, 1);
        assert_eq!(sel.model().weights().len(), NODE_FEATURES);
    }

    #[test]
    fn graph_level_features_sane() {
        let (g1, g2) = test_pair();
        let gf = GraphLevelFeatures::of(&g1, &g2);
        assert!(gf.values[0] > 0.0 && gf.values[0] < 1.0);
        assert!(gf.values[1] >= gf.values[0]); // densification
        assert!(gf.values[3] >= gf.values[2]); // max degree grows
    }
}
