//! Centrality-based selection: Degree, DegDiff, DegRel.
//!
//! These spend nothing on probes — degrees are free — so all `2m` SSSPs go
//! to candidates. The paper finds them weak almost everywhere (high-degree
//! nodes are already central, so their shortest paths were short to begin
//! with), *except* DegRel on dense clique-projection graphs like Actors.

use super::CandidateSelector;
use crate::oracle::SnapshotOracle;
use cp_graph::degrees::{
    degree_diff, degree_rel_diff, degree_vector, top_m_by_score_f64, top_m_by_score_u32,
};
use cp_graph::NodeId;

/// The three degree-based rankings.
#[derive(Clone, Copy, Debug)]
pub enum DegreeSelector {
    /// Rank by `deg_t1`.
    Degree,
    /// Rank by `deg_t2 − deg_t1`.
    DegDiff,
    /// Rank by `(deg_t2 − deg_t1) / deg_t1`.
    DegRel,
}

impl CandidateSelector for DegreeSelector {
    fn name(&self) -> String {
        match self {
            DegreeSelector::Degree => "Degree",
            DegreeSelector::DegDiff => "DegDiff",
            DegreeSelector::DegRel => "DegRel",
        }
        .to_string()
    }

    fn rank(&mut self, oracle: &mut SnapshotOracle<'_>) -> Vec<NodeId> {
        let n = oracle.num_nodes();
        match self {
            DegreeSelector::Degree => {
                let scores = degree_vector(oracle.g1());
                top_m_by_score_u32(&scores, n)
            }
            DegreeSelector::DegDiff => {
                let scores = degree_diff(oracle.g1(), oracle.g2());
                top_m_by_score_u32(&scores, n)
            }
            DegreeSelector::DegRel => {
                let scores = degree_rel_diff(oracle.g1(), oracle.g2());
                top_m_by_score_f64(&scores, n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::graph_from_edges;

    #[test]
    fn degree_ranks_hubs_first() {
        let g1 = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4)]);
        let g2 = g1.clone();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let ranked = DegreeSelector::Degree.rank(&mut o);
        assert_eq!(ranked[0], NodeId(0)); // degree 3
        assert_eq!(ranked[1], NodeId(3)); // degree 2
                                          // No SSSPs spent.
        assert_eq!(o.ledger().total(), 0);
    }

    #[test]
    fn degdiff_ranks_by_growth() {
        let g1 = graph_from_edges(4, &[(0, 1)]);
        let g2 = graph_from_edges(4, &[(0, 1), (2, 3), (2, 0), (2, 1)]);
        let g2b = g2.clone();
        let mut o = SnapshotOracle::unbounded(&g1, &g2b);
        let ranked = DegreeSelector::DegDiff.rank(&mut o);
        assert_eq!(ranked[0], NodeId(2)); // gained 3 edges
    }

    #[test]
    fn degrel_prefers_relative_growth() {
        // Node 0: degree 10 -> 11 (rel 0.1); node 5: degree 1 -> 3 (rel 2).
        let mut e1: Vec<(u32, u32)> = (1..11).map(|i| (0, i)).collect();
        e1.push((5, 11));
        let mut e2 = e1.clone();
        e2.push((0, 12));
        e2.push((5, 12));
        e2.push((5, 13));
        let g1 = graph_from_edges(14, &e1);
        let g2 = graph_from_edges(14, &e2);
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let ranked = DegreeSelector::DegRel.rank(&mut o);
        let pos = |n: NodeId| ranked.iter().position(|&x| x == n).unwrap();
        assert!(pos(NodeId(5)) < pos(NodeId(0)));
    }
}
