//! The Incidence family of baselines (Papadimitriou, Symeonidis,
//! Manolopoulos — cited as [14] in the paper).
//!
//! Prior work observes that converging pairs are caused by *new* edges and
//! therefore starts from the **active nodes** `A`: the endpoints of edges
//! present in `G_t2` but not in `G_t1`. The original Incidence algorithm
//! computes SSSPs from *all* of `A` — no budget, and `A` is routinely
//! 10–66 % of the graph (paper Table 6). The budgeted variants rank `A`
//! and take the top `m`:
//!
//! * **IncDeg** — by degree difference `deg_t2 − deg_t1`.
//! * **IncBet** — by the summed *importance* (edge betweenness in `G_t2`)
//!   of the new edges a node received. The paper grants this baseline the
//!   exact betweenness instead of the original's sampled estimate, "giving
//!   an advantage to the Incidence algorithm"; we do the same and likewise
//!   charge none of it to the SSSP budget.

use super::CandidateSelector;
use crate::exact::TopKSpec;
use crate::oracle::SnapshotOracle;
use crate::topk::{run_pipeline, BudgetedResult};
use cp_graph::betweenness::{betweenness_exact, betweenness_sampled};
use cp_graph::temporal::TemporalGraph;
use cp_graph::{Graph, NodeId};

/// The endpoints of the new edges between the snapshots, ascending.
pub fn active_nodes(g1: &Graph, g2: &Graph) -> Vec<NodeId> {
    let mut active: Vec<NodeId> = TemporalGraph::new_edges_between(g1, g2)
        .into_iter()
        .flat_map(|(u, v)| [u, v])
        .collect();
    active.sort_unstable();
    active.dedup();
    active
}

/// How the budgeted Incidence variants rank the active nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidenceRanking {
    /// `deg_t2(u) − deg_t1(u)`, descending (IncDeg).
    DegreeDiff,
    /// Summed edge betweenness (in `G_t2`) of the new edges incident to
    /// the node, descending (IncBet).
    Betweenness,
}

/// The budgeted Incidence selectors.
pub struct IncidenceSelector {
    ranking: IncidenceRanking,
    /// `None` = exact Brandes; `Some(p)` = pivot-sampled with `p` pivots
    /// (closer to the original paper's sampled shortest-path trees, and
    /// much faster on large graphs).
    betweenness_pivots: Option<usize>,
    threads: usize,
}

impl IncidenceSelector {
    /// Creates a selector with exact betweenness (where applicable).
    pub fn new(ranking: IncidenceRanking) -> Self {
        IncidenceSelector {
            ranking,
            betweenness_pivots: None,
            threads: cp_graph::apsp::default_threads(),
        }
    }

    /// Uses pivot-sampled betweenness with `pivots` sources.
    pub fn with_sampled_betweenness(mut self, pivots: usize) -> Self {
        self.betweenness_pivots = Some(pivots);
        self
    }

    /// Caps the betweenness worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    fn scores(&self, g1: &Graph, g2: &Graph, active: &[NodeId]) -> Vec<f64> {
        match self.ranking {
            IncidenceRanking::DegreeDiff => active
                .iter()
                .map(|&u| (g2.degree(u) as f64) - (g1.degree(u) as f64))
                .collect(),
            IncidenceRanking::Betweenness => {
                let bt = match self.betweenness_pivots {
                    None => betweenness_exact(g2, self.threads),
                    Some(p) => {
                        // Deterministic evenly spaced pivots.
                        let n = g2.num_nodes();
                        let p = p.min(n).max(1);
                        let pivots: Vec<NodeId> = (0..p).map(|i| NodeId::new(i * n / p)).collect();
                        betweenness_sampled(g2, &pivots, self.threads)
                    }
                };
                let new_edges = TemporalGraph::new_edges_between(g1, g2);
                let mut importance = vec![0.0f64; g2.num_nodes()];
                for (u, v) in new_edges {
                    let e = g2
                        .edge_id(u, v)
                        .expect("new edge must exist in the second snapshot");
                    let score = bt.edge[e as usize];
                    importance[u.index()] += score;
                    importance[v.index()] += score;
                }
                active.iter().map(|&u| importance[u.index()]).collect()
            }
        }
    }
}

impl CandidateSelector for IncidenceSelector {
    fn name(&self) -> String {
        match self.ranking {
            IncidenceRanking::DegreeDiff => "IncDeg",
            IncidenceRanking::Betweenness => "IncBet",
        }
        .to_string()
    }

    fn rank(&mut self, oracle: &mut SnapshotOracle<'_>) -> Vec<NodeId> {
        let active = active_nodes(oracle.g1(), oracle.g2());
        let scores = self.scores(oracle.g1(), oracle.g2(), &active);
        let mut order: Vec<usize> = (0..active.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .total_cmp(&scores[a])
                .then(active[a].cmp(&active[b]))
        });
        order.into_iter().map(|i| active[i]).collect()
    }
}

/// Result of the original, unbudgeted Incidence algorithm.
#[derive(Clone, Debug)]
pub struct IncidenceFull {
    /// The pipeline result (pairs found, candidate set = all active nodes).
    pub result: BudgetedResult,
    /// `|A|`: the number of active nodes, i.e. SSSP sources it needed
    /// (times two snapshots).
    pub active_count: usize,
}

/// Runs the original Incidence algorithm: SSSPs from **every** active node
/// in both snapshots, no budget (paper Table 6 compares its near-complete
/// coverage against its order-of-magnitude larger cost).
pub fn incidence_full(g1: &Graph, g2: &Graph, spec: &TopKSpec) -> IncidenceFull {
    let mut oracle = SnapshotOracle::unbounded(g1, g2);
    let mut selector = IncidenceSelector::new(IncidenceRanking::DegreeDiff);
    let result = run_pipeline(&mut oracle, &mut selector, spec);
    let active_count = active_nodes(g1, g2).len();
    IncidenceFull {
        result,
        active_count,
    }
}

/// Result of the Selective Expansion variant.
#[derive(Clone, Debug)]
pub struct SelectiveExpansion {
    /// The final pipeline result.
    pub result: BudgetedResult,
    /// Candidate-set size after each round (round 0 = the active set).
    pub round_sizes: Vec<usize>,
}

/// The **Selective Expansion** variant of the Incidence algorithm
/// (Papadimitriou et al.): starting from the active set `A`, repeatedly
/// add the neighbors of current candidates whose incident edges carry the
/// most *importance* (edge betweenness in `G_t2`), re-run the pair
/// computation, and stop when a round discovers no new pairs (or after
/// `max_rounds`). Each round admits at most `per_round` new neighbors —
/// the knob that keeps this from degenerating into the all-pairs baseline,
/// which is why the original paper's authors (and ours, §5.4) call the
/// uncapped process prohibitively expensive.
pub fn selective_expansion(
    g1: &Graph,
    g2: &Graph,
    spec: &TopKSpec,
    per_round: usize,
    max_rounds: usize,
) -> SelectiveExpansion {
    let threads = cp_graph::apsp::default_threads();
    let bt = betweenness_exact(g2, threads);
    // Precomputed once: the ranking below would otherwise re-sum a node's
    // incident edge scores on every sort comparison (O(deg) per probe).
    let importance: Vec<f64> = g2
        .nodes()
        .map(|u| {
            g2.neighbors_with_edge_ids(u)
                .map(|(_, e)| bt.edge[e as usize])
                .sum()
        })
        .collect();

    let mut frontier: Vec<NodeId> = active_nodes(g1, g2);
    let mut in_set: std::collections::HashSet<NodeId> = frontier.iter().copied().collect();
    let mut oracle = SnapshotOracle::unbounded(g1, g2);
    let mut round_sizes = vec![in_set.len()];
    let mut last_pairs = 0usize;
    let mut result = {
        let mut sel = StaticRanking(frontier.clone());
        run_pipeline(&mut oracle, &mut sel, spec)
    };

    for _ in 0..max_rounds {
        if result.pairs.len() == last_pairs && round_sizes.len() > 1 {
            break; // no new pairs discovered last round
        }
        last_pairs = result.pairs.len();
        // Candidate neighbors of the current set, ranked by importance.
        let mut neighbors: Vec<NodeId> = frontier
            .iter()
            .flat_map(|&u| g2.neighbors(u).iter().copied())
            .filter(|v| !in_set.contains(v) && g1.degree(*v) > 0)
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        neighbors.sort_by(|&a, &b| {
            importance[b.index()]
                .total_cmp(&importance[a.index()])
                .then(a.cmp(&b))
        });
        neighbors.truncate(per_round);
        if neighbors.is_empty() {
            break;
        }
        for &v in &neighbors {
            in_set.insert(v);
        }
        frontier = neighbors;
        round_sizes.push(in_set.len());
        let mut sel = StaticRanking(in_set.iter().copied().collect());
        result = run_pipeline(&mut oracle, &mut sel, spec);
    }
    SelectiveExpansion {
        result,
        round_sizes,
    }
}

/// A selector that returns a fixed, precomputed ranking (internal helper
/// for the unbudgeted baselines).
struct StaticRanking(Vec<NodeId>);

impl CandidateSelector for StaticRanking {
    fn name(&self) -> String {
        "Static".to_string()
    }

    fn rank(&mut self, _oracle: &mut SnapshotOracle<'_>) -> Vec<NodeId> {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_top_k;
    use cp_graph::builder::graph_from_edges;

    /// Path 0..=5 in g1; g2 adds (0,5) and (2,4).
    fn graphs() -> (Graph, Graph) {
        let base: Vec<(u32, u32)> = (0..5).map(|i| (i, i + 1)).collect();
        let g1 = graph_from_edges(6, &base);
        let mut all = base;
        all.push((0, 5));
        all.push((2, 4));
        let g2 = graph_from_edges(6, &all);
        (g1, g2)
    }

    #[test]
    fn active_nodes_are_new_edge_endpoints() {
        let (g1, g2) = graphs();
        assert_eq!(
            active_nodes(&g1, &g2),
            vec![NodeId(0), NodeId(2), NodeId(4), NodeId(5)]
        );
    }

    #[test]
    fn incdeg_ranks_by_degree_gain() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let mut sel = IncidenceSelector::new(IncidenceRanking::DegreeDiff);
        let ranked = sel.rank(&mut o);
        // All four active nodes gained exactly one edge; ties by id.
        assert_eq!(ranked, vec![NodeId(0), NodeId(2), NodeId(4), NodeId(5)]);
        assert_eq!(o.ledger().total(), 0, "incidence ranking is free");
    }

    #[test]
    fn incbet_prefers_structurally_important_edges() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let mut sel = IncidenceSelector::new(IncidenceRanking::Betweenness).with_threads(2);
        let ranked = sel.rank(&mut o);
        // The chord (0,5) carries far more betweenness in g2 than (2,4),
        // so its endpoints rank first.
        assert_eq!(&ranked[..2], &[NodeId(0), NodeId(5)]);
    }

    #[test]
    fn sampled_betweenness_agrees_on_small_graph() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let mut sel = IncidenceSelector::new(IncidenceRanking::Betweenness)
            .with_sampled_betweenness(6) // all nodes -> exact
            .with_threads(2);
        let ranked = sel.rank(&mut o);
        assert_eq!(&ranked[..2], &[NodeId(0), NodeId(5)]);
    }

    #[test]
    fn full_incidence_reaches_full_coverage_here() {
        let (g1, g2) = graphs();
        let exact = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 2 }, 2);
        let full = incidence_full(&g1, &g2, &exact.spec());
        assert_eq!(full.active_count, 4);
        // Every converging pair here touches an active node.
        assert_eq!(full.result.pair_set(), exact.pair_set());
    }

    #[test]
    fn selective_expansion_extends_coverage() {
        // Build a case where a converging pair has NO endpoint among the
        // active nodes: path 0-1-2-3-4-5-6, new edge (2, 4) shortcuts the
        // middle; the pair (0, 6) converges but 0 and 6 are inactive.
        let base: Vec<(u32, u32)> = (0..6).map(|i| (i, i + 1)).collect();
        let g1 = graph_from_edges(7, &base);
        let mut all = base;
        all.push((2, 4));
        let g2 = graph_from_edges(7, &all);
        let spec = TopKSpec::Threshold { delta_min: 1 };
        let plain = incidence_full(&g1, &g2, &spec);
        let expanded = selective_expansion(&g1, &g2, &spec, 4, 5);
        assert!(
            expanded.result.pairs.len() >= plain.result.pairs.len(),
            "expansion must not lose pairs"
        );
        // The expansion reaches node 0/6 eventually and finds their pair.
        let exact = exact_top_k(&g1, &g2, &spec, 2);
        assert_eq!(expanded.result.pair_set(), exact.pair_set());
        assert!(expanded.round_sizes.len() > 1);
        assert!(expanded.round_sizes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn selective_expansion_respects_round_cap() {
        let (g1, g2) = graphs();
        let spec = TopKSpec::Threshold { delta_min: 1 };
        let expanded = selective_expansion(&g1, &g2, &spec, 1, 2);
        // Round 0 = 4 active nodes; each round adds at most 1.
        for w in expanded.round_sizes.windows(2) {
            assert!(w[1] - w[0] <= 1);
        }
        assert!(expanded.round_sizes.len() <= 3);
    }

    #[test]
    fn no_new_edges_no_active_nodes() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
        assert!(active_nodes(&g, &g).is_empty());
        let full = incidence_full(&g, &g, &TopKSpec::TopK(5));
        assert_eq!(full.active_count, 0);
        assert!(full.result.pairs.is_empty());
    }
}
