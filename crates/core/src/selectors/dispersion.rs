//! Dispersion-based selection: MaxMin and MaxAvg greedy.
//!
//! Both pick nodes of `G_t1` that are far apart from each other. Each pick
//! costs one BFS in `G_t1` (equations (1)/(2) of the paper are NP-hard to
//! optimize, so the standard greedy is used); those rows stay cached in the
//! oracle, so a dispersion-selected candidate later costs only its `G_t2`
//! row — the (m, m) budget split of Table 1.
//!
//! Unreachable distances are clamped to `n` (larger than any real
//! distance), which makes the greedy hop across connected components first
//! — the "covering" behaviour the paper ascribes to MaxMin.

use super::CandidateSelector;
use crate::oracle::{Snapshot, SnapshotOracle};
use cp_graph::{NodeId, INF};

/// Which dispersion objective the greedy maximizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispersionMode {
    /// Maximize the minimum distance to the already selected set
    /// (farthest-point traversal; covers the graph).
    MaxMin,
    /// Maximize the average distance to the already selected set
    /// (prefers peripheral nodes).
    MaxAvg,
}

/// Greedily picks `count` dispersed nodes of `G_t1`, spending one SSSP per
/// pick through the oracle. The first pick is the maximum-degree node
/// (deterministic, and a sensible BFS root). Returns fewer nodes if the
/// budget runs out first.
pub fn dispersion_pick(
    oracle: &mut SnapshotOracle<'_>,
    count: usize,
    mode: DispersionMode,
) -> Vec<NodeId> {
    let n = oracle.num_nodes();
    let count = count.min(n);
    if count == 0 || n == 0 {
        return Vec::new();
    }
    let g1 = oracle.g1();
    let clamp = n as u32; // stand-in for "unreachable", beats any real distance
                          // Only nodes of V_t1 (active in the first snapshot) may be picked:
                          // nodes that arrive later are isolated in G_t1 and would otherwise
                          // win every dispersion argmax at distance "infinity" while being
                          // useless both as landmarks and as candidates.
    let eligible: Vec<bool> = g1.nodes().map(|u| g1.degree(u) > 0).collect();
    if !eligible.iter().any(|&e| e) {
        return Vec::new();
    }
    let count = count.min(eligible.iter().filter(|&&e| e).count());
    let start = g1
        .nodes()
        .filter(|&u| eligible[u.index()])
        .max_by_key(|&u| (g1.degree(u), std::cmp::Reverse(u)))
        .expect("checked non-empty");

    let mut picked: Vec<NodeId> = Vec::with_capacity(count);
    let mut selected = vec![false; n];
    // MaxMin: min distance to the picked set. MaxAvg: sum of distances.
    let mut agg: Vec<u64> = vec![
        match mode {
            DispersionMode::MaxMin => u64::MAX,
            DispersionMode::MaxAvg => 0,
        };
        n
    ];

    let mut next = start;
    while picked.len() < count {
        let Ok(row) = oracle.row(Snapshot::First, next) else {
            break; // budget exhausted: return what we have
        };
        // Fold this pick's distances into the aggregate, then release the
        // borrow before scanning for the argmax.
        for i in 0..n {
            let d = if row[i] == INF { clamp } else { row[i] } as u64;
            match mode {
                DispersionMode::MaxMin => agg[i] = agg[i].min(d),
                DispersionMode::MaxAvg => agg[i] += d,
            }
        }
        selected[next.index()] = true;
        picked.push(next);
        if picked.len() == count {
            break;
        }
        // Argmax of the aggregate over unselected nodes; smaller id wins
        // ties for determinism.
        let mut best: Option<(u64, NodeId)> = None;
        for i in 0..n {
            if selected[i] || !eligible[i] {
                continue;
            }
            let score = agg[i];
            if best
                .map(|(s, b)| score > s || (score == s && NodeId::new(i) < b))
                .unwrap_or(true)
            {
                best = Some((score, NodeId::new(i)));
            }
        }
        match best {
            Some((_, b)) => next = b,
            None => break,
        }
    }
    picked
}

/// The MaxMin / MaxAvg candidate selectors.
#[derive(Clone, Copy, Debug)]
pub struct DispersionSelector {
    mode: DispersionMode,
}

impl DispersionSelector {
    /// Creates a selector with the given objective.
    pub fn new(mode: DispersionMode) -> Self {
        DispersionSelector { mode }
    }
}

impl CandidateSelector for DispersionSelector {
    fn name(&self) -> String {
        match self.mode {
            DispersionMode::MaxMin => "MaxMin",
            DispersionMode::MaxAvg => "MaxAvg",
        }
        .to_string()
    }

    fn rank(&mut self, oracle: &mut SnapshotOracle<'_>) -> Vec<NodeId> {
        // Each pick costs 1 SSSP now (G_t1) and 1 later (G_t2), so with a
        // remaining budget B we can afford B / 2 picks.
        let affordable = (oracle.remaining() / 2) as usize;
        dispersion_pick(oracle, affordable, self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::graph_from_edges;

    /// Path 0-1-2-3-4-5-6.
    fn path7() -> cp_graph::Graph {
        graph_from_edges(7, &(0..6).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    #[test]
    fn maxmin_spreads_over_path() {
        let g = path7();
        let g2 = g.clone();
        let mut o = SnapshotOracle::unbounded(&g, &g2);
        let picks = dispersion_pick(&mut o, 3, DispersionMode::MaxMin);
        // Start: max degree is 1 (degree 2, smallest id among internal).
        assert_eq!(picks[0], NodeId(1));
        // Farthest from 1 is 6; then farthest-from-{1,6} is 3 (min dist 2..3).
        assert_eq!(picks[1], NodeId(6));
        // min distances to {1,6}: node 0:1, 2:1, 3:2&3->2, 4:2, hmm 4: d(4,1)=3,d(4,6)=2 -> 2; 3: d=2,3 -> 2. Tie between 3 and 4 -> smaller id.
        assert_eq!(picks[2], NodeId(3));
        assert_eq!(o.ledger().generation, 3);
    }

    #[test]
    fn maxavg_prefers_periphery() {
        let g = path7();
        let g2 = g.clone();
        let mut o = SnapshotOracle::unbounded(&g, &g2);
        let picks = dispersion_pick(&mut o, 3, DispersionMode::MaxAvg);
        assert_eq!(picks[0], NodeId(1));
        assert_eq!(picks[1], NodeId(6)); // max avg distance from 1
                                         // Next maximizes d(.,1)+d(.,6): node 0: 1+6=7. -> endpoint again.
        assert_eq!(picks[2], NodeId(0));
    }

    #[test]
    fn hops_across_components_first() {
        // Two components: triangle {0,1,2} and edge {3,4}.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
        let g2 = g.clone();
        let mut o = SnapshotOracle::unbounded(&g, &g2);
        let picks = dispersion_pick(&mut o, 2, DispersionMode::MaxMin);
        // Second pick must jump to the other component (clamped distance n).
        assert!(picks[1].index() >= 3, "picked {:?}", picks);
    }

    #[test]
    fn count_clipped_to_n() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let g2 = g.clone();
        let mut o = SnapshotOracle::unbounded(&g, &g2);
        let picks = dispersion_pick(&mut o, 100, DispersionMode::MaxMin);
        assert_eq!(picks.len(), 3);
    }

    #[test]
    fn budget_exhaustion_returns_partial() {
        let g = path7();
        let g2 = g.clone();
        let mut o = SnapshotOracle::with_budget(&g, &g2, 2);
        let picks = dispersion_pick(&mut o, 5, DispersionMode::MaxMin);
        assert_eq!(picks.len(), 2);
    }

    #[test]
    fn selector_halves_budget() {
        let g = path7();
        let g2 = g.clone();
        let mut o = SnapshotOracle::with_budget(&g, &g2, 6);
        let mut sel = DispersionSelector::new(DispersionMode::MaxAvg);
        let ranked = sel.rank(&mut o);
        assert_eq!(ranked.len(), 3); // 6 / 2
        assert_eq!(o.ledger().generation, 3);
        assert_eq!(sel.name(), "MaxAvg");
    }

    #[test]
    fn zero_count() {
        let g = path7();
        let g2 = g.clone();
        let mut o = SnapshotOracle::unbounded(&g, &g2);
        assert!(dispersion_pick(&mut o, 0, DispersionMode::MaxMin).is_empty());
    }
}
