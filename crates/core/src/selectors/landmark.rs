//! Landmark-based selection: SumDiff / MaxDiff and the dispersion hybrids.
//!
//! A set `L` of `l` landmarks gets its distance rows computed in both
//! snapshots (2l SSSPs). Every node `u` then has a change vector
//! `Λ(u)[i] = d_t1(u, w_i) − d_t2(u, w_i)`; candidates are the nodes with
//! the largest `‖Λ(u)‖₁` (SumDiff) or `‖Λ(u)‖∞` (MaxDiff). Landmarks may
//! be sampled uniformly from the active nodes of `G_t1` or placed by the
//! dispersion greedies (the hybrids MMSD/MMMD/MASD/MAMD) — dispersion
//! placement makes the landmark rows double as high-quality candidate
//! rows, the paper's "best of both worlds".

use super::dispersion::{dispersion_pick, DispersionMode};
use super::CandidateSelector;
use crate::oracle::{RowScratch, SnapshotOracle};
use cp_graph::degrees::top_m_by_score_u32;
use cp_graph::{distance_decrease, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How landmarks are placed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LandmarkPolicy {
    /// Uniform over the active nodes of `G_t1`.
    Random,
    /// Greedy max-min dispersion in `G_t1` (covers the graph).
    MaxMin,
    /// Greedy max-average dispersion in `G_t1` (periphery).
    MaxAvg,
}

/// Which norm of the change vector ranks the nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Norm {
    /// L1: SumDiff.
    L1,
    /// L∞: MaxDiff.
    LInf,
}

/// Per-node landmark distance-change scores.
#[derive(Clone, Debug)]
pub struct LandmarkScores {
    /// `‖Λ(u)‖₁` per node.
    pub sum: Vec<u32>,
    /// `‖Λ(u)‖∞` per node.
    pub max: Vec<u32>,
    /// The landmarks the scores are relative to.
    pub landmarks: Vec<NodeId>,
}

/// Computes both norms of the landmark change vectors for every node,
/// charging `2 · |landmarks|` SSSPs (minus whatever is already cached).
/// Landmarks whose rows cannot be paid for are skipped.
///
/// Rows for the whole landmark set go through one batched prefetch:
/// admission is sequential (identical ledger and skip decisions to paying
/// one landmark at a time), the SSSPs fan out over the oracle's worker
/// threads, and the accumulation below walks the served landmarks in
/// request order, so the scores are bit-identical at any thread count.
pub fn landmark_change_scores(
    oracle: &mut SnapshotOracle<'_>,
    landmarks: &[NodeId],
) -> LandmarkScores {
    let n = oracle.num_nodes();
    let mut sum = vec![0u32; n];
    let mut max = vec![0u32; n];
    let used = oracle.prefetch_node_rows(landmarks).usable;
    // Served landmarks are paid, but a bounded row cache may have evicted
    // their bytes by now; `read_rows` recomputes such rows (bit-identical,
    // free of charge) into the scratch.
    let mut scratch = RowScratch::new();
    for &w in &used {
        let (d1, d2) = oracle.read_rows(w, &mut scratch);
        for i in 0..n {
            let delta = distance_decrease(d1[i], d2[i]).unwrap_or(0);
            sum[i] = sum[i].saturating_add(delta);
            max[i] = max[i].max(delta);
        }
    }
    LandmarkScores {
        sum,
        max,
        landmarks: used,
    }
}

/// Samples `count` distinct active nodes of `G_t1` uniformly (active =
/// degree > 0, the nodes that exist at `t1`). Falls back to the whole
/// universe if nothing is active.
pub(crate) fn sample_active_nodes(
    oracle: &SnapshotOracle<'_>,
    count: usize,
    rng: &mut StdRng,
) -> Vec<NodeId> {
    let g1 = oracle.g1();
    let mut pool: Vec<NodeId> = g1.nodes().filter(|&u| g1.degree(u) > 0).collect();
    if pool.is_empty() {
        pool = g1.nodes().collect();
    }
    let count = count.min(pool.len());
    // Partial Fisher-Yates: shuffle only the first `count` slots.
    for i in 0..count {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

/// The landmark-based selector family (SumDiff, MaxDiff and the four
/// hybrids, depending on policy × norm).
pub struct LandmarkSelector {
    policy: LandmarkPolicy,
    norm: Norm,
    landmarks: usize,
    rng: StdRng,
}

impl LandmarkSelector {
    /// Creates a selector with `landmarks` landmarks (clamped at rank time
    /// so probes never eat more than half the remaining budget).
    pub fn new(policy: LandmarkPolicy, norm: Norm, landmarks: usize, seed: u64) -> Self {
        LandmarkSelector {
            policy,
            norm,
            landmarks,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CandidateSelector for LandmarkSelector {
    fn name(&self) -> String {
        match (self.policy, self.norm) {
            (LandmarkPolicy::Random, Norm::L1) => "SumDiff",
            (LandmarkPolicy::Random, Norm::LInf) => "MaxDiff",
            (LandmarkPolicy::MaxMin, Norm::L1) => "MMSD",
            (LandmarkPolicy::MaxMin, Norm::LInf) => "MMMD",
            (LandmarkPolicy::MaxAvg, Norm::L1) => "MASD",
            (LandmarkPolicy::MaxAvg, Norm::LInf) => "MAMD",
        }
        .to_string()
    }

    fn rank(&mut self, oracle: &mut SnapshotOracle<'_>) -> Vec<NodeId> {
        // 2 SSSPs per landmark; keep probes within half the budget so at
        // least as many candidates as landmarks remain affordable.
        let affordable = (oracle.remaining() / 4) as usize;
        let l = self
            .landmarks
            .min(affordable)
            .max(usize::from(oracle.remaining() >= 2));
        if l == 0 {
            return Vec::new();
        }
        let landmarks = match self.policy {
            LandmarkPolicy::Random => sample_active_nodes(oracle, l, &mut self.rng),
            LandmarkPolicy::MaxMin => dispersion_pick(oracle, l, DispersionMode::MaxMin),
            LandmarkPolicy::MaxAvg => dispersion_pick(oracle, l, DispersionMode::MaxAvg),
        };
        let scores = landmark_change_scores(oracle, &landmarks);

        match self.norm {
            Norm::L1 => top_m_by_score_u32(&scores.sum, oracle.num_nodes()),
            Norm::LInf => top_m_by_score_u32(&scores.max, oracle.num_nodes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::graph_from_edges;
    use cp_graph::Graph;

    /// Path 0..=7; g2 adds chord (0,7): node 0 and 7 come closer to many.
    fn graphs() -> (Graph, Graph) {
        let base: Vec<(u32, u32)> = (0..7).map(|i| (i, i + 1)).collect();
        let g1 = graph_from_edges(8, &base);
        let mut all = base;
        all.push((0, 7));
        let g2 = graph_from_edges(8, &all);
        (g1, g2)
    }

    #[test]
    fn change_scores_reflect_shortcut() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        // Landmark at node 0: node 7 went from d=7 to d=1 -> delta 6.
        let scores = landmark_change_scores(&mut o, &[NodeId(0)]);
        assert_eq!(scores.sum[7], 6);
        assert_eq!(scores.max[7], 6);
        assert_eq!(scores.sum[1], 0);
        assert_eq!(scores.landmarks, vec![NodeId(0)]);
        assert_eq!(o.ledger().total(), 2);
    }

    #[test]
    fn sum_and_max_norms_differ() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let scores = landmark_change_scores(&mut o, &[NodeId(0), NodeId(1)]);
        // From landmark 0, node 7 gains 6; from landmark 1 (d1=6, d2 via
        // chord = 2) gains 4. Sum 10, max 6.
        assert_eq!(scores.sum[7], 10);
        assert_eq!(scores.max[7], 6);
    }

    #[test]
    fn hybrid_selector_ranks_shortcut_endpoints_high() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 16);
        let mut sel = LandmarkSelector::new(LandmarkPolicy::MaxMin, Norm::L1, 3, 7);
        let ranked = sel.rank(&mut o);
        // The two chord endpoints converge toward everything; at least one
        // must rank in the top three.
        let top3 = &ranked[..3];
        assert!(
            top3.contains(&NodeId(0)) || top3.contains(&NodeId(7)),
            "top3 {top3:?}"
        );
    }

    #[test]
    fn budget_clamps_landmarks() {
        let (g1, g2) = graphs();
        // Budget 6: l clamps to 6/4 = 1.
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 6);
        let mut sel = LandmarkSelector::new(LandmarkPolicy::Random, Norm::L1, 10, 1);
        let _ = sel.rank(&mut o);
        assert!(o.ledger().generation <= 2, "spent {:?}", o.ledger());
    }

    #[test]
    fn tiny_budget_returns_empty() {
        let (g1, g2) = graphs();
        let mut o = SnapshotOracle::with_budget(&g1, &g2, 1);
        let mut sel = LandmarkSelector::new(LandmarkPolicy::Random, Norm::LInf, 10, 1);
        assert!(sel.rank(&mut o).is_empty());
    }

    #[test]
    fn sampling_is_distinct_and_active() {
        let (g1, g2) = graphs();
        let o = SnapshotOracle::unbounded(&g1, &g2);
        let mut rng = StdRng::seed_from_u64(3);
        let sample = sample_active_nodes(&o, 5, &mut rng);
        assert_eq!(sample.len(), 5);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 5);
        for u in sample {
            assert!(g1.degree(u) > 0);
        }
    }

    #[test]
    fn names_cover_all_variants() {
        let combos = [
            (LandmarkPolicy::Random, Norm::L1, "SumDiff"),
            (LandmarkPolicy::Random, Norm::LInf, "MaxDiff"),
            (LandmarkPolicy::MaxMin, Norm::L1, "MMSD"),
            (LandmarkPolicy::MaxMin, Norm::LInf, "MMMD"),
            (LandmarkPolicy::MaxAvg, Norm::L1, "MASD"),
            (LandmarkPolicy::MaxAvg, Norm::LInf, "MAMD"),
        ];
        for (policy, norm, name) in combos {
            assert_eq!(LandmarkSelector::new(policy, norm, 10, 0).name(), name);
        }
    }
}
