//! Uniform-random candidate selection — the sanity-check control.
//!
//! Not part of the paper's suite, but indispensable for interpreting the
//! coverage numbers: any selector worth its SSSPs must beat sampling `m`
//! active nodes uniformly.

use super::landmark::sample_active_nodes;
use super::CandidateSelector;
use crate::oracle::SnapshotOracle;
use cp_graph::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ranks a uniform random permutation of the active nodes of `G_t1`.
pub struct RandomSelector {
    rng: StdRng,
}

impl RandomSelector {
    /// Creates a seeded random selector.
    pub fn new(seed: u64) -> Self {
        RandomSelector {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl CandidateSelector for RandomSelector {
    fn name(&self) -> String {
        "Random".to_string()
    }

    fn rank(&mut self, oracle: &mut SnapshotOracle<'_>) -> Vec<NodeId> {
        let n = oracle.num_nodes();
        sample_active_nodes(oracle, n, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::graph_from_edges;

    #[test]
    fn permutes_active_nodes() {
        let g1 = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4)]); // 5 isolated
        let g2 = g1.clone();
        let mut o = SnapshotOracle::unbounded(&g1, &g2);
        let mut sel = RandomSelector::new(9);
        let ranked = sel.rank(&mut o);
        assert_eq!(ranked.len(), 5); // node 5 is inactive
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(o.ledger().total(), 0);
        assert_eq!(sel.name(), "Random");
    }

    #[test]
    fn seeded_determinism() {
        let g1 = graph_from_edges(10, &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let g2 = g1.clone();
        let mut o1 = SnapshotOracle::unbounded(&g1, &g2);
        let mut o2 = SnapshotOracle::unbounded(&g1, &g2);
        let a = RandomSelector::new(4).rank(&mut o1);
        let b = RandomSelector::new(4).rank(&mut o2);
        assert_eq!(a, b);
    }
}
