//! Candidate-endpoint generation: the paper's selector suite.
//!
//! A selector's job is to rank the nodes most likely to belong to a cover
//! of the (unknown) pair graph `G^p_k`, using only structural information
//! it can afford within the SSSP budget. See the paper's Table 4 for the
//! naming; [`SelectorKind`] mirrors it one-to-one and adds a uniform
//! [`Random`](SelectorKind::Random) control.

mod classifier;
mod degree;
mod dispersion;
mod incidence;
mod landmark;
mod random;

pub use classifier::{
    extract_node_features, ClassifierConfig, ClassifierSelector, GraphLevelFeatures, NodeFeatures,
    PositiveClass, GRAPH_FEATURES, NODE_FEATURES, NODE_FEATURE_NAMES,
};
pub use degree::DegreeSelector;
pub use dispersion::{dispersion_pick, DispersionMode, DispersionSelector};
pub use incidence::{
    active_nodes, incidence_full, selective_expansion, IncidenceFull, IncidenceRanking,
    IncidenceSelector, SelectiveExpansion,
};
pub use landmark::{
    landmark_change_scores, LandmarkPolicy, LandmarkScores, LandmarkSelector, Norm,
};
pub use random::RandomSelector;

use crate::oracle::SnapshotOracle;
use cp_graph::NodeId;
use serde::{Deserialize, Serialize};

/// A candidate-endpoint generation strategy.
///
/// `rank` returns node ids in descending preference order; it may spend
/// SSSP computations through the oracle (they are charged to the
/// generation phase and count against the same `2m` cap as everything
/// else). Implementations degrade gracefully when the budget is too small
/// for their probes — they clamp their landmark counts and return whatever
/// ranking they managed to compute.
pub trait CandidateSelector {
    /// Display name, matching the paper's Table 4 where applicable.
    fn name(&self) -> String;

    /// Ranks candidate endpoints (best first). The returned list may be
    /// longer than what the budget can pay for; the pipeline consumes it
    /// until the budget runs out.
    fn rank(&mut self, oracle: &mut SnapshotOracle<'_>) -> Vec<NodeId>;
}

/// Default landmark count, the paper's `l = 10` ("a larger number of
/// landmarks did not improve the performance", §5.1).
pub const DEFAULT_LANDMARKS: usize = 10;

/// Enumeration of the built-in selectors (paper Table 4), for experiment
/// configuration. Classifier selectors need training data and are built
/// via [`ClassifierSelector`] instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectorKind {
    /// Largest `deg_t1(u)`.
    Degree,
    /// Largest `deg_t2(u) − deg_t1(u)`.
    DegDiff,
    /// Largest `(deg_t2(u) − deg_t1(u)) / deg_t1(u)`.
    DegRel,
    /// Greedy max-min dispersion in `G_t1`.
    MaxMin,
    /// Greedy max-average dispersion in `G_t1`.
    MaxAvg,
    /// Largest L1 norm of distance decrease to random landmarks.
    SumDiff {
        /// Landmark count `l`.
        landmarks: usize,
    },
    /// Largest L∞ norm of distance decrease to random landmarks.
    MaxDiff {
        /// Landmark count `l`.
        landmarks: usize,
    },
    /// MaxMin landmarks + SumDiff ranking (the paper's best hybrid).
    Mmsd {
        /// Landmark count `l`.
        landmarks: usize,
    },
    /// MaxMin landmarks + MaxDiff ranking.
    Mmmd {
        /// Landmark count `l`.
        landmarks: usize,
    },
    /// MaxAvg landmarks + SumDiff ranking.
    Masd {
        /// Landmark count `l`.
        landmarks: usize,
    },
    /// MaxAvg landmarks + MaxDiff ranking.
    Mamd {
        /// Landmark count `l`.
        landmarks: usize,
    },
    /// Active nodes ranked by degree difference (Incidence baseline).
    IncDeg,
    /// Active nodes ranked by the betweenness importance of their new
    /// edges (Incidence baseline; granted exact edge betweenness for free,
    /// as in the paper).
    IncBet,
    /// Uniform random active nodes (control, not in the paper).
    Random,
}

impl SelectorKind {
    /// Every single-feature selector evaluated in the paper's Table 5,
    /// with the default landmark count.
    pub fn table5_suite() -> Vec<SelectorKind> {
        let l = DEFAULT_LANDMARKS;
        vec![
            SelectorKind::Degree,
            SelectorKind::DegDiff,
            SelectorKind::DegRel,
            SelectorKind::MaxMin,
            SelectorKind::MaxAvg,
            SelectorKind::SumDiff { landmarks: l },
            SelectorKind::MaxDiff { landmarks: l },
            SelectorKind::Mmsd { landmarks: l },
            SelectorKind::Mmmd { landmarks: l },
            SelectorKind::Masd { landmarks: l },
            SelectorKind::Mamd { landmarks: l },
            SelectorKind::IncDeg,
            SelectorKind::IncBet,
        ]
    }

    /// The landmark-based and hybrid selectors plotted in Figure 1.
    pub fn fig1_suite() -> Vec<SelectorKind> {
        let l = DEFAULT_LANDMARKS;
        vec![
            SelectorKind::SumDiff { landmarks: l },
            SelectorKind::MaxDiff { landmarks: l },
            SelectorKind::Mmsd { landmarks: l },
            SelectorKind::Mmmd { landmarks: l },
            SelectorKind::Masd { landmarks: l },
            SelectorKind::Mamd { landmarks: l },
        ]
    }

    /// Display name, matching the paper's Table 4.
    pub fn name(&self) -> &'static str {
        match self {
            SelectorKind::Degree => "Degree",
            SelectorKind::DegDiff => "DegDiff",
            SelectorKind::DegRel => "DegRel",
            SelectorKind::MaxMin => "MaxMin",
            SelectorKind::MaxAvg => "MaxAvg",
            SelectorKind::SumDiff { .. } => "SumDiff",
            SelectorKind::MaxDiff { .. } => "MaxDiff",
            SelectorKind::Mmsd { .. } => "MMSD",
            SelectorKind::Mmmd { .. } => "MMMD",
            SelectorKind::Masd { .. } => "MASD",
            SelectorKind::Mamd { .. } => "MAMD",
            SelectorKind::IncDeg => "IncDeg",
            SelectorKind::IncBet => "IncBet",
            SelectorKind::Random => "Random",
        }
    }

    /// Instantiates the selector. `seed` drives any internal randomness
    /// (random landmark sampling, the random control); selectors without
    /// randomness ignore it.
    pub fn build(self, seed: u64) -> Box<dyn CandidateSelector> {
        match self {
            SelectorKind::Degree => Box::new(degree::DegreeSelector::Degree),
            SelectorKind::DegDiff => Box::new(degree::DegreeSelector::DegDiff),
            SelectorKind::DegRel => Box::new(degree::DegreeSelector::DegRel),
            SelectorKind::MaxMin => {
                Box::new(dispersion::DispersionSelector::new(DispersionMode::MaxMin))
            }
            SelectorKind::MaxAvg => {
                Box::new(dispersion::DispersionSelector::new(DispersionMode::MaxAvg))
            }
            SelectorKind::SumDiff { landmarks } => Box::new(landmark::LandmarkSelector::new(
                LandmarkPolicy::Random,
                landmark::Norm::L1,
                landmarks,
                seed,
            )),
            SelectorKind::MaxDiff { landmarks } => Box::new(landmark::LandmarkSelector::new(
                LandmarkPolicy::Random,
                landmark::Norm::LInf,
                landmarks,
                seed,
            )),
            SelectorKind::Mmsd { landmarks } => Box::new(landmark::LandmarkSelector::new(
                LandmarkPolicy::MaxMin,
                landmark::Norm::L1,
                landmarks,
                seed,
            )),
            SelectorKind::Mmmd { landmarks } => Box::new(landmark::LandmarkSelector::new(
                LandmarkPolicy::MaxMin,
                landmark::Norm::LInf,
                landmarks,
                seed,
            )),
            SelectorKind::Masd { landmarks } => Box::new(landmark::LandmarkSelector::new(
                LandmarkPolicy::MaxAvg,
                landmark::Norm::L1,
                landmarks,
                seed,
            )),
            SelectorKind::Mamd { landmarks } => Box::new(landmark::LandmarkSelector::new(
                LandmarkPolicy::MaxAvg,
                landmark::Norm::LInf,
                landmarks,
                seed,
            )),
            SelectorKind::IncDeg => Box::new(incidence::IncidenceSelector::new(
                IncidenceRanking::DegreeDiff,
            )),
            SelectorKind::IncBet => Box::new(incidence::IncidenceSelector::new(
                IncidenceRanking::Betweenness,
            )),
            SelectorKind::Random => Box::new(random::RandomSelector::new(seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(SelectorKind::table5_suite().len(), 13);
        assert_eq!(SelectorKind::fig1_suite().len(), 6);
    }

    #[test]
    fn names_match_paper_table4() {
        assert_eq!(SelectorKind::Mmsd { landmarks: 10 }.name(), "MMSD");
        assert_eq!(SelectorKind::Degree.name(), "Degree");
        assert_eq!(SelectorKind::IncBet.name(), "IncBet");
    }

    #[test]
    fn build_produces_matching_names() {
        for kind in SelectorKind::table5_suite() {
            let sel = kind.build(0);
            assert_eq!(sel.name(), kind.name());
        }
    }
}
