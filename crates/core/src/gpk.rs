//! The pair graph `G^p_k` and its greedy covers.
//!
//! Given the top-k converging pairs `P`, the paper defines the graph
//! `G^p_k = (V_1, P)` whose edges are exactly those pairs. A vertex cover
//! `C` of `G^p_k` is a perfect candidate set: SSSPs from `C` alone recover
//! all of `P` with `O(n·|C|)` work. Minimum vertex cover is NP-hard, so the
//! paper uses the classic greedy (pick the node covering the most uncovered
//! pairs) both as the quality yardstick ("greedy-cover") and as the
//! positive class of the classifier selectors.

use crate::exact::ConvergingPair;
use cp_graph::NodeId;
use std::collections::HashMap;

/// The pair graph `G^p_k`: an adjacency structure over the endpoints of the
/// top-k converging pairs.
///
/// ```
/// use cp_core::exact::ConvergingPair;
/// use cp_core::gpk::PairGraph;
/// use cp_graph::NodeId;
///
/// // Three pairs sharing node 7: a star in G^p_k.
/// let pairs: Vec<ConvergingPair> = [1u32, 2, 3]
///     .iter()
///     .map(|&v| ConvergingPair::new(NodeId(7), NodeId(v), 2))
///     .collect();
/// let gpk = PairGraph::new(&pairs);
/// let cover = gpk.greedy_vertex_cover();
/// assert_eq!(cover.nodes, vec![NodeId(7)]); // one SSSP source suffices
/// assert!(cover.is_complete(&gpk));
/// ```
#[derive(Clone, Debug)]
pub struct PairGraph {
    pairs: Vec<(NodeId, NodeId)>,
    /// Pair indices incident to each endpoint.
    incidence: HashMap<NodeId, Vec<u32>>,
}

impl PairGraph {
    /// Builds the pair graph from an answer set. Duplicate pairs collapse.
    pub fn new(pairs: &[ConvergingPair]) -> Self {
        let mut seen = std::collections::HashSet::with_capacity(pairs.len() * 2);
        let mut dedup = Vec::with_capacity(pairs.len());
        for p in pairs {
            if seen.insert(p.pair) {
                dedup.push(p.pair);
            }
        }
        let mut incidence: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (i, &(u, v)) in dedup.iter().enumerate() {
            incidence.entry(u).or_default().push(i as u32);
            incidence.entry(v).or_default().push(i as u32);
        }
        PairGraph {
            pairs: dedup,
            incidence,
        }
    }

    /// Number of distinct pairs (edges of `G^p_k`).
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Number of distinct endpoints (non-isolated nodes of `G^p_k`).
    pub fn num_endpoints(&self) -> usize {
        self.incidence.len()
    }

    /// The distinct endpoints, ascending.
    pub fn endpoints(&self) -> Vec<NodeId> {
        let mut e: Vec<NodeId> = self.incidence.keys().copied().collect();
        e.sort_unstable();
        e
    }

    /// The pairs (edges), in insertion order.
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Number of pairs with at least one endpoint in `nodes`.
    pub fn covered_by(&self, nodes: &[NodeId]) -> usize {
        let set: std::collections::HashSet<NodeId> = nodes.iter().copied().collect();
        self.pairs
            .iter()
            .filter(|&&(u, v)| set.contains(&u) || set.contains(&v))
            .count()
    }

    /// Greedy max-coverage: selects up to `budget` nodes, each maximizing
    /// the number of still-uncovered pairs (ties → smaller node id), and
    /// stops early once everything is covered. Returns the chosen nodes in
    /// pick order. With `budget = usize::MAX` this is the paper's greedy
    /// vertex cover ("maxcover" in Table 3), whose size is a logarithmic
    /// approximation of the optimum.
    pub fn greedy_max_coverage(&self, budget: usize) -> GreedyCover {
        let mut covered = vec![false; self.pairs.len()];
        let mut remaining = self.pairs.len();
        // Lazy greedy: cached gains only ever shrink, so a max-heap with
        // stale entries re-evaluated on pop is exact.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let gain_of = |node: NodeId, covered: &[bool]| -> usize {
            self.incidence
                .get(&node)
                .map(|ps| ps.iter().filter(|&&p| !covered[p as usize]).count())
                .unwrap_or(0)
        };
        let mut heap: BinaryHeap<(usize, Reverse<NodeId>)> = self
            .incidence
            .iter()
            .map(|(&node, ps)| (ps.len(), Reverse(node)))
            .collect();
        let mut picks = Vec::new();
        while remaining > 0 && picks.len() < budget {
            let Some((cached_gain, Reverse(node))) = heap.pop() else {
                break;
            };
            let fresh = gain_of(node, &covered);
            if fresh == 0 {
                continue;
            }
            if fresh < cached_gain {
                // Stale; push back with the fresh gain and retry. Another
                // node with the same fresh gain but smaller id may exist in
                // the heap, so tie order among re-pushed entries follows
                // Reverse(node) — larger ids sort lower, keeping smaller-id
                // preference.
                heap.push((fresh, Reverse(node)));
                continue;
            }
            picks.push(node);
            for &p in &self.incidence[&node] {
                if !covered[p as usize] {
                    covered[p as usize] = true;
                    remaining -= 1;
                }
            }
        }
        GreedyCover {
            nodes: picks,
            covered_pairs: self.pairs.len() - remaining,
        }
    }

    /// The full greedy vertex cover (unbounded budget).
    pub fn greedy_vertex_cover(&self) -> GreedyCover {
        self.greedy_max_coverage(usize::MAX)
    }
}

/// Result of a greedy cover run.
#[derive(Clone, Debug)]
pub struct GreedyCover {
    /// Chosen nodes, in pick order.
    pub nodes: Vec<NodeId>,
    /// How many pairs they cover.
    pub covered_pairs: usize,
}

impl GreedyCover {
    /// Whether this is a complete vertex cover of its pair graph.
    pub fn is_complete(&self, gpk: &PairGraph) -> bool {
        self.covered_pairs == gpk.num_pairs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(u: u32, v: u32) -> ConvergingPair {
        ConvergingPair::new(NodeId(u), NodeId(v), 1)
    }

    #[test]
    fn star_covered_by_center() {
        // Pairs (0,1), (0,2), (0,3): node 0 covers everything.
        let g = PairGraph::new(&[cp(0, 1), cp(0, 2), cp(0, 3)]);
        assert_eq!(g.num_pairs(), 3);
        assert_eq!(g.num_endpoints(), 4);
        let cover = g.greedy_vertex_cover();
        assert_eq!(cover.nodes, vec![NodeId(0)]);
        assert!(cover.is_complete(&g));
    }

    #[test]
    fn duplicates_collapse() {
        let g = PairGraph::new(&[cp(0, 1), cp(1, 0), cp(0, 1)]);
        assert_eq!(g.num_pairs(), 1);
    }

    #[test]
    fn budget_limits_cover() {
        // Two disjoint stars; budget 1 covers only the bigger one.
        let g = PairGraph::new(&[cp(0, 1), cp(0, 2), cp(0, 3), cp(9, 8), cp(9, 7)]);
        let partial = g.greedy_max_coverage(1);
        assert_eq!(partial.nodes, vec![NodeId(0)]);
        assert_eq!(partial.covered_pairs, 3);
        assert!(!partial.is_complete(&g));
        let full = g.greedy_max_coverage(2);
        assert_eq!(full.nodes, vec![NodeId(0), NodeId(9)]);
        assert!(full.is_complete(&g));
    }

    #[test]
    fn ties_prefer_smaller_ids() {
        // (0,1) and (2,3): all four nodes have gain 1.
        let g = PairGraph::new(&[cp(0, 1), cp(2, 3)]);
        let cover = g.greedy_vertex_cover();
        assert_eq!(cover.nodes, vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn greedy_matches_path_structure() {
        // Path pairs (0,1),(1,2),(2,3),(3,4): greedy picks 1 then 3 (both
        // gain 2) -> complete cover of size 2.
        let g = PairGraph::new(&[cp(0, 1), cp(1, 2), cp(2, 3), cp(3, 4)]);
        let cover = g.greedy_vertex_cover();
        assert_eq!(cover.nodes, vec![NodeId(1), NodeId(3)]);
        assert!(cover.is_complete(&g));
    }

    #[test]
    fn covered_by_counts_correctly() {
        let g = PairGraph::new(&[cp(0, 1), cp(2, 3), cp(1, 3)]);
        assert_eq!(g.covered_by(&[NodeId(1)]), 2);
        assert_eq!(g.covered_by(&[NodeId(1), NodeId(2)]), 3);
        assert_eq!(g.covered_by(&[]), 0);
        assert_eq!(g.covered_by(&[NodeId(99)]), 0);
    }

    #[test]
    fn empty_pair_graph() {
        let g = PairGraph::new(&[]);
        assert_eq!(g.num_pairs(), 0);
        assert_eq!(g.num_endpoints(), 0);
        let cover = g.greedy_vertex_cover();
        assert!(cover.nodes.is_empty());
        assert!(cover.is_complete(&g));
        assert!(g.endpoints().is_empty());
    }

    #[test]
    fn endpoints_sorted() {
        let g = PairGraph::new(&[cp(5, 2), cp(9, 1)]);
        assert_eq!(
            g.endpoints(),
            vec![NodeId(1), NodeId(2), NodeId(5), NodeId(9)]
        );
    }
}
