//! Continuous monitoring of converging pairs over a snapshot sequence.
//!
//! The paper analyses a single snapshot pair `(G_t1, G_t2)`; a deployed
//! system watches a *stream* of snapshots `G_1 ⊆ G_2 ⊆ …` and wants, at
//! every step, the pairs that converged since the last review — each step
//! under its own SSSP budget. [`ConvergenceMonitor`] packages that loop:
//! it holds the previous snapshot, runs the budgeted pipeline against each
//! new one, and keeps per-pair history so callers can distinguish a pair
//! that keeps converging step after step (the strongest signal in the
//! paper's motivation scenarios) from a one-off jump.
//!
//! This is an extension beyond the paper (its "continuous evolution"
//! framing, §1, is the motivation), built entirely from the paper's
//! machinery.

use crate::exact::{ConvergingPair, TopKSpec};
use crate::selectors::SelectorKind;
use crate::topk::{budgeted_top_k, BudgetedResult};
use cp_graph::{Graph, NodeId};
use std::collections::HashMap;

/// Configuration of a monitoring loop.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Candidate budget per step (`2m` SSSPs each step).
    pub m: u64,
    /// Which selector to run each step.
    pub selector: SelectorKind,
    /// How pairs are cut each step.
    pub spec: TopKSpec,
    /// Seed for the per-step selector instances (stepped deterministically).
    pub seed: u64,
}

/// Aggregate history of one pair across monitoring steps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairHistory {
    /// Total distance decrease accumulated over all steps where the pair
    /// was reported.
    pub total_delta: u32,
    /// In how many steps the pair was reported.
    pub times_seen: u32,
    /// The step index (1-based) of the last report.
    pub last_seen_step: u32,
}

/// One step's output.
#[derive(Clone, Debug)]
pub struct MonitorStep {
    /// 1-based step index.
    pub step: u32,
    /// The budgeted result against the previous snapshot.
    pub result: BudgetedResult,
}

/// Watches a growing graph snapshot-by-snapshot (see module docs).
pub struct ConvergenceMonitor {
    config: MonitorConfig,
    previous: Graph,
    history: HashMap<(NodeId, NodeId), PairHistory>,
    steps: u32,
}

impl ConvergenceMonitor {
    /// Starts monitoring from an initial snapshot.
    pub fn new(initial: Graph, config: MonitorConfig) -> Self {
        ConvergenceMonitor {
            config,
            previous: initial,
            history: HashMap::new(),
            steps: 0,
        }
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// The snapshot the next step will diff against.
    pub fn current_snapshot(&self) -> &Graph {
        &self.previous
    }

    /// Feeds the next snapshot; returns the pairs that converged since the
    /// previous one (under this step's budget) and advances the window.
    ///
    /// # Panics
    /// Panics if the snapshot's node universe differs from the previous
    /// one (grow the universe up front; `TemporalGraph` snapshots do).
    pub fn advance(&mut self, next: Graph) -> MonitorStep {
        assert_eq!(
            self.previous.num_nodes(),
            next.num_nodes(),
            "snapshots must share a node universe"
        );
        self.steps += 1;
        let mut selector = self
            .config
            .selector
            .build(self.config.seed.wrapping_add(self.steps as u64));
        let result = budgeted_top_k(
            &self.previous,
            &next,
            selector.as_mut(),
            self.config.m,
            &self.config.spec,
        );
        for p in &result.pairs {
            let h = self.history.entry(p.pair).or_default();
            h.total_delta += p.delta;
            h.times_seen += 1;
            h.last_seen_step = self.steps;
        }
        self.previous = next;
        MonitorStep {
            step: self.steps,
            result,
        }
    }

    /// History of one pair, if it was ever reported.
    pub fn pair_history(&self, u: NodeId, v: NodeId) -> Option<PairHistory> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.history.get(&key).copied()
    }

    /// Pairs that have been reported in at least `min_steps` steps, sorted
    /// by total accumulated decrease (descending) — the "keeps converging"
    /// watch list.
    pub fn persistent_pairs(&self, min_steps: u32) -> Vec<(ConvergingPair, PairHistory)> {
        let mut out: Vec<(ConvergingPair, PairHistory)> = self
            .history
            .iter()
            .filter(|(_, h)| h.times_seen >= min_steps)
            .map(|(&(u, v), &h)| (ConvergingPair::new(u, v, h.total_delta), h))
            .collect();
        out.sort_by(|a, b| b.0.delta.cmp(&a.0.delta).then(a.0.pair.cmp(&b.0.pair)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::TemporalGraph;

    /// A ring accumulating chords: three snapshots, chords arriving in two
    /// waves; the pair (0, 12) converges in wave one, (6, 18) in wave two.
    fn snapshots() -> Vec<Graph> {
        let n = 24u32;
        let mut edges: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (NodeId(i), NodeId((i + 1) % n))).collect();
        edges.push((NodeId(0), NodeId(12)));
        edges.push((NodeId(6), NodeId(18)));
        let t = TemporalGraph::from_sequence(n as usize, edges);
        vec![
            t.snapshot_of_prefix(24),
            t.snapshot_of_prefix(25),
            t.snapshot_of_prefix(26),
        ]
    }

    fn config() -> MonitorConfig {
        MonitorConfig {
            m: 24,
            selector: SelectorKind::Degree,
            spec: TopKSpec::ThresholdFromMax { slack: 0 },
            seed: 5,
        }
    }

    #[test]
    fn detects_each_wave() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[0].clone(), config());
        let step1 = monitor.advance(snaps[1].clone());
        assert_eq!(step1.step, 1);
        assert_eq!(step1.result.pairs[0].pair, (NodeId(0), NodeId(12)));
        let step2 = monitor.advance(snaps[2].clone());
        assert_eq!(step2.result.pairs[0].pair, (NodeId(6), NodeId(18)));
        assert_eq!(monitor.steps(), 2);
    }

    #[test]
    fn history_accumulates() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[0].clone(), config());
        monitor.advance(snaps[1].clone());
        monitor.advance(snaps[2].clone());
        let h = monitor.pair_history(NodeId(12), NodeId(0)).unwrap();
        assert_eq!(h.times_seen, 1);
        assert_eq!(h.last_seen_step, 1);
        assert!(h.total_delta >= 10); // ring distance 12 -> 1
        assert!(monitor.pair_history(NodeId(1), NodeId(2)).is_none());
    }

    #[test]
    fn persistent_pairs_sorted_and_filtered() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[0].clone(), config());
        monitor.advance(snaps[1].clone());
        monitor.advance(snaps[2].clone());
        let persistent = monitor.persistent_pairs(1);
        assert!(!persistent.is_empty());
        for w in persistent.windows(2) {
            assert!(w[0].0.delta >= w[1].0.delta);
        }
        // Nothing was seen twice across these two disjoint waves.
        assert!(monitor.persistent_pairs(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "node universe")]
    fn universe_mismatch_panics() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[0].clone(), config());
        let small =
            TemporalGraph::from_sequence(3, vec![(NodeId(0), NodeId(1))]).snapshot_at_fraction(1.0);
        monitor.advance(small);
    }
}
