//! Determinism of the parallel pipeline: the thread count configured on
//! the oracle must never change *what* is computed — pairs, candidate
//! set, and budget ledger are bit-identical at any worker count, because
//! budget admission is sequential and only the SSSP fan-out and the Δ
//! scan are parallel.

use cp_core::exact::TopKSpec;
use cp_core::oracle::SnapshotOracle;
use cp_core::selectors::SelectorKind;
use cp_core::topk::{run_pipeline, BudgetedResult};
use cp_graph::builder::graph_from_edges;
use cp_graph::Graph;
use proptest::prelude::*;

/// A generated case: node count, base edges, extra edges.
type SnapshotPairCase = (usize, Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Strategy: a growing snapshot pair — a base edge list plus extra edges.
/// Larger than the cases in `properties.rs` so the parallel cutoffs
/// (`PARALLEL_ROW_CUTOFF`, `PARALLEL_SCAN_CUTOFF`) are actually crossed.
fn snapshot_pair(n: u32) -> impl Strategy<Value = SnapshotPairCase> {
    (8..=n).prop_flat_map(move |nodes| {
        let base = prop::collection::vec((0..nodes, 0..nodes), 1..120);
        let extra = prop::collection::vec((0..nodes, 0..nodes), 0..40);
        (Just(nodes as usize), base, extra)
    })
}

fn build_graphs(case: &SnapshotPairCase) -> (Graph, Graph) {
    let (n, base, extra) = case;
    let g1 = graph_from_edges(*n, base);
    let all: Vec<(u32, u32)> = base.iter().chain(extra.iter()).copied().collect();
    let g2 = graph_from_edges(*n, &all);
    (g1, g2)
}

fn run_with_threads(
    g1: &Graph,
    g2: &Graph,
    kind: SelectorKind,
    m: u64,
    spec: &TopKSpec,
    seed: u64,
    threads: usize,
) -> BudgetedResult {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m).with_threads(threads);
    let mut sel = kind.build(seed);
    run_pipeline(&mut oracle, sel.as_mut(), spec)
}

const SELECTORS: [SelectorKind; 5] = [
    SelectorKind::Degree,
    SelectorKind::MaxAvg,
    SelectorKind::SumDiff { landmarks: 3 },
    SelectorKind::Mmsd { landmarks: 3 },
    SelectorKind::Random,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_is_thread_invariant(
        case in snapshot_pair(40),
        m in 1u64..24,
        seed in 0u64..8,
    ) {
        let (g1, g2) = build_graphs(&case);
        let spec = TopKSpec::ThresholdFromMax { slack: 1 };
        for kind in SELECTORS {
            let baseline = run_with_threads(&g1, &g2, kind, m, &spec, seed, 1);
            prop_assert!(
                baseline.budget.total() <= 2 * m,
                "{} overspent: {} > {}", kind.name(), baseline.budget.total(), 2 * m
            );
            for threads in [2usize, 8] {
                let parallel = run_with_threads(&g1, &g2, kind, m, &spec, seed, threads);
                prop_assert_eq!(
                    &parallel.pairs, &baseline.pairs,
                    "{} pairs diverge at {} threads", kind.name(), threads
                );
                prop_assert_eq!(
                    &parallel.candidates, &baseline.candidates,
                    "{} candidates diverge at {} threads", kind.name(), threads
                );
                prop_assert_eq!(
                    parallel.budget, baseline.budget,
                    "{} ledger diverges at {} threads", kind.name(), threads
                );
            }
        }
    }

    #[test]
    fn top_k_spec_is_thread_invariant(
        case in snapshot_pair(32),
        m in 1u64..16,
        k in 1usize..20,
    ) {
        let (g1, g2) = build_graphs(&case);
        let spec = TopKSpec::TopK(k);
        let baseline = run_with_threads(&g1, &g2, SelectorKind::MaxMin, m, &spec, 0, 1);
        for threads in [2usize, 8] {
            let parallel = run_with_threads(&g1, &g2, SelectorKind::MaxMin, m, &spec, 0, threads);
            prop_assert_eq!(&parallel.pairs, &baseline.pairs);
            prop_assert_eq!(&parallel.candidates, &baseline.candidates);
            prop_assert_eq!(parallel.budget, baseline.budget);
        }
    }

    #[test]
    fn unbounded_oracle_is_thread_invariant(case in snapshot_pair(24)) {
        let (g1, g2) = build_graphs(&case);
        let spec = TopKSpec::Threshold { delta_min: 1 };
        let run = |threads: usize| {
            let mut oracle = SnapshotOracle::unbounded(&g1, &g2).with_threads(threads);
            let mut sel = SelectorKind::Degree.build(0);
            run_pipeline(&mut oracle, sel.as_mut(), &spec)
        };
        let baseline = run(1);
        for threads in [2usize, 8] {
            let parallel = run(threads);
            prop_assert_eq!(&parallel.pairs, &baseline.pairs);
            prop_assert_eq!(&parallel.candidates, &baseline.candidates);
            prop_assert_eq!(parallel.budget, baseline.budget);
        }
    }
}
