//! Determinism of the parallel pipeline: neither the thread count nor the
//! BFS kernel configured on the oracle may change *what* is computed —
//! pairs, candidate set, and budget ledger are bit-identical at any worker
//! count and under either kernel, because budget admission is sequential
//! and BFS levels are uniquely determined by the graph; only the SSSP
//! fan-out, the wave batching, and the Δ scan differ.

use cp_core::exact::TopKSpec;
use cp_core::oracle::{BfsKernel, RowCacheBudget, Snapshot, SnapshotOracle};
use cp_core::selectors::SelectorKind;
use cp_core::topk::{run_pipeline, BudgetedResult};
use cp_exec::Executor;
use cp_graph::builder::graph_from_edges;
use cp_graph::{Graph, GraphBuilder, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

/// A generated case: node count, base edges, extra edges.
type SnapshotPairCase = (usize, Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Strategy: a growing snapshot pair — a base edge list plus extra edges.
/// Larger than the cases in `properties.rs` so the parallel cutoffs
/// (`PARALLEL_ROW_CUTOFF`, `PARALLEL_SCAN_CUTOFF`) are actually crossed.
fn snapshot_pair(n: u32) -> impl Strategy<Value = SnapshotPairCase> {
    (8..=n).prop_flat_map(move |nodes| {
        let base = prop::collection::vec((0..nodes, 0..nodes), 1..120);
        let extra = prop::collection::vec((0..nodes, 0..nodes), 0..40);
        (Just(nodes as usize), base, extra)
    })
}

fn build_graphs(case: &SnapshotPairCase) -> (Graph, Graph) {
    let (n, base, extra) = case;
    let g1 = graph_from_edges(*n, base);
    let all: Vec<(u32, u32)> = base.iter().chain(extra.iter()).copied().collect();
    let g2 = graph_from_edges(*n, &all);
    (g1, g2)
}

fn run_with_threads(
    g1: &Graph,
    g2: &Graph,
    kind: SelectorKind,
    m: u64,
    spec: &TopKSpec,
    seed: u64,
    threads: usize,
) -> BudgetedResult {
    run_with(g1, g2, kind, m, spec, seed, threads, BfsKernel::Auto)
}

#[allow(clippy::too_many_arguments)]
fn run_with(
    g1: &Graph,
    g2: &Graph,
    kind: SelectorKind,
    m: u64,
    spec: &TopKSpec,
    seed: u64,
    threads: usize,
    kernel: BfsKernel,
) -> BudgetedResult {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m)
        .with_threads(threads)
        .with_kernel(kernel);
    let mut sel = kind.build(seed);
    run_pipeline(&mut oracle, sel.as_mut(), spec)
}

const SELECTORS: [SelectorKind; 5] = [
    SelectorKind::Degree,
    SelectorKind::MaxAvg,
    SelectorKind::SumDiff { landmarks: 3 },
    SelectorKind::Mmsd { landmarks: 3 },
    SelectorKind::Random,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_is_thread_invariant(
        case in snapshot_pair(40),
        m in 1u64..24,
        seed in 0u64..8,
    ) {
        let (g1, g2) = build_graphs(&case);
        let spec = TopKSpec::ThresholdFromMax { slack: 1 };
        for kind in SELECTORS {
            let baseline = run_with_threads(&g1, &g2, kind, m, &spec, seed, 1);
            prop_assert!(
                baseline.budget.total() <= 2 * m,
                "{} overspent: {} > {}", kind.name(), baseline.budget.total(), 2 * m
            );
            for threads in [2usize, 8] {
                let parallel = run_with_threads(&g1, &g2, kind, m, &spec, seed, threads);
                prop_assert_eq!(
                    &parallel.pairs, &baseline.pairs,
                    "{} pairs diverge at {} threads", kind.name(), threads
                );
                prop_assert_eq!(
                    &parallel.candidates, &baseline.candidates,
                    "{} candidates diverge at {} threads", kind.name(), threads
                );
                prop_assert_eq!(
                    parallel.budget, baseline.budget,
                    "{} ledger diverges at {} threads", kind.name(), threads
                );
            }
        }
    }

    #[test]
    fn top_k_spec_is_thread_invariant(
        case in snapshot_pair(32),
        m in 1u64..16,
        k in 1usize..20,
    ) {
        let (g1, g2) = build_graphs(&case);
        let spec = TopKSpec::TopK(k);
        let baseline = run_with_threads(&g1, &g2, SelectorKind::MaxMin, m, &spec, 0, 1);
        for threads in [2usize, 8] {
            let parallel = run_with_threads(&g1, &g2, SelectorKind::MaxMin, m, &spec, 0, threads);
            prop_assert_eq!(&parallel.pairs, &baseline.pairs);
            prop_assert_eq!(&parallel.candidates, &baseline.candidates);
            prop_assert_eq!(parallel.budget, baseline.budget);
        }
    }

    /// Scalar vs optimized kernel: identical pairs, candidates, and
    /// ledger across thread counts — the tentpole's determinism contract.
    #[test]
    fn pipeline_is_kernel_invariant(
        case in snapshot_pair(40),
        m in 1u64..24,
        seed in 0u64..8,
    ) {
        let (g1, g2) = build_graphs(&case);
        let spec = TopKSpec::ThresholdFromMax { slack: 1 };
        for kind in SELECTORS {
            let scalar = run_with(&g1, &g2, kind, m, &spec, seed, 1, BfsKernel::Scalar);
            for threads in [1usize, 2, 8] {
                let auto = run_with(&g1, &g2, kind, m, &spec, seed, threads, BfsKernel::Auto);
                prop_assert_eq!(
                    &auto.pairs, &scalar.pairs,
                    "{} pairs diverge (auto, {} threads)", kind.name(), threads
                );
                prop_assert_eq!(
                    &auto.candidates, &scalar.candidates,
                    "{} candidates diverge (auto, {} threads)", kind.name(), threads
                );
                prop_assert_eq!(
                    auto.budget, scalar.budget,
                    "{} ledger diverges (auto, {} threads)", kind.name(), threads
                );
            }
        }
    }

    /// Executor axis: a dedicated injected pool must reproduce the
    /// global pool's output bit-for-bit, and a single pool must serve
    /// several consecutive pipeline runs without respawning workers.
    #[test]
    fn pipeline_is_executor_invariant(
        case in snapshot_pair(40),
        m in 1u64..24,
        seed in 0u64..8,
    ) {
        let (g1, g2) = build_graphs(&case);
        let spec = TopKSpec::ThresholdFromMax { slack: 1 };
        for kind in [SelectorKind::Degree, SelectorKind::Mmsd { landmarks: 3 }] {
            let baseline = run_with_threads(&g1, &g2, kind, m, &spec, seed, 1);
            for threads in [2usize, 8] {
                let pool = Arc::new(Executor::new(threads));
                let mut spawned_after_first = None;
                for round in 0..3 {
                    let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 2 * m)
                        .with_threads(threads)
                        .with_executor(Arc::clone(&pool));
                    let mut sel = kind.build(seed);
                    let got = run_pipeline(&mut oracle, sel.as_mut(), &spec);
                    prop_assert_eq!(
                        &got.pairs, &baseline.pairs,
                        "{} pairs diverge on a dedicated pool ({} threads, round {})",
                        kind.name(), threads, round
                    );
                    prop_assert_eq!(
                        &got.candidates, &baseline.candidates,
                        "{} candidates diverge on a dedicated pool ({} threads, round {})",
                        kind.name(), threads, round
                    );
                    prop_assert_eq!(
                        got.budget, baseline.budget,
                        "{} ledger diverges on a dedicated pool ({} threads, round {})",
                        kind.name(), threads, round
                    );
                    let spawned = pool.stats().workers_spawned;
                    prop_assert!(
                        spawned < threads as u64,
                        "the caller works a lane itself: at most {} pool workers, got {}",
                        threads - 1, spawned
                    );
                    match spawned_after_first {
                        None => spawned_after_first = Some(spawned),
                        Some(first) => prop_assert_eq!(
                            spawned, first,
                            "pool respawned workers between identical runs"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn unbounded_oracle_is_thread_invariant(case in snapshot_pair(24)) {
        let (g1, g2) = build_graphs(&case);
        let spec = TopKSpec::Threshold { delta_min: 1 };
        let run = |threads: usize| {
            let mut oracle = SnapshotOracle::unbounded(&g1, &g2).with_threads(threads);
            let mut sel = SelectorKind::Degree.build(0);
            run_pipeline(&mut oracle, sel.as_mut(), &spec)
        };
        let baseline = run(1);
        for threads in [2usize, 8] {
            let parallel = run(threads);
            prop_assert_eq!(&parallel.pairs, &baseline.pairs);
            prop_assert_eq!(&parallel.candidates, &baseline.candidates);
            prop_assert_eq!(parallel.budget, baseline.budget);
        }
    }
}

/// A 70-node pair of snapshots, big enough that a 65-node batch spans a
/// full 64-wide wave plus a remainder: a 10×7 grid in `g1`, with diagonal
/// chords added in `g2`.
fn grid_snapshots() -> (Graph, Graph) {
    let n = 70usize;
    let (w, h) = (10u32, 7u32);
    let id = |x: u32, y: u32| y * w + x;
    let mut base: Vec<(u32, u32)> = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                base.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                base.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    let g1 = graph_from_edges(n, &base);
    let mut all = base;
    for y in 0..h - 1 {
        for x in 0..w - 1 {
            if (x + y) % 3 == 0 {
                all.push((id(x, y), id(x + 1, y + 1)));
            }
        }
    }
    let g2 = graph_from_edges(n, &all);
    (g1, g2)
}

/// Explicit batch widths {1, 64, 65} through `prefetch_node_rows`: every
/// row the optimized kernel caches must be byte-identical to the scalar
/// oracle's, and the wave counters must reflect the planned chunking.
#[test]
fn prefetch_batch_widths_are_kernel_invariant() {
    let (g1, g2) = grid_snapshots();
    for width in [1usize, 64, 65] {
        let nodes: Vec<NodeId> = (0..width as u32).map(NodeId).collect();
        // The wave/repair expectations below need the delta cache on, so
        // pin it against the environment (the CI matrix sets CP_ROW_CACHE=0).
        let mut scalar = SnapshotOracle::unbounded(&g1, &g2)
            .with_kernel(BfsKernel::Scalar)
            .with_row_cache(RowCacheBudget::Unbounded);
        let mut auto = SnapshotOracle::unbounded(&g1, &g2)
            .with_kernel(BfsKernel::Auto)
            .with_row_cache(RowCacheBudget::Unbounded)
            .with_threads(4);
        let rs = scalar.prefetch_node_rows(&nodes);
        let ra = auto.prefetch_node_rows(&nodes);
        assert_eq!(rs, ra, "width {width}: prefetch reports diverge");
        assert_eq!(scalar.ledger(), auto.ledger(), "width {width}");
        for &u in &nodes {
            for which in [Snapshot::First, Snapshot::Second] {
                assert_eq!(
                    scalar.cached_row(which, u),
                    auto.cached_row(which, u),
                    "width {width}: row of {u} diverges in {which:?}"
                );
            }
        }
        let ks = auto.kernel_stats();
        // The snapshots grow (`g1 ⊆ g2`), so every `t2` row is repaired
        // from its batch-mate `t1` donor and only the `t1` batch of
        // `width` sources is chunked into ceil(width / 64) waves;
        // single-row remainders go to plain BFS.
        let (waves, wave_rows) = match width {
            1 => (0, 0),
            64 => (1, 64),
            65 => (1, 64),
            _ => unreachable!(),
        };
        assert_eq!(ks.msbfs_waves, waves, "width {width}");
        assert_eq!(ks.msbfs_rows, wave_rows, "width {width}");
        assert_eq!(ks.repair_rows, width as u64, "width {width}");
        assert_eq!(
            ks.msbfs_rows
                + ks.bfs_rows
                + ks.dijkstra_rows
                + ks.repair_rows
                + auto.rows_prefiltered(),
            auto.ledger().total(),
            "width {width}: row counters must add up to the ledger"
        );
        assert_eq!(scalar.kernel_stats().msbfs_waves, 0);
        assert_eq!(scalar.kernel_stats().repair_rows, width as u64);
    }
}

/// Weighted snapshots always fall back to Dijkstra: the optimized kernel
/// plans no waves and the rows are identical to the scalar oracle's.
#[test]
fn weighted_snapshots_fall_back_to_dijkstra() {
    let weighted = |extra: &[(u32, u32, u32)]| {
        let mut b = GraphBuilder::new(12);
        for i in 0..11u32 {
            b.add_weighted_edge(NodeId(i), NodeId(i + 1), 2 + i % 3);
        }
        for &(u, v, w) in extra {
            b.add_weighted_edge(NodeId(u), NodeId(v), w);
        }
        b.build()
    };
    let g1 = weighted(&[]);
    let g2 = weighted(&[(0, 11, 1), (3, 8, 2)]);
    assert!(g1.is_weighted() && g2.is_weighted());
    let nodes: Vec<NodeId> = (0..12).map(NodeId).collect();
    // Repair expectations below need the delta cache on regardless of the
    // environment's CP_ROW_CACHE.
    let mut scalar = SnapshotOracle::unbounded(&g1, &g2)
        .with_kernel(BfsKernel::Scalar)
        .with_row_cache(RowCacheBudget::Unbounded);
    let mut auto = SnapshotOracle::unbounded(&g1, &g2)
        .with_kernel(BfsKernel::Auto)
        .with_row_cache(RowCacheBudget::Unbounded)
        .with_threads(4);
    scalar.prefetch_node_rows(&nodes);
    auto.prefetch_node_rows(&nodes);
    for &u in &nodes {
        for which in [Snapshot::First, Snapshot::Second] {
            assert_eq!(
                scalar.cached_row(which, u),
                auto.cached_row(which, u),
                "row of {u} diverges in {which:?}"
            );
        }
    }
    let ks = auto.kernel_stats();
    assert_eq!(ks.msbfs_waves, 0, "weighted graphs must not plan waves");
    assert_eq!(ks.msbfs_rows, 0);
    assert_eq!(ks.bfs_rows, 0);
    // The t1 rows are full Dijkstra sweeps; the growth-only weighted pair
    // lets every t2 row come from Dijkstra-repair instead.
    assert_eq!(ks.dijkstra_rows, 12);
    assert_eq!(ks.repair_rows, 12);
    assert_eq!(ks.dijkstra_rows + ks.repair_rows, auto.ledger().total());
}

/// Spawn-once across prefetch batches: one injected pool serves three
/// consecutive wide prefetch fan-outs, `workers_spawned` settles after
/// the first batch and never moves again, and every cached row matches
/// a single-thread scalar oracle byte for byte.
#[test]
fn injected_pool_is_reused_across_prefetch_batches() {
    let (g1, g2) = grid_snapshots();
    let pool = Arc::new(Executor::new(4));
    let mut scalar = SnapshotOracle::unbounded(&g1, &g2)
        .with_kernel(BfsKernel::Scalar)
        .with_row_cache(RowCacheBudget::Unbounded);
    let mut auto = SnapshotOracle::unbounded(&g1, &g2)
        .with_kernel(BfsKernel::Auto)
        .with_row_cache(RowCacheBudget::Unbounded)
        .with_threads(4)
        .with_executor(Arc::clone(&pool));
    // Three disjoint 20-node batches, each wide enough to cross
    // PARALLEL_ROW_CUTOFF and fan out on the pool.
    let mut spawned_after_first = 0;
    for batch in 0..3u32 {
        let nodes: Vec<NodeId> = (batch * 20..(batch + 1) * 20).map(NodeId).collect();
        let rs = scalar.prefetch_node_rows(&nodes);
        let ra = auto.prefetch_node_rows(&nodes);
        assert_eq!(rs, ra, "batch {batch}: prefetch reports diverge");
        for &u in &nodes {
            for which in [Snapshot::First, Snapshot::Second] {
                assert_eq!(
                    scalar.cached_row(which, u),
                    auto.cached_row(which, u),
                    "batch {batch}: row of {u} diverges in {which:?}"
                );
            }
        }
        let stats = pool.stats();
        assert!(
            stats.workers_spawned < 4,
            "the caller works a lane itself: at most 3 pool workers"
        );
        if batch == 0 {
            spawned_after_first = stats.workers_spawned;
        } else {
            assert_eq!(
                stats.workers_spawned, spawned_after_first,
                "batch {batch}: the pool respawned workers"
            );
        }
        assert!(stats.batches_run >= u64::from(batch) + 1);
    }
    assert_eq!(scalar.ledger(), auto.ledger());
}

/// A panicking task must poison only its batch: the panic re-throws on
/// the submitter (loudly, not as a deadlock or a silent wrong answer)
/// and the same pool then serves a full pipeline correctly.
#[test]
fn pool_survives_a_panicking_batch() {
    let pool = Arc::new(Executor::new(4));
    let mut slots = vec![0u32; 64];
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.run(&mut slots, 4, |i, _slot, _ctx| {
            if i == 17 {
                panic!("injected task failure");
            }
        });
    }));
    assert!(caught.is_err(), "the task panic must re-throw, not vanish");

    let (g1, g2) = grid_snapshots();
    let spec = TopKSpec::ThresholdFromMax { slack: 1 };
    let baseline = run_with_threads(&g1, &g2, SelectorKind::Degree, 12, &spec, 3, 1);
    let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 24)
        .with_threads(4)
        .with_executor(Arc::clone(&pool));
    let mut sel = SelectorKind::Degree.build(3);
    let got = run_pipeline(&mut oracle, sel.as_mut(), &spec);
    assert_eq!(got.pairs, baseline.pairs, "pairs diverge after a panic");
    assert_eq!(
        got.candidates, baseline.candidates,
        "candidates diverge after a panic"
    );
    assert_eq!(got.budget, baseline.budget, "ledger diverges after a panic");
}
