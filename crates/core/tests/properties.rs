//! Property-based tests for the core algorithms: exactness, budget
//! enforcement, cover correctness.

use cp_core::exact::{exact_top_k, ConvergingPair, TopKSpec};
use cp_core::gpk::PairGraph;
use cp_core::selectors::SelectorKind;
use cp_core::topk::budgeted_top_k;
use cp_graph::bfs::bfs;
use cp_graph::builder::graph_from_edges;
use cp_graph::{distance_decrease, NodeId};
use proptest::prelude::*;

/// A generated case: node count, base edges, extra edges.
type SnapshotPairCase = (usize, Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Strategy: a growing snapshot pair — a base edge list plus extra edges.
fn snapshot_pair(n: u32) -> impl Strategy<Value = SnapshotPairCase> {
    (4..=n).prop_flat_map(move |nodes| {
        let base = prop::collection::vec((0..nodes, 0..nodes), 1..60);
        let extra = prop::collection::vec((0..nodes, 0..nodes), 0..20);
        (Just(nodes as usize), base, extra)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_answer_matches_brute_force((n, base, extra) in snapshot_pair(16)) {
        let g1 = graph_from_edges(n, &base);
        let all: Vec<(u32, u32)> = base.iter().chain(extra.iter()).copied().collect();
        let g2 = graph_from_edges(n, &all);

        // Brute force via per-source BFS.
        let mut brute: Vec<ConvergingPair> = Vec::new();
        for u in 0..n {
            let d1 = bfs(&g1, NodeId::new(u));
            let d2 = bfs(&g2, NodeId::new(u));
            for v in (u + 1)..n {
                if let Some(delta) = distance_decrease(d1[v], d2[v]) {
                    if delta >= 1 {
                        brute.push(ConvergingPair::new(NodeId::new(u), NodeId::new(v), delta));
                    }
                }
            }
        }
        brute.sort_by(|a, b| b.delta.cmp(&a.delta).then(a.pair.cmp(&b.pair)));

        let exact = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 1 }, 2);
        prop_assert_eq!(exact.pairs, brute);
    }

    #[test]
    fn threshold_specs_nest((n, base, extra) in snapshot_pair(16)) {
        let g1 = graph_from_edges(n, &base);
        let all: Vec<(u32, u32)> = base.iter().chain(extra.iter()).copied().collect();
        let g2 = graph_from_edges(n, &all);
        let tight = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 0 }, 2);
        let loose = exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 2 }, 2);
        let loose_set = loose.pair_set();
        for p in &tight.pairs {
            prop_assert!(loose_set.contains(&p.pair));
        }
        prop_assert!(tight.k() <= loose.k());
        prop_assert_eq!(tight.delta_max, loose.delta_max);
    }

    #[test]
    fn budget_never_exceeded((n, base, extra) in snapshot_pair(20), m in 0u64..12, seed in 0u64..8) {
        let g1 = graph_from_edges(n, &base);
        let all: Vec<(u32, u32)> = base.iter().chain(extra.iter()).copied().collect();
        let g2 = graph_from_edges(n, &all);
        for kind in [
            SelectorKind::Degree,
            SelectorKind::MaxMin,
            SelectorKind::SumDiff { landmarks: 3 },
            SelectorKind::Masd { landmarks: 3 },
            SelectorKind::Random,
        ] {
            let mut sel = kind.build(seed);
            let res = budgeted_top_k(&g1, &g2, sel.as_mut(), m, &TopKSpec::TopK(50));
            prop_assert!(
                res.budget.total() <= 2 * m,
                "{} spent {} > {}", kind.name(), res.budget.total(), 2 * m
            );
        }
    }

    #[test]
    fn budgeted_answers_are_sound((n, base, extra) in snapshot_pair(16), m in 1u64..10) {
        let g1 = graph_from_edges(n, &base);
        let all: Vec<(u32, u32)> = base.iter().chain(extra.iter()).copied().collect();
        let g2 = graph_from_edges(n, &all);
        let exact = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: 1 }, 2);
        let truth: std::collections::HashMap<_, _> =
            exact.pairs.iter().map(|p| (p.pair, p.delta)).collect();
        let mut sel = SelectorKind::MaxAvg.build(0);
        let res = budgeted_top_k(&g1, &g2, sel.as_mut(), m, &TopKSpec::Threshold { delta_min: 1 });
        for p in &res.pairs {
            prop_assert_eq!(truth.get(&p.pair), Some(&p.delta));
        }
    }

    #[test]
    fn greedy_cover_covers_everything(pairs in prop::collection::vec((0u32..30, 0u32..30), 1..80)) {
        let cps: Vec<ConvergingPair> = pairs
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| ConvergingPair::new(NodeId(u), NodeId(v), 1))
            .collect();
        prop_assume!(!cps.is_empty());
        let gpk = PairGraph::new(&cps);
        let cover = gpk.greedy_vertex_cover();
        prop_assert!(cover.is_complete(&gpk));
        prop_assert_eq!(gpk.covered_by(&cover.nodes), gpk.num_pairs());
        // A vertex cover can never be larger than the number of pairs.
        prop_assert!(cover.nodes.len() <= gpk.num_pairs());
    }

    #[test]
    fn greedy_coverage_is_monotone_in_budget(pairs in prop::collection::vec((0u32..20, 0u32..20), 1..60)) {
        let cps: Vec<ConvergingPair> = pairs
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| ConvergingPair::new(NodeId(u), NodeId(v), 1))
            .collect();
        prop_assume!(!cps.is_empty());
        let gpk = PairGraph::new(&cps);
        let mut last = 0;
        for budget in 0..=gpk.num_endpoints() {
            let covered = gpk.greedy_max_coverage(budget).covered_pairs;
            prop_assert!(covered >= last);
            last = covered;
        }
        prop_assert_eq!(last, gpk.num_pairs());
    }

    #[test]
    fn greedy_first_pick_is_max_gain(pairs in prop::collection::vec((0u32..15, 0u32..15), 1..40)) {
        let cps: Vec<ConvergingPair> = pairs
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| ConvergingPair::new(NodeId(u), NodeId(v), 1))
            .collect();
        prop_assume!(!cps.is_empty());
        let gpk = PairGraph::new(&cps);
        let first = gpk.greedy_max_coverage(1);
        // No single node may cover more than the greedy's first pick.
        let best_single = gpk
            .endpoints()
            .iter()
            .map(|&u| gpk.covered_by(&[u]))
            .max()
            .unwrap_or(0);
        prop_assert_eq!(first.covered_pairs, best_single);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delta_bounds_are_sound((n, base, extra) in snapshot_pair(18), l1 in 0u32..18, l2 in 0u32..18) {
        use cp_core::estimate::DeltaBounds;
        use cp_graph::landmark_index::LandmarkIndex;
        let g1 = graph_from_edges(n, &base);
        let all: Vec<(u32, u32)> = base.iter().chain(extra.iter()).copied().collect();
        let g2 = graph_from_edges(n, &all);
        let landmarks = [NodeId(l1 % n as u32), NodeId(l2 % n as u32)];
        let bounds = DeltaBounds::new(
            LandmarkIndex::build(&g1, &landmarks),
            LandmarkIndex::build(&g2, &landmarks),
        );
        // Against brute-force deltas: certified bounds must bracket truth.
        for u in 0..n {
            let d1 = bfs(&g1, NodeId::new(u));
            let d2 = bfs(&g2, NodeId::new(u));
            for v in (u + 1)..n {
                let (nu, nv) = (NodeId::new(u), NodeId::new(v));
                match distance_decrease(d1[v], d2[v]) {
                    Some(delta) => {
                        if let Some(lb) = bounds.delta_lower_bound(nu, nv) {
                            prop_assert!(lb <= delta, "lb {} > delta {} for ({u},{v})", lb, delta);
                        }
                        if let Some(ub) = bounds.delta_upper_bound(nu, nv) {
                            prop_assert!(ub >= delta, "ub {} < delta {} for ({u},{v})", ub, delta);
                        }
                    }
                    None => {
                        // Pair not connected in g1: a Some(lb) with lb >= 1
                        // would be an unsound certificate.
                        let lb = bounds.delta_lower_bound(nu, nv).unwrap_or(0);
                        prop_assert_eq!(lb, 0, "disconnected pair certified");
                    }
                }
            }
        }
    }

    #[test]
    fn triage_never_misclassifies((n, base, extra) in snapshot_pair(14), floor in 1u32..4) {
        use cp_core::estimate::DeltaBounds;
        use cp_graph::landmark_index::LandmarkIndex;
        let g1 = graph_from_edges(n, &base);
        let all: Vec<(u32, u32)> = base.iter().chain(extra.iter()).copied().collect();
        let g2 = graph_from_edges(n, &all);
        let landmarks: Vec<NodeId> = (0..3.min(n)).map(NodeId::new).collect();
        let bounds = DeltaBounds::new(
            LandmarkIndex::build(&g1, &landmarks),
            LandmarkIndex::build(&g2, &landmarks),
        );
        let pairs: Vec<(NodeId, NodeId)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (NodeId(u), NodeId(v))))
            .collect();
        let truth = exact_top_k(&g1, &g2, &TopKSpec::Threshold { delta_min: floor }, 2);
        let truth_set = truth.pair_set();
        let triage = bounds.triage(&pairs, floor);
        let (certified, ruled_out) = (triage.certified, triage.ruled_out);
        for p in certified {
            prop_assert!(truth_set.contains(&p), "certified {:?} not real", p);
        }
        for p in ruled_out {
            prop_assert!(!truth_set.contains(&p), "ruled out {:?} is real", p);
        }
    }
}
