//! Differential conformance of the snapshot-delta row cache.
//!
//! The tentpole's contract: the delta cache is a pure wall-clock
//! optimization. Pipeline **results** — pairs, candidate set, budget
//! ledger — are bit-identical with the cache on or off, at any thread
//! count, under either BFS kernel, and at any resident-row budget, on
//! every synthetic evolving-graph generator in `cp-gen`. The reference
//! configuration is the pre-cache compute path (1 thread, scalar kernel,
//! `RowCacheBudget::Bytes(0)`); every other configuration must reproduce
//! it exactly.
//!
//! A second family of checks anchors the pipeline to ground truth: the
//! exact all-pairs solver vs. the unbudgeted Incidence baseline, which by
//! construction finds exactly the converging pairs touching an active
//! node (an endpoint of a new edge).

use cp_core::exact::{exact_top_k, exact_top_k_with_kernel, TopKSpec};
use cp_core::oracle::{BfsKernel, GraphStore, RowCacheBudget, SnapshotOracle, SsspPrune};
use cp_core::scan::ScanKernel;
use cp_core::selectors::{active_nodes, incidence_full, SelectorKind};
use cp_core::topk::{run_pipeline, BudgetedResult};
use cp_gen::affiliation::{affiliation, AffiliationParams};
use cp_gen::ba::barabasi_albert;
use cp_gen::core_tendril::{core_tendril, CoreTendrilParams};
use cp_gen::er::erdos_renyi;
use cp_gen::forest_fire::forest_fire;
use cp_gen::locality::{locality_pa, LocalityPaParams};
use cp_gen::ring_sbm::{ring_sbm, RingSbmParams};
use cp_gen::sbm::{sbm, SbmParams};
use cp_gen::seeded_rng;
use cp_gen::ws::watts_strogatz;
use cp_graph::{Graph, NodeId, TemporalGraph};
use std::collections::HashMap;

/// One small evolving graph per cp-gen generator.
fn generator_cases() -> Vec<(&'static str, TemporalGraph)> {
    vec![
        ("erdos_renyi", erdos_renyi(60, 140, &mut seeded_rng(7))),
        (
            "barabasi_albert",
            barabasi_albert(70, 2, &mut seeded_rng(11)),
        ),
        (
            "watts_strogatz",
            watts_strogatz(64, 4, 0.2, &mut seeded_rng(13)),
        ),
        ("forest_fire", forest_fire(60, 0.35, &mut seeded_rng(17))),
        (
            "sbm",
            sbm(
                SbmParams {
                    n: 80,
                    communities: 4,
                    intra_degree: 5.0,
                    inter_degree: 1.0,
                },
                &mut seeded_rng(19),
            ),
        ),
        (
            "affiliation",
            affiliation(
                AffiliationParams {
                    members: 60,
                    groups: 18,
                    group_min: 2,
                    group_max: 6,
                    newcomer_prob: 0.4,
                },
                &mut seeded_rng(23),
            ),
        ),
        (
            "core_tendril",
            core_tendril(
                CoreTendrilParams {
                    n: 80,
                    ..CoreTendrilParams::default()
                },
                &mut seeded_rng(29),
            ),
        ),
        (
            "ring_sbm",
            ring_sbm(
                RingSbmParams {
                    n: 80,
                    communities: 4,
                    intra_degree: 5.0,
                    adjacent_degree: 1.5,
                    far_degree: 0.3,
                },
                &mut seeded_rng(31),
            ),
        ),
        (
            "locality_pa",
            locality_pa(
                LocalityPaParams {
                    n: 70,
                    edges_per_node: 2,
                    window: 16,
                    global_prob: 0.15,
                    peering_frac: 0.2,
                    peering_global_prob: 0.1,
                },
                &mut seeded_rng(37),
            ),
        ),
    ]
}

fn run_config(
    g1: &Graph,
    g2: &Graph,
    kind: SelectorKind,
    m: u64,
    spec: &TopKSpec,
    threads: usize,
    kernel: BfsKernel,
    cache: RowCacheBudget,
) -> BudgetedResult {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m)
        .with_threads(threads)
        .with_kernel(kernel)
        .with_row_cache(cache);
    let mut sel = kind.build(3);
    run_pipeline(&mut oracle, sel.as_mut(), spec)
}

/// The full differential matrix: threads {1,2,8} × kernels {scalar,auto} ×
/// cache budgets {off, tiny, unbounded} against the reference
/// configuration, on every generator. The tiny budget (one row's worth of
/// bytes beyond the pinned pair) forces constant eviction, free
/// recomputation, and donor-miss fallbacks in the repair planner.
#[test]
fn pipeline_is_invariant_across_the_cache_matrix() {
    let spec = TopKSpec::ThresholdFromMax { slack: 1 };
    for (name, t) in generator_cases() {
        let (g1, g2) = t.snapshot_pair(0.7, 1.0);
        let tiny = RowCacheBudget::Bytes(3 * 4 * g1.num_nodes());
        for kind in [SelectorKind::Degree, SelectorKind::Mmsd { landmarks: 3 }] {
            for m in [4u64, 12] {
                let reference = run_config(
                    &g1,
                    &g2,
                    kind,
                    m,
                    &spec,
                    1,
                    BfsKernel::Scalar,
                    RowCacheBudget::Bytes(0),
                );
                for threads in [1usize, 2, 8] {
                    for kernel in [BfsKernel::Scalar, BfsKernel::Auto] {
                        for cache in [RowCacheBudget::Bytes(0), tiny, RowCacheBudget::Unbounded] {
                            let got = run_config(&g1, &g2, kind, m, &spec, threads, kernel, cache);
                            let ctx = format!(
                                "{name}/{}/m={m}/threads={threads}/{}/cache={}",
                                kind.name(),
                                kernel.name(),
                                cache.describe(),
                            );
                            assert_eq!(got.pairs, reference.pairs, "pairs diverge: {ctx}");
                            assert_eq!(
                                got.candidates, reference.candidates,
                                "candidates diverge: {ctx}"
                            );
                            assert_eq!(got.budget, reference.budget, "ledger diverges: {ctx}");
                            // Stats stay coherent in every configuration:
                            // charged rows add up to the ledger, and the
                            // disabled cache never repairs.
                            let ks = got.stats.kernel_stats;
                            assert_eq!(
                                ks.msbfs_rows
                                    + ks.bfs_rows
                                    + ks.dijkstra_rows
                                    + ks.repair_rows
                                    + got.stats.rows_prefiltered
                                    + got.stats.chained_rows,
                                got.budget.total(),
                                "kernel counters diverge from the ledger: {ctx}"
                            );
                            if cache == RowCacheBudget::Bytes(0) {
                                assert_eq!(
                                    got.stats.repaired_rows, 0,
                                    "disabled cache must not repair: {ctx}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Ground truth anchoring: the unbudgeted Incidence baseline must find
/// exactly the exact solver's pairs that touch an active node — same
/// pairs, same Δ values. (Pairs with both endpoints inactive are invisible
/// to Incidence by design; the paper's Table 6 coverage gap.)
#[test]
fn incidence_baseline_matches_exact_ground_truth() {
    let spec = TopKSpec::Threshold { delta_min: 1 };
    for (name, t) in generator_cases() {
        let (g1, g2) = t.snapshot_pair(0.7, 1.0);
        let exact = exact_top_k(&g1, &g2, &spec, 2);
        let full = incidence_full(&g1, &g2, &spec);
        let active: std::collections::HashSet<NodeId> =
            active_nodes(&g1, &g2).into_iter().collect();
        let expected: HashMap<(NodeId, NodeId), u32> = exact
            .pairs
            .iter()
            .filter(|p| active.contains(&p.pair.0) || active.contains(&p.pair.1))
            .map(|p| (p.pair, p.delta))
            .collect();
        let got: HashMap<(NodeId, NodeId), u32> = full
            .result
            .pairs
            .iter()
            .map(|p| (p.pair, p.delta))
            .collect();
        assert_eq!(got, expected, "{name}: Incidence vs exact ground truth");
        // Sanity: the generators actually produce converging pairs here,
        // so the assertion above is not vacuous.
        assert!(
            !exact.pairs.is_empty(),
            "{name}: no converging pairs generated"
        );
    }
}

fn run_scan_config(
    g1: &Graph,
    g2: &Graph,
    m: u64,
    spec: &TopKSpec,
    threads: usize,
    scan: ScanKernel,
    cache: RowCacheBudget,
) -> BudgetedResult {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m)
        .with_threads(threads)
        .with_row_cache(cache)
        .with_scan_kernel(scan);
    let mut sel = SelectorKind::Degree.build(3);
    run_pipeline(&mut oracle, sel.as_mut(), spec)
}

/// The Δ-scan kernel matrix: `CP_SCAN_KERNEL` {scalar, auto} × threads
/// {1,2,8} × cache budgets {off, tiny, 64k, unbounded} × every spec shape,
/// against the reference scan (1 thread, scalar, cache off). The blocked
/// kernel's chunk skipping and rising floors must never change pairs,
/// candidates, or the ledger.
#[test]
fn scan_kernel_is_invariant_across_the_matrix() {
    let specs = [
        TopKSpec::TopK(10),
        TopKSpec::ThresholdFromMax { slack: 1 },
        TopKSpec::Threshold { delta_min: 2 },
    ];
    for (name, t) in generator_cases() {
        let (g1, g2) = t.snapshot_pair(0.7, 1.0);
        // One resident row pair plus change, at the packed (u16) width.
        let tiny = RowCacheBudget::Bytes(3 * 2 * g1.num_nodes());
        for spec in &specs {
            let reference = run_scan_config(
                &g1,
                &g2,
                12,
                spec,
                1,
                ScanKernel::Scalar,
                RowCacheBudget::Bytes(0),
            );
            for threads in [1usize, 2, 8] {
                for scan in [ScanKernel::Scalar, ScanKernel::Auto] {
                    for cache in [
                        RowCacheBudget::Bytes(0),
                        tiny,
                        RowCacheBudget::Bytes(64 * 1024),
                        RowCacheBudget::Unbounded,
                    ] {
                        let got = run_scan_config(&g1, &g2, 12, spec, threads, scan, cache);
                        let ctx = format!(
                            "{name}/{spec:?}/threads={threads}/scan={}/cache={}",
                            scan.name(),
                            cache.describe(),
                        );
                        assert_eq!(got.pairs, reference.pairs, "pairs diverge: {ctx}");
                        assert_eq!(
                            got.candidates, reference.candidates,
                            "candidates diverge: {ctx}"
                        );
                        assert_eq!(got.budget, reference.budget, "ledger diverges: {ctx}");
                        assert_eq!(got.stats.scan_kernel, scan, "kernel not recorded: {ctx}");
                        if scan == ScanKernel::Scalar {
                            // The reference loop neither chunks nor prunes.
                            assert_eq!(got.stats.scan_chunks_scanned, 0, "{ctx}");
                            assert_eq!(got.stats.scan_chunks_skipped, 0, "{ctx}");
                            assert_eq!(got.stats.scan_pairs_pruned, 0, "{ctx}");
                        } else if !got.candidates.is_empty() {
                            assert!(
                                got.stats.scan_chunks_scanned + got.stats.scan_chunks_skipped > 0,
                                "blocked kernel saw no chunks: {ctx}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The exact baseline runs the same Δ-scan kernel; its answer (and the
/// exact Δmax, which skipped chunks must still feed) is kernel- and
/// thread-invariant.
#[test]
fn exact_solver_is_scan_kernel_invariant() {
    let specs = [
        TopKSpec::TopK(25),
        TopKSpec::ThresholdFromMax { slack: 2 },
        TopKSpec::Threshold { delta_min: 1 },
    ];
    for (name, t) in generator_cases() {
        let (g1, g2) = t.snapshot_pair(0.7, 1.0);
        for spec in &specs {
            let reference = exact_top_k_with_kernel(&g1, &g2, spec, 1, ScanKernel::Scalar);
            for threads in [1usize, 2, 8] {
                for scan in [ScanKernel::Scalar, ScanKernel::Auto] {
                    let got = exact_top_k_with_kernel(&g1, &g2, spec, threads, scan);
                    let ctx = format!("{name}/{spec:?}/threads={threads}/scan={}", scan.name());
                    assert_eq!(got.pairs, reference.pairs, "pairs diverge: {ctx}");
                    assert_eq!(got.delta_max, reference.delta_max, "Δmax diverges: {ctx}");
                    assert_eq!(got.delta_min, reference.delta_min, "Δmin diverges: {ctx}");
                }
            }
        }
    }
}

/// Weighted snapshots must keep full-width rows — Dijkstra distances can
/// exceed `u16` — while the pipeline stays scan-kernel-invariant on them.
#[test]
fn weighted_rows_take_the_u32_arena_path() {
    let weighted = |extra: &[(u32, u32, u32)]| {
        let mut b = cp_graph::GraphBuilder::new(16);
        for i in 0..15u32 {
            b.add_weighted_edge(NodeId(i), NodeId(i + 1), 2 + i % 4);
        }
        for &(u, v, w) in extra {
            b.add_weighted_edge(NodeId(u), NodeId(v), w);
        }
        b.build()
    };
    let g1 = weighted(&[]);
    let g2 = weighted(&[(0, 15, 1), (4, 11, 2)]);
    let spec = TopKSpec::ThresholdFromMax { slack: 1 };
    let reference = run_scan_config(
        &g1,
        &g2,
        8,
        &spec,
        1,
        ScanKernel::Scalar,
        RowCacheBudget::Bytes(0),
    );
    for scan in [ScanKernel::Scalar, ScanKernel::Auto] {
        let got = run_scan_config(&g1, &g2, 8, &spec, 2, scan, RowCacheBudget::Unbounded);
        assert_eq!(got.pairs, reference.pairs, "scan={}", scan.name());
        assert_eq!(got.candidates, reference.candidates, "scan={}", scan.name());
        assert_eq!(
            got.stats.arena.u16_rows, 0,
            "weighted rows must not be packed"
        );
        assert!(got.stats.arena.u32_rows > 0, "u32 arena must hold the rows");
    }
    assert!(
        !reference.pairs.is_empty(),
        "weighted case must not be vacuous"
    );
}

#[allow(clippy::too_many_arguments)]
fn run_prune_config(
    g1: &Graph,
    g2: &Graph,
    kind: SelectorKind,
    m: u64,
    spec: &TopKSpec,
    threads: usize,
    kernel: BfsKernel,
    cache: RowCacheBudget,
    prune: SsspPrune,
) -> BudgetedResult {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m)
        .with_threads(threads)
        .with_kernel(kernel)
        .with_row_cache(cache)
        .with_prune(prune);
    let mut sel = kind.build(3);
    run_pipeline(&mut oracle, sel.as_mut(), spec)
}

/// The `CP_SSSP_PRUNE` axis: bound-truncated sweeps and the landmark
/// pre-filter must keep pairs, candidates, and the ledger bit-identical
/// to the unpruned reference across selectors, spec shapes, threads,
/// kernels, and cache budgets — the pruned configuration is allowed to do
/// strictly *less* internal work, never different *visible* work.
#[test]
fn pruning_is_invariant_across_the_matrix() {
    let specs = [
        TopKSpec::TopK(10),
        TopKSpec::Threshold { delta_min: 2 },
        TopKSpec::ThresholdFromMax { slack: 1 },
    ];
    for (name, t) in generator_cases() {
        let (g1, g2) = t.snapshot_pair(0.7, 1.0);
        for kind in [SelectorKind::Degree, SelectorKind::Mmsd { landmarks: 3 }] {
            for spec in &specs {
                let reference = run_prune_config(
                    &g1,
                    &g2,
                    kind,
                    12,
                    spec,
                    1,
                    BfsKernel::Scalar,
                    RowCacheBudget::Bytes(0),
                    SsspPrune::Off,
                );
                for threads in [1usize, 8] {
                    for kernel in [BfsKernel::Scalar, BfsKernel::Auto] {
                        for cache in [RowCacheBudget::Bytes(0), RowCacheBudget::Unbounded] {
                            for prune in [SsspPrune::Off, SsspPrune::Auto] {
                                let got = run_prune_config(
                                    &g1, &g2, kind, 12, spec, threads, kernel, cache, prune,
                                );
                                let ctx = format!(
                                    "{name}/{}/{spec:?}/threads={threads}/{}/cache={}/prune={}",
                                    kind.name(),
                                    kernel.name(),
                                    cache.describe(),
                                    prune.name(),
                                );
                                assert_eq!(got.pairs, reference.pairs, "pairs diverge: {ctx}");
                                assert_eq!(
                                    got.candidates, reference.candidates,
                                    "candidates diverge: {ctx}"
                                );
                                assert_eq!(got.budget, reference.budget, "ledger diverges: {ctx}");
                                let ks = got.stats.kernel_stats;
                                assert_eq!(
                                    ks.msbfs_rows
                                        + ks.bfs_rows
                                        + ks.dijkstra_rows
                                        + ks.repair_rows
                                        + got.stats.rows_prefiltered
                                        + got.stats.chained_rows,
                                    got.budget.total(),
                                    "kernel counters diverge from the ledger: {ctx}"
                                );
                                if prune == SsspPrune::Off {
                                    assert_eq!(got.stats.rows_truncated, 0, "{ctx}");
                                    assert_eq!(got.stats.rows_prefiltered, 0, "{ctx}");
                                    assert_eq!(got.stats.pairs_prefiltered, 0, "{ctx}");
                                }
                                assert_eq!(got.stats.sssp_prune, prune, "mode not recorded: {ctx}");
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Pruning must actually prune: with repair disabled (`Bytes(0)` keeps no
/// donor rows) and a threshold floor giving truncation headroom, the
/// pruned run settles fewer nodes and relaxes strictly fewer edges than
/// the unpruned one on at least one generator — with bit-identical
/// results, as always.
#[test]
fn pruning_strictly_reduces_internal_work() {
    let spec = TopKSpec::Threshold { delta_min: 2 };
    let mut strictly_less = false;
    let mut truncated_somewhere = false;
    for (name, t) in generator_cases() {
        let (g1, g2) = t.snapshot_pair(0.7, 1.0);
        let run = |prune: SsspPrune| {
            run_prune_config(
                &g1,
                &g2,
                SelectorKind::Mmsd { landmarks: 3 },
                12,
                &spec,
                1,
                BfsKernel::Scalar,
                RowCacheBudget::Bytes(0),
                prune,
            )
        };
        let off = run(SsspPrune::Off);
        let auto = run(SsspPrune::Auto);
        assert_eq!(auto.pairs, off.pairs, "{name}: pairs diverge");
        assert_eq!(
            auto.candidates, off.candidates,
            "{name}: candidates diverge"
        );
        assert_eq!(auto.budget, off.budget, "{name}: ledger diverges");
        assert!(
            auto.stats.relaxed_edges <= off.stats.relaxed_edges,
            "{name}: pruning increased relaxed edges"
        );
        assert!(
            auto.stats.settled_nodes <= off.stats.settled_nodes,
            "{name}: pruning increased settled nodes"
        );
        strictly_less |= auto.stats.relaxed_edges < off.stats.relaxed_edges;
        truncated_somewhere |= auto.stats.rows_truncated > 0;
    }
    assert!(
        strictly_less,
        "pruning never reduced relaxed edges on any generator"
    );
    assert!(
        truncated_somewhere,
        "no t2 sweep was ever truncated on any generator"
    );
}

/// The landmark pre-filter fires on identical snapshots: every pair has
/// `Δ = 0`, so candidates whose bounds certify that are charged without
/// their rows ever being computed — and the visible results (no pairs,
/// same candidates, same ledger) are untouched.
#[test]
fn prefilter_skips_certified_candidates_on_identical_snapshots() {
    let edges: Vec<(u32, u32)> = (0..15).map(|i| (i, i + 1)).collect();
    let g = cp_graph::builder::graph_from_edges(16, &edges);
    let spec = TopKSpec::Threshold { delta_min: 3 };
    let run = |prune: SsspPrune| {
        run_prune_config(
            &g,
            &g,
            SelectorKind::Mmsd { landmarks: 3 },
            16,
            &spec,
            2,
            BfsKernel::Auto,
            RowCacheBudget::Unbounded,
            prune,
        )
    };
    let off = run(SsspPrune::Off);
    let auto = run(SsspPrune::Auto);
    assert!(off.pairs.is_empty(), "identical snapshots have no pairs");
    assert_eq!(auto.pairs, off.pairs);
    assert_eq!(auto.candidates, off.candidates);
    assert_eq!(auto.budget, off.budget);
    // On a path with every node affordable, some candidate sits within
    // bound-certification range of an Mmsd landmark: its rows are charged
    // but never computed.
    assert!(
        auto.stats.rows_prefiltered > 0,
        "pre-filter never skipped a row"
    );
    assert!(
        auto.stats.pairs_prefiltered > 0,
        "pre-filter never skipped a pair"
    );
    let ks = auto.stats.kernel_stats;
    assert_eq!(
        ks.msbfs_rows
            + ks.bfs_rows
            + ks.dijkstra_rows
            + ks.repair_rows
            + auto.stats.rows_prefiltered
            + auto.stats.chained_rows,
        auto.budget.total(),
    );
}

#[allow(clippy::too_many_arguments)]
fn run_store_config(
    g1: &Graph,
    g2: &Graph,
    kind: SelectorKind,
    m: u64,
    spec: &TopKSpec,
    store: GraphStore,
    threads: usize,
    kernel: BfsKernel,
    cache: RowCacheBudget,
    prune: SsspPrune,
) -> BudgetedResult {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m)
        .with_graph_store(store)
        .with_threads(threads)
        .with_kernel(kernel)
        .with_row_cache(cache)
        .with_prune(prune);
    let mut sel = kind.build(3);
    run_pipeline(&mut oracle, sel.as_mut(), spec)
}

/// The `CP_GRAPH_STORE` axis: the overlay (base CSR + insertion deltas)
/// and gap-compressed stores re-encode the *same* adjacency in the same
/// neighbor order, so pairs, candidates, and the ledger are bit-identical
/// to the full-CSR reference across selectors, threads, kernels, cache
/// budgets, and pruning modes. Storage moves graph memory, never results.
#[test]
fn pipeline_is_invariant_across_graph_stores() {
    let spec = TopKSpec::ThresholdFromMax { slack: 1 };
    for (name, t) in generator_cases() {
        let (g1, g2) = t.snapshot_pair(0.7, 1.0);
        for kind in [SelectorKind::Degree, SelectorKind::Mmsd { landmarks: 3 }] {
            let reference = run_store_config(
                &g1,
                &g2,
                kind,
                12,
                &spec,
                GraphStore::Full,
                1,
                BfsKernel::Scalar,
                RowCacheBudget::Bytes(0),
                SsspPrune::Off,
            );
            for store in [
                GraphStore::Full,
                GraphStore::Overlay,
                GraphStore::Compressed,
            ] {
                for threads in [1usize, 2, 8] {
                    for kernel in [BfsKernel::Scalar, BfsKernel::Auto] {
                        for cache in [RowCacheBudget::Bytes(0), RowCacheBudget::Unbounded] {
                            for prune in [SsspPrune::Off, SsspPrune::Auto] {
                                let got = run_store_config(
                                    &g1, &g2, kind, 12, &spec, store, threads, kernel, cache, prune,
                                );
                                let ctx = format!(
                                    "{name}/{}/store={}/threads={threads}/{}/cache={}/prune={}",
                                    kind.name(),
                                    store.name(),
                                    kernel.name(),
                                    cache.describe(),
                                    prune.name(),
                                );
                                assert_eq!(got.pairs, reference.pairs, "pairs diverge: {ctx}");
                                assert_eq!(
                                    got.candidates, reference.candidates,
                                    "candidates diverge: {ctx}"
                                );
                                assert_eq!(got.budget, reference.budget, "ledger diverges: {ctx}");
                                assert_eq!(
                                    got.stats.graph_store, store,
                                    "store not recorded: {ctx}"
                                );
                                let mem = got.stats.graph_mem;
                                assert!(mem.base_bytes > 0, "no base bytes: {ctx}");
                                match store {
                                    GraphStore::Full => {
                                        assert_eq!(mem.overlay_bytes, 0, "{ctx}");
                                        assert_eq!(mem.compressed_bytes, 0, "{ctx}");
                                    }
                                    GraphStore::Overlay => {
                                        // Growth-only snapshot pairs must
                                        // actually share the base CSR.
                                        assert!(
                                            mem.overlay_shared_arcs > 0,
                                            "overlay shares no arcs: {ctx}"
                                        );
                                    }
                                    GraphStore::Compressed => {
                                        assert!(mem.compressed_bytes > 0, "{ctx}");
                                        assert!(mem.compressed_bytes_per_arc > 0.0, "{ctx}");
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The overlay store's O(Δ) delta fast path (`OverlayGraph::to_delta`)
/// must drive snapshot-delta repair exactly like the O(E) containment
/// scan of the full store: not just the same visible results, but the
/// same repaired-row counters and kernel-row split, run for run.
#[test]
fn overlay_fast_path_repairs_identically_to_the_slow_scan() {
    let spec = TopKSpec::ThresholdFromMax { slack: 1 };
    let mut repaired_somewhere = false;
    for (name, t) in generator_cases() {
        let (g1, g2) = t.snapshot_pair(0.7, 1.0);
        let run = |store: GraphStore| {
            run_store_config(
                &g1,
                &g2,
                SelectorKind::Mmsd { landmarks: 3 },
                12,
                &spec,
                store,
                1,
                BfsKernel::Auto,
                RowCacheBudget::Unbounded,
                SsspPrune::Off,
            )
        };
        let full = run(GraphStore::Full);
        let overlay = run(GraphStore::Overlay);
        assert_eq!(overlay.pairs, full.pairs, "{name}: pairs diverge");
        assert_eq!(
            overlay.candidates, full.candidates,
            "{name}: candidates diverge"
        );
        assert_eq!(overlay.budget, full.budget, "{name}: ledger diverges");
        assert_eq!(
            overlay.stats.repaired_rows, full.stats.repaired_rows,
            "{name}: repair counters diverge"
        );
        assert_eq!(
            overlay.stats.kernel_stats, full.stats.kernel_stats,
            "{name}: kernel-row split diverges"
        );
        repaired_somewhere |= overlay.stats.repaired_rows > 0;
    }
    assert!(
        repaired_somewhere,
        "no generator ever exercised the repair path under the overlay store"
    );
}

/// The exact solver's top-k cut is reproduced by the budgeted pipeline
/// when the budget covers every node — full recovery independent of the
/// cache configuration.
#[test]
fn full_budget_recovers_exact_top_k_under_any_cache() {
    for (name, t) in generator_cases().into_iter().take(4) {
        let (g1, g2) = t.snapshot_pair(0.7, 1.0);
        let spec = TopKSpec::TopK(10);
        let exact = exact_top_k(&g1, &g2, &spec, 2);
        let n = g1.num_nodes() as u64;
        for cache in [RowCacheBudget::Bytes(0), RowCacheBudget::Unbounded] {
            let got = run_config(
                &g1,
                &g2,
                SelectorKind::Degree,
                n,
                &spec,
                2,
                BfsKernel::Auto,
                cache,
            );
            assert_eq!(
                got.pairs,
                exact.pairs,
                "{name}/cache={}: full-budget pipeline must recover the exact top-k",
                cache.describe()
            );
        }
    }
}
