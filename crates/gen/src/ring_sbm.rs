//! Ring-of-communities stochastic block model — the Facebook emulator.
//!
//! A flat SBM reproduces community structure but not the *distance scale*
//! of a real friendship graph: with every community one inter-edge away
//! from every other, the diameter is ~5 and no pair can converge by more
//! than a couple of hops. Real social graphs have geography: most
//! cross-community ties connect *nearby* communities (schools in the same
//! city), while occasional long-range ties (moving abroad, online
//! communities) act as distance-collapsing shortcuts — precisely the
//! events the paper mines.
//!
//! Here communities are arranged on a ring; edges are intra-community,
//! adjacent-community, or long-range. The stream is ordered so local
//! structure comes first and long-range ties concentrate toward the end,
//! like a network whose long ties are the newest.

use cp_graph::{NodeId, TemporalGraph};
use rand::Rng;

/// Parameters for the ring-of-communities model.
#[derive(Clone, Copy, Debug)]
pub struct RingSbmParams {
    /// Number of nodes.
    pub n: usize,
    /// Number of communities, arranged on a ring.
    pub communities: usize,
    /// Expected intra-community edges per node.
    pub intra_degree: f64,
    /// Expected edges per node to the two adjacent communities.
    pub adjacent_degree: f64,
    /// Expected edges per node to a uniformly random far community.
    pub far_degree: f64,
}

/// Generates a ring-of-communities graph; long-range edges are biased to
/// the tail of the stream (see module docs).
pub fn ring_sbm<R: Rng>(params: RingSbmParams, rng: &mut R) -> TemporalGraph {
    let RingSbmParams {
        n,
        communities,
        intra_degree,
        adjacent_degree,
        far_degree,
    } = params;
    assert!(communities >= 3, "need at least 3 communities for a ring");
    assert!(n >= communities);
    let block = n / communities;
    let community_of = |u: usize| (u / block).min(communities - 1);
    let nodes_of = |c: usize| {
        let lo = c * block;
        let hi = if c == communities - 1 { n } else { lo + block };
        lo..hi
    };

    let m_intra = (n as f64 * intra_degree / 2.0).round() as usize;
    let m_adj = (n as f64 * adjacent_degree / 2.0).round() as usize;
    let m_far = (n as f64 * far_degree / 2.0).round() as usize;

    let mut seen = std::collections::HashSet::with_capacity(2 * (m_intra + m_adj + m_far));
    let mut local: Vec<(NodeId, NodeId)> = Vec::with_capacity(m_intra + m_adj);
    let mut far: Vec<(NodeId, NodeId)> = Vec::with_capacity(m_far);

    let max_tries = 200 * (m_intra + m_adj + m_far) + 1000;
    let mut tries = 0;
    // Intra-community edges.
    while local.len() < m_intra && tries < max_tries {
        tries += 1;
        let u = rng.random_range(0..n);
        let c = community_of(u);
        let v = rng.random_range(nodes_of(c));
        push_edge(u, v, &mut seen, &mut local);
    }
    // Adjacent-community edges.
    let mut adj_count = 0;
    tries = 0;
    while adj_count < m_adj && tries < max_tries {
        tries += 1;
        let u = rng.random_range(0..n);
        let c = community_of(u);
        let next = if rng.random::<bool>() {
            (c + 1) % communities
        } else {
            (c + communities - 1) % communities
        };
        let v = rng.random_range(nodes_of(next));
        if push_edge(u, v, &mut seen, &mut local) {
            adj_count += 1;
        }
    }
    // Long-range edges (ring distance >= 2).
    tries = 0;
    while far.len() < m_far && tries < max_tries {
        tries += 1;
        let u = rng.random_range(0..n);
        let cu = community_of(u);
        let v = rng.random_range(0..n);
        let cv = community_of(v);
        let ring_dist = {
            let d = cu.abs_diff(cv);
            d.min(communities - d)
        };
        if ring_dist >= 2 {
            push_edge(u, v, &mut seen, &mut far);
        }
    }

    // Stream: every edge gets a position key in [0, 1] — uniform for
    // local edges, skewed toward 1 for long-range ties (about 3/4 of them
    // land in the last fifth of the stream), then sort by key. Unlike a
    // draw-with-rising-probability scheme, this works regardless of how
    // small the long-range class is relative to the stream.
    let mut keyed: Vec<(f64, (NodeId, NodeId))> = Vec::with_capacity(local.len() + far.len());
    for &e in &local {
        keyed.push((rng.random::<f64>(), e));
    }
    for &e in &far {
        let u: f64 = rng.random();
        keyed.push((1.0 - 0.35 * u * u, e));
    }
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    let edges: Vec<(NodeId, NodeId)> = keyed.into_iter().map(|(_, e)| e).collect();
    TemporalGraph::from_sequence(n, edges)
}

fn push_edge(
    u: usize,
    v: usize,
    seen: &mut std::collections::HashSet<(u32, u32)>,
    out: &mut Vec<(NodeId, NodeId)>,
) -> bool {
    if u == v {
        return false;
    }
    let key = (u.min(v) as u32, u.max(v) as u32);
    if seen.insert(key) {
        out.push((NodeId(key.0), NodeId(key.1)));
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbm::{sbm, SbmParams};
    use crate::seeded_rng;
    use cp_graph::diameter::diameter_estimate;

    fn params() -> RingSbmParams {
        RingSbmParams {
            n: 1_200,
            communities: 16,
            intra_degree: 7.0,
            adjacent_degree: 1.2,
            far_degree: 0.25,
        }
    }

    #[test]
    fn valid_and_edge_budget() {
        let t = ring_sbm(params(), &mut seeded_rng(1));
        let g = t.snapshot_at_fraction(1.0);
        g.check_invariants().unwrap();
        let expected = (1200.0 * (7.0 + 1.2 + 0.25) / 2.0) as usize;
        assert!(
            g.num_edges() >= expected * 9 / 10,
            "{} < {}",
            g.num_edges(),
            expected
        );
    }

    #[test]
    fn ring_arrangement_stretches_diameter() {
        let ring = ring_sbm(params(), &mut seeded_rng(2)).snapshot_at_fraction(1.0);
        let flat = sbm(
            SbmParams {
                n: 1_200,
                communities: 16,
                intra_degree: 7.0,
                inter_degree: 1.45,
            },
            &mut seeded_rng(2),
        )
        .snapshot_at_fraction(1.0);
        assert!(
            diameter_estimate(&ring) > diameter_estimate(&flat),
            "ring {} vs flat {}",
            diameter_estimate(&ring),
            diameter_estimate(&flat)
        );
    }

    #[test]
    fn far_edges_arrive_late() {
        let t = ring_sbm(params(), &mut seeded_rng(3));
        let communities = 16;
        let block = 1_200 / communities;
        let is_far = |u: usize, v: usize| {
            let (cu, cv) = (u / block, v / block);
            let d = cu.abs_diff(cv);
            d.min(communities - d) >= 2
        };
        let head = &t.events()[..t.num_events() / 2];
        let tail = &t.events()[t.num_events() / 2..];
        let count_far = |evs: &[cp_graph::TimedEdge]| {
            evs.iter()
                .filter(|e| is_far(e.u.index(), e.v.index()))
                .count()
        };
        assert!(count_far(tail) > count_far(head));
    }

    #[test]
    fn deterministic() {
        let a = ring_sbm(params(), &mut seeded_rng(4));
        let b = ring_sbm(params(), &mut seeded_rng(4));
        assert_eq!(a.events(), b.events());
    }

    #[test]
    #[should_panic(expected = "ring")]
    fn too_few_communities_panics() {
        ring_sbm(
            RingSbmParams {
                communities: 2,
                ..params()
            },
            &mut seeded_rng(0),
        );
    }
}
