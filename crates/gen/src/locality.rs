//! Locality-biased preferential attachment with peering — the Internet
//! emulator.
//!
//! The plain Barabási–Albert model gets the AS graph's heavy-tailed
//! degrees right but not its *distance structure*: BA graphs have
//! diameter ~5 and, crucially, their edge stream only ever attaches new
//! nodes, so between two prefix snapshots no pair of *old* nodes can
//! converge by much. The real AS-level Internet evolves differently:
//! regional providers connect mostly near each other (locality), stub
//! chains give the graph a diameter around 8–11, and new **peering links
//! between existing ASes** occasionally slash the distance between whole
//! regions — exactly the events the converging-pairs problem is about.
//!
//! This generator models that with three ingredients:
//!
//! 1. **Growth with locality**: arriving nodes attach preferentially, but
//!    the targets are drawn from a sliding window of recent attachment
//!    endpoints (temporal ≈ topological locality), producing a long
//!    "band" with hubs inside it.
//! 2. **Global links**: with a small probability an attachment goes to a
//!    uniformly drawn past endpoint (national backbones), keeping the
//!    graph small-world rather than a path.
//! 3. **Peering events**: a fraction of the stream consists of edges
//!    between two *existing* nodes — one uniform (often a stub), one
//!    preferential — so late stream prefixes contain exactly the
//!    distance-collapsing events.

use cp_graph::{NodeId, TemporalGraph};
use rand::Rng;

/// Parameters of the locality-PA + peering model.
#[derive(Clone, Copy, Debug)]
pub struct LocalityPaParams {
    /// Number of nodes.
    pub n: usize,
    /// Preferential attachments per arriving node.
    pub edges_per_node: usize,
    /// Locality window, in *nodes*: attachment targets are drawn from the
    /// endpoints contributed by roughly the last `window` arrivals.
    pub window: usize,
    /// Probability that an attachment ignores the window and picks a
    /// global preferential target.
    pub global_prob: f64,
    /// Fraction of stream events that are peering links between existing
    /// nodes (in `[0, 1)`), interleaved uniformly with growth.
    pub peering_frac: f64,
    /// Probability that a peering link is *global* (one endpoint drawn
    /// preferentially from the whole graph) instead of local (both
    /// endpoints from the same temporal neighborhood). Rare global peering
    /// events are what create the sharply converging pairs: one far-away
    /// stub re-homing toward the core pulls its whole region closer to
    /// everything, so the top-Δ pairs concentrate on a few epicenters —
    /// the structure the paper's Table 3 maxcover numbers show.
    pub peering_global_prob: f64,
}

/// Generates a locality-PA + peering temporal graph (see module docs).
pub fn locality_pa<R: Rng>(params: LocalityPaParams, rng: &mut R) -> TemporalGraph {
    let LocalityPaParams {
        n,
        edges_per_node,
        window,
        global_prob,
        peering_frac,
        peering_global_prob,
    } = params;
    assert!(n >= 2 && edges_per_node >= 1);
    assert!(window >= 1);
    assert!((0.0..=1.0).contains(&global_prob));
    assert!((0.0..1.0).contains(&peering_frac));
    assert!((0.0..=1.0).contains(&peering_global_prob));

    // Arc multiset for preferential draws (every edge contributes both
    // endpoints). Window draws use the suffix of this list.
    let mut arcs: Vec<u32> = vec![0, 1];
    let mut edges: Vec<(NodeId, NodeId)> = vec![(NodeId(0), NodeId(1))];
    let window_arcs = window.saturating_mul(2 * edges_per_node).max(4);

    let mut targets: Vec<u32> = Vec::with_capacity(edges_per_node);
    let mut peering_count = 0usize;
    for new in 2..n as u32 {
        // Growth: attach `edges_per_node` distinct targets.
        targets.clear();
        let mut attempts = 0;
        while targets.len() < edges_per_node.min(new as usize) && attempts < 64 {
            attempts += 1;
            let pick = if rng.random::<f64>() < global_prob {
                arcs[rng.random_range(0..arcs.len())]
            } else {
                let lo = arcs.len().saturating_sub(window_arcs);
                arcs[rng.random_range(lo..arcs.len())]
            };
            if pick != new && !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for &t in &targets {
            edges.push((NodeId(new), NodeId(t)));
            arcs.push(new);
            arcs.push(t);
        }
        // Peering: keep the configured fraction of the stream as
        // existing-pair events, appended after this arrival's growth so
        // they interleave uniformly with growth over time.
        let mut guard = 0;
        while (peering_count as f64) < peering_frac * edges.len() as f64 && guard < 1000 {
            guard += 1;
            // One uniform endpoint (stubs included)...
            let u = rng.random_range(0..=new);
            // ...paired either globally (rare, the dramatic re-homing
            // events) or within u's temporal neighborhood (the common
            // regional densification that barely moves distances).
            let v = if rng.random::<f64>() < peering_global_prob {
                arcs[rng.random_range(0..arcs.len())]
            } else {
                let lo = u.saturating_sub(window as u32);
                let hi = u.saturating_add(window as u32).min(new);
                rng.random_range(lo..=hi)
            };
            if u == v {
                continue;
            }
            edges.push((NodeId(u), NodeId(v)));
            arcs.push(u);
            arcs.push(v);
            peering_count += 1;
        }
    }
    TemporalGraph::from_sequence(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use cp_graph::components::components;
    use cp_graph::diameter::diameter_estimate;

    fn params() -> LocalityPaParams {
        LocalityPaParams {
            n: 2_000,
            edges_per_node: 2,
            window: 60,
            global_prob: 0.03,
            peering_frac: 0.25,
            peering_global_prob: 0.05,
        }
    }

    #[test]
    fn connected_and_valid() {
        let t = locality_pa(params(), &mut seeded_rng(1));
        let g = t.snapshot_at_fraction(1.0);
        g.check_invariants().unwrap();
        assert_eq!(components(&g).num_components(), 1);
    }

    #[test]
    fn locality_raises_diameter_over_plain_ba() {
        // A tight window and few global links stretch the graph into a
        // band whose diameter clearly exceeds plain BA's.
        let local = locality_pa(
            LocalityPaParams {
                n: 3_000,
                edges_per_node: 2,
                window: 30,
                global_prob: 0.002,
                peering_frac: 0.08,
                peering_global_prob: 0.02,
            },
            &mut seeded_rng(2),
        )
        .snapshot_at_fraction(1.0);
        let ba = crate::ba::barabasi_albert(3_000, 2, &mut seeded_rng(2)).snapshot_at_fraction(1.0);
        assert!(
            diameter_estimate(&local) > diameter_estimate(&ba),
            "locality {} vs ba {}",
            diameter_estimate(&local),
            diameter_estimate(&ba)
        );
    }

    #[test]
    fn peering_edges_exist_between_old_nodes() {
        let t = locality_pa(params(), &mut seeded_rng(3));
        // In the last 10% of the stream, some edges must connect two nodes
        // that both arrived much earlier (peering, not growth).
        let tail_start = t.num_events() * 9 / 10;
        let old_threshold = (params().n as u32) / 2;
        let old_old = t.events()[tail_start..]
            .iter()
            .filter(|e| e.u.0 < old_threshold && e.v.0 < old_threshold)
            .count();
        assert!(old_old > 0, "no peering among old nodes in the tail");
    }

    #[test]
    fn heavy_tail_preserved() {
        let g = locality_pa(params(), &mut seeded_rng(4)).snapshot_at_fraction(1.0);
        let mean = 2.0 * g.num_edges() as f64 / g.num_active_nodes() as f64;
        assert!(
            g.max_degree() as f64 > 4.0 * mean,
            "max {} mean {mean}",
            g.max_degree()
        );
    }

    #[test]
    fn deterministic() {
        let a = locality_pa(params(), &mut seeded_rng(5));
        let b = locality_pa(params(), &mut seeded_rng(5));
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn zero_peering_is_pure_growth() {
        let t = locality_pa(
            LocalityPaParams {
                peering_frac: 0.0,
                peering_global_prob: 0.0,
                ..params()
            },
            &mut seeded_rng(6),
        );
        // Every event's max endpoint should be the "new" node at its time,
        // i.e. event endpoints never both predate the current frontier by
        // much. Weak check: event count ~ n * edges_per_node.
        assert!(t.num_events() <= 2_000 * 2);
    }
}
