//! Synthetic evolving-graph generators for the converging-pairs experiments.
//!
//! The paper evaluates on four real datasets (IMDB actor co-appearances,
//! the CAIDA AS-level Internet graph, a Facebook friendship trace, and DBLP
//! co-authorships). Those traces are not redistributable, so this crate
//! provides generators whose output matches the *structural properties that
//! drive the paper's results* — degree distribution, clustering, diameter,
//! component structure — at the same scale, together with four concrete
//! [`datasets`] emulators. DESIGN.md §4 documents each substitution.
//!
//! All generators are deterministic given a seed and produce a
//! [`TemporalGraph`](cp_graph::TemporalGraph) (a timestamped edge stream),
//! because the experiments need *evolving* graphs: the stream is cut at
//! edge fractions to obtain the `G_t1`/`G_t2` snapshot pairs (and the
//! earlier 40 %/60 % pair used to train the classifiers).
//!
//! Generators:
//! * [`er`] — Erdős–Rényi `G(n, m)` edge streams (null model).
//! * [`ba`] — Barabási–Albert preferential attachment.
//! * [`locality`] — locality-windowed preferential attachment with
//!   peering links between existing nodes.
//! * [`core_tendril`] — compact preferential core plus deep stub tendrils
//!   with rare rescue-peering events (the Internet emulator).
//! * [`ws`] — Watts–Strogatz small world (high clustering, fixed degree).
//! * [`forest_fire`] — Leskovec et al. forest-fire burns (densifying).
//! * [`sbm`] — flat stochastic block model with closure-biased streaming.
//! * [`ring_sbm`] — communities on a ring with late long-range ties (the
//!   Facebook emulator).
//! * [`affiliation`] — bipartite affiliation projections: members join
//!   groups and each group becomes a clique (actors/movies, authors/papers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affiliation;
pub mod ba;
pub mod core_tendril;
pub mod datasets;
pub mod er;
pub mod forest_fire;
pub mod io;
pub mod locality;
pub mod ring_sbm;
pub mod sbm;
pub mod ws;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the crate's standard seeded RNG.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
