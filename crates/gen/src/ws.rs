//! Watts–Strogatz small-world streams.

use cp_graph::{NodeId, TemporalGraph};
use rand::Rng;

/// Generates a Watts–Strogatz small-world graph: a ring lattice where each
/// node connects to its `k/2` nearest neighbors on each side, with each
/// lattice edge rewired to a random target with probability `beta`.
///
/// The stream interleaves lattice edges in ring order, so early snapshots
/// are sparse rings — distances then collapse as the rewired shortcuts
/// arrive, making this generator a stress test where *many* pairs converge
/// sharply (shortcut insertions are exactly the events the paper's problem
/// is about).
///
/// # Panics
/// Panics unless `k` is even, `k >= 2` and `n > k`.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> TemporalGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(n > k, "need n > k");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * k / 2);
    let mut seen = std::collections::HashSet::with_capacity(n * k);
    for dist in 1..=(k / 2) {
        for u in 0..n {
            let v = (u + dist) % n;
            let (mut a, mut b) = (u as u32, v as u32);
            if rng.random::<f64>() < beta {
                // Rewire the far endpoint to a uniform random node, keeping
                // the edge simple; give up after a few rejections (dense
                // corner cases) and keep the lattice edge.
                for _ in 0..16 {
                    let t = rng.random_range(0..n as u32);
                    let key = if a < t { (a, t) } else { (t, a) };
                    if t != a && !seen.contains(&key) {
                        b = t;
                        break;
                    }
                }
            }
            let key = if a < b {
                (a, b)
            } else {
                std::mem::swap(&mut a, &mut b);
                (a, b)
            };
            if seen.insert(key) {
                edges.push((NodeId(key.0), NodeId(key.1)));
            }
        }
    }
    TemporalGraph::from_sequence(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use cp_graph::diameter::diameter_estimate;

    #[test]
    fn pure_lattice_when_beta_zero() {
        let t = watts_strogatz(20, 4, 0.0, &mut seeded_rng(1));
        let g = t.snapshot_at_fraction(1.0);
        assert_eq!(g.num_edges(), 20 * 2);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let lattice = watts_strogatz(400, 4, 0.0, &mut seeded_rng(2)).snapshot_at_fraction(1.0);
        let small_world = watts_strogatz(400, 4, 0.3, &mut seeded_rng(2)).snapshot_at_fraction(1.0);
        assert!(
            diameter_estimate(&small_world) < diameter_estimate(&lattice),
            "shortcuts should shrink the diameter"
        );
    }

    #[test]
    fn deterministic() {
        let a = watts_strogatz(50, 4, 0.2, &mut seeded_rng(5));
        let b = watts_strogatz(50, 4, 0.2, &mut seeded_rng(5));
        assert_eq!(a.events(), b.events());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_panics() {
        watts_strogatz(10, 3, 0.1, &mut seeded_rng(0));
    }
}
