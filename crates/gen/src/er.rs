//! Erdős–Rényi `G(n, m)` edge streams.

use cp_graph::{NodeId, TemporalGraph};
use rand::Rng;

/// Generates a uniform random graph with `n` nodes and `m` distinct edges,
/// streamed in a uniformly random insertion order.
///
/// Sampling is rejection-based over the pair space, which is efficient as
/// long as `m` is well below `n(n-1)/2` (always true for the sparse graphs
/// used here).
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> TemporalGraph {
    assert!(n >= 2 || m == 0, "need at least two nodes for edges");
    let max_edges = n as u64 * (n as u64 - 1) / 2;
    assert!(
        (m as u64) <= max_edges,
        "requested {m} edges but only {max_edges} possible"
    );
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            edges.push((NodeId(key.0), NodeId(key.1)));
        }
    }
    TemporalGraph::from_sequence(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn produces_exact_edge_count() {
        let mut rng = seeded_rng(1);
        let t = erdos_renyi(50, 120, &mut rng);
        assert_eq!(t.num_nodes(), 50);
        assert_eq!(t.num_events(), 120);
        // All events are distinct edges, so the full snapshot has m edges.
        assert_eq!(t.snapshot_at_fraction(1.0).num_edges(), 120);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = erdos_renyi(30, 60, &mut seeded_rng(7));
        let b = erdos_renyi(30, 60, &mut seeded_rng(7));
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(30, 60, &mut seeded_rng(7));
        let b = erdos_renyi(30, 60, &mut seeded_rng(8));
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn complete_graph_possible() {
        let t = erdos_renyi(5, 10, &mut seeded_rng(3));
        assert_eq!(t.snapshot_at_fraction(1.0).num_edges(), 10);
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn too_many_edges_panics() {
        erdos_renyi(4, 7, &mut seeded_rng(1));
    }
}
