//! Stochastic block model with triadic closure — the Facebook emulator.
//!
//! Friendship graphs combine community structure (dense blocks, sparse
//! inter-block links) with local closure (friends of friends become
//! friends). The generator first samples a planted-partition SBM and then
//! streams the edges in an order biased toward closure: an edge is more
//! likely to appear early if one of its endpoints is already active. Late
//! inter-community edges are exactly the events that create large distance
//! decreases, reproducing the convergence dynamics of the paper's Facebook
//! trace.

use cp_graph::{NodeId, TemporalGraph};
use rand::Rng;

/// Parameters for the planted-partition stochastic block model.
#[derive(Clone, Copy, Debug)]
pub struct SbmParams {
    /// Number of nodes.
    pub n: usize,
    /// Number of equally sized communities.
    pub communities: usize,
    /// Expected intra-community edges per node (controls block density).
    pub intra_degree: f64,
    /// Expected inter-community edges per node.
    pub inter_degree: f64,
}

/// Generates a planted-partition graph per [`SbmParams`] and streams it
/// with intra-community edges biased early, inter-community bridges biased
/// late (see module docs).
pub fn sbm<R: Rng>(params: SbmParams, rng: &mut R) -> TemporalGraph {
    let SbmParams {
        n,
        communities,
        intra_degree,
        inter_degree,
    } = params;
    assert!(communities >= 1 && n >= communities, "bad community count");
    let block = n / communities;
    let community_of = |u: usize| (u / block).min(communities - 1);

    // Target edge counts via expected degrees.
    let m_intra = (n as f64 * intra_degree / 2.0).round() as usize;
    let m_inter = (n as f64 * inter_degree / 2.0).round() as usize;

    let mut seen = std::collections::HashSet::with_capacity(2 * (m_intra + m_inter));
    let mut intra = Vec::with_capacity(m_intra);
    let mut inter = Vec::with_capacity(m_inter);

    let mut tries = 0usize;
    let max_tries = 100 * (m_intra + m_inter) + 1000;
    while intra.len() < m_intra && tries < max_tries {
        tries += 1;
        let u = rng.random_range(0..n);
        let c = community_of(u);
        let lo = c * block;
        let hi = if c == communities - 1 { n } else { lo + block };
        let v = rng.random_range(lo..hi);
        if u == v {
            continue;
        }
        let key = (u.min(v) as u32, u.max(v) as u32);
        if seen.insert(key) {
            intra.push((NodeId(key.0), NodeId(key.1)));
        }
    }
    tries = 0;
    while inter.len() < m_inter && tries < max_tries {
        tries += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || community_of(u) == community_of(v) {
            continue;
        }
        let key = (u.min(v) as u32, u.max(v) as u32);
        if seen.insert(key) {
            inter.push((NodeId(key.0), NodeId(key.1)));
        }
    }

    // Stream order via position keys: intra edges uniform in [0, 1],
    // inter-community bridges skewed toward the tail (closure first,
    // bridges late). Keys rather than draw-probabilities keep the skew
    // independent of how rare the bridge class is.
    let mut keyed: Vec<(f64, (NodeId, NodeId))> = Vec::with_capacity(intra.len() + inter.len());
    for &e in &intra {
        keyed.push((rng.random::<f64>(), e));
    }
    for &e in &inter {
        let u: f64 = rng.random();
        keyed.push((1.0 - 0.55 * u * u, e));
    }
    keyed.sort_by(|a, b| a.0.total_cmp(&b.0));
    let edges: Vec<(NodeId, NodeId)> = keyed.into_iter().map(|(_, e)| e).collect();
    TemporalGraph::from_sequence(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn params() -> SbmParams {
        SbmParams {
            n: 400,
            communities: 4,
            intra_degree: 8.0,
            inter_degree: 1.0,
        }
    }

    #[test]
    fn edge_budget_respected() {
        let t = sbm(params(), &mut seeded_rng(1));
        let g = t.snapshot_at_fraction(1.0);
        let expected = (400.0 * 8.0 / 2.0 + 400.0 * 1.0 / 2.0) as usize;
        // Rejection sampling can fall slightly short only on pathological
        // parameters; here it must hit the target exactly.
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn intra_edges_dominate_early_stream() {
        let t = sbm(params(), &mut seeded_rng(2));
        let block = 100;
        let head = &t.events()[..t.num_events() / 4];
        let inter_in_head = head
            .iter()
            .filter(|e| e.u.index() / block != e.v.index() / block)
            .count();
        let frac = inter_in_head as f64 / head.len() as f64;
        assert!(frac < 0.12, "head should be mostly intra, got {frac}");
    }

    #[test]
    fn deterministic() {
        let a = sbm(params(), &mut seeded_rng(3));
        let b = sbm(params(), &mut seeded_rng(3));
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn single_community_degenerates_to_er() {
        let t = sbm(
            SbmParams {
                n: 100,
                communities: 1,
                intra_degree: 4.0,
                inter_degree: 0.0,
            },
            &mut seeded_rng(4),
        );
        assert_eq!(t.snapshot_at_fraction(1.0).num_edges(), 200);
    }
}
