//! Forest-fire graph generation (Leskovec, Kleinberg, Faloutsos).
//!
//! Each arriving node picks an ambassador and "burns" through the existing
//! graph with geometric fan-out, linking to every burned node. The model
//! produces densification and shrinking diameters over time — the dynamic
//! the paper's problem feeds on — and community-like locally dense regions.

use cp_graph::{NodeId, TemporalGraph};
use rand::Rng;
use std::collections::HashSet;

/// Generates a forest-fire graph of `n` nodes with forward burning
/// probability `p` (0 ≤ p < 1). The edge stream is ordered by node arrival.
pub fn forest_fire<R: Rng>(n: usize, p: f64, rng: &mut R) -> TemporalGraph {
    assert!(
        (0.0..1.0).contains(&p),
        "burn probability must be in [0, 1)"
    );
    assert!(n >= 1);
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut burned: HashSet<u32> = HashSet::new();
    // Burn order, kept separately: HashSet iteration order is not
    // deterministic, and the edge stream must be reproducible per seed.
    let mut burn_order: Vec<u32> = Vec::new();
    let mut queue: Vec<u32> = Vec::new();

    for new in 1..n as u32 {
        burned.clear();
        burn_order.clear();
        queue.clear();
        let ambassador = rng.random_range(0..new);
        burned.insert(ambassador);
        burn_order.push(ambassador);
        queue.push(ambassador);
        while let Some(w) = queue.pop() {
            // Geometric number of additional spreads: keep burning
            // unburned neighbors while coin flips succeed.
            let nbrs = &adjacency[w as usize];
            if nbrs.is_empty() {
                continue;
            }
            let mut burns = 0usize;
            while rng.random::<f64>() < p && burns < nbrs.len() {
                burns += 1;
            }
            let mut picked = 0usize;
            let start = rng.random_range(0..nbrs.len());
            for i in 0..nbrs.len() {
                if picked >= burns {
                    break;
                }
                let cand = nbrs[(start + i) % nbrs.len()];
                if burned.insert(cand) {
                    burn_order.push(cand);
                    queue.push(cand);
                    picked += 1;
                }
            }
        }
        for &b in &burn_order {
            edges.push((NodeId(new), NodeId(b)));
            adjacency[new as usize].push(b);
            adjacency[b as usize].push(new);
        }
    }
    TemporalGraph::from_sequence(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use cp_graph::components::components;

    #[test]
    fn connected_and_growing() {
        let t = forest_fire(300, 0.35, &mut seeded_rng(11));
        let g = t.snapshot_at_fraction(1.0);
        assert_eq!(components(&g).num_components(), 1);
        // Every non-seed node contributes at least one edge.
        assert!(g.num_edges() >= 299);
    }

    #[test]
    fn higher_p_densifies() {
        let sparse = forest_fire(300, 0.1, &mut seeded_rng(1)).snapshot_at_fraction(1.0);
        let dense = forest_fire(300, 0.5, &mut seeded_rng(1)).snapshot_at_fraction(1.0);
        assert!(dense.num_edges() > sparse.num_edges());
    }

    #[test]
    fn deterministic() {
        let a = forest_fire(100, 0.3, &mut seeded_rng(21));
        let b = forest_fire(100, 0.3, &mut seeded_rng(21));
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn zero_p_gives_tree() {
        let t = forest_fire(50, 0.0, &mut seeded_rng(2));
        let g = t.snapshot_at_fraction(1.0);
        assert_eq!(g.num_edges(), 49); // each node links only its ambassador
    }
}
