//! Core-and-tendril topology with rescue peering — the Internet emulator.
//!
//! The AS-level Internet is a *compact* preferential-attachment core (most
//! ASes are 2–4 hops from a tier-1 hub) decorated with **tendrils**: chains
//! and bushes of customer ASes hanging off regional providers, which is
//! where the graph's 8–11-hop diameter lives. Its convergence events are
//! equally asymmetric: when a deep customer AS buys transit from a core
//! provider (a "rescue" peering link), its whole subtree collapses toward
//! *everything* — one event creates hundreds of top-Δ pairs that share a
//! handful of tendril-side endpoints. That concentration is exactly what
//! the paper's Table 3 shows (thousands of pairs, greedy covers of tens)
//! and what lets m = 100 SSSP sources cover >90 % of the top pairs.
//!
//! The generator grows three event classes, interleaved in one stream:
//!
//! * **core growth** — new node attaches `core_degree` edges
//!   preferentially within the core;
//! * **tendril growth** — new node extends a tendril (attaches to its tip
//!   with probability `tip_prob`, else branches off a random member), or
//!   starts a new tendril at a random core node;
//! * **rescue peering** — an existing tendril node links to a
//!   preferentially chosen core node; rare, and the deepest rescues in the
//!   stream's tail are the top converging events.

use cp_graph::{NodeId, TemporalGraph};
use rand::Rng;

/// Parameters of the core-tendril model.
#[derive(Clone, Copy, Debug)]
pub struct CoreTendrilParams {
    /// Number of nodes.
    pub n: usize,
    /// Fraction of arriving nodes that join tendrils instead of the core.
    pub tendril_frac: f64,
    /// Preferential attachments per core node.
    pub core_degree: usize,
    /// Probability a tendril-joining node extends the current tip (depth)
    /// rather than branching off a random tendril member (bushiness).
    pub tip_prob: f64,
    /// Probability an arriving tendril node starts a *new* tendril.
    pub new_tendril_prob: f64,
    /// Maximum tendril length; full tendrils are retired and a fresh one
    /// is started instead (real stub chains are 1-4 ASes deep — without a
    /// cap the oldest tendrils keep growing and the diameter explodes).
    pub max_tendril_len: usize,
    /// Expected number of rescue-peering events per 1000 stream events.
    pub rescues_per_mille: f64,
    /// Extra densification: fraction of stream events that are ordinary
    /// core-core peering links (keeps the edge count at AS-graph levels
    /// without touching distances much).
    pub core_peering_frac: f64,
}

impl Default for CoreTendrilParams {
    fn default() -> Self {
        CoreTendrilParams {
            n: 25_500,
            tendril_frac: 0.4,
            core_degree: 3,
            tip_prob: 0.7,
            new_tendril_prob: 0.12,
            max_tendril_len: 5,
            rescues_per_mille: 8.0,
            core_peering_frac: 0.4,
        }
    }
}

/// Generates a core-tendril temporal graph (see module docs).
pub fn core_tendril<R: Rng>(params: CoreTendrilParams, rng: &mut R) -> TemporalGraph {
    let CoreTendrilParams {
        n,
        tendril_frac,
        core_degree,
        tip_prob,
        new_tendril_prob,
        max_tendril_len,
        rescues_per_mille,
        core_peering_frac,
    } = params;
    assert!(n >= 4);
    assert!((0.0..1.0).contains(&tendril_frac));
    assert!(core_degree >= 1);
    assert!((0.0..=1.0).contains(&tip_prob));
    assert!((0.0..=1.0).contains(&new_tendril_prob));
    assert!(max_tendril_len >= 1);
    assert!(rescues_per_mille >= 0.0);
    assert!((0.0..1.0).contains(&core_peering_frac));

    // Core arc multiset for preferential draws.
    let mut core_arcs: Vec<u32> = vec![0, 1];
    let mut edges: Vec<(NodeId, NodeId)> = vec![(NodeId(0), NodeId(1))];
    // Tendrils: per-tendril member list; the last member is the tip.
    let mut tendrils: Vec<Vec<u32>> = Vec::new();
    let mut all_tendril_nodes: Vec<u32> = Vec::new();
    let mut peering_count = 0usize;
    let mut rescue_budget = 0.0f64;

    let push_core_arc = |arcs: &mut Vec<u32>, u: u32, v: u32| {
        arcs.push(u);
        arcs.push(v);
    };

    for new in 2..n as u32 {
        let edges_before = edges.len();
        let is_tendril = rng.random::<f64>() < tendril_frac && !core_arcs.is_empty();
        if is_tendril {
            // Join a tendril (or start one at a random core node). Full
            // tendrils are skipped; if every open tendril is full a new
            // one starts.
            tendrils.retain(|t| t.len() < max_tendril_len);
            let start_new = tendrils.is_empty() || rng.random::<f64>() < new_tendril_prob;
            if start_new {
                let root = core_arcs[rng.random_range(0..core_arcs.len())];
                edges.push((NodeId(new), NodeId(root)));
                tendrils.push(vec![new]);
            } else {
                let t = rng.random_range(0..tendrils.len());
                let anchor = if rng.random::<f64>() < tip_prob {
                    *tendrils[t].last().expect("tendril non-empty")
                } else {
                    tendrils[t][rng.random_range(0..tendrils[t].len())]
                };
                edges.push((NodeId(new), NodeId(anchor)));
                tendrils[t].push(new);
            }
            all_tendril_nodes.push(new);
        } else {
            // Core growth: preferential attachments within the core.
            let mut targets: Vec<u32> = Vec::with_capacity(core_degree);
            let mut attempts = 0;
            while targets.len() < core_degree && attempts < 64 {
                attempts += 1;
                let pick = core_arcs[rng.random_range(0..core_arcs.len())];
                if pick != new && !targets.contains(&pick) {
                    targets.push(pick);
                }
            }
            for &t in &targets {
                edges.push((NodeId(new), NodeId(t)));
                push_core_arc(&mut core_arcs, new, t);
            }
        }

        // Ordinary core-core peering keeps density realistic.
        let mut guard = 0;
        while (peering_count as f64) < core_peering_frac * edges.len() as f64 && guard < 100 {
            guard += 1;
            let u = core_arcs[rng.random_range(0..core_arcs.len())];
            let v = core_arcs[rng.random_range(0..core_arcs.len())];
            if u == v {
                continue;
            }
            edges.push((NodeId(u), NodeId(v)));
            push_core_arc(&mut core_arcs, u, v);
            peering_count += 1;
        }

        // Rescue peering: a tendril node links into the core, at an
        // expected rate of `rescues_per_mille` per 1000 stream events.
        rescue_budget += rescues_per_mille * (edges.len() - edges_before) as f64 / 1000.0;
        while rescue_budget >= 1.0 && !all_tendril_nodes.is_empty() {
            rescue_budget -= 1.0;
            let u = all_tendril_nodes[rng.random_range(0..all_tendril_nodes.len())];
            let v = core_arcs[rng.random_range(0..core_arcs.len())];
            if u == v {
                continue;
            }
            edges.push((NodeId(u), NodeId(v)));
            // The rescued node behaves like core from now on.
            push_core_arc(&mut core_arcs, u, v);
        }
    }
    TemporalGraph::from_sequence(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use cp_graph::components::components;
    use cp_graph::diameter::diameter_estimate;

    fn params() -> CoreTendrilParams {
        CoreTendrilParams {
            n: 3_000,
            ..CoreTendrilParams::default()
        }
    }

    #[test]
    fn connected_and_valid() {
        let t = core_tendril(params(), &mut seeded_rng(1));
        let g = t.snapshot_at_fraction(1.0);
        g.check_invariants().unwrap();
        assert_eq!(components(&g).num_components(), 1);
    }

    #[test]
    fn tendrils_stretch_the_diameter() {
        let with = core_tendril(params(), &mut seeded_rng(2)).snapshot_at_fraction(1.0);
        let without = core_tendril(
            CoreTendrilParams {
                tendril_frac: 0.0,
                ..params()
            },
            &mut seeded_rng(2),
        )
        .snapshot_at_fraction(1.0);
        assert!(
            diameter_estimate(&with) > diameter_estimate(&without),
            "with {} vs without {}",
            diameter_estimate(&with),
            diameter_estimate(&without)
        );
    }

    #[test]
    fn rescues_collapse_distances() {
        // Between the 80% and 100% snapshots, some pair must converge by
        // several hops (a rescued tendril).
        use cp_graph::bfs::bfs;
        use cp_graph::distance_decrease;
        let t = core_tendril(params(), &mut seeded_rng(3));
        let (g1, g2) = t.snapshot_pair(0.8, 1.0);
        let mut best = 0u32;
        for s in (0..g1.num_nodes()).step_by(17) {
            let d1 = bfs(&g1, NodeId::new(s));
            let d2 = bfs(&g2, NodeId::new(s));
            for v in 0..g1.num_nodes() {
                if let Some(d) = distance_decrease(d1[v], d2[v]) {
                    best = best.max(d);
                }
            }
        }
        assert!(best >= 3, "largest sampled decrease only {best}");
    }

    #[test]
    fn heavy_tailed_core() {
        let g = core_tendril(params(), &mut seeded_rng(4)).snapshot_at_fraction(1.0);
        let mean = 2.0 * g.num_edges() as f64 / g.num_active_nodes() as f64;
        assert!(g.max_degree() as f64 > 5.0 * mean);
    }

    #[test]
    fn deterministic() {
        let a = core_tendril(params(), &mut seeded_rng(5));
        let b = core_tendril(params(), &mut seeded_rng(5));
        assert_eq!(a.events(), b.events());
    }
}
