//! The four dataset emulators used by the experiments.
//!
//! The paper evaluates on four real traces (Table 2):
//!
//! | dataset        | nodes (t1→t2)   | edges (t1→t2)   | character |
//! |----------------|-----------------|-----------------|-----------|
//! | Actors         | ~10.9k          | 45.6k → 56k     | dense clique projection (movies) |
//! | Internet links | 21.8k → 25.5k   | 83.9k → ~105k   | AS graph: hubs, tiny diameter |
//! | Facebook       | 4.4k → 4.7k     | 25.2k → 31.5k   | communities + triadic closure |
//! | DBLP           | 15.4k → 18k     | 38.9k → ~48k    | sparse cliques, many components |
//!
//! None of those traces is redistributable, so each profile here generates
//! a synthetic stream with the same scale and the structural property that
//! drives the paper's per-dataset findings (see DESIGN.md §4). Profiles are
//! scalable: `generate_scaled(seed, scale)` shrinks the node universe for
//! fast tests while keeping densities, so algorithmic *shape* conclusions
//! transfer.

use crate::affiliation::{affiliation, AffiliationParams};
use crate::core_tendril::{core_tendril, CoreTendrilParams};
use crate::ring_sbm::{ring_sbm, RingSbmParams};
use crate::seeded_rng;
use cp_graph::TemporalGraph;
use serde::{Deserialize, Serialize};

/// The snapshot fractions of the standard evaluation setup: `G_t1` holds
/// 80 % of the edges, `G_t2` all of them (paper §5.1).
pub const EVAL_SNAPSHOTS: (f64, f64) = (0.8, 1.0);

/// The snapshot fractions used to *train* the classifiers: 40 % and 60 %
/// of the edges (paper §5.3).
pub const TRAIN_SNAPSHOTS: (f64, f64) = (0.4, 0.6);

/// Which dataset emulator to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// IMDB-style actor co-appearance graph (dense clique projection).
    Actors,
    /// AS-level Internet topology (preferential attachment).
    InternetLinks,
    /// Facebook-style friendship graph (communities + closure).
    Facebook,
    /// DBLP-style co-authorship graph (sparse, fragmented).
    Dblp,
}

impl DatasetKind {
    /// All four kinds in the paper's order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Actors,
        DatasetKind::InternetLinks,
        DatasetKind::Facebook,
        DatasetKind::Dblp,
    ];

    /// Human-readable name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Actors => "Actors",
            DatasetKind::InternetLinks => "Internet links",
            DatasetKind::Facebook => "Facebook",
            DatasetKind::Dblp => "DBLP",
        }
    }

    /// The full-scale profile for this dataset.
    pub fn profile(self) -> DatasetProfile {
        DatasetProfile {
            kind: self,
            scale: 1.0,
        }
    }
}

/// A dataset emulator at a given scale.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Which emulator.
    pub kind: DatasetKind,
    /// Node-universe scale in `(0, 1]`; 1.0 matches the paper's sizes.
    pub scale: f64,
}

/// A rejected dataset scale (outside `(0, 1]`, or NaN).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleError {
    /// The rejected value.
    pub scale: f64,
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dataset scale must be in (0, 1], got {}", self.scale)
    }
}

impl std::error::Error for ScaleError {}

impl DatasetProfile {
    /// Fallible constructor for parse/config paths (CLI `--scale` flags):
    /// scales outside `(0, 1]` — NaN included — become an error the caller
    /// can surface instead of a panic.
    pub fn try_scaled(kind: DatasetKind, scale: f64) -> Result<Self, ScaleError> {
        if scale > 0.0 && scale <= 1.0 {
            Ok(DatasetProfile { kind, scale })
        } else {
            Err(ScaleError { scale })
        }
    }

    /// Creates a profile at the given scale, panicking on an invalid one
    /// (for hard-coded scales; parsed input goes through
    /// [`Self::try_scaled`]).
    pub fn scaled(kind: DatasetKind, scale: f64) -> Self {
        match Self::try_scaled(kind, scale) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Generates the temporal stream for this profile.
    pub fn generate(&self, seed: u64) -> TemporalGraph {
        let mut rng = seeded_rng(seed ^ dataset_salt(self.kind));
        let s = self.scale;
        match self.kind {
            DatasetKind::Actors => affiliation(
                AffiliationParams {
                    members: scale_count(11_000, s),
                    groups: scale_count(3_600, s),
                    group_min: 3,
                    group_max: 10,
                    newcomer_prob: 0.24,
                },
                &mut rng,
            ),
            DatasetKind::InternetLinks => core_tendril(
                CoreTendrilParams {
                    n: scale_count(25_500, s),
                    ..CoreTendrilParams::default()
                },
                &mut rng,
            ),
            DatasetKind::Facebook => ring_sbm(
                RingSbmParams {
                    n: scale_count(4_700, s),
                    communities: scale_count(24, s.sqrt()).max(4),
                    intra_degree: 10.0,
                    adjacent_degree: 2.77,
                    far_degree: 0.03,
                },
                &mut rng,
            ),
            DatasetKind::Dblp => affiliation(
                AffiliationParams {
                    members: scale_count(18_000, s),
                    groups: scale_count(14_000, s),
                    group_min: 2,
                    group_max: 5,
                    newcomer_prob: 0.58,
                },
                &mut rng,
            ),
        }
    }

    /// Generates the evaluation snapshot pair `(G_t1, G_t2)` at 80 %/100 %.
    pub fn eval_pair(&self, seed: u64) -> (cp_graph::Graph, cp_graph::Graph) {
        self.generate(seed)
            .snapshot_pair(EVAL_SNAPSHOTS.0, EVAL_SNAPSHOTS.1)
    }

    /// Generates the classifier-training snapshot pair at 40 %/60 %.
    pub fn train_pair(&self, seed: u64) -> (cp_graph::Graph, cp_graph::Graph) {
        self.generate(seed)
            .snapshot_pair(TRAIN_SNAPSHOTS.0, TRAIN_SNAPSHOTS.1)
    }
}

fn scale_count(full: usize, scale: f64) -> usize {
    ((full as f64 * scale).round() as usize).max(8)
}

fn dataset_salt(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::Actors => 0xAC70,
        DatasetKind::InternetLinks => 0x1E7,
        DatasetKind::Facebook => 0xFACE,
        DatasetKind::Dblp => 0xDB19,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::components::components;

    #[test]
    fn all_profiles_generate_at_small_scale() {
        for kind in DatasetKind::ALL {
            let p = DatasetProfile::scaled(kind, 0.05);
            let t = p.generate(42);
            let (g1, g2) = t.snapshot_pair(0.8, 1.0);
            assert!(g1.num_edges() > 0, "{}", kind.name());
            assert!(g2.num_edges() > g1.num_edges(), "{}", kind.name());
            // Growth-only property.
            for (u, v) in g1.edges() {
                assert!(g2.has_edge(u, v));
            }
        }
    }

    #[test]
    fn dblp_is_more_fragmented_than_internet() {
        let dblp = DatasetProfile::scaled(DatasetKind::Dblp, 0.05)
            .generate(1)
            .snapshot_at_fraction(1.0);
        let inet = DatasetProfile::scaled(DatasetKind::InternetLinks, 0.05)
            .generate(1)
            .snapshot_at_fraction(1.0);
        let dblp_comps = components(&dblp).num_components();
        let inet_comps = components(&inet).num_components();
        assert!(
            dblp_comps > inet_comps,
            "DBLP {dblp_comps} vs Internet {inet_comps}"
        );
    }

    #[test]
    fn actors_denser_than_dblp() {
        let actors = DatasetProfile::scaled(DatasetKind::Actors, 0.05)
            .generate(2)
            .snapshot_at_fraction(1.0);
        let dblp = DatasetProfile::scaled(DatasetKind::Dblp, 0.05)
            .generate(2)
            .snapshot_at_fraction(1.0);
        let mean = |g: &cp_graph::Graph| 2.0 * g.num_edges() as f64 / g.num_active_nodes() as f64;
        assert!(mean(&actors) > mean(&dblp));
    }

    #[test]
    fn deterministic_per_seed() {
        let p = DatasetProfile::scaled(DatasetKind::Facebook, 0.1);
        assert_eq!(p.generate(5).events(), p.generate(5).events());
    }

    #[test]
    fn names_and_constants() {
        assert_eq!(DatasetKind::Actors.name(), "Actors");
        assert_eq!(DatasetKind::ALL.len(), 4);
        assert_eq!(EVAL_SNAPSHOTS, (0.8, 1.0));
        assert_eq!(TRAIN_SNAPSHOTS, (0.4, 0.6));
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        DatasetProfile::scaled(DatasetKind::Actors, 0.0);
    }

    #[test]
    fn try_scaled_rejects_bad_scales_without_panicking() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            let err = DatasetProfile::try_scaled(DatasetKind::Dblp, bad)
                .expect_err("scale outside (0, 1] must be rejected");
            assert!(err.to_string().contains("scale"), "{err}");
        }
        for good in [f64::MIN_POSITIVE, 0.25, 1.0] {
            let p = DatasetProfile::try_scaled(DatasetKind::Dblp, good).unwrap();
            assert_eq!(p.scale, good);
        }
    }
}
