//! Bipartite affiliation projections — the Actors and DBLP emulators.
//!
//! Collaboration graphs (actors sharing a movie, authors sharing a paper)
//! are projections of a bipartite member/group structure: every group
//! becomes a clique among its members. The generator grows groups over
//! time; members join with a mix of preferential attachment (prolific
//! actors keep acting) and fresh arrivals (debuts). Streaming edges in
//! group order gives the clique-at-a-time growth that makes these datasets
//! special in the paper: whole cliques appear at once, so many converging
//! pairs collapse to distance 1 — the regime where DegRel shines (paper
//! §5.2, Actors discussion).

use cp_graph::{NodeId, TemporalGraph};
use rand::Rng;

/// Parameters of the affiliation model.
#[derive(Clone, Copy, Debug)]
pub struct AffiliationParams {
    /// Size of the member universe (actors/authors).
    pub members: usize,
    /// Number of groups (movies/papers) to generate.
    pub groups: usize,
    /// Minimum members per group.
    pub group_min: usize,
    /// Maximum members per group (inclusive).
    pub group_max: usize,
    /// Probability that a group slot is filled by a *new* (so far unseen)
    /// member instead of a preferentially chosen veteran. Controls how
    /// fragmented the projection is: high values yield many small
    /// components (DBLP-like), low values a giant dense component
    /// (Actors-like).
    pub newcomer_prob: f64,
}

/// Generates the clique projection of an evolving affiliation network.
///
/// Members that have appeared before are re-drawn proportionally to the
/// number of group memberships they already hold (preferential
/// attachment over participation counts).
pub fn affiliation<R: Rng>(params: AffiliationParams, rng: &mut R) -> TemporalGraph {
    let AffiliationParams {
        members,
        groups,
        group_min,
        group_max,
        newcomer_prob,
    } = params;
    assert!(group_min >= 2 && group_max >= group_min, "bad group sizes");
    assert!((0.0..=1.0).contains(&newcomer_prob));
    assert!(members > group_max, "member universe too small");

    // Participation multiset for preferential re-draws.
    let mut participation: Vec<u32> = Vec::new();
    let mut next_fresh: u32 = 0;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut cast: Vec<u32> = Vec::with_capacity(group_max);

    for _ in 0..groups {
        let size = rng.random_range(group_min..=group_max);
        cast.clear();
        for _ in 0..size {
            let pick_new = participation.is_empty()
                || (next_fresh as usize) < members && rng.random::<f64>() < newcomer_prob;
            let member = if pick_new && (next_fresh as usize) < members {
                let m = next_fresh;
                next_fresh += 1;
                m
            } else {
                // Preferential: uniform draw from the participation multiset.
                participation[rng.random_range(0..participation.len())]
            };
            if !cast.contains(&member) {
                cast.push(member);
            }
        }
        // Project the group to a clique and record participations.
        for i in 0..cast.len() {
            participation.push(cast[i]);
            for j in (i + 1)..cast.len() {
                edges.push((NodeId(cast[i]), NodeId(cast[j])));
            }
        }
    }
    TemporalGraph::from_sequence(members, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use cp_graph::components::components;

    fn dense_params() -> AffiliationParams {
        AffiliationParams {
            members: 500,
            groups: 150,
            group_min: 3,
            group_max: 8,
            newcomer_prob: 0.25,
        }
    }

    #[test]
    fn produces_cliques() {
        let t = affiliation(dense_params(), &mut seeded_rng(1));
        let g = t.snapshot_at_fraction(1.0);
        assert!(g.num_edges() > 0);
        // Clique projection implies high local density: mean degree well
        // above 2 even though groups are small.
        let mean_degree = 2.0 * g.num_edges() as f64 / g.num_active_nodes() as f64;
        assert!(mean_degree > 3.0, "mean degree {mean_degree}");
    }

    #[test]
    fn newcomer_prob_controls_fragmentation() {
        // Count only non-singleton components: members that never appear in
        // any group are isolated singletons of the fixed universe and say
        // nothing about how fragmented the collaboration structure is.
        let nontrivial = |p: AffiliationParams, seed: u64| {
            let g = affiliation(p, &mut seeded_rng(seed)).snapshot_at_fraction(1.0);
            components(&g).sizes.iter().filter(|&&s| s >= 2).count()
        };
        let base = AffiliationParams {
            members: 2_000,
            groups: 150,
            group_min: 3,
            group_max: 8,
            newcomer_prob: 0.0,
        };
        let frag = nontrivial(
            AffiliationParams {
                newcomer_prob: 0.9,
                ..base
            },
            2,
        );
        let dense = nontrivial(
            AffiliationParams {
                newcomer_prob: 0.2,
                ..base
            },
            2,
        );
        assert!(frag > dense, "{frag} vs {dense}");
    }

    #[test]
    fn deterministic() {
        let a = affiliation(dense_params(), &mut seeded_rng(3));
        let b = affiliation(dense_params(), &mut seeded_rng(3));
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn members_bounded() {
        let t = affiliation(dense_params(), &mut seeded_rng(4));
        for e in t.events() {
            assert!(e.u.index() < 500 && e.v.index() < 500);
        }
    }
}
