//! Barabási–Albert preferential attachment streams.
//!
//! Preferential attachment produces the heavy-tailed degree distribution
//! and small diameter of the AS-level Internet graph, which is what makes
//! it the substitute for the paper's *Internet links* dataset. It also
//! exhibits the degree/degree-change correlation the paper invokes
//! ("nodes with high degree are more likely to obtain new links") to
//! explain why the DegDiff selector underperforms.

use cp_graph::{NodeId, TemporalGraph};
use rand::Rng;

/// Generates a Barabási–Albert graph: nodes arrive one at a time and attach
/// `edges_per_node` edges to existing nodes chosen proportionally to their
/// current degree (by sampling endpoints from the arc list). The stream is
/// ordered by node arrival, so prefix snapshots are "the network when it
/// was younger" — exactly the growth model of the paper.
///
/// The first `edges_per_node + 1` nodes form a seed clique-ish chain so
/// every attachment has targets.
pub fn barabasi_albert<R: Rng>(n: usize, edges_per_node: usize, rng: &mut R) -> TemporalGraph {
    assert!(edges_per_node >= 1, "need at least one edge per node");
    assert!(
        n > edges_per_node,
        "need more nodes ({n}) than edges per node ({edges_per_node})"
    );
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * edges_per_node);
    // Arc list: each endpoint of each edge appears once; sampling a uniform
    // element yields a degree-proportional node.
    let mut arcs: Vec<u32> = Vec::with_capacity(2 * n * edges_per_node);

    // Seed: a path over the first edges_per_node + 1 nodes.
    let seed = edges_per_node + 1;
    for i in 1..seed {
        let (u, v) = ((i - 1) as u32, i as u32);
        edges.push((NodeId(u), NodeId(v)));
        arcs.push(u);
        arcs.push(v);
    }

    let mut targets = Vec::with_capacity(edges_per_node);
    for new in seed..n {
        targets.clear();
        // Sample distinct degree-proportional targets; rejection loop
        // terminates because there are >= edges_per_node distinct nodes.
        while targets.len() < edges_per_node {
            let t = arcs[rng.random_range(0..arcs.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((NodeId(new as u32), NodeId(t)));
            arcs.push(new as u32);
            arcs.push(t);
        }
    }
    TemporalGraph::from_sequence(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;
    use cp_graph::components::components;

    #[test]
    fn edge_count_and_connectivity() {
        let t = barabasi_albert(200, 3, &mut seeded_rng(2));
        let g = t.snapshot_at_fraction(1.0);
        // Seed path has 3 edges, each later node adds 3 distinct edges.
        assert_eq!(g.num_edges(), 3 + (200 - 4) * 3);
        let c = components(&g);
        assert_eq!(c.num_components(), 1, "BA graphs are connected");
    }

    #[test]
    fn heavy_tail_exists() {
        let t = barabasi_albert(500, 2, &mut seeded_rng(3));
        let g = t.snapshot_at_fraction(1.0);
        // Preferential attachment should create hubs far above the mean
        // degree (mean ~ 4).
        assert!(
            g.max_degree() > 20,
            "max degree {} too small",
            g.max_degree()
        );
    }

    #[test]
    fn prefix_is_induced_younger_graph() {
        let t = barabasi_albert(100, 2, &mut seeded_rng(4));
        let g1 = t.snapshot_at_fraction(0.5);
        let g2 = t.snapshot_at_fraction(1.0);
        // Growth only: every edge of g1 is in g2.
        for (u, v) in g1.edges() {
            assert!(g2.has_edge(u, v));
        }
        assert!(g1.num_edges() < g2.num_edges());
    }

    #[test]
    fn deterministic() {
        let a = barabasi_albert(60, 2, &mut seeded_rng(9));
        let b = barabasi_albert(60, 2, &mut seeded_rng(9));
        assert_eq!(a.events(), b.events());
    }

    #[test]
    #[should_panic(expected = "more nodes")]
    fn rejects_tiny_n() {
        barabasi_albert(2, 2, &mut seeded_rng(0));
    }
}
