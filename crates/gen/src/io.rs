//! Plain-text temporal edge-list I/O.
//!
//! Format: one event per line, `u v [time]`, whitespace separated; lines
//! starting with `#` or `%` are comments. When the time column is absent,
//! line order is the timestamp — this accepts the common SNAP/KONECT edge
//! list exports, so real traces can be dropped in for the synthetic
//! emulators without code changes.

use cp_graph::{NodeId, TemporalGraph, TimedEdge};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// Errors from temporal edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and content.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "malformed edge list at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a temporal edge list from a reader. Node ids are compacted: the
/// universe size becomes `max id + 1`.
pub fn read_temporal<R: BufRead>(reader: R) -> Result<TemporalGraph, IoError> {
    let mut events = Vec::new();
    let mut max_node = 0u32;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_err = || IoError::Parse {
            line: idx + 1,
            content: trimmed.to_string(),
        };
        let u: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(parse_err)?;
        let v: u32 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(parse_err)?;
        let time: u64 = match it.next() {
            Some(s) => s.parse().map_err(|_| parse_err())?,
            None => events.len() as u64,
        };
        max_node = max_node.max(u).max(v);
        events.push(TimedEdge {
            u: NodeId(u),
            v: NodeId(v),
            time,
        });
    }
    let n = if events.is_empty() {
        0
    } else {
        max_node as usize + 1
    };
    Ok(TemporalGraph::new(n, events))
}

/// Reads a temporal edge list from a file path.
pub fn read_temporal_file(path: impl AsRef<Path>) -> Result<TemporalGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_temporal(std::io::BufReader::new(file))
}

/// Writes a temporal edge list (`u v time` per line) to a writer.
pub fn write_temporal<W: Write>(graph: &TemporalGraph, writer: W) -> std::io::Result<()> {
    let mut out = BufWriter::new(writer);
    writeln!(out, "# temporal edge list: u v time")?;
    for e in graph.events() {
        writeln!(out, "{} {} {}", e.u, e.v, e.time)?;
    }
    out.flush()
}

/// Writes a temporal edge list to a file path.
pub fn write_temporal_file(graph: &TemporalGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_temporal(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = TemporalGraph::from_sequence(
            4,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(2), NodeId(3)),
                (NodeId(1), NodeId(2)),
            ],
        );
        let mut buf = Vec::new();
        write_temporal(&t, &mut buf).unwrap();
        let back = read_temporal(buf.as_slice()).unwrap();
        assert_eq!(back.events(), t.events());
        assert_eq!(back.num_nodes(), 4);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n% konect style\n0 1\n1 2 5\n";
        let t = read_temporal(text.as_bytes()).unwrap();
        assert_eq!(t.num_events(), 2);
        // First line had implicit time 0, second explicit time 5.
        assert_eq!(t.events()[0].time, 0);
        assert_eq!(t.events()[1].time, 5);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        match read_temporal(text.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_record_is_malformed() {
        // A file cut off mid-record: the final line lost its second
        // endpoint. This must surface as a positioned parse error, not a
        // panic or a silently shorter stream.
        let text = "0 1 0\n1 2 1\n2";
        match read_temporal(text.as_bytes()) {
            Err(IoError::Parse { line, content }) => {
                assert_eq!(line, 3);
                assert_eq!(content, "2");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_time_column_is_rejected() {
        let text = "0 1 soon\n";
        match read_temporal(text.as_bytes()) {
            Err(IoError::Parse { line, content }) => {
                assert_eq!(line, 1);
                assert_eq!(content, "0 1 soon");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn read_failure_mid_stream_propagates_io_error() {
        /// Serves a prefix of the data, then fails — a file truncated at
        /// the storage layer rather than the record layer.
        struct TruncatedReader {
            data: &'static [u8],
            pos: usize,
        }
        impl std::io::Read for TruncatedReader {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.data.len() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "storage truncated",
                    ));
                }
                let n = buf.len().min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let reader = std::io::BufReader::new(TruncatedReader {
            data: b"0 1 0\n1 2 1\n",
            pos: 0,
        });
        match read_temporal(reader) {
            Err(IoError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = std::env::temp_dir().join("cp_gen_io_test_definitely_missing.txt");
        match read_temporal_file(&path) {
            Err(IoError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input() {
        let t = read_temporal("".as_bytes()).unwrap();
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.num_events(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let t = TemporalGraph::from_sequence(3, vec![(NodeId(0), NodeId(2))]);
        let dir = std::env::temp_dir().join("cp_gen_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        write_temporal_file(&t, &path).unwrap();
        let back = read_temporal_file(&path).unwrap();
        assert_eq!(back.events(), t.events());
        std::fs::remove_file(path).ok();
    }
}
