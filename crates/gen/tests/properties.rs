//! Property-based tests for the generators: every generator must produce a
//! structurally valid, deterministic, monotone temporal graph.
//!
//! Two invariants here carry the rest of the codebase:
//!
//! * **Growth-only snapshots** — for any fractions `f1 ≤ f2` the pair
//!   `(G_f1, G_f2)` must satisfy `G_t1 ⊆ G_t2` in both node and edge sets
//!   (with weights preserved). This is the paper's Problem 1 evolution
//!   model *and* the precondition for the oracle's snapshot-delta row
//!   repair, so it is checked with the very predicate the oracle uses,
//!   [`snapshot_delta`].
//! * **Byte-determinism** — the same seed must reproduce the identical
//!   event stream, byte for byte, across two runs; every experiment's
//!   reproducibility rests on this.

use cp_gen::affiliation::{affiliation, AffiliationParams};
use cp_gen::ba::barabasi_albert;
use cp_gen::core_tendril::{core_tendril, CoreTendrilParams};
use cp_gen::er::erdos_renyi;
use cp_gen::forest_fire::forest_fire;
use cp_gen::locality::{locality_pa, LocalityPaParams};
use cp_gen::ring_sbm::{ring_sbm, RingSbmParams};
use cp_gen::sbm::{sbm, SbmParams};
use cp_gen::seeded_rng;
use cp_gen::ws::watts_strogatz;
use cp_graph::repair::snapshot_delta;
use cp_graph::TemporalGraph;
use proptest::prelude::*;

/// The canonical byte encoding of a generated stream (Debug formatting of
/// the event list is injective on `(u, v, weight, time)` tuples).
fn stream_bytes(t: &TemporalGraph) -> Vec<u8> {
    format!("{:?}", t.events()).into_bytes()
}

fn check_generator(t: &TemporalGraph) -> Result<(), TestCaseError> {
    // Full snapshot satisfies the CSR invariants.
    let g_full = t.snapshot_at_fraction(1.0);
    prop_assert_eq!(g_full.check_invariants(), Ok(()));

    // Snapshots are monotone: every prefix pair is growth-only in both
    // node and edge sets — exactly the oracle's repair precondition.
    let fractions = [0.25, 0.5, 0.75, 1.0];
    let snaps: Vec<_> = fractions
        .iter()
        .map(|&f| t.snapshot_at_fraction(f))
        .collect();
    for w in snaps.windows(2) {
        let (g1, g2) = (&w[0], &w[1]);
        prop_assert_eq!(g1.num_nodes(), g2.num_nodes(), "fixed node universe");
        let delta = snapshot_delta(g1, g2);
        prop_assert!(
            delta.growth_only,
            "prefix snapshots must be growth-only (G_t1 ⊆ G_t2)"
        );
        prop_assert_eq!(
            g1.num_edges() + delta.inserted.len(),
            g2.num_edges(),
            "the delta accounts for every new edge"
        );
        // Node containment: a node active (degree > 0) at t1 stays active.
        for u in g1.nodes() {
            if g1.degree(u) > 0 {
                prop_assert!(g2.degree(u) > 0, "active node {u:?} vanished");
            }
        }
    }

    // All events in range.
    for e in t.events() {
        prop_assert!(e.u.index() < t.num_nodes());
        prop_assert!(e.v.index() < t.num_nodes());
    }
    Ok(())
}

/// Asserts two runs of a generator agree byte-for-byte.
fn check_byte_determinism(a: &TemporalGraph, b: &TemporalGraph) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.events(), b.events());
    prop_assert_eq!(
        stream_bytes(a),
        stream_bytes(b),
        "event streams must be byte-identical"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn erdos_renyi_valid(n in 4usize..80, seed in 0u64..1000) {
        let max_edges = n * (n - 1) / 2;
        let m = max_edges.min(3 * n);
        let t = erdos_renyi(n, m, &mut seeded_rng(seed));
        check_generator(&t)?;
        prop_assert_eq!(t.snapshot_at_fraction(1.0).num_edges(), m);
        let t2 = erdos_renyi(n, m, &mut seeded_rng(seed));
        check_byte_determinism(&t, &t2)?;
    }

    #[test]
    fn barabasi_albert_valid(n in 6usize..100, k in 1usize..4, seed in 0u64..1000) {
        prop_assume!(n > k + 1);
        let t = barabasi_albert(n, k, &mut seeded_rng(seed));
        check_generator(&t)?;
        // Connected by construction.
        let g = t.snapshot_at_fraction(1.0);
        let comps = cp_graph::components::components(&g);
        prop_assert_eq!(comps.num_components(), 1);
        let t2 = barabasi_albert(n, k, &mut seeded_rng(seed));
        check_byte_determinism(&t, &t2)?;
    }

    #[test]
    fn watts_strogatz_valid(n in 10usize..80, beta in 0.0f64..1.0, seed in 0u64..1000) {
        let t = watts_strogatz(n, 4, beta, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = watts_strogatz(n, 4, beta, &mut seeded_rng(seed));
        check_byte_determinism(&t, &t2)?;
    }

    #[test]
    fn forest_fire_valid(n in 2usize..80, p in 0.0f64..0.6, seed in 0u64..1000) {
        let t = forest_fire(n, p, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = forest_fire(n, p, &mut seeded_rng(seed));
        check_byte_determinism(&t, &t2)?;
    }

    #[test]
    fn sbm_valid(n in 20usize..150, communities in 1usize..6, seed in 0u64..1000) {
        let params = SbmParams { n, communities, intra_degree: 4.0, inter_degree: 1.0 };
        let t = sbm(params, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = sbm(params, &mut seeded_rng(seed));
        check_byte_determinism(&t, &t2)?;
    }

    #[test]
    fn affiliation_valid(members in 20usize..150, groups in 1usize..40, seed in 0u64..1000) {
        let params = AffiliationParams {
            members,
            groups,
            group_min: 2,
            group_max: 6,
            newcomer_prob: 0.4,
        };
        let t = affiliation(params, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = affiliation(params, &mut seeded_rng(seed));
        check_byte_determinism(&t, &t2)?;
    }

    #[test]
    fn core_tendril_valid(n in 30usize..160, seed in 0u64..1000) {
        let params = CoreTendrilParams {
            n,
            ..CoreTendrilParams::default()
        };
        let t = core_tendril(params, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = core_tendril(params, &mut seeded_rng(seed));
        check_byte_determinism(&t, &t2)?;
    }

    #[test]
    fn ring_sbm_valid(n in 30usize..160, communities in 3usize..8, seed in 0u64..1000) {
        let params = RingSbmParams {
            n,
            communities,
            intra_degree: 4.0,
            adjacent_degree: 1.5,
            far_degree: 0.3,
        };
        let t = ring_sbm(params, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = ring_sbm(params, &mut seeded_rng(seed));
        check_byte_determinism(&t, &t2)?;
    }

    #[test]
    fn locality_pa_valid(n in 30usize..160, seed in 0u64..1000) {
        let params = LocalityPaParams {
            n,
            edges_per_node: 2,
            window: 16,
            global_prob: 0.15,
            peering_frac: 0.2,
            peering_global_prob: 0.1,
        };
        let t = locality_pa(params, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = locality_pa(params, &mut seeded_rng(seed));
        check_byte_determinism(&t, &t2)?;
    }
}
