//! Property-based tests for the generators: every generator must produce a
//! structurally valid, deterministic, monotone temporal graph.

use cp_gen::affiliation::{affiliation, AffiliationParams};
use cp_gen::ba::barabasi_albert;
use cp_gen::er::erdos_renyi;
use cp_gen::forest_fire::forest_fire;
use cp_gen::sbm::{sbm, SbmParams};
use cp_gen::seeded_rng;
use cp_gen::ws::watts_strogatz;
use cp_graph::TemporalGraph;
use proptest::prelude::*;

fn check_generator(t: &TemporalGraph) -> Result<(), TestCaseError> {
    // Full snapshot satisfies the CSR invariants.
    let g = t.snapshot_at_fraction(1.0);
    prop_assert_eq!(g.check_invariants(), Ok(()));
    // Snapshots are monotone.
    let g_half = t.snapshot_at_fraction(0.5);
    for (u, v) in g_half.edges() {
        prop_assert!(g.has_edge(u, v));
    }
    // All events in range.
    for e in t.events() {
        prop_assert!(e.u.index() < t.num_nodes());
        prop_assert!(e.v.index() < t.num_nodes());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn erdos_renyi_valid(n in 4usize..80, seed in 0u64..1000) {
        let max_edges = n * (n - 1) / 2;
        let m = max_edges.min(3 * n);
        let t = erdos_renyi(n, m, &mut seeded_rng(seed));
        check_generator(&t)?;
        prop_assert_eq!(t.snapshot_at_fraction(1.0).num_edges(), m);
        // Determinism.
        let t2 = erdos_renyi(n, m, &mut seeded_rng(seed));
        prop_assert_eq!(t.events(), t2.events());
    }

    #[test]
    fn barabasi_albert_valid(n in 6usize..100, k in 1usize..4, seed in 0u64..1000) {
        prop_assume!(n > k + 1);
        let t = barabasi_albert(n, k, &mut seeded_rng(seed));
        check_generator(&t)?;
        // Connected by construction.
        let g = t.snapshot_at_fraction(1.0);
        let comps = cp_graph::components::components(&g);
        prop_assert_eq!(comps.num_components(), 1);
        let t2 = barabasi_albert(n, k, &mut seeded_rng(seed));
        prop_assert_eq!(t.events(), t2.events());
    }

    #[test]
    fn watts_strogatz_valid(n in 10usize..80, beta in 0.0f64..1.0, seed in 0u64..1000) {
        let t = watts_strogatz(n, 4, beta, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = watts_strogatz(n, 4, beta, &mut seeded_rng(seed));
        prop_assert_eq!(t.events(), t2.events());
    }

    #[test]
    fn forest_fire_valid(n in 2usize..80, p in 0.0f64..0.6, seed in 0u64..1000) {
        let t = forest_fire(n, p, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = forest_fire(n, p, &mut seeded_rng(seed));
        prop_assert_eq!(t.events(), t2.events());
    }

    #[test]
    fn sbm_valid(n in 20usize..150, communities in 1usize..6, seed in 0u64..1000) {
        let t = sbm(
            SbmParams { n, communities, intra_degree: 4.0, inter_degree: 1.0 },
            &mut seeded_rng(seed),
        );
        check_generator(&t)?;
        let t2 = sbm(
            SbmParams { n, communities, intra_degree: 4.0, inter_degree: 1.0 },
            &mut seeded_rng(seed),
        );
        prop_assert_eq!(t.events(), t2.events());
    }

    #[test]
    fn affiliation_valid(members in 20usize..150, groups in 1usize..40, seed in 0u64..1000) {
        let params = AffiliationParams {
            members,
            groups,
            group_min: 2,
            group_max: 6,
            newcomer_prob: 0.4,
        };
        let t = affiliation(params, &mut seeded_rng(seed));
        check_generator(&t)?;
        let t2 = affiliation(params, &mut seeded_rng(seed));
        prop_assert_eq!(t.events(), t2.events());
    }
}
