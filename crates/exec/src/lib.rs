//! Persistent work-stealing executor for the converging-pairs workspace.
//!
//! Every parallel phase of the pipeline — batched SSSP prefetches, the
//! `M × V` Δ-scan, all-pairs BFS, Brandes betweenness, the bench
//! harness's reader ladder — used to spawn fresh OS threads per batch
//! through a scoped-thread shim and allocate fresh workspaces for each
//! of them. On batch-heavy workloads the spawn + allocation tax made
//! threads a net *loss*. This crate replaces all of that with one
//! [`Executor`]:
//!
//! * **Workers are spawned once, lazily,** up to the executor's
//!   capacity, and *parked* on a condvar between batches. Submitting a
//!   batch is a mutex + notify, not `N` `clone(2)` calls.
//! * **The submitting thread participates.** [`Executor::run`] and
//!   [`Executor::run_collect`] execute the highest lane on the caller
//!   itself, so a width-`T` batch wakes only `T - 1` pool workers, a
//!   width-1 batch wakes none, and tiny batches never trade a context
//!   switch for their handful of tasks (the dominant cost on narrow
//!   machines). Only [`Executor::run_with_driver`] keeps every lane in
//!   the pool, because its caller overlaps the batch with its own work.
//! * **Scheduling is contiguous ranges + steal-half.** The task index
//!   space `0..n` is pre-split into one contiguous range per
//!   participating worker (a packed `AtomicU64` of `next, end`); a
//!   worker pops its own range from the front with a CAS and, when
//!   empty, steals the upper half of the largest remaining victim
//!   range. Admission order is therefore preserved *per slot* and the
//!   caller merges results in task order — bit-identical output at any
//!   width — while imbalanced task costs still spread across workers
//!   (observable as [`ExecStats::exec_steals`]).
//! * **Per-worker scratch persists across batches.** Each worker owns a
//!   [`WorkerScratch`] typemap that call sites populate with whatever
//!   reusable state they need (BFS workspaces, flat output buffers,
//!   row-unpack scratch); it lives for the executor's lifetime, so the
//!   per-batch workspace allocation disappears after warm-up.
//! * **Results go into pre-sized slots.** [`Executor::run`] hands each
//!   task index exclusive `&mut` access to its own slot of a
//!   caller-provided slice — one writer per slot *by construction* —
//!   so no per-item mutex is needed and the deterministic merge is a
//!   plain in-order walk. The `unsafe` pointer plumbing that splits the
//!   slice lives entirely inside this crate; callers stay
//!   `forbid(unsafe_code)`.
//!
//! A panicking task poisons only its batch: remaining tasks are drained
//! without running, participating workers clear their scratch (a
//! half-updated workspace must never feed a later batch), the panic is
//! re-thrown on the submitting thread, and the pool stays usable.
//!
//! [`global()`] returns the process-wide executor that the oracle,
//! streaming engine, and graph kernels share by default; tests and
//! harnesses that need isolated [`ExecStats`] create their own
//! [`Executor`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use serde::{Deserialize, Serialize};
use std::any::{Any, TypeId};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

// ---------------------------------------------------------------------------
// Lock helpers: parking_lot-style poison-free locking over std primitives.
// A poisoned lock means a worker panicked while holding it; the executor's
// own invariants (scratch cleared on poisoned batches, accounting done
// outside user code) keep the data safe to hand out.
// ---------------------------------------------------------------------------

fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

fn cv_wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(g) {
        Ok(g) => g,
        Err(poison) => poison.into_inner(),
    }
}

// ---------------------------------------------------------------------------
// CP_THREADS knob
// ---------------------------------------------------------------------------

/// Hard ceiling on worker threads; `CP_THREADS` values above it are
/// clamped (with a one-time warning) rather than honored.
pub const MAX_THREADS: usize = 1024;

/// Default thread counts cap at this many workers even on wider
/// machines (beyond it the pipeline's batches are too small to feed).
pub const MAX_DEFAULT_THREADS: usize = 16;

fn warn_once(key: &str, message: String) {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let warned = WARNED.get_or_init(|| Mutex::new(HashSet::new()));
    if lock(warned).insert(key.to_string()) {
        eprintln!("{message}");
    }
}

/// The default worker-thread count: available parallelism capped at
/// [`MAX_DEFAULT_THREADS`].
pub fn default_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_DEFAULT_THREADS)
}

/// Parses a `CP_THREADS` value. Out-of-range values are *clamped* with
/// a one-time stderr warning — `0` to `1` (a pipeline cannot run on
/// zero workers) and anything above [`MAX_THREADS`] down to it — so a
/// mistyped knob degrades gracefully instead of pinning a nonsense
/// configuration. Returns `None` only for unparseable input (the
/// caller warns and falls back to [`default_threads`]).
pub fn parse_threads(s: &str) -> Option<usize> {
    let t: usize = s.trim().parse().ok()?;
    if t == 0 {
        warn_once(
            "CP_THREADS:zero",
            format!("warning: CP_THREADS={s:?} out of range; clamping to 1"),
        );
        Some(1)
    } else if t > MAX_THREADS {
        warn_once(
            "CP_THREADS:huge",
            format!("warning: CP_THREADS={s:?} out of range; clamping to {MAX_THREADS}"),
        );
        Some(MAX_THREADS)
    } else {
        Some(t)
    }
}

/// The worker-thread count from the environment: `CP_THREADS` if set
/// (clamped per [`parse_threads`]; unparseable values warn once and
/// fall back), else [`default_threads`].
pub fn threads_from_env() -> usize {
    match std::env::var("CP_THREADS") {
        Ok(v) => parse_threads(&v).unwrap_or_else(|| {
            let fallback = default_threads();
            warn_once(
                "CP_THREADS",
                format!("warning: unparseable CP_THREADS={v:?}; falling back to {fallback}"),
            );
            fallback
        }),
        Err(_) => default_threads(),
    }
}

// ---------------------------------------------------------------------------
// Per-worker scratch
// ---------------------------------------------------------------------------

/// A typemap of reusable per-worker state, persistent across batches.
///
/// Call sites key their scratch by type — typically one struct per call
/// site bundling everything that site reuses (a BFS workspace plus a
/// distance buffer, a flat output vector plus counters, …) — and fetch
/// it with [`WorkerScratch::get_or`], which lazily initializes on first
/// use. Entries live until the executor is dropped or a panicked batch
/// forces a defensive [`clear`](WorkerScratch::clear).
#[derive(Default)]
pub struct WorkerScratch {
    map: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl WorkerScratch {
    /// Returns the scratch entry of type `T`, creating it with `init`
    /// on first use.
    pub fn get_or<T: Any + Send>(&mut self, init: impl FnOnce() -> T) -> &mut T {
        self.map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(init()))
            .downcast_mut::<T>()
            .expect("scratch typemap entry matches its TypeId")
    }

    /// Returns the scratch entry of type `T` if one exists.
    pub fn get_if<T: Any + Send>(&mut self) -> Option<&mut T> {
        self.map
            .get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_mut::<T>())
    }

    /// Drops every entry. Used defensively after a panicked batch: a
    /// half-updated workspace must never feed a later computation.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// The per-task context handed to worker closures: the worker's index
/// (stable for the executor's lifetime) and its persistent scratch.
pub struct WorkerCtx<'a> {
    index: usize,
    /// The worker's persistent scratch typemap.
    pub scratch: &'a mut WorkerScratch,
}

impl WorkerCtx<'_> {
    /// The executing worker's index in `0..width`. Output placed in
    /// per-worker buffers can be tagged with it and collected in worker
    /// order for a deterministic merge.
    pub fn index(&self) -> usize {
        self.index
    }
}

// ---------------------------------------------------------------------------
// ExecStats
// ---------------------------------------------------------------------------

/// Cumulative executor counters, readable at any time via
/// [`Executor::stats`].
///
/// All fields except `workers_spawned` are monotone event counts over
/// the executor's lifetime; [`ExecStats::since`] turns two readings
/// into a per-run delta. `workers_spawned` is the pool's *size* (total
/// workers ever spawned — workers never exit before the executor
/// drops), which is exactly the number that must stay constant across
/// batches for the spawn-once contract to hold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Workers spawned over the executor's lifetime (= current pool
    /// size). The submitting thread, which works the highest lane of
    /// every [`Executor::run`]/[`Executor::run_collect`] batch itself,
    /// is not counted — a width-`T` batch needs only `T - 1` of these.
    pub workers_spawned: u64,
    /// Batches submitted and completed.
    pub batches_run: u64,
    /// Tasks actually executed (skipped tasks of a poisoned batch excluded).
    pub tasks_executed: u64,
    /// Successful steal-half operations between workers.
    pub exec_steals: u64,
    /// Times a worker blocked on the idle condvar.
    pub parks: u64,
    /// Times a worker woke from the idle condvar.
    pub unparks: u64,
}

impl ExecStats {
    /// The delta of the event counters since `earlier`, with
    /// `workers_spawned` kept absolute (it is a size, not an event
    /// count).
    pub fn since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            workers_spawned: self.workers_spawned,
            batches_run: self.batches_run - earlier.batches_run,
            tasks_executed: self.tasks_executed - earlier.tasks_executed,
            exec_steals: self.exec_steals - earlier.exec_steals,
            parks: self.parks - earlier.parks,
            unparks: self.unparks - earlier.unparks,
        }
    }

    /// Merges another reading into this one (summing event counters,
    /// taking the max pool size) — used to aggregate per-rung deltas.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.workers_spawned = self.workers_spawned.max(other.workers_spawned);
        self.batches_run += other.batches_run;
        self.tasks_executed += other.tasks_executed;
        self.exec_steals += other.exec_steals;
        self.parks += other.parks;
        self.unparks += other.unparks;
    }
}

// ---------------------------------------------------------------------------
// Batch plumbing
// ---------------------------------------------------------------------------

/// Type-erased pointer to the submitting call's stack data. Sound to
/// share with workers because `submit` blocks until every task index
/// has been claimed and accounted — the pointee outlives every
/// dereference.
#[derive(Clone, Copy)]
struct SendPtr(*const ());

// SAFETY: the pointee is a `CallData<S, F>` with `F: Sync` (only ever
// borrowed shared) and `S: Send` (each index's slot is handed to
// exactly one worker as `&mut`), and `submit` keeps it alive until the
// batch completes.
unsafe impl Send for SendPtr {}
// SAFETY: see above — shared access is `&F` only.
unsafe impl Sync for SendPtr {}

type Thunk = unsafe fn(*const (), usize, &mut WorkerCtx<'_>);

struct CallData<S, F> {
    slots: *mut S,
    f: F,
}

/// Monomorphized trampoline: recovers the typed call data and hands
/// task `i` exclusive access to its slot.
unsafe fn call_thunk<S, F>(data: *const (), i: usize, ctx: &mut WorkerCtx<'_>)
where
    F: Fn(usize, &mut S, &mut WorkerCtx<'_>) + Sync,
{
    // SAFETY: `data` points to the `CallData<S, F>` that `run_with_*`
    // keeps alive on its stack until the batch completes.
    let d = unsafe { &*(data as *const CallData<S, F>) };
    // SAFETY: `i < n` (range discipline) and every index is claimed by
    // exactly one worker, so this is the sole `&mut` to slot `i`.
    let slot = unsafe { &mut *d.slots.add(i) };
    (d.f)(i, slot, ctx);
}

fn pack(next: u32, end: u32) -> u64 {
    (u64::from(next) << 32) | u64::from(end)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Pops the front of a `(next, end)` range with a CAS loop.
fn pop_front(range: &AtomicU64) -> Option<usize> {
    let mut cur = range.load(Ordering::SeqCst);
    loop {
        let (next, end) = unpack(cur);
        if next >= end {
            return None;
        }
        match range.compare_exchange_weak(
            cur,
            pack(next + 1, end),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return Some(next as usize),
            Err(observed) => cur = observed,
        }
    }
}

/// Steals the upper half (rounded up) of the largest remaining victim
/// range. Returns the stolen `(start, end)` span.
fn steal_half(ranges: &[AtomicU64], me: usize) -> Option<(u32, u32)> {
    loop {
        let mut best: Option<(usize, u64, u32)> = None;
        for (victim, range) in ranges.iter().enumerate() {
            if victim == me {
                continue;
            }
            let observed = range.load(Ordering::SeqCst);
            let (next, end) = unpack(observed);
            let remaining = end.saturating_sub(next);
            if remaining > 0 && best.is_none_or(|(_, _, r)| remaining > r) {
                best = Some((victim, observed, remaining));
            }
        }
        let (victim, observed, _) = best?;
        let (next, end) = unpack(observed);
        let mid = next + (end - next) / 2;
        if ranges[victim]
            .compare_exchange(
                observed,
                pack(next, mid),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            return Some((mid, end));
        }
        // Lost the race for this victim — rescan.
    }
}

struct Batch {
    /// One packed `(next, end)` range per participating worker slot.
    ranges: Box<[AtomicU64]>,
    /// Pool workers with `idx < pool_participants` join the batch. For
    /// [`Executor::run`]/[`Executor::run_collect`] this is `width - 1`
    /// — the submitting thread itself executes as the highest lane
    /// (`width - 1`) instead of blocking, so a batch at `width` costs
    /// `width - 1` wake-ups and small batches never pay a context
    /// switch. [`Executor::run_with_driver`] keeps all `width` lanes in
    /// the pool because the caller is busy running the driver.
    pool_participants: usize,
    n: usize,
    completed: AtomicUsize,
    done: AtomicBool,
    poisoned: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    call: Thunk,
    data: SendPtr,
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

struct ExecState {
    batch: Option<Arc<Batch>>,
    generation: u64,
    spawned: usize,
}

struct Inner {
    capacity: usize,
    state: Mutex<ExecState>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Serializes batch submission: one batch in flight per executor.
    submit: Mutex<()>,
    /// Per-worker scratch, indexed by worker id. Workers hold their own
    /// entry locked for the duration of a batch; callers visit between
    /// batches (under the submit lock) for pre-clear / post-collect.
    scratches: Mutex<Vec<Arc<Mutex<WorkerScratch>>>>,
    shutdown: AtomicBool,
    workers_spawned: AtomicU64,
    batches_run: AtomicU64,
    tasks_executed: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
}

thread_local! {
    /// Set inside executor worker threads: a nested `run` from task
    /// code executes inline instead of deadlocking on the pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// The `Inner` address this thread is currently submitting to, if
    /// any: a reentrant `run` from a driver closure executes inline
    /// instead of deadlocking on the submit lock.
    static SUBMITTING_TO: Cell<usize> = const { Cell::new(0) };
}

fn worker_main(inner: Arc<Inner>, idx: usize, scratch: Arc<Mutex<WorkerScratch>>) {
    IN_WORKER.with(|c| c.set(true));
    let mut last_gen = 0u64;
    loop {
        let batch = {
            let mut st = lock(&inner.state);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if st.generation != last_gen {
                    last_gen = st.generation;
                    break st.batch.clone();
                }
                inner.parks.fetch_add(1, Ordering::Relaxed);
                st = cv_wait(&inner.work_cv, st);
                inner.unparks.fetch_add(1, Ordering::Relaxed);
            }
        };
        if let Some(batch) = batch {
            if idx < batch.pool_participants {
                run_batch(&inner, &batch, idx, &scratch);
            }
        }
    }
}

fn run_batch(inner: &Inner, batch: &Batch, slot: usize, scratch: &Mutex<WorkerScratch>) {
    let mut guard = lock(scratch);
    let mut ctx = WorkerCtx {
        index: slot,
        scratch: &mut guard,
    };
    let mut executed = 0u64;
    let mut steals = 0u64;
    loop {
        let i = match pop_front(&batch.ranges[slot]) {
            Some(i) => i,
            None => match steal_half(&batch.ranges, slot) {
                Some((lo, hi)) => {
                    steals += 1;
                    // Install the stolen span (minus the task we take
                    // now) as our own range; other thieves may steal
                    // from it in turn.
                    batch.ranges[slot].store(pack(lo + 1, hi), Ordering::SeqCst);
                    lo as usize
                }
                None => break,
            },
        };
        if !batch.poisoned.load(Ordering::SeqCst) {
            let call = batch.call;
            let data = batch.data;
            // AssertUnwindSafe: on panic the batch is poisoned (its
            // outputs are discarded by the re-thrown panic) and this
            // worker's scratch is cleared below, so no broken state is
            // observed by later batches.
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: `data` outlives the batch and `i` is a
                // uniquely claimed index — see `call_thunk`.
                unsafe { (call)(data.0, i, &mut ctx) }
            }));
            match result {
                Ok(()) => executed += 1,
                Err(payload) => {
                    let mut slot_p = lock(&batch.panic);
                    if slot_p.is_none() {
                        *slot_p = Some(payload);
                    }
                    batch.poisoned.store(true, Ordering::SeqCst);
                }
            }
        }
        // Account the task even when skipped on a poisoned batch, so
        // the batch always drains and the submitter never deadlocks.
        if batch.completed.fetch_add(1, Ordering::SeqCst) + 1 == batch.n {
            let _st = lock(&inner.state);
            batch.done.store(true, Ordering::SeqCst);
            inner.done_cv.notify_all();
        }
    }
    if batch.poisoned.load(Ordering::SeqCst) {
        ctx.scratch.clear();
    }
    drop(guard);
    inner.tasks_executed.fetch_add(executed, Ordering::Relaxed);
    inner.steals.fetch_add(steals, Ordering::Relaxed);
}

/// A persistent pool of parked worker threads executing slot-based
/// task batches. See the crate docs for the design; [`global()`] is the
/// shared process-wide instance.
pub struct Executor {
    inner: Arc<Inner>,
}

/// RAII reset for the `SUBMITTING_TO` reentrancy marker.
struct SubmitMark(usize);

impl SubmitMark {
    fn set(inner: &Arc<Inner>) -> Self {
        let prev = SUBMITTING_TO.with(|c| c.replace(Arc::as_ptr(inner) as usize));
        SubmitMark(prev)
    }
}

impl Drop for SubmitMark {
    fn drop(&mut self) {
        SUBMITTING_TO.with(|c| c.set(self.0));
    }
}

impl Executor {
    /// Creates an executor that will lazily spawn up to
    /// `capacity` workers (clamped to `1..=`[`MAX_THREADS`]). No thread
    /// is spawned until the first batch that needs it.
    pub fn new(capacity: usize) -> Self {
        Executor {
            inner: Arc::new(Inner {
                capacity: capacity.clamp(1, MAX_THREADS),
                state: Mutex::new(ExecState {
                    batch: None,
                    generation: 0,
                    spawned: 0,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                submit: Mutex::new(()),
                scratches: Mutex::new(Vec::new()),
                shutdown: AtomicBool::new(false),
                workers_spawned: AtomicU64::new(0),
                batches_run: AtomicU64::new(0),
                tasks_executed: AtomicU64::new(0),
                steals: AtomicU64::new(0),
                parks: AtomicU64::new(0),
                unparks: AtomicU64::new(0),
            }),
        }
    }

    /// The maximum number of workers this executor will spawn.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// A snapshot of the cumulative executor counters.
    pub fn stats(&self) -> ExecStats {
        ExecStats {
            workers_spawned: self.inner.workers_spawned.load(Ordering::Relaxed),
            batches_run: self.inner.batches_run.load(Ordering::Relaxed),
            tasks_executed: self.inner.tasks_executed.load(Ordering::Relaxed),
            exec_steals: self.inner.steals.load(Ordering::Relaxed),
            parks: self.inner.parks.load(Ordering::Relaxed),
            unparks: self.inner.unparks.load(Ordering::Relaxed),
        }
    }

    /// Runs `f(i, &mut slots[i], ctx)` for every `i in 0..slots.len()`
    /// across `width` lanes — the calling thread itself plus up to
    /// `width - 1` pooled workers — blocking until the batch completes.
    /// The caller executes as the highest lane (`ctx.index() ==
    /// width - 1`), so a `width == 1` submission runs entirely on the
    /// calling thread (while still using the pool's persistent lane
    /// scratch) and small batches never pay a wake-up/context-switch
    /// round trip. Each task has exclusive access to its own slot; the
    /// caller reads the slots back in index order for a deterministic
    /// merge. A task panic is re-thrown here after the batch drains.
    pub fn run<S, F>(&self, slots: &mut [S], width: usize, f: F)
    where
        S: Send,
        F: Fn(usize, &mut S, &mut WorkerCtx<'_>) + Sync,
    {
        self.run_impl(slots, width, f, || (), None::<&mut CollectFn<'_>>, true);
    }

    /// Like [`run`](Self::run), but executes `driver` on the calling
    /// thread *concurrently* with the batch, then blocks until the
    /// batch completes. Because the caller is busy driving, all `width`
    /// lanes run on pooled workers here. Used when the submitting
    /// thread has its own work to overlap (e.g. replaying reviews while
    /// reader tasks hammer published epochs). `driver` must not wait on
    /// task progress through anything but shared atomics, and must not
    /// submit to this same executor (a reentrant submission falls back
    /// to inline execution *after* the driver returns).
    pub fn run_with_driver<S, F, D, R>(&self, slots: &mut [S], width: usize, f: F, driver: D) -> R
    where
        S: Send,
        F: Fn(usize, &mut S, &mut WorkerCtx<'_>) + Sync,
        D: FnOnce() -> R,
    {
        self.run_impl(slots, width, f, driver, None::<&mut CollectFn<'_>>, false)
    }

    /// Like [`run`](Self::run), but after the batch completes — still
    /// under the executor's submission lock, so no other batch can
    /// interleave — calls `collect(w, scratch)` for every
    /// participating worker slot `w in 0..width`, letting the caller
    /// drain per-worker output buffers kept in [`WorkerScratch`].
    pub fn run_collect<S, F>(
        &self,
        slots: &mut [S],
        width: usize,
        f: F,
        mut collect: impl FnMut(usize, &mut WorkerScratch),
    ) where
        S: Send,
        F: Fn(usize, &mut S, &mut WorkerCtx<'_>) + Sync,
    {
        let mut c: CollectFn<'_> = &mut collect;
        self.run_impl(slots, width, f, || (), Some(&mut c), true);
    }

    fn run_impl<S, F, D, R>(
        &self,
        slots: &mut [S],
        width: usize,
        f: F,
        driver: D,
        collect: Option<&mut CollectFn<'_>>,
        caller_helps: bool,
    ) -> R
    where
        S: Send,
        F: Fn(usize, &mut S, &mut WorkerCtx<'_>) + Sync,
        D: FnOnce() -> R,
    {
        let n = slots.len();
        if n == 0 {
            return driver();
        }
        let nested = IN_WORKER.with(|c| c.get())
            || SUBMITTING_TO.with(|c| c.get()) == Arc::as_ptr(&self.inner) as usize;
        if nested {
            return run_inline(slots, &f, driver, collect);
        }
        let width = width.clamp(1, self.inner.capacity).min(n);
        let pool_participants = if caller_helps { width - 1 } else { width };

        let data = CallData {
            slots: slots.as_mut_ptr(),
            f,
        };
        let data_ptr = &data as *const CallData<S, F> as *const ();

        let submit_guard = lock(&self.inner.submit);
        let _mark = SubmitMark::set(&self.inner);
        self.spawn_up_to(pool_participants);
        // The caller's lane scratch: lane `width - 1`'s pool worker (if
        // one was ever spawned for a wider batch) sits this batch out,
        // so the entry is exclusively ours for the duration.
        let caller_scratch = caller_helps.then(|| self.ensure_scratch(width - 1));

        let ranges: Box<[AtomicU64]> = (0..width)
            .map(|k| AtomicU64::new(pack((k * n / width) as u32, ((k + 1) * n / width) as u32)))
            .collect();
        let batch = Arc::new(Batch {
            ranges,
            pool_participants,
            n,
            completed: AtomicUsize::new(0),
            done: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            call: call_thunk::<S, F>,
            data: SendPtr(data_ptr),
        });
        {
            let mut st = lock(&self.inner.state);
            st.generation += 1;
            st.batch = Some(batch.clone());
        }
        if pool_participants > 0 {
            self.inner.work_cv.notify_all();
        }

        // The driver overlaps the batch. A driver panic must not
        // propagate before the batch drains — workers still hold
        // pointers into this stack frame.
        let driver_result = panic::catch_unwind(AssertUnwindSafe(driver));

        // The caller works its own lane (and steals) instead of
        // blocking; task panics are captured into the batch and
        // re-thrown below, never unwound out of here.
        if let Some(scratch) = &caller_scratch {
            run_batch(&self.inner, &batch, width - 1, scratch);
        }

        {
            let mut st = lock(&self.inner.state);
            while !batch.done.load(Ordering::SeqCst) {
                st = cv_wait(&self.inner.done_cv, st);
            }
            st.batch = None;
        }
        self.inner.batches_run.fetch_add(1, Ordering::Relaxed);

        let task_panic = lock(&batch.panic).take();
        if task_panic.is_none() && driver_result.is_ok() {
            if let Some(collect) = collect {
                let scratches = lock(&self.inner.scratches);
                for (w, scratch) in scratches.iter().enumerate().take(width) {
                    collect(w, &mut lock(scratch));
                }
            }
        }
        drop(submit_guard);

        match driver_result {
            Ok(r) => {
                if let Some(payload) = task_panic {
                    panic::resume_unwind(payload);
                }
                r
            }
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    fn spawn_up_to(&self, width: usize) {
        let mut st = lock(&self.inner.state);
        while st.spawned < width {
            let idx = st.spawned;
            // Reuse the lane's scratch if the caller already created it
            // while working this lane itself on a narrower batch.
            let scratch = {
                let mut s = lock(&self.inner.scratches);
                match s.get(idx) {
                    Some(existing) => Arc::clone(existing),
                    None => {
                        let fresh = Arc::new(Mutex::new(WorkerScratch::default()));
                        s.push(Arc::clone(&fresh));
                        fresh
                    }
                }
            };
            let inner = Arc::clone(&self.inner);
            thread::Builder::new()
                .name(format!("cp-exec-{idx}"))
                .spawn(move || worker_main(inner, idx, scratch))
                .expect("spawning an executor worker thread");
            st.spawned += 1;
            self.inner.workers_spawned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Returns lane `idx`'s persistent scratch, creating empty entries
    /// up to it if no pool worker has claimed the lane yet.
    fn ensure_scratch(&self, idx: usize) -> Arc<Mutex<WorkerScratch>> {
        let mut s = lock(&self.inner.scratches);
        while s.len() <= idx {
            s.push(Arc::new(Mutex::new(WorkerScratch::default())));
        }
        Arc::clone(&s[idx])
    }
}

type CollectFn<'a> = &'a mut dyn FnMut(usize, &mut WorkerScratch);

/// Inline fallback for nested/reentrant submissions: the driver runs
/// first (it cannot overlap), then every task on the calling thread
/// with a throwaway scratch.
fn run_inline<S, F, D, R>(
    slots: &mut [S],
    f: &F,
    driver: D,
    collect: Option<&mut CollectFn<'_>>,
) -> R
where
    F: Fn(usize, &mut S, &mut WorkerCtx<'_>) + Sync,
    D: FnOnce() -> R,
{
    let r = driver();
    let mut scratch = WorkerScratch::default();
    let mut ctx = WorkerCtx {
        index: 0,
        scratch: &mut scratch,
    };
    for (i, slot) in slots.iter_mut().enumerate() {
        f(i, slot, &mut ctx);
    }
    if let Some(collect) = collect {
        collect(0, &mut scratch);
    }
    r
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Wake every parked worker so it observes the shutdown flag.
        // Workers are detached; they exit promptly and hold no caller
        // state once the last batch has drained (guaranteed: `run`
        // blocks until completion).
        let _st = lock(&self.inner.state);
        self.inner.work_cv.notify_all();
    }
}

/// The process-wide shared executor. Oracles, the streaming engine,
/// and the graph kernels submit here by default; per-call `width`
/// clamps parallelism, so a shared pool never changes results. Sized
/// at [`MAX_THREADS`] capacity but spawns lazily — a process that runs
/// everything at `threads = 4` only ever spawns 4 workers.
pub fn global() -> &'static Executor {
    static GLOBAL: OnceLock<Executor> = OnceLock::new();
    GLOBAL.get_or_init(|| Executor::new(MAX_THREADS))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_match_sequential_at_any_width() {
        let exec = Executor::new(8);
        for width in [1, 2, 3, 8] {
            let mut slots = vec![0u64; 100];
            exec.run(&mut slots, width, |i, slot, _ctx| {
                *slot = (i as u64) * 3 + 1;
            });
            for (i, s) in slots.iter().enumerate() {
                assert_eq!(*s, (i as u64) * 3 + 1, "width {width}, slot {i}");
            }
        }
    }

    #[test]
    fn workers_spawn_once_and_park_between_batches() {
        let exec = Executor::new(4);
        let mut slots = vec![0u32; 64];
        for _ in 0..5 {
            exec.run(&mut slots, 4, |i, slot, _| *slot = i as u32);
        }
        let stats = exec.stats();
        // The caller works lane 3 itself: only 3 pool workers exist.
        assert_eq!(stats.workers_spawned, 3);
        assert_eq!(stats.batches_run, 5);
        assert_eq!(stats.tasks_executed, 5 * 64);
        // Workers park between batches rather than exiting. The caller
        // may finish a whole batch before a worker reaches the condvar
        // (single-core boxes), so give them a moment.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while exec.stats().parks == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(exec.stats().parks > 0);
    }

    #[test]
    fn blocked_range_is_stolen() {
        // Width 2 over 4 tasks: pool worker 0 owns [0, 2), the caller
        // (lane 1) owns [2, 4). Task 0 spins until task 1 runs — but
        // worker 0 is stuck inside task 0, so only a steal by the
        // caller lane can run task 1. The steal is therefore
        // guaranteed, not probabilistic.
        let exec = Executor::new(2);
        let t1_ran = AtomicBool::new(false);
        let mut slots = vec![0u8; 4];
        exec.run(&mut slots, 2, |i, _slot, _ctx| match i {
            0 => {
                while !t1_ran.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
            }
            1 => t1_ran.store(true, Ordering::SeqCst),
            _ => {}
        });
        assert!(exec.stats().exec_steals >= 1);
    }

    #[test]
    fn scratch_persists_across_batches() {
        let exec = Executor::new(2);
        let mut slots = vec![0usize; 8];
        for _round in 0..3 {
            exec.run(&mut slots, 2, |_i, slot, ctx| {
                let uses = ctx.scratch.get_or(|| 0usize);
                *uses += 1;
                *slot = *uses;
            });
        }
        // After three rounds of 8 tasks over 2 workers, the per-worker
        // counters sum to 24 — proof the entries survived the batches.
        let mut total = 0usize;
        exec.run_collect(
            &mut [0u8; 2][..],
            2,
            |_i, _s, _ctx| {},
            |_w, scratch| {
                if let Some(uses) = scratch.get_if::<usize>() {
                    total += *uses;
                }
            },
        );
        // The collect batch itself ran 2 more tasks without touching
        // the counter.
        assert_eq!(total, 24);
    }

    #[test]
    fn panicking_task_poisons_only_its_batch() {
        let exec = Executor::new(2);
        let mut slots = vec![0u32; 16];
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            exec.run(&mut slots, 2, |i, _slot, _ctx| {
                if i == 3 {
                    panic!("task 3 exploded");
                }
            });
        }));
        assert!(
            caught.is_err(),
            "the task panic must re-throw on the caller"
        );
        // The pool survives and later batches run normally.
        let mut slots = vec![0u32; 16];
        exec.run(&mut slots, 2, |i, slot, _ctx| *slot = i as u32 + 7);
        assert!(slots.iter().enumerate().all(|(i, s)| *s == i as u32 + 7));
        assert_eq!(exec.stats().workers_spawned, 1);
    }

    #[test]
    fn driver_overlaps_the_batch() {
        let exec = Executor::new(2);
        let stop = AtomicBool::new(false);
        let spins = AtomicUsize::new(0);
        let mut slots = vec![(); 2];
        let driver_result = exec.run_with_driver(
            &mut slots,
            2,
            |_i, _slot, _ctx| {
                while !stop.load(Ordering::SeqCst) {
                    spins.fetch_add(1, Ordering::Relaxed);
                }
            },
            || {
                // The tasks only terminate when the driver says so: if
                // the driver did not overlap, this would deadlock.
                std::thread::sleep(std::time::Duration::from_millis(10));
                stop.store(true, Ordering::SeqCst);
                42
            },
        );
        assert_eq!(driver_result, 42);
        assert!(spins.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn nested_run_from_a_task_executes_inline() {
        let exec = Executor::new(2);
        let mut slots = vec![0u32; 4];
        exec.run(&mut slots, 2, |i, slot, _ctx| {
            // Submitting to any executor from inside a worker must not
            // deadlock — it runs inline.
            let mut inner_slots = vec![0u32; 3];
            global().run(&mut inner_slots, 2, |j, s, _| *s = j as u32);
            *slot = i as u32 + inner_slots.iter().sum::<u32>();
        });
        for (i, s) in slots.iter().enumerate() {
            assert_eq!(*s, i as u32 + 3);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let exec = Executor::new(2);
        let mut slots: Vec<u32> = Vec::new();
        exec.run(&mut slots, 2, |_i, _s, _ctx| unreachable!());
        assert_eq!(exec.stats().batches_run, 0);
        assert_eq!(exec.stats().workers_spawned, 0);
    }

    #[test]
    fn parse_threads_clamps_and_warns() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 8 "), Some(8));
        assert_eq!(parse_threads("0"), Some(1), "zero clamps to one worker");
        assert_eq!(
            parse_threads("4096"),
            Some(MAX_THREADS),
            "absurd counts clamp to MAX_THREADS"
        );
        assert_eq!(
            parse_threads("1024"),
            Some(1024),
            "the ceiling itself is fine"
        );
        assert_eq!(parse_threads("abc"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        let d = default_threads();
        assert!(d >= 1);
        assert!(d <= MAX_DEFAULT_THREADS);
    }

    #[test]
    fn stats_delta_keeps_pool_size_absolute() {
        let a = ExecStats {
            workers_spawned: 4,
            batches_run: 10,
            tasks_executed: 100,
            exec_steals: 5,
            parks: 20,
            unparks: 18,
        };
        let b = ExecStats {
            workers_spawned: 4,
            batches_run: 13,
            tasks_executed: 160,
            exec_steals: 9,
            parks: 26,
            unparks: 25,
        };
        let d = b.since(&a);
        assert_eq!(d.workers_spawned, 4);
        assert_eq!(d.batches_run, 3);
        assert_eq!(d.tasks_executed, 60);
        assert_eq!(d.exec_steals, 4);
        assert_eq!(d.parks, 6);
        assert_eq!(d.unparks, 7);
    }
}
