//! Subscription edge cases: degenerate specs, silent watches, mid-stream
//! unsubscription, and duplicate registrations.
//!
//! The scenario throughout is the library's canonical one: a 10-node path
//! that gains shortcuts, so convergence events are hand-checkable.

use cp_core::exact::TopKSpec;
use cp_core::selectors::SelectorKind;
use cp_graph::{NodeId, TimedEdge};
use cp_stream::{StreamConfig, StreamEngine, StreamEvent};

fn path_engine(spec: TopKSpec) -> StreamEngine {
    let cfg = StreamConfig::new(10, SelectorKind::Degree, spec, 7);
    let mut engine = StreamEngine::new(10, cfg);
    for i in 0..9u32 {
        engine
            .ingest(TimedEdge {
                u: NodeId(i),
                v: NodeId(i + 1),
                time: 0,
            })
            .unwrap();
    }
    engine.review();
    engine
}

fn add_edge(engine: &mut StreamEngine, u: u32, v: u32, time: u64) {
    engine
        .ingest(TimedEdge {
            u: NodeId(u),
            v: NodeId(v),
            time,
        })
        .unwrap();
}

/// A top-k watch over a `TopK(0)` spec: the reported set is empty at
/// every review, so nothing can ever enter or leave it — the watch stays
/// registered and silent, and reviews still publish clean (pair-free)
/// epochs.
#[test]
fn topk_watch_under_topk0_spec_never_fires() {
    let mut engine = path_engine(TopKSpec::TopK(0));
    let w = engine.watch_topk();
    add_edge(&mut engine, 0, 9, 1);
    let e1 = engine.review();
    add_edge(&mut engine, 0, 5, 2);
    let e2 = engine.review();
    for epoch in [&e1, &e2] {
        assert!(
            epoch.result.pairs.is_empty(),
            "TopK(0) must report no pairs"
        );
        assert!(
            epoch.events.is_empty(),
            "TopK(0) fired events: {:?}",
            epoch.events
        );
    }
    assert!(engine.unwatch(w), "the silent watch stayed registered");
}

/// A pair watch on a pair that never converges (and whose rows are never
/// resident) stays silent across reviews that do fire other watches — the
/// silence is the watch's, not the review's. A threshold just above the
/// pair's actual Δ is equally silent.
#[test]
fn pair_watch_on_never_reported_pair_stays_silent() {
    let mut engine = path_engine(TopKSpec::ThresholdFromMax { slack: 0 });
    let silent = engine.watch_pair(NodeId(3), NodeId(7), 1);
    let too_high = engine.watch_pair(NodeId(0), NodeId(9), 9);
    let firing = engine.watch_pair(NodeId(0), NodeId(9), 1);
    add_edge(&mut engine, 0, 9, 1);
    let epoch = engine.review();
    assert!(
        epoch.events.iter().all(|e| e.watch() != silent),
        "the never-reported pair fired: {:?}",
        epoch.events
    );
    assert!(
        epoch.events.iter().all(|e| e.watch() != too_high),
        "tau above the pair's Δ fired: {:?}",
        epoch.events
    );
    let fired: Vec<_> = epoch
        .events
        .iter()
        .filter(|e| e.watch() == firing)
        .collect();
    assert_eq!(fired.len(), 1, "the real convergence must fire once");
    match fired[0] {
        StreamEvent::PairConverged { pair, delta, .. } => {
            assert_eq!(*pair, (NodeId(0), NodeId(9)));
            assert_eq!(*delta, 8, "the path shortcut's Δ");
        }
        other => panic!("wrong event kind: {other:?}"),
    }
}

/// Duplicate registrations are distinct subscriptions: both fire the same
/// event payload under their own ids — and unsubscribing one between
/// reviews silences exactly that one, while the twin keeps firing
/// (proving the later review had fireable material).
#[test]
fn duplicate_watches_are_distinct_and_unwatch_silences_only_one() {
    let mut engine = path_engine(TopKSpec::ThresholdFromMax { slack: 0 });
    let w1 = engine.watch_node(NodeId(0), 1);
    let w2 = engine.watch_node(NodeId(0), 1);
    assert_ne!(w1, w2, "duplicate registration must get a fresh id");

    add_edge(&mut engine, 0, 9, 1);
    let epoch = engine.review();
    let events_of = |epoch: &cp_stream::StreamSnapshot, w| {
        epoch
            .events
            .iter()
            .filter(|e| e.watch() == w)
            .map(|e| e.pair())
            .collect::<Vec<_>>()
    };
    let first = events_of(&epoch, w1);
    assert!(!first.is_empty(), "node watch missed the convergence");
    assert_eq!(
        first,
        events_of(&epoch, w2),
        "duplicate watches must fire identically"
    );

    // Unsubscribe w1 between reviews; a second unwatch of the same id is
    // a clean no-op.
    assert!(engine.unwatch(w1));
    assert!(!engine.unwatch(w1), "double unwatch must report false");

    add_edge(&mut engine, 0, 5, 2);
    let epoch = engine.review();
    assert!(
        events_of(&epoch, w1).is_empty(),
        "unsubscribed watch still fired"
    );
    let survivor = events_of(&epoch, w2);
    assert_eq!(
        survivor,
        vec![(NodeId(0), NodeId(5))],
        "surviving twin must see the second shortcut"
    );
}
