//! Streaming conformance: the engine is a *serving shape*, not a new
//! algorithm. Every review's visible output — pairs, candidate set, budget
//! ledger — must be bit-identical to a from-scratch budgeted pipeline run
//! on the same snapshot pair with the same seed, across the full knob
//! matrix (BFS/scan kernels × threads × row-cache budgets × pruning), with
//! review-to-review cache chaining on or off. Chaining, like the row cache
//! it extends, is a pure wall-clock optimization.

use cp_core::exact::TopKSpec;
use cp_core::oracle::{BfsKernel, GraphStore, RowCacheBudget, SnapshotOracle, SsspPrune};
use cp_core::scan::ScanKernel;
use cp_core::selectors::SelectorKind;
use cp_core::topk::{run_pipeline, BudgetedResult};
use cp_gen::ba::barabasi_albert;
use cp_gen::forest_fire::forest_fire;
use cp_gen::seeded_rng;
use cp_gen::ws::watts_strogatz;
use cp_graph::builder::graph_from_edges;
use cp_graph::{Graph, NodeId, TemporalGraph};
use cp_stream::{StreamConfig, StreamEngine, StreamError, StreamSnapshot};
use proptest::prelude::*;
use std::sync::Arc;

/// A few small evolving graphs with different growth shapes.
fn generator_cases() -> Vec<(&'static str, TemporalGraph)> {
    vec![
        (
            "barabasi_albert",
            barabasi_albert(70, 2, &mut seeded_rng(11)),
        ),
        (
            "watts_strogatz",
            watts_strogatz(64, 4, 0.2, &mut seeded_rng(13)),
        ),
        ("forest_fire", forest_fire(60, 0.35, &mut seeded_rng(17))),
    ]
}

/// Feeds the events between two prefix cuts into the engine, skipping the
/// announcements a snapshot would drop anyway (duplicates, self-loops).
fn feed(engine: &mut StreamEngine, t: &TemporalGraph, from: usize, to: usize) {
    for &e in &t.events()[from..to] {
        match engine.ingest(e) {
            Ok(_) | Err(StreamError::DuplicateEdge { .. }) | Err(StreamError::SelfLoop { .. }) => {}
            Err(err) => panic!("sorted generator stream was rejected: {err}"),
        }
    }
}

/// The from-scratch reference: a fresh oracle with the same knobs and the
/// engine's per-review seed convention.
fn reference(g1: &Graph, g2: &Graph, cfg: &StreamConfig, review: u32) -> BudgetedResult {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * cfg.m)
        .with_threads(cfg.threads.unwrap())
        .with_kernel(cfg.kernel.unwrap())
        .with_scan_kernel(cfg.scan_kernel.unwrap())
        .with_row_cache(cfg.row_cache.unwrap())
        .with_prune(cfg.prune.unwrap());
    let mut sel = cfg.selector.build(cfg.seed.wrapping_add(review as u64));
    run_pipeline(&mut oracle, sel.as_mut(), &cfg.spec)
}

fn assert_review_matches(got: &StreamSnapshot, want: &BudgetedResult, ctx: &str) {
    assert_eq!(got.result.pairs, want.pairs, "pairs diverge: {ctx}");
    assert_eq!(
        got.result.candidates, want.candidates,
        "candidates diverge: {ctx}"
    );
    assert_eq!(got.result.budget, want.budget, "ledger diverges: {ctx}");
    // Charged rows add up to the ledger in every configuration — donor
    // chain hits included.
    let ks = got.result.stats.kernel_stats;
    assert_eq!(
        ks.msbfs_rows
            + ks.bfs_rows
            + ks.dijkstra_rows
            + ks.repair_rows
            + got.result.stats.rows_prefiltered
            + got.result.stats.chained_rows,
        got.result.budget.total(),
        "kernel counters diverge from the ledger: {ctx}"
    );
}

/// The full streaming matrix: every review of an engine run (chaining on)
/// reproduces the from-scratch pipeline bit-for-bit under kernels
/// {scalar, auto} × threads {1, 2, 8} × row-cache budgets {off, tiny,
/// unbounded} × pruning {off, auto}.
#[test]
fn engine_reviews_match_from_scratch_pipeline_across_the_matrix() {
    let cuts = [0.6, 0.7, 0.8, 0.9, 1.0];
    for (name, t) in generator_cases() {
        let n = t.num_nodes();
        let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
        let tiny = RowCacheBudget::Bytes(3 * 4 * n);
        for threads in [1usize, 2, 8] {
            for (kernel, scan) in [
                (BfsKernel::Scalar, ScanKernel::Scalar),
                (BfsKernel::Auto, ScanKernel::Auto),
            ] {
                for cache in [RowCacheBudget::Bytes(0), tiny, RowCacheBudget::Unbounded] {
                    for prune in [SsspPrune::Off, SsspPrune::Auto] {
                        let mut cfg = StreamConfig::new(
                            8,
                            SelectorKind::Mmsd { landmarks: 3 },
                            TopKSpec::ThresholdFromMax { slack: 1 },
                            3,
                        );
                        cfg.threads = Some(threads);
                        cfg.kernel = Some(kernel);
                        cfg.scan_kernel = Some(scan);
                        cfg.row_cache = Some(cache);
                        cfg.prune = Some(prune);
                        let mut engine = StreamEngine::from_snapshot(
                            &t.snapshot_of_prefix(prefix(cuts[0])),
                            cfg,
                        );
                        for w in cuts.windows(2) {
                            let (f1, f2) = (prefix(w[0]), prefix(w[1]));
                            let g1 = t.snapshot_of_prefix(f1);
                            let g2 = t.snapshot_of_prefix(f2);
                            feed(&mut engine, &t, f1, f2);
                            let epoch = engine.review();
                            assert_eq!(*epoch.graph, g2, "engine snapshot drifted");
                            let want = reference(&g1, &g2, &cfg, epoch.review);
                            let ctx = format!(
                                "{name}/review={}/threads={threads}/{kernel:?}/cache={cache:?}/prune={prune:?}",
                                epoch.review
                            );
                            assert_review_matches(&epoch, &want, &ctx);
                        }
                    }
                }
            }
        }
    }
}

/// Executor axis: an engine with a dedicated injected pool reviews
/// bit-identically to one on the implicit global pool, the same pool
/// serves every review (≥3) without respawning workers, and the
/// submitting thread keeps working a lane itself (fewer pool workers
/// than the configured width).
#[test]
fn injected_pool_serves_every_review_without_respawning() {
    let cuts = [0.6, 0.7, 0.8, 0.9, 1.0];
    for (name, t) in generator_cases() {
        let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
        let mut cfg = StreamConfig::new(
            8,
            SelectorKind::Mmsd { landmarks: 3 },
            TopKSpec::ThresholdFromMax { slack: 1 },
            3,
        );
        cfg.threads = Some(4);
        cfg.kernel = Some(BfsKernel::Auto);
        cfg.scan_kernel = Some(ScanKernel::Auto);
        cfg.row_cache = Some(RowCacheBudget::Unbounded);
        cfg.prune = Some(SsspPrune::Auto);
        let pool = Arc::new(cp_exec::Executor::new(4));
        let start = t.snapshot_of_prefix(prefix(cuts[0]));
        let mut pooled = StreamEngine::from_snapshot(&start, cfg);
        pooled.set_executor(Arc::clone(&pool));
        let mut global = StreamEngine::from_snapshot(&start, cfg);
        let mut spawned_after_first = None;
        for (review, w) in cuts.windows(2).enumerate() {
            let (f1, f2) = (prefix(w[0]), prefix(w[1]));
            feed(&mut pooled, &t, f1, f2);
            feed(&mut global, &t, f1, f2);
            let got = pooled.review();
            let want = global.review();
            let ctx = format!("{name}/review={review}");
            assert_eq!(
                got.result.pairs, want.result.pairs,
                "pairs diverge on a dedicated pool: {ctx}"
            );
            assert_eq!(
                got.result.candidates, want.result.candidates,
                "candidates diverge on a dedicated pool: {ctx}"
            );
            assert_eq!(
                got.result.budget, want.result.budget,
                "ledger diverges on a dedicated pool: {ctx}"
            );
            let spawned = pool.stats().workers_spawned;
            assert!(
                spawned < 4,
                "{ctx}: the caller works a lane itself — at most 3 pool workers, got {spawned}"
            );
            match spawned_after_first {
                None => spawned_after_first = Some(spawned),
                Some(first) => assert_eq!(
                    spawned, first,
                    "{ctx}: the pool respawned workers between reviews"
                ),
            }
        }
        assert_eq!(pooled.reviews(), 4, "every cut must have been reviewed");
    }
}

/// Chaining on vs chaining off: identical epochs review by review, and the
/// chain actually fires (some review serves charges from imported donors
/// or repairs against them) so the equality is not vacuous.
#[test]
fn chaining_never_changes_visible_output_and_actually_fires() {
    let mut chain_fired = false;
    for (name, t) in generator_cases() {
        let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
        let cuts = [0.6, 0.7, 0.8, 0.9, 1.0];
        let base = StreamConfig::new(
            10,
            SelectorKind::Degree,
            TopKSpec::ThresholdFromMax { slack: 1 },
            7,
        );
        let mut chained = StreamEngine::from_snapshot(
            &t.snapshot_of_prefix(prefix(cuts[0])),
            base.with_chaining(true),
        );
        let mut rebuilt = StreamEngine::from_snapshot(
            &t.snapshot_of_prefix(prefix(cuts[0])),
            base.with_chaining(false),
        );
        for w in cuts.windows(2) {
            let (f1, f2) = (prefix(w[0]), prefix(w[1]));
            feed(&mut chained, &t, f1, f2);
            feed(&mut rebuilt, &t, f1, f2);
            let a: Arc<StreamSnapshot> = chained.review();
            let b = rebuilt.review();
            let ctx = format!("{name}/review={}", a.review);
            assert_eq!(a.result.pairs, b.result.pairs, "pairs diverge: {ctx}");
            assert_eq!(
                a.result.candidates, b.result.candidates,
                "candidates diverge: {ctx}"
            );
            assert_eq!(a.result.budget, b.result.budget, "ledger diverges: {ctx}");
            assert_eq!(
                b.stats.donor_rows_imported, 0,
                "chain-off engine must not import donors: {ctx}"
            );
            chain_fired |= a.stats.donor_chain_hits + a.stats.repaired_rows > 0;
        }
    }
    assert!(
        chain_fired,
        "no review ever used a chained donor — the A/B comparison is vacuous"
    );
}

/// Overlay-backed reviews: an engine pinned to the overlay store builds
/// each review's `G_t2` as base CSR + the insertion-log suffix since the
/// last cut — an O(Δ) path with no containment rescan — and every epoch
/// is bit-identical to the full-store engine's, with the overlay actually
/// sharing the base's arcs.
#[test]
fn overlay_backed_reviews_match_full_store_reviews() {
    let mut shared_somewhere = false;
    for (name, t) in generator_cases() {
        let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
        let cuts = [0.6, 0.7, 0.8, 0.9, 1.0];
        let base = StreamConfig::new(
            10,
            SelectorKind::Mmsd { landmarks: 3 },
            TopKSpec::ThresholdFromMax { slack: 1 },
            7,
        );
        let mut full_cfg = base.clone();
        full_cfg.graph_store = Some(GraphStore::Full);
        let mut overlay_cfg = base;
        overlay_cfg.graph_store = Some(GraphStore::Overlay);
        let start = t.snapshot_of_prefix(prefix(cuts[0]));
        let mut full = StreamEngine::from_snapshot(&start, full_cfg);
        let mut overlay = StreamEngine::from_snapshot(&start, overlay_cfg);
        for w in cuts.windows(2) {
            let (f1, f2) = (prefix(w[0]), prefix(w[1]));
            feed(&mut full, &t, f1, f2);
            feed(&mut overlay, &t, f1, f2);
            let a = full.review();
            let b = overlay.review();
            let ctx = format!("{name}/review={}", a.review);
            assert_eq!(a.result.pairs, b.result.pairs, "pairs diverge: {ctx}");
            assert_eq!(
                a.result.candidates, b.result.candidates,
                "candidates diverge: {ctx}"
            );
            assert_eq!(a.result.budget, b.result.budget, "ledger diverges: {ctx}");
            assert_eq!(
                b.result.stats.graph_store,
                GraphStore::Overlay,
                "store not recorded: {ctx}"
            );
            shared_somewhere |= b.result.stats.graph_mem.overlay_shared_arcs > 0;
        }
    }
    assert!(
        shared_somewhere,
        "no overlay-backed review ever shared a base arc — the overlay never built"
    );
}

/// Chaining is auto-disabled at `Bytes(0)`: the LRU keeps nothing
/// resident, so there is nothing to hand forward — and the engine must not
/// pretend otherwise in its stats.
#[test]
fn chaining_disabled_under_zero_cache() {
    let t = barabasi_albert(50, 2, &mut seeded_rng(5));
    let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
    let mut cfg = StreamConfig::new(6, SelectorKind::Degree, TopKSpec::TopK(10), 1);
    cfg.row_cache = Some(RowCacheBudget::Bytes(0));
    let mut engine = StreamEngine::from_snapshot(&t.snapshot_of_prefix(prefix(0.7)), cfg);
    for w in [[0.7, 0.85], [0.85, 1.0]] {
        feed(&mut engine, &t, prefix(w[0]), prefix(w[1]));
        let epoch = engine.review();
        assert_eq!(epoch.stats.donor_rows_imported, 0);
        assert_eq!(epoch.stats.donor_chain_hits, 0);
        assert_eq!(epoch.stats.repaired_rows, 0);
    }
}

/// Strategy: a growing random edge list over up to `n` nodes.
fn edge_list(n: u32, max_edges: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4..=n).prop_flat_map(move |nodes| {
        let edges = prop::collection::vec((0..nodes, 0..nodes), 8..max_edges);
        (Just(nodes as usize), edges)
    })
}

proptest! {
    /// Chained-repair property: on arbitrary growing streams cut at
    /// arbitrary points into three reviews, the engine with donor chaining
    /// produces exactly the epochs of the engine without it — pairs,
    /// candidates, and ledger — at every review.
    #[test]
    fn chained_repair_is_output_invariant(
        (n, edges) in edge_list(30, 90),
        cut_a in 2usize..40,
        cut_b in 2usize..40,
    ) {
        let t = TemporalGraph::from_sequence(
            n,
            edges.iter().map(|&(u, v)| (NodeId(u), NodeId(v))),
        );
        let total = t.num_events();
        let mut cuts = [total / 4 + cut_a % (total / 2 + 1), total / 4 + cut_b % (total / 2 + 1), total];
        cuts.sort_unstable();
        let base = StreamConfig::new(
            6,
            SelectorKind::SumDiff { landmarks: 2 },
            TopKSpec::ThresholdFromMax { slack: 1 },
            9,
        );
        let g0 = graph_from_edges(n, &edges[..cuts[0].min(edges.len())]);
        let mut chained = StreamEngine::from_snapshot(&g0, base.with_chaining(true));
        let mut rebuilt = StreamEngine::from_snapshot(&g0, base.with_chaining(false));
        let mut prev = cuts[0];
        for &cut in &cuts[1..] {
            feed(&mut chained, &t, prev, cut);
            feed(&mut rebuilt, &t, prev, cut);
            prev = cut;
            let a = chained.review();
            let b = rebuilt.review();
            prop_assert_eq!(&a.result.pairs, &b.result.pairs, "review {}", a.review);
            prop_assert_eq!(
                &a.result.candidates,
                &b.result.candidates,
                "review {}",
                a.review
            );
            prop_assert_eq!(a.result.budget, b.result.budget, "review {}", a.review);
        }
    }
}
