//! Continuous monitoring of converging pairs over a snapshot sequence —
//! the pre-engine API, kept as a thin wrapper over [`StreamEngine`].
//!
//! The paper analyses a single snapshot pair `(G_t1, G_t2)`; a deployed
//! system watches a *stream* of snapshots `G_1 ⊆ G_2 ⊆ …` and wants, at
//! every step, the pairs that converged since the last review — each step
//! under its own SSSP budget. [`ConvergenceMonitor`] keeps that
//! snapshot-at-a-time calling convention: [`ConvergenceMonitor::advance`]
//! diffs the new snapshot against the engine's rolling one, ingests the
//! new edges, and runs a review. Everything else — per-review ledger,
//! donor-chained row cache, per-pair history — is the engine's.

use crate::engine::{StreamConfig, StreamEngine, StreamSnapshot};
use cp_core::exact::{ConvergingPair, TopKSpec};
use cp_core::selectors::SelectorKind;
use cp_core::topk::BudgetedResult;
use cp_graph::{Graph, NodeId, TemporalGraph, TimedEdge};
use std::sync::Arc;

/// Configuration of a monitoring loop.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Candidate budget per step (`2m` SSSPs each step).
    pub m: u64,
    /// Which selector to run each step.
    pub selector: SelectorKind,
    /// How pairs are cut each step.
    pub spec: TopKSpec,
    /// Seed for the per-step selector instances (stepped deterministically).
    pub seed: u64,
}

impl MonitorConfig {
    fn stream(self) -> StreamConfig {
        StreamConfig::new(self.m, self.selector, self.spec, self.seed)
    }
}

/// Aggregate history of one pair across monitoring steps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairHistory {
    /// Total distance decrease accumulated over all steps where the pair
    /// was reported.
    pub total_delta: u32,
    /// In how many steps the pair was reported.
    pub times_seen: u32,
    /// The step index (1-based) of the last report.
    pub last_seen_step: u32,
}

/// One step's output.
#[derive(Clone, Debug)]
pub struct MonitorStep {
    /// 1-based step index.
    pub step: u32,
    /// The budgeted result against the previous snapshot.
    pub result: BudgetedResult,
}

/// Watches a growing graph snapshot-by-snapshot (see module docs).
pub struct ConvergenceMonitor {
    engine: StreamEngine,
}

impl ConvergenceMonitor {
    /// Starts monitoring from an initial (unweighted) snapshot.
    pub fn new(initial: Graph, config: MonitorConfig) -> Self {
        ConvergenceMonitor {
            engine: StreamEngine::from_snapshot(&initial, config.stream()),
        }
    }

    /// The underlying engine — for subscriptions, epoch readers, and
    /// per-review [`crate::StreamStats`].
    pub fn engine(&mut self) -> &mut StreamEngine {
        &mut self.engine
    }

    /// Number of completed steps.
    pub fn steps(&self) -> u32 {
        self.engine.reviews()
    }

    /// The snapshot the next step will diff against.
    pub fn current_snapshot(&self) -> &Graph {
        self.engine.current_graph()
    }

    /// Feeds the next snapshot; returns the pairs that converged since the
    /// previous one (under this step's budget) and advances the window.
    ///
    /// # Panics
    /// Panics if the snapshot's node universe differs from the previous
    /// one (grow the universe up front; `TemporalGraph` snapshots do), or
    /// if the snapshot dropped edges — the engine's insert-only model
    /// requires `G_t ⊆ G_{t+1}`, which the old rebuild-the-world loop
    /// merely assumed.
    pub fn advance(&mut self, next: Graph) -> MonitorStep {
        assert_eq!(
            self.current_snapshot().num_nodes(),
            next.num_nodes(),
            "snapshots must share a node universe"
        );
        let time = self.engine.watermark().unwrap_or(0);
        for (u, v) in TemporalGraph::new_edges_between(self.current_snapshot(), &next) {
            self.engine
                .ingest(TimedEdge { u, v, time })
                .expect("new_edges_between yields fresh in-universe edges");
        }
        assert_eq!(
            self.current_snapshot().num_edges() + self.engine.pending_events() as usize,
            next.num_edges(),
            "snapshots must grow: the monitor's insert-only model forbids edge removals"
        );
        let snap: Arc<StreamSnapshot> = self.engine.review();
        MonitorStep {
            step: snap.review,
            result: snap.result.clone(),
        }
    }

    /// History of one pair, if it was ever reported.
    pub fn pair_history(&self, u: NodeId, v: NodeId) -> Option<PairHistory> {
        self.engine.pair_history(u, v).map(|t| PairHistory {
            total_delta: t.total_delta,
            times_seen: t.times_seen,
            last_seen_step: t.last_seen_review,
        })
    }

    /// Pairs that have been reported in at least `min_steps` steps, sorted
    /// by total accumulated decrease (descending) — the "keeps converging"
    /// watch list.
    pub fn persistent_pairs(&self, min_steps: u32) -> Vec<(ConvergingPair, PairHistory)> {
        self.engine
            .persistent_pairs(min_steps)
            .into_iter()
            .map(|((u, v), t)| {
                (
                    ConvergingPair::new(u, v, t.total_delta),
                    PairHistory {
                        total_delta: t.total_delta,
                        times_seen: t.times_seen,
                        last_seen_step: t.last_seen_review,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::TemporalGraph;

    /// A ring accumulating chords: three snapshots, chords arriving in two
    /// waves; the pair (0, 12) converges in wave one, (6, 18) in wave two.
    fn snapshots() -> Vec<Graph> {
        let n = 24u32;
        let mut edges: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (NodeId(i), NodeId((i + 1) % n))).collect();
        edges.push((NodeId(0), NodeId(12)));
        edges.push((NodeId(6), NodeId(18)));
        let t = TemporalGraph::from_sequence(n as usize, edges);
        vec![
            t.snapshot_of_prefix(24),
            t.snapshot_of_prefix(25),
            t.snapshot_of_prefix(26),
        ]
    }

    fn config() -> MonitorConfig {
        MonitorConfig {
            m: 24,
            selector: SelectorKind::Degree,
            spec: TopKSpec::ThresholdFromMax { slack: 0 },
            seed: 5,
        }
    }

    #[test]
    fn detects_each_wave() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[0].clone(), config());
        let step1 = monitor.advance(snaps[1].clone());
        assert_eq!(step1.step, 1);
        assert_eq!(step1.result.pairs[0].pair, (NodeId(0), NodeId(12)));
        let step2 = monitor.advance(snaps[2].clone());
        assert_eq!(step2.result.pairs[0].pair, (NodeId(6), NodeId(18)));
        assert_eq!(monitor.steps(), 2);
    }

    #[test]
    fn history_accumulates() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[0].clone(), config());
        monitor.advance(snaps[1].clone());
        monitor.advance(snaps[2].clone());
        let h = monitor.pair_history(NodeId(12), NodeId(0)).unwrap();
        assert_eq!(h.times_seen, 1);
        assert_eq!(h.last_seen_step, 1);
        assert!(h.total_delta >= 10); // ring distance 12 -> 1
        assert!(monitor.pair_history(NodeId(1), NodeId(2)).is_none());
    }

    #[test]
    fn persistent_pairs_sorted_and_filtered() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[0].clone(), config());
        monitor.advance(snaps[1].clone());
        monitor.advance(snaps[2].clone());
        let persistent = monitor.persistent_pairs(1);
        assert!(!persistent.is_empty());
        for w in persistent.windows(2) {
            assert!(w[0].0.delta >= w[1].0.delta);
        }
        // Nothing was seen twice across these two disjoint waves.
        assert!(monitor.persistent_pairs(2).is_empty());
    }

    #[test]
    #[should_panic(expected = "node universe")]
    fn universe_mismatch_panics() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[0].clone(), config());
        let small =
            TemporalGraph::from_sequence(3, vec![(NodeId(0), NodeId(1))]).snapshot_at_fraction(1.0);
        monitor.advance(small);
    }

    #[test]
    #[should_panic(expected = "insert-only")]
    fn shrinking_snapshot_panics() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[1].clone(), config());
        monitor.advance(snaps[0].clone());
    }

    #[test]
    fn monitor_steps_chain_the_row_cache() {
        let snaps = snapshots();
        let mut monitor = ConvergenceMonitor::new(snaps[0].clone(), config());
        monitor.advance(snaps[1].clone());
        let step2 = monitor.advance(snaps[2].clone());
        assert!(
            step2.result.stats.chained_rows > 0,
            "second step should reuse first step's t2 rows as donors"
        );
    }
}
