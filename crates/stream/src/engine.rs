//! The streaming engine: ingest, review, chain, publish.

use crate::index::QueryIndex;
use crate::subs::{PairTrack, StreamEvent, Watch, WatchId, WatchKind};
use cp_core::exact::TopKSpec;
use cp_core::oracle::{
    BfsKernel, GraphStore, RowCacheBudget, RowHandoff, Snapshot, SnapshotOracle, SsspPrune,
};
use cp_core::scan::ScanKernel;
use cp_core::selectors::SelectorKind;
use cp_core::topk::{run_pipeline, BudgetedResult, PipelineStats};
use cp_graph::temporal::GraphAccumulator;
use cp_graph::{Graph, NodeId, TimedEdge};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// When the engine cuts a review snapshot on its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReviewPolicy {
    /// Never automatically; the caller drives [`StreamEngine::review`].
    Manual,
    /// After every `n` accepted events (`n = 0` behaves like `n = 1`).
    EveryEvents(usize),
    /// Whenever an accepted event's timestamp is at least `dt` past the
    /// anchor — the first accepted event after the previous review — the
    /// review fires *including* that event, and the anchor resets.
    EveryInterval(u64),
}

/// Configuration of a [`StreamEngine`].
///
/// The `m`/`selector`/`spec`/`seed` quadruple mirrors the batch pipeline;
/// each review runs under its own `2m` SSSP ledger with a selector seeded
/// `seed + review_index`, so review *r*'s output is bit-identical to a
/// from-scratch [`cp_core::topk::budgeted_top_k`] on the same snapshot
/// pair. The `Option` knobs override the process-environment defaults
/// (`CP_THREADS`, `CP_BFS_KERNEL`, `CP_SCAN_KERNEL`, `CP_ROW_CACHE`,
/// `CP_SSSP_PRUNE`) — `None` inherits them.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Candidate budget per review (`2m` SSSPs each).
    pub m: u64,
    /// Selector run each review.
    pub selector: SelectorKind,
    /// How pairs are cut each review.
    pub spec: TopKSpec,
    /// Base seed; review `r` builds its selector with `seed + r`.
    pub seed: u64,
    /// When reviews fire.
    pub policy: ReviewPolicy,
    /// Worker threads (`None`: `CP_THREADS` / default).
    pub threads: Option<usize>,
    /// Unweighted SSSP kernel (`None`: `CP_BFS_KERNEL` / default).
    pub kernel: Option<BfsKernel>,
    /// Δ-scan kernel (`None`: `CP_SCAN_KERNEL` / default).
    pub scan_kernel: Option<ScanKernel>,
    /// Resident-row byte budget (`None`: `CP_ROW_CACHE` / default).
    pub row_cache: Option<RowCacheBudget>,
    /// Bound-based pruning mode (`None`: `CP_SSSP_PRUNE` / default).
    pub prune: Option<SsspPrune>,
    /// Snapshot storage layout per review (`None`: `CP_GRAPH_STORE` /
    /// default). Under [`GraphStore::Overlay`] the engine hands each
    /// review's oracle a `t2` overlay built straight from the insertion
    /// log — `O(Δ)` memory and no `O(E)` delta rescan; the stream is
    /// insert-only, so every review pair qualifies.
    pub graph_store: Option<GraphStore>,
    /// Chain the row cache across reviews: step *t*'s resident `t2` rows
    /// become step *t+1*'s `t1` donors. Pure wall-clock optimization —
    /// ledger and results are bit-identical either way. Disabled
    /// automatically when the row cache is `Bytes(0)` (nothing resident
    /// survives to chain).
    pub chain_cache: bool,
}

impl StreamConfig {
    /// A config with the given pipeline quadruple, manual reviews,
    /// environment-default knobs, and cache chaining on.
    pub fn new(m: u64, selector: SelectorKind, spec: TopKSpec, seed: u64) -> Self {
        StreamConfig {
            m,
            selector,
            spec,
            seed,
            policy: ReviewPolicy::Manual,
            threads: None,
            kernel: None,
            scan_kernel: None,
            row_cache: None,
            prune: None,
            graph_store: None,
            chain_cache: true,
        }
    }

    /// Sets the review policy (builder style).
    pub fn with_policy(mut self, policy: ReviewPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables or disables review-to-review cache chaining (builder style).
    pub fn with_chaining(mut self, on: bool) -> Self {
        self.chain_cache = on;
        self
    }
}

/// An ingested event the engine must reject to keep the insert-only
/// containment model (`G_t ⊆ G_{t+1}`) honest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamError {
    /// The event's timestamp is behind the newest accepted event; folding
    /// it in would put edges into snapshots that were already published
    /// without them.
    OutOfOrder {
        /// The rejected event's timestamp.
        time: u64,
        /// The newest accepted timestamp (the stream's watermark).
        watermark: u64,
    },
    /// The undirected edge is already present. Snapshots are edge *sets*;
    /// re-announcing an edge is not an insertion, and silently dropping it
    /// would skew event-count review policies.
    DuplicateEdge {
        /// One endpoint (normalized: the smaller id).
        u: NodeId,
        /// Other endpoint.
        v: NodeId,
    },
    /// Self-loops never exist in a snapshot.
    SelfLoop {
        /// The looping node.
        node: NodeId,
    },
    /// An endpoint lies outside the engine's fixed node universe.
    OutOfUniverse {
        /// The offending endpoint.
        node: NodeId,
        /// The universe size.
        num_nodes: usize,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StreamError::OutOfOrder { time, watermark } => write!(
                f,
                "event at time {time} is behind the stream watermark {watermark}"
            ),
            StreamError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) is already present")
            }
            StreamError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            StreamError::OutOfUniverse { node, num_nodes } => write!(
                f,
                "node {node} outside the engine's universe of {num_nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Per-review instrumentation, in the style of
/// [`cp_core::topk::PipelineStats`] (which it embeds).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// 1-based review index.
    pub review: u32,
    /// Events accepted since the previous review (the ones this review
    /// folded in).
    pub events_ingested: u64,
    /// Events accepted over the engine's lifetime.
    pub events_total: u64,
    /// Wall clock spent in [`StreamEngine::ingest`] since the previous
    /// review (validation + incremental CSR maintenance).
    pub ingest_secs: f64,
    /// Wall clock cutting this review's snapshot from the accumulator.
    pub advance_secs: f64,
    /// Wall clock of the budgeted pipeline run.
    pub pipeline_secs: f64,
    /// Donor rows imported from the previous review's hand-off.
    pub donor_rows_imported: u64,
    /// Charged rows served straight from imported donors (no kernel ran).
    pub donor_chain_hits: u64,
    /// `t2` rows derived by snapshot-delta repair (imported donors make
    /// these possible across the review boundary).
    pub repaired_rows: u64,
    /// `(donor_chain_hits + repaired_rows) / sssp_computed` — the fraction
    /// of this review's charges that skipped a full sweep thanks to the
    /// chain. 0 when nothing was charged.
    pub donor_hit_rate: f64,
    /// Subscription events delivered with this epoch.
    pub subscriptions_fired: u64,
    /// The embedded batch-pipeline instrumentation.
    pub pipeline: PipelineStats,
}

/// An immutable published epoch: one review's complete output.
#[derive(Clone, Debug)]
pub struct StreamSnapshot {
    /// 1-based review index (0 for the pre-first-review epoch).
    pub review: u32,
    /// The snapshot the review was cut at (the next review's `G_t1`).
    pub graph: Arc<Graph>,
    /// The budgeted pipeline output against the previous snapshot.
    pub result: BudgetedResult,
    /// Subscription events fired by this review.
    pub events: Vec<StreamEvent>,
    /// Per-review instrumentation.
    pub stats: StreamStats,
    /// Read-only query material captured from the review's oracle before
    /// it was dropped: resident rows (truncation-flagged), landmark
    /// indexes, and the review's Δ floor. Point queries (`cp-query`) are
    /// served entirely from this — no budget, no locks, no engine access.
    pub query: Arc<QueryIndex>,
}

/// A cloneable read handle onto the engine's latest published epoch.
///
/// Readers are decoupled from the engine: [`Self::latest`] takes the lock
/// only for an `Arc` pointer clone, so an epoch a reader holds stays
/// immutable and complete while the engine publishes newer ones.
#[derive(Clone)]
pub struct StreamReader {
    shared: Arc<RwLock<Arc<StreamSnapshot>>>,
}

impl StreamReader {
    /// The most recently published epoch.
    pub fn latest(&self) -> Arc<StreamSnapshot> {
        Arc::clone(&self.shared.read())
    }
}

/// The long-running streaming convergence engine (see the crate docs).
pub struct StreamEngine {
    config: StreamConfig,
    acc: GraphAccumulator,
    /// The snapshot of the last review — the `G_t1` of the next one.
    current: Arc<Graph>,
    /// Step *t*'s exported `t2` rows, pending import as step *t+1*'s `t1`
    /// donors.
    handoff: Option<RowHandoff>,
    /// Insertion-log length at the last review cut: the log suffix past
    /// this mark is exactly `E_t2 \ E_t1` of the next review, which is
    /// what makes `O(Δ)` overlay construction possible.
    review_mark: usize,
    history: HashMap<(NodeId, NodeId), PairTrack>,
    watches: Vec<Watch>,
    next_watch: u64,
    reviews: u32,
    watermark: Option<u64>,
    pending: u64,
    events_total: u64,
    interval_anchor: Option<u64>,
    ingest_secs: f64,
    prev_reported: HashSet<(NodeId, NodeId)>,
    shared: Arc<RwLock<Arc<StreamSnapshot>>>,
    /// The worker pool every review's oracle fans out on. `None` uses the
    /// process-wide [`cp_exec::global`] pool — either way the pool
    /// persists across reviews, so workers are spawned once, not per
    /// review.
    exec: Option<Arc<cp_exec::Executor>>,
}

impl StreamEngine {
    /// Starts an engine over an empty graph on a fixed node universe.
    pub fn new(num_nodes: usize, config: StreamConfig) -> Self {
        Self::from_accumulator(GraphAccumulator::new(num_nodes), config)
    }

    /// Starts an engine from an existing (unweighted) snapshot: the first
    /// review diffs against it.
    ///
    /// # Panics
    /// Panics if the snapshot is weighted — the stream wire format
    /// ([`TimedEdge`]) carries no weights.
    pub fn from_snapshot(initial: &Graph, config: StreamConfig) -> Self {
        assert!(
            !initial.is_weighted(),
            "streaming snapshots are unweighted (TimedEdge carries no weight)"
        );
        Self::from_accumulator(GraphAccumulator::from_graph(initial), config)
    }

    fn from_accumulator(acc: GraphAccumulator, config: StreamConfig) -> Self {
        let current = Arc::new(acc.materialize());
        let epoch0 = Arc::new(StreamSnapshot {
            review: 0,
            graph: Arc::clone(&current),
            result: BudgetedResult {
                pairs: Vec::new(),
                candidates: Vec::new(),
                budget: Default::default(),
                stats: PipelineStats::default(),
            },
            events: Vec::new(),
            stats: StreamStats::default(),
            query: Arc::new(QueryIndex::empty(acc.num_nodes())),
        });
        let review_mark = acc.insertions();
        StreamEngine {
            config,
            acc,
            current,
            handoff: None,
            review_mark,
            history: HashMap::new(),
            watches: Vec::new(),
            next_watch: 0,
            reviews: 0,
            watermark: None,
            pending: 0,
            events_total: 0,
            interval_anchor: None,
            ingest_secs: 0.0,
            prev_reported: HashSet::new(),
            shared: Arc::new(RwLock::new(epoch0)),
            exec: None,
        }
    }

    /// Injects a dedicated worker pool for every future review's oracle
    /// (builder style). Without one, reviews fan out on the process-wide
    /// [`cp_exec::global`] pool. The pool only changes *where* batched
    /// work runs — epochs are pool-invariant.
    pub fn with_executor(mut self, exec: Arc<cp_exec::Executor>) -> Self {
        self.set_executor(exec);
        self
    }

    /// Injects a dedicated worker pool for every future review's oracle.
    pub fn set_executor(&mut self, exec: Arc<cp_exec::Executor>) {
        self.exec = Some(exec);
    }

    /// The engine's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Size of the fixed node universe.
    pub fn num_nodes(&self) -> usize {
        self.acc.num_nodes()
    }

    /// Completed reviews.
    pub fn reviews(&self) -> u32 {
        self.reviews
    }

    /// Accepted events not yet covered by a review.
    pub fn pending_events(&self) -> u64 {
        self.pending
    }

    /// The newest accepted timestamp, if any event was accepted.
    pub fn watermark(&self) -> Option<u64> {
        self.watermark
    }

    /// The snapshot the next review will diff against.
    pub fn current_graph(&self) -> &Arc<Graph> {
        &self.current
    }

    /// A cloneable handle onto the latest published epoch.
    pub fn reader(&self) -> StreamReader {
        StreamReader {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The latest published epoch.
    pub fn latest(&self) -> Arc<StreamSnapshot> {
        Arc::clone(&self.shared.read())
    }

    /// Watches one pair: fires when a review reports it with `Δ ≥ tau`.
    pub fn watch_pair(&mut self, u: NodeId, v: NodeId, tau: u32) -> WatchId {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.register(WatchKind::Pair { a, b, tau })
    }

    /// Watches one node: fires for every reported pair touching it with
    /// `Δ ≥ tau`.
    pub fn watch_node(&mut self, node: NodeId, tau: u32) -> WatchId {
        self.register(WatchKind::Node { node, tau })
    }

    /// Watches the reported set: fires entered/left events as pairs move
    /// in and out between consecutive reviews.
    pub fn watch_topk(&mut self) -> WatchId {
        self.register(WatchKind::TopK)
    }

    fn register(&mut self, kind: WatchKind) -> WatchId {
        let id = WatchId(self.next_watch);
        self.next_watch += 1;
        self.watches.push(Watch { id, kind });
        id
    }

    /// Removes a watch; `false` if the id is unknown (or already removed).
    pub fn unwatch(&mut self, id: WatchId) -> bool {
        let before = self.watches.len();
        self.watches.retain(|w| w.id != id);
        self.watches.len() != before
    }

    /// History of one pair across reviews, if it was ever reported.
    pub fn pair_history(&self, u: NodeId, v: NodeId) -> Option<PairTrack> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.history.get(&key).copied()
    }

    /// Pairs reported in at least `min_reviews` reviews, sorted by total
    /// accumulated decrease (descending, ties by pair id) — the "keeps
    /// converging" watch list.
    pub fn persistent_pairs(&self, min_reviews: u32) -> Vec<((NodeId, NodeId), PairTrack)> {
        let mut out: Vec<((NodeId, NodeId), PairTrack)> = self
            .history
            .iter()
            .filter(|(_, h)| h.times_seen >= min_reviews)
            .map(|(&pair, &h)| (pair, h))
            .collect();
        out.sort_by(|a, b| b.1.total_delta.cmp(&a.1.total_delta).then(a.0.cmp(&b.0)));
        out
    }

    /// Ingests one edge event. On acceptance the edge folds into the
    /// rolling snapshot immediately; if the [`ReviewPolicy`] triggers, the
    /// review runs inline and its epoch is returned. Rejected events
    /// ([`StreamError`]) leave the engine untouched.
    pub fn ingest(&mut self, e: TimedEdge) -> Result<Option<Arc<StreamSnapshot>>, StreamError> {
        let started = Instant::now();
        let n = self.acc.num_nodes();
        for node in [e.u, e.v] {
            if node.index() >= n {
                return Err(StreamError::OutOfUniverse { node, num_nodes: n });
            }
        }
        if e.u == e.v {
            return Err(StreamError::SelfLoop { node: e.u });
        }
        if let Some(w) = self.watermark {
            if e.time < w {
                return Err(StreamError::OutOfOrder {
                    time: e.time,
                    watermark: w,
                });
            }
        }
        if self.acc.contains_edge(e.u, e.v) {
            let (a, b) = if e.u < e.v { (e.u, e.v) } else { (e.v, e.u) };
            return Err(StreamError::DuplicateEdge { u: a, v: b });
        }
        self.acc.insert_edge(e.u, e.v);
        self.watermark = Some(e.time);
        self.pending += 1;
        self.events_total += 1;
        if self.interval_anchor.is_none() {
            self.interval_anchor = Some(e.time);
        }
        self.ingest_secs += started.elapsed().as_secs_f64();
        let fire = match self.config.policy {
            ReviewPolicy::Manual => false,
            ReviewPolicy::EveryEvents(k) => self.pending >= (k.max(1) as u64),
            ReviewPolicy::EveryInterval(dt) => {
                let anchor = self.interval_anchor.expect("anchor set above");
                e.time.saturating_sub(anchor) >= dt
            }
        };
        Ok(if fire { Some(self.review()) } else { None })
    }

    /// Ingests a batch, stopping at the first rejected event; returns the
    /// epochs of any reviews the batch triggered.
    pub fn extend(
        &mut self,
        events: impl IntoIterator<Item = TimedEdge>,
    ) -> Result<Vec<Arc<StreamSnapshot>>, StreamError> {
        let mut epochs = Vec::new();
        for e in events {
            if let Some(snap) = self.ingest(e)? {
                epochs.push(snap);
            }
        }
        Ok(epochs)
    }

    /// Cuts a review snapshot now and runs the budgeted pipeline against
    /// the previous one, publishing the result as a new epoch. The review
    /// runs even with zero pending events (an empty delta legitimately
    /// reports no pairs — and still spends its budget, like any review).
    pub fn review(&mut self) -> Arc<StreamSnapshot> {
        let t_advance = Instant::now();
        let next = Arc::new(self.acc.materialize());
        let advance_secs = t_advance.elapsed().as_secs_f64();
        self.reviews += 1;
        let review = self.reviews;
        let g1 = Arc::clone(&self.current);

        let mut oracle = SnapshotOracle::with_budget(&g1, &next, 2 * self.config.m);
        if let Some(exec) = &self.exec {
            oracle.set_executor(Arc::clone(exec));
        }
        if let Some(t) = self.config.threads {
            oracle.set_threads(t);
        }
        if let Some(k) = self.config.kernel {
            oracle.set_kernel(k);
        }
        if let Some(k) = self.config.scan_kernel {
            oracle.set_scan_kernel(k);
        }
        if let Some(b) = self.config.row_cache {
            oracle.set_row_cache(b);
        }
        if let Some(p) = self.config.prune {
            oracle.set_prune(p);
        }
        let store = self.config.graph_store.unwrap_or_else(GraphStore::from_env);
        if store == GraphStore::Overlay {
            // The stream is insert-only, so the accumulator's log suffix
            // since the last review *is* `E_t2 \ E_t1`: the overlay (and
            // the repair delta it seeds) is built in O(Δ) — no second
            // CSR, no O(E) containment rescan.
            oracle.set_t2_overlay(self.acc.materialize_overlay(&g1, self.review_mark));
        } else if self.config.graph_store.is_some() && store != oracle.graph_store() {
            oracle.set_graph_store(store);
        }
        // Chain: the previous review's t2 rows are exact t1 rows here —
        // `g1` *is* the graph they were computed on. Imported after the
        // knobs so pruning can record donor eccentricities. Pointless
        // under `Bytes(0)` (the LRU would evict the imports immediately).
        let chaining = self.config.chain_cache && oracle.row_cache() != RowCacheBudget::Bytes(0);
        let mut donor_rows_imported = 0;
        if chaining {
            if let Some(h) = &self.handoff {
                donor_rows_imported = oracle.import_donor_rows(Snapshot::First, h);
            }
        }

        let mut selector = self
            .config
            .selector
            .build(self.config.seed.wrapping_add(review as u64));
        let t_pipeline = Instant::now();
        let result = run_pipeline(&mut oracle, selector.as_mut(), &self.config.spec);
        let pipeline_secs = t_pipeline.elapsed().as_secs_f64();
        self.handoff = chaining.then(|| oracle.export_resident_rows(Snapshot::Second));
        let repaired_rows = oracle.repaired_rows();
        let donor_chain_hits = oracle.chained_rows();
        // Capture the query material while the oracle still owns its row
        // cache; the published epoch serves point queries from this copy.
        let query = Arc::new(QueryIndex::capture(
            &oracle,
            self.config.spec.initial_floor(),
        ));
        drop(oracle);

        for p in &result.pairs {
            let h = self.history.entry(p.pair).or_default();
            h.total_delta += p.delta;
            h.times_seen += 1;
            h.current_streak = if h.last_seen_review + 1 == review {
                h.current_streak + 1
            } else {
                1
            };
            h.longest_streak = h.longest_streak.max(h.current_streak);
            h.last_seen_review = review;
        }

        let events = self.fire_watches(review, &result);
        let charged = result.stats.sssp_computed;
        let stats = StreamStats {
            review,
            events_ingested: self.pending,
            events_total: self.events_total,
            ingest_secs: self.ingest_secs,
            advance_secs,
            pipeline_secs,
            donor_rows_imported,
            donor_chain_hits,
            repaired_rows,
            donor_hit_rate: if charged == 0 {
                0.0
            } else {
                (donor_chain_hits + repaired_rows) as f64 / charged as f64
            },
            subscriptions_fired: events.len() as u64,
            pipeline: result.stats,
        };
        self.prev_reported = result.pair_set();
        let snap = Arc::new(StreamSnapshot {
            review,
            graph: Arc::clone(&next),
            result,
            events,
            stats,
            query,
        });
        *self.shared.write() = Arc::clone(&snap);
        self.current = next;
        self.review_mark = self.acc.insertions();
        self.pending = 0;
        self.ingest_secs = 0.0;
        self.interval_anchor = None;
        snap
    }

    /// Evaluates every watch against this review's result. Deterministic:
    /// watches in registration order, pairs in the result's canonical
    /// order (left-pairs sorted ascending).
    fn fire_watches(&self, review: u32, result: &BudgetedResult) -> Vec<StreamEvent> {
        let mut events = Vec::new();
        if self.watches.is_empty() {
            return events;
        }
        let reported = result.pair_set();
        let mut left: Vec<(NodeId, NodeId)> = self
            .prev_reported
            .iter()
            .filter(|p| !reported.contains(*p))
            .copied()
            .collect();
        left.sort_unstable();
        for w in &self.watches {
            match w.kind {
                WatchKind::Pair { a, b, tau } => {
                    for p in &result.pairs {
                        if p.pair == (a, b) && p.delta >= tau {
                            events.push(StreamEvent::PairConverged {
                                watch: w.id,
                                review,
                                pair: p.pair,
                                delta: p.delta,
                            });
                        }
                    }
                }
                WatchKind::Node { node, tau } => {
                    for p in &result.pairs {
                        if (p.pair.0 == node || p.pair.1 == node) && p.delta >= tau {
                            events.push(StreamEvent::NodeConverged {
                                watch: w.id,
                                review,
                                pair: p.pair,
                                delta: p.delta,
                            });
                        }
                    }
                }
                WatchKind::TopK => {
                    for p in &result.pairs {
                        if !self.prev_reported.contains(&p.pair) {
                            events.push(StreamEvent::EnteredTopK {
                                watch: w.id,
                                review,
                                pair: p.pair,
                                delta: p.delta,
                            });
                        }
                    }
                    for &pair in &left {
                        events.push(StreamEvent::LeftTopK {
                            watch: w.id,
                            review,
                            pair,
                        });
                    }
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::TemporalGraph;

    fn te(u: u32, v: u32, time: u64) -> TimedEdge {
        TimedEdge {
            u: NodeId(u),
            v: NodeId(v),
            time,
        }
    }

    /// A 24-ring plus two chords arriving later; the chords make (0, 12)
    /// and (6, 18) converge.
    fn ring(n: u32) -> Vec<TimedEdge> {
        (0..n).map(|i| te(i, (i + 1) % n, 0)).collect()
    }

    fn config(m: u64) -> StreamConfig {
        StreamConfig::new(
            m,
            SelectorKind::Degree,
            TopKSpec::ThresholdFromMax { slack: 0 },
            5,
        )
    }

    #[test]
    fn rejects_out_of_universe_nodes() {
        let mut e = StreamEngine::new(4, config(4));
        assert_eq!(
            e.ingest(te(0, 9, 0)).unwrap_err(),
            StreamError::OutOfUniverse {
                node: NodeId(9),
                num_nodes: 4
            }
        );
        assert_eq!(e.pending_events(), 0);
        assert_eq!(e.watermark(), None);
    }

    #[test]
    fn rejects_self_loops() {
        let mut e = StreamEngine::new(4, config(4));
        assert_eq!(
            e.ingest(te(2, 2, 0)).unwrap_err(),
            StreamError::SelfLoop { node: NodeId(2) }
        );
        assert_eq!(e.pending_events(), 0);
    }

    #[test]
    fn rejects_duplicate_edges_normalized() {
        let mut e = StreamEngine::new(4, config(4));
        e.ingest(te(0, 1, 0)).unwrap();
        // Same undirected edge, announced reversed and later.
        assert_eq!(
            e.ingest(te(1, 0, 7)).unwrap_err(),
            StreamError::DuplicateEdge {
                u: NodeId(0),
                v: NodeId(1)
            }
        );
        // Rejection leaves the engine untouched: watermark not advanced.
        assert_eq!(e.watermark(), Some(0));
        assert_eq!(e.pending_events(), 1);
    }

    #[test]
    fn rejects_events_behind_the_watermark() {
        let mut e = StreamEngine::new(6, config(4));
        e.ingest(te(0, 1, 10)).unwrap();
        assert_eq!(
            e.ingest(te(2, 3, 9)).unwrap_err(),
            StreamError::OutOfOrder {
                time: 9,
                watermark: 10
            }
        );
        // Equal timestamps are in order (ties allowed, as in TemporalGraph).
        assert!(e.ingest(te(2, 3, 10)).is_ok());
        assert_eq!(e.pending_events(), 2);
    }

    #[test]
    fn stream_errors_display_and_implement_error() {
        let err: Box<dyn std::error::Error> = Box::new(StreamError::OutOfOrder {
            time: 3,
            watermark: 8,
        });
        assert!(err.to_string().contains("watermark 8"));
    }

    #[test]
    fn every_events_policy_fires_on_the_nth_accepted_event() {
        let n = 24;
        let cfg = config(24).with_policy(ReviewPolicy::EveryEvents(2));
        let mut engine = StreamEngine::new(n as usize, cfg);
        engine.extend(ring(n)).unwrap();
        assert_eq!(engine.reviews(), n / 2, "one review per two ring edges");
        // Rejected events must NOT count toward the policy.
        let before = engine.reviews();
        assert!(engine.ingest(te(0, 1, 0)).is_err());
        assert!(engine.ingest(te(0, 12, 0)).unwrap().is_none());
        let fired = engine.ingest(te(6, 18, 0)).unwrap();
        assert!(fired.is_some(), "second accepted event fires the review");
        assert_eq!(engine.reviews(), before + 1);
    }

    #[test]
    fn every_interval_policy_anchors_on_first_event_after_review() {
        let cfg = config(24).with_policy(ReviewPolicy::EveryInterval(10));
        let mut e = StreamEngine::new(24, cfg);
        assert!(e.ingest(te(0, 1, 0)).unwrap().is_none()); // anchor = 0
        assert!(e.ingest(te(1, 2, 9)).unwrap().is_none()); // 9 - 0 < 10
        let epoch = e.ingest(te(2, 3, 10)).unwrap(); // 10 - 0 >= 10: fires
        assert!(epoch.is_some());
        let epoch = epoch.unwrap();
        assert_eq!(
            epoch.stats.events_ingested, 3,
            "the firing event is included"
        );
        // Anchor resets: next window starts at the next accepted event.
        assert!(e.ingest(te(3, 4, 12)).unwrap().is_none()); // anchor = 12
        assert!(e.ingest(te(4, 5, 21)).unwrap().is_none()); // 21 - 12 < 10
        assert!(e.ingest(te(5, 6, 22)).unwrap().is_some()); // 22 - 12 >= 10
    }

    #[test]
    fn manual_review_with_no_pending_events_reports_nothing() {
        let mut e = StreamEngine::new(24, config(24));
        e.extend(ring(24)).unwrap();
        e.review();
        let epoch = e.review(); // empty delta
        assert_eq!(epoch.review, 2);
        assert!(epoch.result.pairs.is_empty());
        assert_eq!(epoch.stats.events_ingested, 0);
    }

    #[test]
    fn epochs_are_immutable_and_reader_tracks_latest() {
        let mut e = StreamEngine::new(24, config(24));
        let reader = e.reader();
        assert_eq!(reader.latest().review, 0, "epoch 0 published at startup");
        e.extend(ring(24)).unwrap();
        let epoch1 = e.review();
        assert_eq!(reader.latest().review, 1);
        e.extend(vec![te(0, 12, 1)]).unwrap();
        let epoch2 = e.review();
        assert_eq!(reader.latest().review, 2);
        // The old epoch a reader held is untouched by later publishes.
        assert_eq!(epoch1.review, 1);
        assert!(epoch1.result.pairs.is_empty());
        assert_eq!(epoch2.result.pairs[0].pair, (NodeId(0), NodeId(12)));
    }

    #[test]
    fn watches_fire_and_unwatch_silences_them() {
        let mut e = StreamEngine::new(24, config(24));
        e.extend(ring(24)).unwrap();
        e.review();
        let wp = e.watch_pair(NodeId(12), NodeId(0), 5); // reversed: normalized inside
        let wn = e.watch_node(NodeId(18), 1);
        let wt = e.watch_topk();
        e.extend(vec![te(0, 12, 1), te(6, 18, 1)]).unwrap();
        let epoch = e.review();
        let fired: Vec<WatchId> = epoch.events.iter().map(|ev| ev.watch()).collect();
        assert!(fired.contains(&wp), "pair watch fired: {:?}", epoch.events);
        assert!(fired.contains(&wn), "node watch fired");
        assert!(fired.contains(&wt), "top-k watch fired");
        for ev in &epoch.events {
            if ev.watch() == wt {
                assert!(matches!(ev, StreamEvent::EnteredTopK { .. }));
            }
        }
        assert_eq!(epoch.stats.subscriptions_fired, epoch.events.len() as u64);
        // Unwatch the pair; nothing from it on the next (empty) review,
        // and the top-k watch reports the pairs leaving the set.
        assert!(e.unwatch(wp));
        assert!(!e.unwatch(wp), "double unwatch reports unknown id");
        let epoch = e.review();
        assert!(epoch.events.iter().all(|ev| ev.watch() != wp));
        assert!(epoch
            .events
            .iter()
            .any(|ev| matches!(ev, StreamEvent::LeftTopK { .. })));
    }

    #[test]
    fn streaks_track_consecutive_reviews() {
        // The pair (0, 2) is re-reported whenever a review sees its delta;
        // build it by hand: path 0-1-2, then add shortcut in review 1 only.
        let mut e = StreamEngine::new(24, config(24));
        e.extend(ring(24)).unwrap();
        e.review();
        e.extend(vec![te(0, 12, 1)]).unwrap();
        e.review(); // (0,12) reported at review 2
        e.extend(vec![te(6, 18, 2)]).unwrap();
        e.review(); // (6,18) reported at review 3, (0,12) not
        let t = e.pair_history(NodeId(0), NodeId(12)).unwrap();
        assert_eq!(t.times_seen, 1);
        assert_eq!(t.last_seen_review, 2);
        assert_eq!(t.current_streak, 1);
        assert_eq!(t.longest_streak, 1);
        assert!(e.pair_history(NodeId(1), NodeId(3)).is_none());
    }

    #[test]
    fn from_snapshot_round_trips_the_graph() {
        let t = TemporalGraph::from_sequence(24, ring(24).iter().map(|e| (e.u, e.v)));
        let g = t.snapshot_at_fraction(1.0);
        let e = StreamEngine::from_snapshot(&g, config(24));
        assert_eq!(**e.current_graph(), g);
        assert_eq!(e.num_nodes(), 24);
    }

    #[test]
    #[should_panic(expected = "unweighted")]
    fn from_snapshot_rejects_weighted_graphs() {
        let mut b = cp_graph::GraphBuilder::new(2);
        b.add_weighted_edge(NodeId(0), NodeId(1), 3);
        StreamEngine::from_snapshot(&b.build(), config(2));
    }
}
