//! Subscriptions: standing queries evaluated at every review.
//!
//! A watch is registered once ([`crate::StreamEngine::watch_pair`] /
//! [`crate::StreamEngine::watch_node`] /
//! [`crate::StreamEngine::watch_topk`]) and fires [`StreamEvent`]s as part
//! of each published epoch. Evaluation is deterministic: watches fire in
//! registration order, and within a watch in the canonical pair order of
//! the review's result.

use cp_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Handle of a registered watch (unique per engine, never reused).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WatchId(pub u64);

/// What a watch looks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WatchKind {
    /// Fire when the reviewed result reports this pair with `Δ ≥ tau`.
    Pair { a: NodeId, b: NodeId, tau: u32 },
    /// Fire for every reported pair touching this node with `Δ ≥ tau`.
    Node { node: NodeId, tau: u32 },
    /// Fire when a pair enters or leaves the reported set between reviews.
    TopK,
}

/// A registered watch.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Watch {
    pub(crate) id: WatchId,
    pub(crate) kind: WatchKind,
}

/// One subscription firing, delivered inside the review's
/// [`crate::StreamSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamEvent {
    /// A watched pair converged by at least its threshold this review.
    PairConverged {
        /// The watch that fired.
        watch: WatchId,
        /// 1-based review index.
        review: u32,
        /// The normalized `(min, max)` pair.
        pair: (NodeId, NodeId),
        /// Its distance decrease this review.
        delta: u32,
    },
    /// A reported pair touching a watched node cleared the threshold.
    NodeConverged {
        /// The watch that fired.
        watch: WatchId,
        /// 1-based review index.
        review: u32,
        /// The normalized `(min, max)` pair (one endpoint is the watched
        /// node).
        pair: (NodeId, NodeId),
        /// Its distance decrease this review.
        delta: u32,
    },
    /// A pair is reported this review that was not reported in the
    /// previous one.
    EnteredTopK {
        /// The watch that fired.
        watch: WatchId,
        /// 1-based review index.
        review: u32,
        /// The normalized `(min, max)` pair.
        pair: (NodeId, NodeId),
        /// Its distance decrease this review.
        delta: u32,
    },
    /// A pair reported in the previous review is absent from this one.
    LeftTopK {
        /// The watch that fired.
        watch: WatchId,
        /// 1-based review index.
        review: u32,
        /// The normalized `(min, max)` pair.
        pair: (NodeId, NodeId),
    },
}

impl StreamEvent {
    /// The watch this event belongs to.
    pub fn watch(&self) -> WatchId {
        match *self {
            StreamEvent::PairConverged { watch, .. }
            | StreamEvent::NodeConverged { watch, .. }
            | StreamEvent::EnteredTopK { watch, .. }
            | StreamEvent::LeftTopK { watch, .. } => watch,
        }
    }

    /// The pair the event is about.
    pub fn pair(&self) -> (NodeId, NodeId) {
        match *self {
            StreamEvent::PairConverged { pair, .. }
            | StreamEvent::NodeConverged { pair, .. }
            | StreamEvent::EnteredTopK { pair, .. }
            | StreamEvent::LeftTopK { pair, .. } => pair,
        }
    }
}

/// Aggregate history of one pair across reviews, including its streak of
/// *consecutive* reviews reported (the "keeps converging" signal the
/// paper's motivation scenarios care about).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairTrack {
    /// Total distance decrease accumulated over all reviews where the
    /// pair was reported.
    pub total_delta: u32,
    /// In how many reviews the pair was reported.
    pub times_seen: u32,
    /// The review index (1-based) of the last report.
    pub last_seen_review: u32,
    /// Consecutive reviews reported, ending at `last_seen_review` (a gap
    /// resets the run; compare `last_seen_review` with the engine's
    /// current review count to tell whether the streak is still live).
    pub current_streak: u32,
    /// The longest consecutive run ever observed for this pair.
    pub longest_streak: u32,
}
