//! The read-only query index captured at epoch publish.
//!
//! A review's oracle dies with the review — it borrows the snapshot pair
//! and its row cache is consumed by the donor hand-off. But the rows it
//! paid for are exactly what budget-free point queries need: resident
//! distance rows answer `d(u, ·)` exactly, and a handful of fully-cached
//! candidate rows double as landmark rows whose triangle inequalities
//! bracket everything else. [`QueryIndex::capture`] copies that material
//! out of the oracle *before* it is dropped, and the engine publishes it
//! on the epoch ([`crate::StreamSnapshot::query`]) — so the query layer
//! (`cp-query`) serves entirely from published state, never touching a
//! ledger and never blocking a review.
//!
//! Truncation honesty: a bound-truncated `t2` row is captured *with its
//! flag*. Its finite entries are exact distances, but its
//! [`cp_graph::INF`] entries only mean "beyond the prune depth" — the
//! query layer must fall back to landmark bounds there, never report the
//! sentinel as "unreachable" (the same contract as the oracle's
//! `insert_truncated` resident rows, which all exact readers treat as
//! absent).

use cp_core::bounds::{resident_landmark_indexes, MAX_RESIDENT_LANDMARKS};
use cp_core::oracle::{Snapshot, SnapshotOracle};
use cp_graph::landmark_index::LandmarkIndex;
use cp_graph::NodeId;
use std::collections::HashMap;

/// One captured distance row: the distances and whether the producing
/// sweep was bound-truncated (see the module docs for what that means for
/// `INF` entries).
#[derive(Clone, Debug)]
pub struct QueryRow {
    dist: Vec<u32>,
    truncated: bool,
}

impl QueryRow {
    /// The raw distance entries (`INF` is ambiguous when
    /// [`Self::truncated`] — unreachable *or* beyond the prune depth).
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// Whether the row was bound-truncated.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The exact distance to `v`, if this row proves it: any entry of an
    /// untruncated row, or a *finite* entry of a truncated one. `None`
    /// when the entry is suppressed (truncated + `INF`) — the caller must
    /// fall back to bounds.
    pub fn exact(&self, v: NodeId) -> Option<u32> {
        let d = self.dist[v.index()];
        if self.truncated && d == cp_graph::INF {
            return None;
        }
        Some(d)
    }
}

/// Immutable per-epoch query material: resident rows of both review
/// snapshots (chained donor rows included — they are resident rows like
/// any other), at most [`MAX_RESIDENT_LANDMARKS`] landmark row pairs, and
/// the review's initial Δ floor (the truncation contract's threshold).
#[derive(Clone, Debug, Default)]
pub struct QueryIndex {
    num_nodes: usize,
    rows1: HashMap<u32, QueryRow>,
    rows2: HashMap<u32, QueryRow>,
    landmarks: Option<(LandmarkIndex, LandmarkIndex)>,
    floor: u32,
}

impl QueryIndex {
    /// An index with no rows and no landmarks (the pre-first-review
    /// epoch): every non-trivial query falls through to `Unknown`.
    pub fn empty(num_nodes: usize) -> Self {
        QueryIndex {
            num_nodes,
            ..QueryIndex::default()
        }
    }

    /// Captures the oracle's resident rows (truncation flags preserved)
    /// and landmark indexes. Read-only and free: nothing is computed or
    /// charged — the capture happens after the pipeline ran, inside the
    /// review, so published epochs carry it from birth.
    ///
    /// `floor` is the review's initial Δ floor
    /// ([`cp_core::exact::TopKSpec::initial_floor`]): every entry a
    /// truncated row suppressed provably scans below it, which is what
    /// lets per-seed top-k answers over truncated rows certify their own
    /// completeness.
    pub fn capture(oracle: &SnapshotOracle<'_>, floor: u32) -> Self {
        let to_map = |rows: Vec<(u32, Vec<u32>, bool)>| {
            rows.into_iter()
                .map(|(u, dist, truncated)| (u, QueryRow { dist, truncated }))
                .collect()
        };
        QueryIndex {
            num_nodes: oracle.num_nodes(),
            rows1: to_map(oracle.export_rows_with_flags(Snapshot::First)),
            rows2: to_map(oracle.export_rows_with_flags(Snapshot::Second)),
            landmarks: resident_landmark_indexes(oracle, MAX_RESIDENT_LANDMARKS),
            floor,
        }
    }

    /// Size of the node universe the rows were computed over.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The captured row of `u` in the chosen review snapshot
    /// ([`Snapshot::Second`] is the published epoch's graph).
    pub fn row(&self, which: Snapshot, u: NodeId) -> Option<&QueryRow> {
        match which {
            Snapshot::First => self.rows1.get(&u.0),
            Snapshot::Second => self.rows2.get(&u.0),
        }
    }

    /// The landmark indexes (first snapshot, second snapshot), when the
    /// review left any fully-cached exact row pair behind.
    pub fn landmarks(&self) -> Option<(&LandmarkIndex, &LandmarkIndex)> {
        self.landmarks.as_ref().map(|(a, b)| (a, b))
    }

    /// The review's initial Δ floor (0 for [`Self::empty`]).
    pub fn floor(&self) -> u32 {
        self.floor
    }

    /// `(t1 rows, t2 rows)` captured.
    pub fn resident_rows(&self) -> (usize, usize) {
        (self.rows1.len(), self.rows2.len())
    }

    /// Captured rows carrying the truncation flag, both snapshots.
    pub fn truncated_rows(&self) -> usize {
        self.rows1.values().filter(|r| r.truncated).count()
            + self.rows2.values().filter(|r| r.truncated).count()
    }

    /// Whether the index holds nothing useful (no rows, no landmarks).
    pub fn is_empty(&self) -> bool {
        self.rows1.is_empty() && self.rows2.is_empty() && self.landmarks.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_graph::builder::graph_from_edges;
    use cp_graph::INF;

    #[test]
    fn empty_index_answers_nothing() {
        let idx = QueryIndex::empty(7);
        assert_eq!(idx.num_nodes(), 7);
        assert!(idx.is_empty());
        assert_eq!(idx.floor(), 0);
        assert!(idx.row(Snapshot::Second, NodeId(3)).is_none());
        assert!(idx.landmarks().is_none());
        assert_eq!(idx.resident_rows(), (0, 0));
        assert_eq!(idx.truncated_rows(), 0);
    }

    #[test]
    fn capture_copies_paid_rows_and_landmarks() {
        let base: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        let g1 = graph_from_edges(10, &base);
        let mut all = base;
        all.push((0, 9));
        let g2 = graph_from_edges(10, &all);
        let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 8);
        oracle.rows(NodeId(0)).unwrap();
        oracle.rows(NodeId(5)).unwrap();
        let idx = QueryIndex::capture(&oracle, 1);
        assert_eq!(idx.resident_rows(), (2, 2));
        assert!(!idx.is_empty());
        let row = idx.row(Snapshot::Second, NodeId(0)).expect("resident");
        assert!(!row.truncated());
        assert_eq!(row.exact(NodeId(9)), Some(1), "the chord distance");
        let (_, i2) = idx.landmarks().expect("two exact row pairs resident");
        assert_eq!(i2.landmarks(), &[NodeId(0), NodeId(5)]);
    }

    #[test]
    fn truncated_entries_read_as_unknown() {
        let row = QueryRow {
            dist: vec![0, 1, INF],
            truncated: true,
        };
        assert_eq!(row.exact(NodeId(1)), Some(1), "finite entries stay exact");
        assert_eq!(row.exact(NodeId(2)), None, "suppressed entry is unknown");
        let exact = QueryRow {
            dist: vec![0, 1, INF],
            truncated: false,
        };
        assert_eq!(
            exact.exact(NodeId(2)),
            Some(INF),
            "untruncated INF is a real disconnection"
        );
    }
}
