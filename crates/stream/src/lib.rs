//! Streaming convergence engine: the paper's batch pipeline turned into a
//! long-running service.
//!
//! The paper's own motivation (§1) is *continuous* evolution — analysts
//! reviewing a growing network periodically, each review under a per-step
//! SSSP budget — while the batch crates operate on one `(G_t1, G_t2)` pair
//! at a time. [`StreamEngine`] closes that gap:
//!
//! * **Ingest** — timestamped edge events ([`cp_graph::TimedEdge`] is the
//!   wire format) fold into an incremental CSR assembler
//!   ([`cp_graph::GraphAccumulator`]); nothing is rebuilt per review.
//!   Events that violate the insert-only containment model — timestamps
//!   behind the watermark, duplicate edges — are rejected with a typed
//!   [`StreamError`], never a panic or a silently wrong snapshot.
//! * **Review** — on a configurable [`ReviewPolicy`] (every N events,
//!   every Δt of stream time, or explicit [`StreamEngine::review`]) the
//!   engine cuts the next snapshot and runs the budgeted pipeline against
//!   the previous one, charging each review its own honest `2m` ledger.
//! * **Chained repair** — step *t*'s resident `t2` rows are exported and
//!   imported into step *t+1*'s oracle as `t1` donors
//!   ([`cp_core::oracle::RowHandoff`]): the same graph object is on both
//!   sides of the hand-off, so rows carry over exactly, first uses are
//!   still charged, and the per-review results stay bit-identical to a
//!   from-scratch [`cp_core::topk::budgeted_top_k`] run.
//! * **Publish** — each review becomes an immutable epoch
//!   ([`StreamSnapshot`]) swapped behind an `Arc`; [`StreamReader`]
//!   handles never observe a half-advanced step.
//! * **Serve** — each epoch carries a read-only [`QueryIndex`] (resident
//!   rows with their truncation flags, landmark row indexes, the review's
//!   Δ floor) captured from the review's oracle at publish. The
//!   `cp-query` crate answers budget-free point queries entirely from
//!   this published material.
//! * **Subscribe** — [`StreamEngine::watch_pair`] /
//!   [`StreamEngine::watch_node`] / [`StreamEngine::watch_topk`] deliver
//!   [`StreamEvent`]s per review ("Δ(u,v) ≥ τ", "pair entered/left the
//!   top-k"), with per-pair streak history ([`PairTrack`]).
//!
//! [`ConvergenceMonitor`] (previously in `cp-core`) survives as a thin
//! wrapper that feeds whole snapshots to the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod index;
pub mod monitor;
pub mod subs;

pub use engine::{
    ReviewPolicy, StreamConfig, StreamEngine, StreamError, StreamReader, StreamSnapshot,
    StreamStats,
};
pub use index::{QueryIndex, QueryRow};
pub use monitor::{ConvergenceMonitor, MonitorConfig, MonitorStep, PairHistory};
pub use subs::{PairTrack, StreamEvent, WatchId};
