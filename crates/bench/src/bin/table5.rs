//! Table 5 — coverage (% of the true top-k converging pairs found) of
//! every single-feature selector at budget m = 100, for each dataset and
//! δ ∈ {Δmax, Δmax−1, Δmax−2}.
//!
//! Shape expectations from the paper: Degree ~0 everywhere; DegDiff weak;
//! DegRel strong only on the dense Actors-like graph; SumDiff > MaxDiff;
//! MaxAvg >= MaxMin as selectors; MMSD the best hybrid overall; IncDeg /
//! IncBet below the landmark methods.

use cp_bench::{pct, print_table, scaled_budget, Options};
use cp_core::experiment::run_kind;
use cp_core::selectors::SelectorKind;

fn main() {
    let opts = Options::from_env();
    let m = scaled_budget(100, opts.scale);
    let slacks = [0u32, 1, 2];
    let suite = SelectorKind::table5_suite();

    let mut header: Vec<String> = vec!["selector".to_string()];
    let mut columns: Vec<Vec<String>> = vec![suite.iter().map(|k| k.name().to_string()).collect()];

    for mut snaps in opts.all_snapshots() {
        for slack in slacks {
            let k = snaps.truth(slack).k();
            header.push(format!("{}\nd=max-{} (k={})", snaps.name, slack, k));
            let mut col = Vec::with_capacity(suite.len());
            for &kind in &suite {
                let row = run_kind(&mut snaps, kind, m, slack, opts.seed);
                if opts.json {
                    println!("{}", serde_json::to_string(&row).unwrap());
                }
                col.push(pct(row.coverage));
            }
            columns.push(col);
        }
    }

    // Transpose columns into rows; bold (uppercase-marked) best per column
    // is left to the reader — plain numbers keep the output parseable.
    let rows: Vec<Vec<String>> = (0..suite.len())
        .map(|i| columns.iter().map(|c| c[i].clone()).collect())
        .collect();
    let header_flat: Vec<String> = header.iter().map(|h| h.replace('\n', " ")).collect();
    let header_refs: Vec<&str> = header_flat.iter().map(|s| s.as_str()).collect();
    print_table(
        &format!(
            "Table 5: coverage % at m = {m} (scale {}, seed {})",
            opts.scale, opts.seed
        ),
        &header_refs,
        &rows,
    );
}
