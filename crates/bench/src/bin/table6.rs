//! Table 6 — the original (unbudgeted) Incidence algorithm: coverage and
//! the size of its active set `A`, compared against our fixed budget.
//!
//! Paper shape: Incidence reaches near-complete coverage, but `A` ranges
//! from ~12 % (DBLP) to ~66 % (Facebook) of the graph — an order of
//! magnitude more SSSP sources than the m = 100 budget (0.5–2.3 % of the
//! nodes) that the landmark/hybrid selectors need for 80–90 % coverage.

use cp_bench::{pct, print_table, scaled_budget, Options};
use cp_core::coverage::coverage;
use cp_core::selectors::incidence_full;

fn main() {
    let opts = Options::from_env();
    let m = scaled_budget(100, opts.scale);
    let slack = 1u32;
    let mut rows = Vec::new();
    for mut snaps in opts.all_snapshots() {
        let spec = snaps.truth(slack).spec();
        let truth_k = snaps.truth(slack).k();
        let full = incidence_full(&snaps.g1, &snaps.g2, &spec);
        let cov = coverage(&full.result.pairs, snaps.truth(slack));
        let n1 = snaps.g1.num_active_nodes().max(1);
        rows.push(vec![
            snaps.name.clone(),
            truth_k.to_string(),
            pct(cov),
            full.active_count.to_string(),
            format!("{:.2}", 100.0 * full.active_count as f64 / n1 as f64),
            m.to_string(),
            format!("{:.2}", 100.0 * m as f64 / n1 as f64),
        ]);
        if opts.json {
            println!(
                "{}",
                serde_json::json!({
                    "dataset": snaps.name,
                    "k": truth_k,
                    "coverage": cov,
                    "active": full.active_count,
                    "budget_m": m,
                })
            );
        }
    }
    print_table(
        &format!(
            "Table 6: unbudgeted Incidence vs budget m = {m} (delta = max-1, scale {})",
            opts.scale
        ),
        &[
            "dataset",
            "k",
            "coverage %",
            "|A|",
            "|A| % of G_t1",
            "m",
            "m % of G_t1",
        ],
        &rows,
    );
}
