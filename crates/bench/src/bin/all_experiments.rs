//! Runs the entire experiment suite (Tables 1–3, 5, 6 and Figures 1–3) in
//! one process, sharing the generated datasets and cached exact answers,
//! and prints everything the individual binaries would.
//!
//! This is what EXPERIMENTS.md is produced from:
//!
//! ```text
//! cargo run --release -p cp-bench --bin all_experiments -- --scale=1.0 \
//!     | tee experiments_raw.txt
//! ```

use cp_bench::{pct, print_table, scaled_budget, Options};
use cp_core::experiment::{
    candidate_quality, dataset_stats, gpk_stats, run_kind, run_selector, Snapshots,
};
use cp_core::selectors::{ClassifierConfig, ClassifierSelector, SelectorKind};
use std::time::Instant;

fn main() {
    let opts = Options::from_env();
    let started = Instant::now();
    eprintln!(
        "all_experiments: scale {}, seed {}, {} threads",
        opts.scale, opts.seed, opts.threads
    );

    let mut all: Vec<Snapshots> = opts.all_snapshots();
    let m100 = scaled_budget(100, opts.scale);
    let slack_levels = [0u32, 1, 2];

    // ---- Table 2 ----
    let mut rows = Vec::new();
    for snaps in all.iter_mut() {
        let s = dataset_stats(snaps);
        rows.push(vec![
            s.dataset,
            format!("{}/{}", s.nodes.0, s.nodes.1),
            format!("{}/{}", s.edges.0, s.edges.1),
            format!("{}/{}", s.diameter.0, s.diameter.1),
            s.delta_max.to_string(),
            s.not_connected.to_string(),
        ]);
    }
    print_table(
        "Table 2: dataset characteristics",
        &[
            "dataset",
            "nodes t1/t2",
            "edges t1/t2",
            "diam t1/t2",
            "max delta",
            "not-conn",
        ],
        &rows,
    );
    eprintln!("table 2 done at {:?}", started.elapsed());

    // ---- Table 3 ----
    let mut rows = Vec::new();
    for snaps in all.iter_mut() {
        for slack in slack_levels {
            let s = gpk_stats(snaps, slack);
            rows.push(vec![
                s.dataset,
                format!("max-{}", s.slack),
                s.delta.to_string(),
                s.endpoints.to_string(),
                s.pairs.to_string(),
                s.maxcover.to_string(),
            ]);
        }
    }
    print_table(
        "Table 3: G^p_k characteristics",
        &[
            "dataset",
            "delta",
            "value",
            "endpoints",
            "pairs",
            "maxcover",
        ],
        &rows,
    );
    eprintln!("table 3 done at {:?}", started.elapsed());

    // ---- Table 5 ----
    // The slack = 1 column doubles as the "best single-feature selector"
    // scan that Figure 3 needs, so it is recorded here instead of being
    // recomputed (IncBet's betweenness pass is the expensive part).
    let suite = SelectorKind::table5_suite();
    let mut best_per_dataset: Vec<(SelectorKind, f64)> = vec![(suite[0], -1.0); all.len()];
    let mut stats_rows: Vec<Vec<String>> = Vec::new();
    for (di, snaps) in all.iter_mut().enumerate() {
        let mut rows = Vec::new();
        let mut agg = cp_core::topk::PipelineStats::default();
        for &kind in &suite {
            let mut cells = vec![kind.name().to_string()];
            for slack in slack_levels {
                let row = run_kind(snaps, kind, m100, slack, opts.seed);
                if slack == 1 && row.coverage > best_per_dataset[di].1 {
                    best_per_dataset[di] = (kind, row.coverage);
                }
                agg.selector_secs += row.stats.selector_secs;
                agg.prefetch_secs += row.stats.prefetch_secs;
                agg.scan_secs += row.stats.scan_secs;
                agg.sssp_secs += row.stats.sssp_secs;
                agg.sssp_t2_secs += row.stats.sssp_t2_secs;
                agg.sssp_computed += row.stats.sssp_computed;
                agg.cache_hits += row.stats.cache_hits;
                agg.cache_misses += row.stats.cache_misses;
                agg.repaired_rows += row.stats.repaired_rows;
                agg.repair_frontier_nodes += row.stats.repair_frontier_nodes;
                agg.recomputed_rows += row.stats.recomputed_rows;
                agg.cache_bytes = agg.cache_bytes.max(row.stats.cache_bytes);
                agg.threads = row.stats.threads;
                agg.kernel = row.stats.kernel;
                agg.kernel_stats.msbfs_waves += row.stats.kernel_stats.msbfs_waves;
                agg.kernel_stats.msbfs_rows += row.stats.kernel_stats.msbfs_rows;
                agg.kernel_stats.bfs_rows += row.stats.kernel_stats.bfs_rows;
                agg.kernel_stats.dijkstra_rows += row.stats.kernel_stats.dijkstra_rows;
                agg.kernel_stats.repair_rows += row.stats.kernel_stats.repair_rows;
                agg.scan_kernel = row.stats.scan_kernel;
                agg.scan_chunks_scanned += row.stats.scan_chunks_scanned;
                agg.scan_chunks_skipped += row.stats.scan_chunks_skipped;
                agg.scan_pairs_pruned += row.stats.scan_pairs_pruned;
                agg.arena.u16_rows = agg.arena.u16_rows.max(row.stats.arena.u16_rows);
                agg.arena.u32_rows = agg.arena.u32_rows.max(row.stats.arena.u32_rows);
                agg.arena.reused_rows += row.stats.arena.reused_rows;
                agg.arena.slab_bytes = agg.arena.slab_bytes.max(row.stats.arena.slab_bytes);
                agg.graph_store = row.stats.graph_store;
                let gm = &row.stats.graph_mem;
                agg.graph_mem.base_bytes = agg.graph_mem.base_bytes.max(gm.base_bytes);
                agg.graph_mem.overlay_bytes = agg.graph_mem.overlay_bytes.max(gm.overlay_bytes);
                agg.graph_mem.overlay_shared_arcs = agg
                    .graph_mem
                    .overlay_shared_arcs
                    .max(gm.overlay_shared_arcs);
                agg.graph_mem.compressed_bytes =
                    agg.graph_mem.compressed_bytes.max(gm.compressed_bytes);
                agg.graph_mem.compressed_bytes_per_arc = agg
                    .graph_mem
                    .compressed_bytes_per_arc
                    .max(gm.compressed_bytes_per_arc);
                cells.push(pct(row.coverage));
            }
            rows.push(cells);
        }
        stats_rows.push(vec![
            snaps.name.clone(),
            agg.threads.to_string(),
            agg.kernel.name().to_string(),
            agg.sssp_computed.to_string(),
            agg.kernel_stats.msbfs_waves.to_string(),
            format!(
                "{}/{}/{}/{}",
                agg.kernel_stats.msbfs_rows,
                agg.kernel_stats.bfs_rows,
                agg.kernel_stats.dijkstra_rows,
                agg.kernel_stats.repair_rows
            ),
            agg.cache_hits.to_string(),
            agg.cache_misses.to_string(),
            format!(
                "{}/{:.0}",
                agg.repaired_rows,
                agg.repair_frontier_nodes as f64 / agg.repaired_rows.max(1) as f64
            ),
            format!("{}", agg.cache_bytes / 1024),
            agg.scan_kernel.name().to_string(),
            format!(
                "{}/{}/{}",
                agg.scan_chunks_scanned, agg.scan_chunks_skipped, agg.scan_pairs_pruned
            ),
            format!(
                "{}/{}/{}/{}",
                agg.arena.u16_rows,
                agg.arena.u32_rows,
                agg.arena.reused_rows,
                agg.arena.slab_bytes / 1024
            ),
            agg.graph_store.name().to_string(),
            format!(
                "{}/{}/{}",
                agg.graph_mem.base_bytes / 1024,
                agg.graph_mem.overlay_bytes / 1024,
                agg.graph_mem.compressed_bytes / 1024
            ),
            format!(
                "{}/{:.2}",
                agg.graph_mem.overlay_shared_arcs, agg.graph_mem.compressed_bytes_per_arc
            ),
            format!("{:.3}", agg.selector_secs),
            format!("{:.3}", agg.prefetch_secs),
            format!("{:.3}", agg.scan_secs),
            format!("{:.3}/{:.3}", agg.sssp_secs, agg.sssp_t2_secs),
        ]);
        let header: Vec<String> = std::iter::once("selector".to_string())
            .chain(slack_levels.iter().map(|s| {
                format!("d=max-{s} (k={})", {
                    let k = snaps.truth(*s).k();
                    k
                })
            }))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!("Table 5 [{}]: coverage % at m = {m100}", snaps.name),
            &header_refs,
            &rows,
        );
        eprintln!("table 5 [{}] done at {:?}", snaps.name, started.elapsed());
    }
    print_table(
        "Pipeline instrumentation: Table 5 suite totals per dataset",
        &[
            "dataset",
            "threads",
            "kernel",
            "sssp",
            "waves",
            "ms/bfs/dij/rep rows",
            "cache hit",
            "cache miss",
            "repaired/region",
            "cache KiB",
            "scan kern",
            "chunks scan/skip/pruned",
            "arena u16/u32/reuse/KiB",
            "store",
            "graph KiB full/ovl/comp",
            "shared arcs/B per arc",
            "select s",
            "prefetch s",
            "scan s",
            "sssp/t2 s",
        ],
        &stats_rows,
    );

    // ---- Table 1 (budget split, measured) ----
    {
        let snaps = &mut all[2]; // Facebook panel, as in table1.rs
        let l = cp_core::selectors::DEFAULT_LANDMARKS;
        let mut rows = Vec::new();
        let plan: &[(&str, SelectorKind)] = &[
            ("Degree-based", SelectorKind::Degree),
            ("Dispersion-based", SelectorKind::MaxAvg),
            ("Landmark-based", SelectorKind::SumDiff { landmarks: l }),
            ("Hybrid", SelectorKind::Mmsd { landmarks: l }),
        ];
        for &(name, kind) in plan {
            let row = run_kind(snaps, kind, m100, 1, opts.seed);
            rows.push(vec![
                name.to_string(),
                row.budget.generation.to_string(),
                row.budget.topk.to_string(),
                row.budget.total().to_string(),
            ]);
        }
        let config = ClassifierConfig {
            threads: opts.threads,
            ..ClassifierConfig::default()
        };
        let mut classifier = snaps.local_classifier(config, opts.seed);
        let row = run_selector(snaps, &mut classifier, m100, 1);
        rows.push(vec![
            "Classification-based".to_string(),
            row.budget.generation.to_string(),
            row.budget.topk.to_string(),
            row.budget.total().to_string(),
        ]);
        print_table(
            &format!(
                "Table 1 [{}]: measured SSSP split, cap 2m = {}",
                snaps.name,
                2 * m100
            ),
            &["approach", "generation", "topk", "total"],
            &rows,
        );
    }
    eprintln!("table 1 done at {:?}", started.elapsed());

    // ---- Table 6 ----
    let mut rows = Vec::new();
    for snaps in all.iter_mut() {
        let spec = snaps.truth(1).spec();
        let full = cp_core::selectors::incidence_full(&snaps.g1, &snaps.g2, &spec);
        let truth = snaps.truth(1);
        let cov = cp_core::coverage::coverage(&full.result.pairs, truth);
        let n1 = snaps.g1.num_active_nodes().max(1);
        rows.push(vec![
            snaps.name.clone(),
            pct(cov),
            full.active_count.to_string(),
            format!("{:.2}", 100.0 * full.active_count as f64 / n1 as f64),
            format!("{:.2}", 100.0 * m100 as f64 / n1 as f64),
        ]);
        eprintln!("table 6 [{}] done at {:?}", snaps.name, started.elapsed());
    }
    print_table(
        "Table 6: unbudgeted Incidence (delta = max-1)",
        &[
            "dataset",
            "coverage %",
            "|A|",
            "|A| % of G_t1",
            "m % of G_t1",
        ],
        &rows,
    );

    // ---- Figure 1 ----
    let budgets: Vec<u64> = dedup_budgets(&[10, 20, 50, 100, 200, 300, 500], opts.scale);
    for snaps in all.iter_mut() {
        let mut rows = Vec::new();
        for kind in SelectorKind::fig1_suite() {
            let mut cells = vec![kind.name().to_string()];
            for &m in &budgets {
                cells.push(pct(run_kind(snaps, kind, m, 1, opts.seed).coverage));
            }
            rows.push(cells);
        }
        let header: Vec<String> = std::iter::once("selector".to_string())
            .chain(budgets.iter().map(|m| format!("m={m}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Figure 1 [{}]: coverage % vs budget (delta = max-1)",
                snaps.name
            ),
            &header_refs,
            &rows,
        );
        eprintln!("figure 1 [{}] done at {:?}", snaps.name, started.elapsed());
    }

    // ---- Figure 2 (Facebook panel) ----
    {
        let snaps = &mut all[2];
        let budgets = dedup_budgets(&[20, 50, 100, 200, 300], opts.scale);
        for (title, in_cover) in [
            ("Figure 2(a): % of candidates in G^p_k", false),
            ("Figure 2(b): % of candidates in greedy cover", true),
        ] {
            let mut rows = Vec::new();
            for kind in SelectorKind::fig1_suite() {
                let mut cells = vec![kind.name().to_string()];
                for &m in &budgets {
                    let q = candidate_quality(snaps, kind, m, 1, opts.seed);
                    cells.push(pct(if in_cover {
                        q.in_greedy_cover
                    } else {
                        q.in_gpk
                    }));
                }
                rows.push(cells);
            }
            let header: Vec<String> = std::iter::once("selector".to_string())
                .chain(budgets.iter().map(|m| format!("m={m}")))
                .collect();
            let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
            print_table(&format!("{title} [{}]", snaps.name), &header_refs, &rows);
        }
    }
    eprintln!("figure 2 done at {:?}", started.elapsed());

    // ---- Figure 3 ----
    let config = ClassifierConfig {
        slack: 1,
        threads: opts.threads,
        ..ClassifierConfig::default()
    };
    let training: Vec<(cp_graph::Graph, cp_graph::Graph)> = all
        .iter()
        .map(|s| (s.train_g1.clone(), s.train_g2.clone()))
        .collect();
    let training_pairs: Vec<(&cp_graph::Graph, &cp_graph::Graph)> =
        training.iter().map(|(a, b)| (a, b)).collect();
    eprintln!("training G-Classifier on all training pairs...");
    let mut global = ClassifierSelector::train_global(&training_pairs, config, opts.seed);
    eprintln!("G-Classifier trained at {:?}", started.elapsed());
    let budgets = dedup_budgets(&[20, 50, 100, 200, 300], opts.scale);
    for (di, snaps) in all.iter_mut().enumerate() {
        // Best single-feature selector, recorded during the Table 5 scan.
        let (best_kind, _) = best_per_dataset[di];
        let mut rows = Vec::new();
        let mut cells = vec![format!("best ({})", best_kind.name())];
        for &m in &budgets {
            cells.push(pct(run_kind(snaps, best_kind, m, 1, opts.seed).coverage));
        }
        rows.push(cells);

        let mut local = snaps.local_classifier(config, opts.seed);
        let mut cells = vec!["L-Classifier".to_string()];
        for &m in &budgets {
            cells.push(pct(run_selector(snaps, &mut local, m, 1).coverage));
        }
        rows.push(cells);

        let mut cells = vec!["G-Classifier".to_string()];
        for &m in &budgets {
            cells.push(pct(run_selector(snaps, &mut global, m, 1).coverage));
        }
        rows.push(cells);

        let header: Vec<String> = std::iter::once("series".to_string())
            .chain(budgets.iter().map(|m| format!("m={m}")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Figure 3 [{}]: classifiers vs best (delta = max-1)",
                snaps.name
            ),
            &header_refs,
            &rows,
        );
        eprintln!("figure 3 [{}] done at {:?}", snaps.name, started.elapsed());
    }

    eprintln!("all experiments finished in {:?}", started.elapsed());
}

fn dedup_budgets(full: &[u64], scale: f64) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    for &m in full {
        let s = scaled_budget(m, scale);
        if out.last() != Some(&s) {
            out.push(s);
        }
    }
    out
}
