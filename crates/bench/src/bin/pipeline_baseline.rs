//! Machine-readable perf baseline for the parallel pipeline and its BFS
//! kernels.
//!
//! Runs the Table 5 pipeline (every selector of the suite on every
//! dataset at the paper's budget) three times per dataset —
//!
//! 1. `scalar` kernel, one worker thread (the pre-optimization baseline),
//! 2. `auto` kernel (direction-optimizing BFS + multi-source waves), one
//!    worker thread — isolates the pure kernel speedup,
//! 3. `auto` kernel at the configured thread count — kernel and thread
//!    parallelism composed,
//!
//! and writes the wall-clock comparison to `BENCH_pipeline.json` in the
//! current directory (`--out=PATH` overrides). All runs produce
//! bit-identical pairs and ledgers (see
//! `crates/core/tests/parallel_equivalence.rs`); only the timing differs,
//! which is what this baseline records.
//!
//! Two timings are recorded per sweep: `secs` (whole suite, end to end)
//! and `sssp_secs` (the oracle's distance-row computation only, the path
//! the kernels own). The per-dataset `kernel_speedup` compares the latter
//! — the suite total includes IncBet's exact-betweenness grant, which the
//! paper gives that baseline for free, runs outside the budget oracle,
//! and is identical under every kernel.
//!
//! ```text
//! cargo run --release -p cp-bench --bin pipeline_baseline -- --scale=0.25
//! ```

use cp_bench::{scaled_budget, Options};
use cp_core::exact::TopKSpec;
use cp_core::oracle::{BfsKernel, SnapshotOracle};
use cp_core::selectors::SelectorKind;
use cp_core::topk::run_pipeline;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Timing of one (dataset, kernel, thread-count) pipeline sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct SweepTiming {
    dataset: String,
    kernel: String,
    threads: usize,
    /// Best-of-repeats wall clock of the whole selector suite, seconds.
    secs: f64,
    /// Oracle distance-row computation seconds within the best repeat.
    sssp_secs: f64,
    /// SSSPs charged across the suite (identical for every configuration).
    sssp_computed: u64,
    /// Multi-source waves run (0 under the scalar kernel).
    msbfs_waves: u64,
    /// Rows produced by multi-source waves.
    msbfs_rows: u64,
}

/// Per-dataset kernel comparison at one worker thread.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct DatasetSummary {
    dataset: String,
    /// Whole suite, scalar kernel, one thread.
    scalar_single_secs: f64,
    /// Whole suite, optimized kernel, one thread.
    optimized_single_secs: f64,
    /// Oracle SSSP time within the scalar single-thread run.
    scalar_sssp_secs: f64,
    /// Oracle SSSP time within the optimized single-thread run.
    optimized_sssp_secs: f64,
    /// `scalar_sssp_secs / optimized_sssp_secs`: the single-thread
    /// speedup of the distance-row path the kernels own.
    kernel_speedup: f64,
    /// `scalar_single_secs / optimized_single_secs`: whole suite,
    /// including work no kernel touches.
    suite_speedup: f64,
}

/// The written baseline document.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Baseline {
    benchmark: String,
    scale: f64,
    seed: u64,
    m: u64,
    repeats: u32,
    threads_multi: usize,
    sweeps: Vec<SweepTiming>,
    datasets: Vec<DatasetSummary>,
    /// Suite totals: scalar kernel, one thread.
    scalar_single_secs: f64,
    /// Suite totals: optimized kernel, one thread.
    optimized_single_secs: f64,
    /// Suite totals: optimized kernel, `threads_multi` threads.
    multi_thread_secs: f64,
    /// Single-thread kernel speedup on the oracle SSSP path, scalar vs
    /// optimized, summed over datasets.
    kernel_speedup: f64,
    /// End-to-end speedup of the optimized parallel configuration over
    /// the scalar single-thread baseline.
    total_speedup: f64,
}

const REPEATS: u32 = 3;

fn main() {
    let opts = Options::from_env();
    let threads_multi = opts.threads.max(2);
    let m = scaled_budget(100, opts.scale);
    let spec = TopKSpec::ThresholdFromMax { slack: 1 };
    let suite = SelectorKind::table5_suite();
    let out = opts.out.as_deref().unwrap_or("BENCH_pipeline.json");

    eprintln!(
        "pipeline_baseline: scale {}, seed {}, m {m}, scalar@1 vs auto@1 vs auto@{threads_multi}",
        opts.scale, opts.seed
    );

    let configs = [
        (BfsKernel::Scalar, 1usize),
        (BfsKernel::Auto, 1),
        (BfsKernel::Auto, threads_multi),
    ];
    let all = opts.all_snapshots();
    let mut sweeps: Vec<SweepTiming> = Vec::new();
    let mut datasets: Vec<DatasetSummary> = Vec::new();
    let mut totals = [0.0f64; 3]; // [scalar@1, auto@1, auto@multi]
    let mut sssp_totals = [0.0f64; 2]; // [scalar@1, auto@1]

    for snaps in &all {
        let mut per_config = [0.0f64; 3];
        let mut per_config_sssp = [0.0f64; 3];
        for (slot, &(kernel, threads)) in configs.iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_sssp = 0.0f64;
            let mut sssp = 0u64;
            let mut waves = 0u64;
            let mut wave_rows = 0u64;
            for _ in 0..REPEATS {
                let started = Instant::now();
                let mut spent = 0u64;
                let mut w = 0u64;
                let mut wr = 0u64;
                let mut sssp_s = 0.0f64;
                for &kind in &suite {
                    let mut oracle = SnapshotOracle::with_budget(&snaps.g1, &snaps.g2, 2 * m)
                        .with_threads(threads)
                        .with_kernel(kernel);
                    let mut sel = kind.build(opts.seed);
                    let res = run_pipeline(&mut oracle, sel.as_mut(), &spec);
                    spent += res.stats.sssp_computed;
                    w += res.stats.kernel_stats.msbfs_waves;
                    wr += res.stats.kernel_stats.msbfs_rows;
                    sssp_s += res.stats.sssp_secs;
                }
                let elapsed = started.elapsed().as_secs_f64();
                if elapsed < best {
                    best = elapsed;
                    best_sssp = sssp_s;
                }
                sssp = spent;
                waves = w;
                wave_rows = wr;
            }
            eprintln!(
                "  {} [{}] @ {threads} thread(s): {best:.3}s suite, {best_sssp:.3}s sssp \
                 ({sssp} SSSPs, {waves} waves)",
                snaps.name,
                kernel.name()
            );
            totals[slot] += best;
            per_config[slot] = best;
            per_config_sssp[slot] = best_sssp;
            sweeps.push(SweepTiming {
                dataset: snaps.name.clone(),
                kernel: kernel.name().to_string(),
                threads,
                secs: best,
                sssp_secs: best_sssp,
                sssp_computed: sssp,
                msbfs_waves: waves,
                msbfs_rows: wave_rows,
            });
        }
        sssp_totals[0] += per_config_sssp[0];
        sssp_totals[1] += per_config_sssp[1];
        datasets.push(DatasetSummary {
            dataset: snaps.name.clone(),
            scalar_single_secs: per_config[0],
            optimized_single_secs: per_config[1],
            scalar_sssp_secs: per_config_sssp[0],
            optimized_sssp_secs: per_config_sssp[1],
            kernel_speedup: per_config_sssp[0] / per_config_sssp[1].max(f64::MIN_POSITIVE),
            suite_speedup: per_config[0] / per_config[1].max(f64::MIN_POSITIVE),
        });
    }

    let baseline = Baseline {
        benchmark: "table5_pipeline".to_string(),
        scale: opts.scale,
        seed: opts.seed,
        m,
        repeats: REPEATS,
        threads_multi,
        sweeps,
        datasets,
        scalar_single_secs: totals[0],
        optimized_single_secs: totals[1],
        multi_thread_secs: totals[2],
        kernel_speedup: sssp_totals[0] / sssp_totals[1].max(f64::MIN_POSITIVE),
        total_speedup: totals[0] / totals[2].max(f64::MIN_POSITIVE),
    };
    let rendered = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(out, &rendered).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("{rendered}");
    eprintln!(
        "wrote {out}: sssp path {:.3}s scalar vs {:.3}s optimized single-thread ({:.2}x kernel); \
         suite {:.3}s vs {:.3}s single-thread, {:.3}s at {} threads ({:.2}x total)",
        sssp_totals[0],
        sssp_totals[1],
        baseline.kernel_speedup,
        baseline.scalar_single_secs,
        baseline.optimized_single_secs,
        baseline.multi_thread_secs,
        baseline.threads_multi,
        baseline.total_speedup
    );
}
