//! Machine-readable perf baseline for the parallel pipeline, its BFS
//! kernels, and the snapshot-delta row cache.
//!
//! Two measurement phases, written together to `BENCH_pipeline.json` in
//! the current directory (`--out=PATH` overrides):
//!
//! **Phase 1 — kernel ladder** on the paper's evaluation snapshots
//! (80 % → 100 % of the stream). The Table 5 pipeline (every selector of
//! the suite at the paper's budget) runs four times per dataset:
//!
//! 1. `scalar` kernel, one thread, row cache disabled (the
//!    pre-optimization baseline),
//! 2. `auto` kernel (direction-optimizing BFS + multi-source waves), one
//!    thread, row cache disabled — isolates the pure kernel speedup,
//! 3. `auto` kernel, one thread, unbounded row cache — the default
//!    configuration, with snapshot-delta repair of `t2` rows,
//! 4. `auto` kernel + repair at the configured thread count.
//!
//! **Phase 2 — incremental regime** on a *tight* snapshot pair
//! ([`REPAIR_T1`] → 100 %): the re-evaluation scenario the delta cache is
//! built for, where the edge delta is a few percent of the stream and the
//! shrinking region is small. The same suite runs with the cache off and
//! on (auto kernel, one thread); `repair_speedup` compares the two on
//! `sssp_t2_secs`, the `t2`-row share of the oracle's distance work.
//!
//! The eval pair's 20 % edge delta moves roughly half of all distances,
//! so there a per-row repair cannot beat a 64-wide multi-source wave —
//! phase 1 documents that boundary honestly (its `t2` timings are part of
//! the sweeps), while phase 2 measures the regime the optimization
//! targets. Results are bit-identical in every configuration (see
//! `crates/core/tests/parallel_equivalence.rs` and
//! `crates/core/tests/conformance.rs`); only the timing differs, which is
//! what this baseline records.
//!
//! **Phase 3 — Δ-scan ladder** on the evaluation snapshots: a
//! deliberately scan-heavy pipeline (Degree selector at a budget of
//! `n / 4` candidates) runs with `CP_SCAN_KERNEL` scalar vs auto, best of
//! [`REPEATS`] on `scan_secs`. `scan_speedup` compares the reference
//! per-element loop against the blocked kernel (u16-packed rows,
//! chunk skipping, rising Δ floor) on the `M × V` scan it rewrites;
//! chunk/prune counters and row-arena occupancy ride along.
//!
//! **Phase 4 — bound-pruning ladder** on the evaluation snapshots: a
//! pruning-friendly pipeline (Mmsd selector under a `Threshold
//! {{delta_min: 4}}` spec whose floor gives the `t2` sweeps truncation
//! headroom, delta cache off so full sweeps actually run) with
//! `CP_SSSP_PRUNE` off vs auto. Results and the ledger are bit-identical
//! (conformance-tested); what moves is the *internal* work —
//! `settled_nodes` / `relaxed_edges` and the rows truncated at their
//! depth bound. The landmark pre-filter stays dark in this phase (a
//! zero-byte cache holds no resident landmark rows; the conformance
//! suite exercises it), and the `sssp_secs` delta is reported as
//! measured, however modest: on small graphs the truncated tail is
//! cheap, so the work drop exceeds the time drop.
//!
//! **Phase 5 — streaming ladder** over a whole review sequence: the
//! `cp-stream` engine replays each dataset's event stream across
//! [`STREAM_CUTS`] (≥ 5 reviews, each under its own `2m` ledger) twice —
//! with review-to-review cache chaining on (step *t*'s resident `t2` rows
//! imported as step *t+1*'s `t1` donors) and off (the per-step rebuild the
//! old monitor did). Pairs and ledgers are bit-identical by construction
//! (the streaming conformance suite holds the engine to it); what moves is
//! the donor/repair hit rate — the fraction of charged rows served by a
//! chained donor or derived by snapshot-delta repair instead of a full
//! sweep — and the pipeline wall clock, best of [`REPEATS`] ladder runs.
//!
//! **Phase 6 — snapshot-store ladder** on the tight pair: the same
//! budgeted pipeline (Mmsd selector, auto kernel, unbounded cache, one
//! thread) runs once per `CP_GRAPH_STORE` value — full CSR, base + delta
//! overlay, gap-compressed CSR. Pairs are bit-identical by construction
//! (the conformance suite holds every store to it); what moves is graph
//! memory: `bytes_per_arc` of the compressed store against the full
//! store's, and the overlay's O(Δ) footprint against the base it borrows
//! (`overlay_shared_arcs` counts the arcs it never copied).
//!
//! **Phase 7 — query-throughput ladder** over the same review sequence:
//! the `cp-query` layer answers budget-free point queries (`distance` +
//! `delta`) from published epochs while the engine advances the
//! [`STREAM_CUTS`] reviews, at 1, 2 and 8 concurrent reader threads.
//! Recorded per rung: queries/sec and the Exact/Bounded/Unknown answer
//! mix. A reader-free twin run pins the ledger: every rung's summed
//! review budget must equal the twin's exactly (`query_budget_charged`
//! stays 0) — queries are served from immutable epochs and spend nothing.
//!
//! Per sweep, three timings: `secs` (whole suite, end to end),
//! `sssp_secs` (the oracle's distance-row computation, the path the
//! kernels own), and `sssp_t2_secs` (its `G_t2` share, per-item summed —
//! the path repair attacks). `kernel_speedup` compares ladder slots 1 and
//! 2 on `sssp_secs`; the suite total additionally includes IncBet's
//! exact-betweenness grant, which the paper gives that baseline for free
//! and which no kernel touches.
//!
//! ```text
//! cargo run --release -p cp-bench --bin pipeline_baseline -- --scale=0.25
//! ```

use cp_bench::{scaled_budget, Options};
use cp_core::exact::TopKSpec;
use cp_core::oracle::{BfsKernel, GraphStore, RowCacheBudget, SnapshotOracle, SsspPrune};
use cp_core::scan::ScanKernel;
use cp_core::selectors::SelectorKind;
use cp_core::topk::{run_pipeline, PipelineStats};
use cp_gen::datasets::{DatasetKind, DatasetProfile, EVAL_SNAPSHOTS};
use cp_graph::repair::snapshot_delta;
use cp_graph::{Graph, NodeId, TemporalGraph};
use cp_query::{Answer, QueryEngine};
use cp_stream::{StreamConfig, StreamEngine, StreamError};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Timing of one (dataset, kernel, threads, cache) pipeline sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct SweepTiming {
    dataset: String,
    kernel: String,
    threads: usize,
    /// Row-cache budget knob value (`"0"` = delta cache disabled).
    cache: String,
    /// Best-of-repeats wall clock of the whole selector suite, seconds.
    secs: f64,
    /// Oracle distance-row computation seconds within the best repeat.
    sssp_secs: f64,
    /// The `G_t2` share of `sssp_secs` (per-item summed) within the best
    /// repeat — what snapshot-delta repair attacks.
    sssp_t2_secs: f64,
    /// SSSPs charged across the suite (identical for every configuration).
    sssp_computed: u64,
    /// Multi-source waves run (0 under the scalar kernel).
    msbfs_waves: u64,
    /// Rows produced by multi-source waves.
    msbfs_rows: u64,
    /// `t2` rows produced by snapshot-delta repair (0 with the cache
    /// disabled).
    repaired_rows: u64,
    /// Nodes settled by repair frontiers — the work done in place of full
    /// sweeps.
    repair_frontier_nodes: u64,
    /// Resident row-cache bytes at the end of the suite's largest run.
    cache_bytes: usize,
    /// Persistent-executor activity within the best repeat (batches,
    /// tasks, steals, park/unpark events; `workers_spawned` is the
    /// pool's size — spawned once per process, not per batch).
    exec: cp_exec::ExecStats,
}

/// Per-dataset kernel-ladder comparison at one worker thread (phase 1,
/// evaluation snapshots).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct DatasetSummary {
    dataset: String,
    /// Whole suite, scalar kernel, one thread, cache off.
    scalar_single_secs: f64,
    /// Whole suite, optimized kernel, one thread, cache off.
    optimized_single_secs: f64,
    /// Oracle SSSP time within the scalar single-thread run.
    scalar_sssp_secs: f64,
    /// Oracle SSSP time within the optimized single-thread run.
    optimized_sssp_secs: f64,
    /// `scalar_sssp_secs / optimized_sssp_secs`: the single-thread
    /// speedup of the distance-row path the kernels own.
    kernel_speedup: f64,
    /// `scalar_single_secs / optimized_single_secs`: whole suite,
    /// including work no kernel touches.
    suite_speedup: f64,
    /// Whole suite at `threads_multi` workers: the best single-thread
    /// config (auto kernel, cache off) run on the persistent pool.
    multi_thread_secs: f64,
    /// The smallest whole-suite seconds across the optimized rungs
    /// (auto@1 cache-off, auto@1 + repair, auto@threads_multi).
    best_config_secs: f64,
    /// `true` when the `threads_multi` rung lost to its single-thread
    /// twin (the same auto-kernel cache-off config at one thread) by
    /// more than a 15 % + 50 ms noise allowance — the per-batch
    /// thread-spawn regression the persistent executor exists to kill.
    thread_regression: bool,
}

/// Per-dataset repair comparison on the tight snapshot pair (phase 2,
/// `REPAIR_T1` → 100 %, auto kernel, one thread).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct RepairSummary {
    dataset: String,
    /// First-snapshot cut of the tight pair (fraction of the stream).
    t1_fraction: f64,
    /// `|E_t2 \ E_t1|` of the tight pair.
    delta_edges: usize,
    /// `t2`-row seconds with the delta cache off.
    repair_off_t2_secs: f64,
    /// `t2`-row seconds with the delta cache on.
    repair_on_t2_secs: f64,
    /// `repair_off_t2_secs / repair_on_t2_secs`: the measured speedup of
    /// snapshot-delta repair on the `t2`-row path.
    repair_speedup: f64,
    /// `t2` rows repaired in the cache-on run.
    repaired_rows: u64,
    /// Mean shrinking-region size per repaired row.
    avg_frontier: f64,
}

/// Timing of one (dataset, scan kernel) Δ-scan sweep (phase 3).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ScanSweep {
    dataset: String,
    /// The Δ-scan kernel (`"scalar"` = reference per-element loop).
    scan_kernel: String,
    /// Fully paid candidate endpoints `|M|` (identical across kernels).
    candidates: usize,
    /// Pairs found (identical across kernels — conformance-tested).
    pairs: usize,
    /// Best-of-repeats `M × V` scan seconds.
    scan_secs: f64,
    /// Chunks whose elements were walked (blocked kernel; 0 for scalar).
    scan_chunks_scanned: u64,
    /// Chunks skipped whole below the shared Δ floor.
    scan_chunks_skipped: u64,
    /// Individual Δ ≥ 1 values pruned below the floor inside scanned
    /// chunks.
    scan_pairs_pruned: u64,
    /// Live `u16`-packed rows in the oracle's arena after the run.
    arena_u16_rows: u64,
    /// Live full-width rows after the run (weighted snapshots only).
    arena_u32_rows: u64,
    /// Arena slot allocations served from the free list.
    arena_reused_rows: u64,
    /// Slab bytes held by the arenas.
    arena_slab_bytes: u64,
}

/// Timing of one (dataset, prune mode) bound-pruning sweep (phase 4).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PruneSweep {
    dataset: String,
    /// `CP_SSSP_PRUNE` mode (`"off"` = every charged sweep runs full).
    sssp_prune: String,
    /// Pairs found (identical across modes — conformance-tested).
    pairs: usize,
    /// SSSPs charged (identical across modes: truncated rows still pay).
    sssp_computed: u64,
    /// Best-of-repeats oracle distance-row seconds.
    sssp_secs: f64,
    /// Nodes settled across all traversals (deterministic per mode).
    settled_nodes: u64,
    /// Adjacency entries relaxed across all traversals.
    relaxed_edges: u64,
    /// `t2` sweeps cut short at their depth bound.
    rows_truncated: u64,
    /// Charged rows the landmark pre-filter never computed.
    rows_prefiltered: u64,
    /// `M × V` pairs skipped with their pre-filtered candidate.
    pairs_prefiltered: u64,
}

/// Per-dataset pruning comparison (phase 4, off vs auto).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PruneSummary {
    dataset: String,
    /// Adjacency relaxations with pruning off.
    off_relaxed_edges: u64,
    /// Adjacency relaxations with pruning on — never more than off.
    auto_relaxed_edges: u64,
    /// `off / auto` relaxed-edge ratio: the internal-work saving.
    relaxed_edges_ratio: f64,
    /// Settled nodes with pruning off / on.
    off_settled_nodes: u64,
    /// Settled nodes with pruning on.
    auto_settled_nodes: u64,
    /// Oracle SSSP seconds with pruning off.
    off_sssp_secs: f64,
    /// Oracle SSSP seconds with pruning on.
    auto_sssp_secs: f64,
    /// `off / auto` on `sssp_secs` — the honest wall-clock delta, which
    /// trails the work ratio when the truncated tail was cheap.
    sssp_speedup: f64,
    /// `t2` sweeps truncated in the pruned run.
    rows_truncated: u64,
}

/// One engine ladder run (phase 5): a full review sequence with chaining
/// on or off, counters summed over all reviews.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct StreamSweep {
    dataset: String,
    /// `"chained"` (donor hand-off across reviews) or `"rebuilt"`
    /// (per-step cache rebuild).
    mode: String,
    /// Reviews in the ladder.
    reviews: u32,
    /// Edge events accepted across the whole replay.
    events: u64,
    /// SSSPs charged across all reviews (identical across modes).
    sssp_computed: u64,
    /// Donor rows imported from the previous review's hand-off (0 when
    /// rebuilt).
    donor_rows_imported: u64,
    /// Charged rows served straight from imported donors.
    donor_chain_hits: u64,
    /// `t2` rows derived by snapshot-delta repair.
    repaired_rows: u64,
    /// `(donor_chain_hits + repaired_rows) / sssp_computed`.
    donor_hit_rate: f64,
    /// Best-of-repeats budgeted-pipeline seconds summed over reviews.
    pipeline_secs: f64,
    /// Snapshot materialization seconds summed over reviews (identical
    /// work in both modes; recorded for context).
    advance_secs: f64,
}

/// Per-dataset chained-vs-rebuilt comparison (phase 5).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct StreamSummary {
    dataset: String,
    /// Reviews in the ladder.
    reviews: u32,
    /// Donor/repair hit rate with chaining on.
    chained_hit_rate: f64,
    /// Donor/repair hit rate with per-step rebuild.
    rebuilt_hit_rate: f64,
    /// `chained_hit_rate - rebuilt_hit_rate` — strictly positive wherever
    /// the hand-off served rows the rebuild had to sweep for.
    hit_rate_gain: f64,
    /// Pipeline seconds with chaining on.
    chained_pipeline_secs: f64,
    /// Pipeline seconds with per-step rebuild.
    rebuilt_pipeline_secs: f64,
    /// `rebuilt / chained` on pipeline seconds.
    stream_speedup: f64,
}

/// One snapshot-store pipeline run on the tight pair (phase 6).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct StoreSweep {
    dataset: String,
    /// `CP_GRAPH_STORE` value of this run.
    store: String,
    /// Pairs found (identical across stores — conformance-tested).
    pairs: usize,
    /// Best-of-repeats pipeline wall clock, seconds.
    secs: f64,
    /// Oracle distance-row seconds within the best repeat.
    sssp_secs: f64,
    /// Full-CSR bytes of the snapshot pair (always materialized).
    base_bytes: u64,
    /// Overlay structure bytes — O(Δ), 0 unless this is the overlay run.
    overlay_bytes: u64,
    /// Base arcs the overlay borrows instead of copying.
    overlay_shared_arcs: u64,
    /// Gap-compressed adjacency bytes — 0 unless this is the compressed
    /// run.
    compressed_bytes: u64,
    /// `compressed_bytes` per directed arc.
    compressed_bytes_per_arc: f64,
    /// The full store's bytes per directed arc, for the shrink ratio.
    full_bytes_per_arc: f64,
}

/// Per-dataset store comparison (phase 6).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct StoreSummary {
    dataset: String,
    /// `|E_t2 \ E_t1|` of the tight pair the ladder ran on.
    delta_edges: usize,
    /// Full-store graph bytes per directed arc.
    full_bytes_per_arc: f64,
    /// Compressed-store adjacency bytes per directed arc.
    compressed_bytes_per_arc: f64,
    /// `compressed / full` bytes-per-arc — the shrink factor.
    compressed_ratio: f64,
    /// Overlay structure bytes (the O(Δ) footprint of sharing `G_t1`).
    overlay_bytes: u64,
    /// `overlay_bytes / base_bytes` — how small the second snapshot's
    /// marginal memory is next to materializing it in full.
    overlay_frac: f64,
    /// Base arcs the overlay run borrowed from `G_t1`.
    overlay_shared_arcs: u64,
}

/// One query-throughput rung (phase 7): point queries answered from
/// published epochs at a fixed reader-thread count while the engine
/// advances reviews.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct QuerySweep {
    dataset: String,
    /// Concurrent reader threads issuing queries.
    readers: usize,
    /// Point queries answered across all readers (distance + delta).
    queries: u64,
    /// Wall clock the readers ran for (the review-advance window).
    secs: f64,
    /// Queries per second, summed over readers.
    qps: f64,
    /// `Answer::Exact` answers observed.
    exact: u64,
    /// `Answer::Bounded` answers observed.
    bounded: u64,
    /// `Answer::Unknown` answers observed.
    unknown: u64,
    /// Summed review ledger of the run — must equal the reader-free
    /// twin's (queries spend nothing).
    ledger: u64,
}

/// Per-dataset Δ-scan kernel comparison (phase 3).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ScanSummary {
    dataset: String,
    /// Candidate budget of the scan-heavy pipeline (`n / 4`).
    m_scan: u64,
    /// Best scalar-kernel scan seconds.
    scalar_scan_secs: f64,
    /// Best blocked-kernel scan seconds.
    auto_scan_secs: f64,
    /// `scalar_scan_secs / auto_scan_secs`.
    scan_speedup: f64,
    /// Fraction of chunks the blocked kernel skipped whole.
    chunks_skipped_frac: f64,
}

/// The written baseline document.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Baseline {
    benchmark: String,
    scale: f64,
    seed: u64,
    m: u64,
    repeats: u32,
    threads_multi: usize,
    /// The tight pair's first-snapshot fraction (phase 2).
    repair_t1_fraction: f64,
    sweeps: Vec<SweepTiming>,
    datasets: Vec<DatasetSummary>,
    repair: Vec<RepairSummary>,
    scan_ladder: Vec<ScanSweep>,
    scan: Vec<ScanSummary>,
    prune_ladder: Vec<PruneSweep>,
    prune: Vec<PruneSummary>,
    stream_ladder: Vec<StreamSweep>,
    stream: Vec<StreamSummary>,
    store_ladder: Vec<StoreSweep>,
    store: Vec<StoreSummary>,
    query_ladder: Vec<QuerySweep>,
    /// Suite totals: scalar kernel, one thread, cache off (eval pair).
    scalar_single_secs: f64,
    /// Suite totals: optimized kernel, one thread, cache off (eval pair).
    optimized_single_secs: f64,
    /// Suite totals: optimized kernel, cache off, `threads_multi`
    /// threads — `optimized_single_secs` with the pool turned on.
    multi_thread_secs: f64,
    /// Single-thread kernel speedup on the oracle SSSP path, scalar vs
    /// optimized (both cache-off), summed over datasets.
    kernel_speedup: f64,
    /// Repair speedup on the `t2`-row path in the incremental regime,
    /// summed over datasets (phase 2).
    repair_speedup: f64,
    /// The best per-dataset `repair_speedup` — the repair win on the
    /// dataset whose delta structure suits it best.
    repair_speedup_max: f64,
    /// Δ-scan speedup of the blocked kernel over the reference loop on
    /// the scan-heavy pipeline, summed over datasets (phase 3).
    scan_speedup: f64,
    /// The best per-dataset `scan_speedup`.
    scan_speedup_max: f64,
    /// Relaxed-edge ratio of pruning off vs on, summed over datasets
    /// (phase 4) — the internal-work saving of bound truncation plus the
    /// landmark pre-filter at a bit-identical ledger.
    prune_relaxed_ratio: f64,
    /// Pruning off-vs-on on `sssp_secs`, summed over datasets — the
    /// honest wall-clock counterpart of `prune_relaxed_ratio`.
    prune_sssp_speedup: f64,
    /// Donor/repair hit rate of the chained streaming ladder, summed over
    /// datasets (phase 5).
    stream_chained_hit_rate: f64,
    /// Donor/repair hit rate of the per-step-rebuild ladder.
    stream_rebuilt_hit_rate: f64,
    /// Datasets where chaining reached a strictly higher hit rate than
    /// the rebuild — the chain's reach across the review boundary.
    stream_gain_datasets: usize,
    /// Aggregate full-store graph bytes per directed arc (phase 6).
    full_bytes_per_arc: f64,
    /// Aggregate compressed adjacency bytes per directed arc (phase 6).
    compressed_bytes_per_arc: f64,
    /// `compressed / full` bytes-per-arc across all datasets — the
    /// compressed store's aggregate shrink factor.
    compressed_ratio: f64,
    /// Aggregate `overlay_bytes / base_bytes` — the marginal memory of an
    /// overlay-shared second snapshot.
    overlay_frac: f64,
    /// `Answer::Exact` point-query answers across the whole query ladder
    /// (phase 7).
    query_exact_answers: u64,
    /// `Answer::Bounded` point-query answers across the whole query
    /// ladder — nonzero proves the answer lattice's middle rung is live.
    query_bounded_answers: u64,
    /// `Answer::Unknown` point-query answers across the whole query
    /// ladder.
    query_unknown_answers: u64,
    /// Summed ledger difference between every query-ladder rung and its
    /// reader-free twin. Structurally zero: queries are answered from
    /// published epochs and never touch a budget.
    query_budget_charged: u64,
    /// The best queries/sec observed on any query-ladder rung.
    query_qps_peak: f64,
    /// Suite totals of the fastest optimized rung per dataset (auto@1
    /// cache-off, auto@1 + repair, or auto@`threads_multi` cache-off).
    best_config_secs: f64,
    /// `true` when any dataset's `threads_multi` rung lost to its
    /// single-thread twin — see [`DatasetSummary::thread_regression`].
    thread_regression: bool,
    /// Work-stealing events across every phase-1/phase-2 sweep's best
    /// repeat — nonzero proves chunks actually migrate between the
    /// persistent pool's workers.
    exec_steals: u64,
    /// End-to-end speedup of the best optimized configuration over the
    /// scalar single-thread baseline.
    total_speedup: f64,
}

const REPEATS: u32 = 3;
/// The phase-1 rung ladder feeds the headline threads-on/threads-off
/// comparison, so it gets more repeats than the section ladders: on a
/// shared single-core container individual suite runs jitter by
/// ±15-30 %, and a best-of-5 interleaved floor is what makes the rung
/// deltas reproducible.
const PHASE1_REPEATS: u32 = 5;

/// Phase 2's first-snapshot cut: the last 5 % of the stream is the delta,
/// emulating a re-evaluation shortly after the previous one.
const REPAIR_T1: f64 = 0.95;

/// Phase 5's review schedule: the engine starts at the first cut and
/// reviews at each subsequent one — five reviews over the stream's second
/// half, tight enough (10 % deltas) that chained donors stay relevant.
const STREAM_CUTS: [f64; 6] = [0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Phase 1 config slots (kernel, threads, cache): pre-optimization scalar,
/// kernels-only, kernels + repair, everything at full threads.
const SLOT_SCALAR: usize = 0;
const SLOT_AUTO: usize = 1;
const SLOT_REPAIR: usize = 2;
const SLOT_MULTI: usize = 3;

/// Accumulated pipeline counters of one suite run.
#[derive(Default)]
struct SuiteRun {
    secs: f64,
    sssp_secs: f64,
    sssp_t2_secs: f64,
    sssp_computed: u64,
    msbfs_waves: u64,
    msbfs_rows: u64,
    repaired_rows: u64,
    repair_frontier_nodes: u64,
    cache_bytes: usize,
    exec: cp_exec::ExecStats,
}

impl SuiteRun {
    fn absorb(&mut self, stats: &PipelineStats) {
        self.exec.absorb(&stats.exec);
        self.sssp_secs += stats.sssp_secs;
        self.sssp_t2_secs += stats.sssp_t2_secs;
        self.sssp_computed += stats.sssp_computed;
        self.msbfs_waves += stats.kernel_stats.msbfs_waves;
        self.msbfs_rows += stats.kernel_stats.msbfs_rows;
        self.repaired_rows += stats.repaired_rows;
        self.repair_frontier_nodes += stats.repair_frontier_nodes;
        self.cache_bytes = self.cache_bytes.max(stats.cache_bytes);
    }
}

/// Runs the full selector suite once and returns its counters.
#[allow(clippy::too_many_arguments)]
fn run_suite(
    g1: &Graph,
    g2: &Graph,
    suite: &[SelectorKind],
    spec: &TopKSpec,
    m: u64,
    seed: u64,
    threads: usize,
    kernel: BfsKernel,
    cache: RowCacheBudget,
) -> SuiteRun {
    let started = Instant::now();
    let mut run = SuiteRun::default();
    for &kind in suite {
        let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m)
            .with_threads(threads)
            .with_kernel(kernel)
            .with_row_cache(cache);
        let mut sel = kind.build(seed);
        let res = run_pipeline(&mut oracle, sel.as_mut(), spec);
        run.absorb(&res.stats);
    }
    run.secs = started.elapsed().as_secs_f64();
    run
}

/// Best-of-repeats: keeps the run whose metric (`suite` wall clock or
/// `t2` seconds) is smallest.
fn best_of<F: FnMut() -> SuiteRun, M: Fn(&SuiteRun) -> f64>(mut run: F, metric: M) -> SuiteRun {
    let mut best: Option<SuiteRun> = None;
    for _ in 0..REPEATS {
        let r = run();
        if best.as_ref().map_or(true, |b| metric(&r) < metric(b)) {
            best = Some(r);
        }
    }
    best.expect("REPEATS >= 1")
}

/// One scan-heavy pipeline run (phase 3): Degree selector at a `n / 4`
/// candidate budget, unbounded row cache, one thread, the given Δ-scan
/// kernel. Returns the stats plus the candidate/pair counts (identical
/// across kernels).
fn run_scan_heavy(
    g1: &Graph,
    g2: &Graph,
    m_scan: u64,
    spec: &TopKSpec,
    seed: u64,
    scan: ScanKernel,
) -> (PipelineStats, usize, usize) {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m_scan)
        .with_threads(1)
        .with_kernel(BfsKernel::Auto)
        .with_row_cache(RowCacheBudget::Unbounded)
        .with_scan_kernel(scan);
    let mut sel = SelectorKind::Degree.build(seed);
    let res = run_pipeline(&mut oracle, sel.as_mut(), spec);
    (res.stats, res.candidates.len(), res.pairs.len())
}

/// One pruning-friendly pipeline run (phase 4): Mmsd selector,
/// `Threshold {delta_min: 4}` floor (each extra floor unit shaves one
/// more `t2` wave off the batched sweeps), delta cache off — full `t2`
/// sweeps, the path truncation attacks; the landmark pre-filter stays
/// dark here because a zero-byte cache keeps no resident landmark rows
/// (the conformance suite covers it) — one thread, the given prune mode.
fn run_prune_probe(
    g1: &Graph,
    g2: &Graph,
    m: u64,
    seed: u64,
    prune: SsspPrune,
) -> (PipelineStats, usize) {
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m)
        .with_threads(1)
        .with_kernel(BfsKernel::Auto)
        .with_row_cache(RowCacheBudget::Bytes(0))
        .with_prune(prune);
    let mut sel = SelectorKind::Mmsd { landmarks: 5 }.build(seed);
    let res = run_pipeline(
        &mut oracle,
        sel.as_mut(),
        &TopKSpec::Threshold { delta_min: 4 },
    );
    (res.stats, res.pairs.len())
}

/// One store-ladder pipeline run (phase 6): Mmsd selector on the tight
/// pair, auto kernel, unbounded cache, one thread, the given snapshot
/// store. Returns the stats, pair count, and wall clock.
fn run_store_probe(
    g1: &Graph,
    g2: &Graph,
    m: u64,
    seed: u64,
    store: GraphStore,
) -> (PipelineStats, usize, f64) {
    let started = Instant::now();
    let mut oracle = SnapshotOracle::with_budget(g1, g2, 2 * m)
        .with_graph_store(store)
        .with_threads(1)
        .with_kernel(BfsKernel::Auto)
        .with_row_cache(RowCacheBudget::Unbounded);
    let mut sel = SelectorKind::Mmsd { landmarks: 5 }.build(seed);
    let res = run_pipeline(
        &mut oracle,
        sel.as_mut(),
        &TopKSpec::ThresholdFromMax { slack: 1 },
    );
    (res.stats, res.pairs.len(), started.elapsed().as_secs_f64())
}

/// One full streaming ladder (phase 5): replays the dataset's events
/// across [`STREAM_CUTS`] with the given chaining mode, returning summed
/// per-review counters. Pairs/ledger are mode-invariant (conformance-
/// tested); the pairs of each review are folded into a checksum so the
/// caller can assert the two modes agreed.
fn run_stream_ladder(t: &TemporalGraph, m: u64, seed: u64, chain: bool) -> (StreamSweep, u64) {
    let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
    let mut cfg = StreamConfig::new(
        m,
        SelectorKind::Mmsd { landmarks: 10 },
        TopKSpec::ThresholdFromMax { slack: 1 },
        seed,
    )
    .with_chaining(chain);
    cfg.threads = Some(1);
    cfg.kernel = Some(BfsKernel::Auto);
    cfg.row_cache = Some(RowCacheBudget::Unbounded);
    let mut engine =
        StreamEngine::from_snapshot(&t.snapshot_of_prefix(prefix(STREAM_CUTS[0])), cfg);
    let mut sweep = StreamSweep {
        mode: if chain { "chained" } else { "rebuilt" }.to_string(),
        ..StreamSweep::default()
    };
    let mut checksum = 0u64;
    for w in STREAM_CUTS.windows(2) {
        for &e in &t.events()[prefix(w[0])..prefix(w[1])] {
            match engine.ingest(e) {
                Ok(_)
                | Err(StreamError::DuplicateEdge { .. })
                | Err(StreamError::SelfLoop { .. }) => {}
                Err(err) => panic!("sorted dataset stream was rejected: {err}"),
            }
        }
        let epoch = engine.review();
        sweep.reviews += 1;
        sweep.events += epoch.stats.events_ingested;
        sweep.sssp_computed += epoch.stats.pipeline.sssp_computed;
        sweep.donor_rows_imported += epoch.stats.donor_rows_imported;
        sweep.donor_chain_hits += epoch.stats.donor_chain_hits;
        sweep.repaired_rows += epoch.stats.repaired_rows;
        sweep.pipeline_secs += epoch.stats.pipeline_secs;
        sweep.advance_secs += epoch.stats.advance_secs;
        for p in &epoch.result.pairs {
            checksum = checksum.wrapping_mul(31).wrapping_add(
                (u64::from(p.pair.0 .0) << 40) ^ (u64::from(p.pair.1 .0) << 8) ^ u64::from(p.delta),
            );
        }
    }
    sweep.donor_hit_rate =
        (sweep.donor_chain_hits + sweep.repaired_rows) as f64 / sweep.sssp_computed.max(1) as f64;
    (sweep, checksum)
}

/// Phase 7's reader-thread rungs.
const QUERY_READERS: [usize; 3] = [1, 2, 8];

/// One query-throughput ladder run (phase 7): `readers` concurrent
/// threads issue point queries (`distance` + `delta`) against whatever
/// epoch is currently published while the main thread replays the
/// [`STREAM_CUTS`] reviews. With `readers == 0` this is the reader-free
/// twin that pins the ledger.
fn run_query_ladder(t: &TemporalGraph, m: u64, seed: u64, readers: usize) -> QuerySweep {
    let prefix = |f: f64| ((f * t.num_events() as f64).ceil() as usize).min(t.num_events());
    let n = t.num_nodes();
    let mut cfg = StreamConfig::new(
        m,
        SelectorKind::Mmsd { landmarks: 10 },
        TopKSpec::ThresholdFromMax { slack: 1 },
        seed,
    );
    cfg.threads = Some(1);
    cfg.kernel = Some(BfsKernel::Auto);
    cfg.row_cache = Some(RowCacheBudget::Unbounded);
    let mut engine =
        StreamEngine::from_snapshot(&t.snapshot_of_prefix(prefix(STREAM_CUTS[0])), cfg);
    let q = QueryEngine::new(engine.reader());
    let stop = AtomicBool::new(false);
    let tallies = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    let started = Instant::now();
    // The review driver runs on the caller thread; readers run on a
    // dedicated pool (not the global one, which the reviews' oracles
    // use for their own fan-out and which runs one batch at a time).
    let drive = |engine: &mut StreamEngine| -> u64 {
        let mut ledger = 0u64;
        for w in STREAM_CUTS.windows(2) {
            for &e in &t.events()[prefix(w[0])..prefix(w[1])] {
                match engine.ingest(e) {
                    Ok(_)
                    | Err(StreamError::DuplicateEdge { .. })
                    | Err(StreamError::SelfLoop { .. }) => {}
                    Err(err) => panic!("sorted dataset stream was rejected: {err}"),
                }
            }
            ledger += engine.review().result.budget.total();
        }
        stop.store(true, Ordering::Relaxed);
        ledger
    };
    let ledger = if readers == 0 {
        drive(&mut engine)
    } else {
        let pool = cp_exec::Executor::new(readers);
        let mut slots = vec![(); readers];
        pool.run_with_driver(
            &mut slots,
            readers,
            |r, _slot, _ctx| {
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let view = q.epoch();
                    let u = NodeId::new(i % n);
                    let v = NodeId::new((i * 31 + 7) % n);
                    for ans in [view.distance(u, v), view.delta(u, v)] {
                        let slot = match ans {
                            Answer::Exact(_) => 0,
                            Answer::Bounded { .. } => 1,
                            Answer::Unknown => 2,
                        };
                        tallies[slot].fetch_add(1, Ordering::Relaxed);
                    }
                    i = i.wrapping_add(readers);
                }
            },
            || drive(&mut engine),
        )
    };
    let secs = started.elapsed().as_secs_f64();
    let [exact, bounded, unknown] = tallies.map(AtomicU64::into_inner);
    let queries = exact + bounded + unknown;
    QuerySweep {
        dataset: String::new(),
        readers,
        queries,
        secs,
        qps: queries as f64 / secs.max(f64::MIN_POSITIVE),
        exact,
        bounded,
        unknown,
        ledger,
    }
}

fn main() {
    let opts = Options::from_env();
    let threads_multi = opts.threads.max(2);
    let m = scaled_budget(100, opts.scale);
    let spec = TopKSpec::ThresholdFromMax { slack: 1 };
    let suite = SelectorKind::table5_suite();
    let out = opts.out.as_deref().unwrap_or("BENCH_pipeline.json");

    eprintln!(
        "pipeline_baseline: scale {}, seed {}, m {m}; phase 1 (eval pair): scalar@1 vs auto@1 \
         vs auto@1+repair vs auto@{threads_multi}; phase 2 (t1 = {REPAIR_T1}): repair \
         off vs on",
        opts.scale, opts.seed
    );

    // The threaded rung rides the best single-thread config (auto
    // kernel, cache off at the eval pair's 20 % delta) rather than the
    // cache-on rung the seed used: threading a config that was never
    // the best config is exactly the misleading comparison the summary
    // used to make. `multi_thread_secs` vs `optimized_single_secs` is
    // now a pure threads-on/threads-off A/B over the same pipeline.
    let configs = [
        (BfsKernel::Scalar, 1usize, RowCacheBudget::Bytes(0)),
        (BfsKernel::Auto, 1, RowCacheBudget::Bytes(0)),
        (BfsKernel::Auto, 1, RowCacheBudget::Unbounded),
        (BfsKernel::Auto, threads_multi, RowCacheBudget::Bytes(0)),
    ];
    let mut sweeps: Vec<SweepTiming> = Vec::new();
    let mut datasets: Vec<DatasetSummary> = Vec::new();
    let mut repair: Vec<RepairSummary> = Vec::new();
    let mut scan_ladder: Vec<ScanSweep> = Vec::new();
    let mut scan: Vec<ScanSummary> = Vec::new();
    let mut prune_ladder: Vec<PruneSweep> = Vec::new();
    let mut prune: Vec<PruneSummary> = Vec::new();
    let mut stream_ladder: Vec<StreamSweep> = Vec::new();
    let mut stream: Vec<StreamSummary> = Vec::new();
    let mut store_ladder: Vec<StoreSweep> = Vec::new();
    let mut store: Vec<StoreSummary> = Vec::new();
    let mut query_ladder: Vec<QuerySweep> = Vec::new();
    let mut query_answer_totals = [0u64; 3]; // phase 7: [exact, bounded, unknown]
    let mut query_budget_charged = 0u64;
    let mut query_qps_peak = 0.0f64;
    let mut store_bytes_totals = [0u64; 3]; // phase 6: [full, compressed, overlay] bytes
    let mut store_arcs_total = 0u64;
    let mut totals = [0.0f64; 4];
    let mut sssp_totals = [0.0f64; 2]; // [scalar@1, auto@1] cache-off
    let mut t2_totals = [0.0f64; 2]; // phase 2: [cache-off, cache-on]
    let mut scan_totals = [0.0f64; 2]; // phase 3: [scalar scan, auto scan]
    let mut prune_relaxed_totals = [0u64; 2]; // phase 4: [off, auto]
    let mut prune_sssp_totals = [0.0f64; 2]; // phase 4: [off, auto]
    let mut repair_speedup_max = 0.0f64;
    let mut scan_speedup_max = 0.0f64;
    let mut stream_hit_totals = [[0u64; 2]; 2]; // [chained, rebuilt] × [hits, charged]
    let mut stream_gain_datasets = 0usize;

    for kind in DatasetKind::ALL {
        let t = DatasetProfile::scaled(kind, opts.scale).generate(opts.seed);
        let name = kind.name();

        // ---- Phase 1: kernel ladder on the evaluation snapshots ----
        let (g1, g2) = t.snapshot_pair(EVAL_SNAPSHOTS.0, EVAL_SNAPSHOTS.1);
        let mut per_config = [0.0f64; 4];
        let mut per_config_sssp = [0.0f64; 4];
        // Interleave the repeats round-robin across the four configs
        // instead of running each config's repeats back-to-back: on a
        // shared container, ambient slowdowns last seconds and would
        // otherwise bias whole rungs. Round-robin puts every config
        // under roughly the same conditions each round, so the
        // best-of-repeats rung comparison measures the config, not the
        // weather.
        let mut bests: [Option<SuiteRun>; 4] = [const { None }; 4];
        for _ in 0..PHASE1_REPEATS {
            for (slot, &(kernel, threads, cache)) in configs.iter().enumerate() {
                let run = run_suite(
                    &g1, &g2, &suite, &spec, m, opts.seed, threads, kernel, cache,
                );
                if bests[slot].as_ref().is_none_or(|b| run.secs < b.secs) {
                    bests[slot] = Some(run);
                }
            }
        }
        for (slot, &(kernel, threads, cache)) in configs.iter().enumerate() {
            let best = bests[slot].take().expect("REPEATS >= 1");
            eprintln!(
                "  {name} [{} cache={}] @ {threads} thread(s): {:.3}s suite, {:.3}s sssp \
                 ({:.4}s t2, {} SSSPs, {} waves, {} repaired)",
                kernel.name(),
                cache.describe(),
                best.secs,
                best.sssp_secs,
                best.sssp_t2_secs,
                best.sssp_computed,
                best.msbfs_waves,
                best.repaired_rows,
            );
            totals[slot] += best.secs;
            per_config[slot] = best.secs;
            per_config_sssp[slot] = best.sssp_secs;
            sweeps.push(SweepTiming {
                dataset: name.to_string(),
                kernel: kernel.name().to_string(),
                threads,
                cache: cache.describe(),
                secs: best.secs,
                sssp_secs: best.sssp_secs,
                sssp_t2_secs: best.sssp_t2_secs,
                sssp_computed: best.sssp_computed,
                msbfs_waves: best.msbfs_waves,
                msbfs_rows: best.msbfs_rows,
                repaired_rows: best.repaired_rows,
                repair_frontier_nodes: best.repair_frontier_nodes,
                cache_bytes: best.cache_bytes,
                exec: best.exec,
            });
        }
        sssp_totals[0] += per_config_sssp[SLOT_SCALAR];
        sssp_totals[1] += per_config_sssp[SLOT_AUTO];
        // Flag only losses beyond a 15 % + 50 ms noise allowance.
        // Cross-run jitter on this shared single-core container
        // reaches ±15-30 % per rung even at best-of-5 (ambient host
        // interference, not the code under test), while the spawn-tax
        // regression this flag guards against was +64 % / +4 s on the
        // worst dataset — far outside the allowance.
        let thread_regression = per_config[SLOT_MULTI] > per_config[SLOT_AUTO] * 1.15
            && per_config[SLOT_MULTI] - per_config[SLOT_AUTO] > 0.050;
        if thread_regression {
            eprintln!(
                "  {name}: THREAD REGRESSION — {threads_multi} threads ({:.3}s) lost to 1 \
                 thread ({:.3}s)",
                per_config[SLOT_MULTI], per_config[SLOT_AUTO],
            );
        }
        datasets.push(DatasetSummary {
            dataset: name.to_string(),
            scalar_single_secs: per_config[SLOT_SCALAR],
            optimized_single_secs: per_config[SLOT_AUTO],
            scalar_sssp_secs: per_config_sssp[SLOT_SCALAR],
            optimized_sssp_secs: per_config_sssp[SLOT_AUTO],
            kernel_speedup: per_config_sssp[SLOT_SCALAR]
                / per_config_sssp[SLOT_AUTO].max(f64::MIN_POSITIVE),
            suite_speedup: per_config[SLOT_SCALAR] / per_config[SLOT_AUTO].max(f64::MIN_POSITIVE),
            multi_thread_secs: per_config[SLOT_MULTI],
            best_config_secs: per_config[SLOT_AUTO]
                .min(per_config[SLOT_REPAIR])
                .min(per_config[SLOT_MULTI]),
            thread_regression,
        });

        // ---- Phase 2: repair on the tight (incremental) pair ----
        let (r1, r2) = t.snapshot_pair(REPAIR_T1, 1.0);
        let delta_edges = snapshot_delta(&r1, &r2).inserted.len();
        let mut phase2 = [SuiteRun::default(), SuiteRun::default()];
        for (i, cache) in [RowCacheBudget::Bytes(0), RowCacheBudget::Unbounded]
            .into_iter()
            .enumerate()
        {
            let best = best_of(
                || {
                    run_suite(
                        &r1,
                        &r2,
                        &suite,
                        &spec,
                        m,
                        opts.seed,
                        1,
                        BfsKernel::Auto,
                        cache,
                    )
                },
                |r| r.sssp_t2_secs,
            );
            sweeps.push(SweepTiming {
                dataset: format!("{name} (t1={REPAIR_T1})"),
                kernel: BfsKernel::Auto.name().to_string(),
                threads: 1,
                cache: cache.describe(),
                secs: best.secs,
                sssp_secs: best.sssp_secs,
                sssp_t2_secs: best.sssp_t2_secs,
                sssp_computed: best.sssp_computed,
                msbfs_waves: best.msbfs_waves,
                msbfs_rows: best.msbfs_rows,
                repaired_rows: best.repaired_rows,
                repair_frontier_nodes: best.repair_frontier_nodes,
                cache_bytes: best.cache_bytes,
                exec: best.exec,
            });
            phase2[i] = best;
        }
        let [off, on] = phase2;
        let speedup = off.sssp_t2_secs / on.sssp_t2_secs.max(f64::MIN_POSITIVE);
        eprintln!(
            "  {name} (t1={REPAIR_T1}, delta {delta_edges} edges): t2 path {:.4}s off vs \
             {:.4}s on — {speedup:.2}x repair ({} rows, avg region {:.0})",
            off.sssp_t2_secs,
            on.sssp_t2_secs,
            on.repaired_rows,
            on.repair_frontier_nodes as f64 / on.repaired_rows.max(1) as f64,
        );
        t2_totals[0] += off.sssp_t2_secs;
        t2_totals[1] += on.sssp_t2_secs;
        repair_speedup_max = repair_speedup_max.max(speedup);
        repair.push(RepairSummary {
            dataset: name.to_string(),
            t1_fraction: REPAIR_T1,
            delta_edges,
            repair_off_t2_secs: off.sssp_t2_secs,
            repair_on_t2_secs: on.sssp_t2_secs,
            repair_speedup: speedup,
            repaired_rows: on.repaired_rows,
            avg_frontier: on.repair_frontier_nodes as f64 / on.repaired_rows.max(1) as f64,
        });

        // ---- Phase 3: Δ-scan ladder on the evaluation snapshots ----
        let m_scan = (g1.num_nodes() as u64 / 4).max(m);
        let mut per_kernel_scan = [0.0f64; 2];
        let mut skipped_frac = 0.0f64;
        for (i, sk) in [ScanKernel::Scalar, ScanKernel::Auto]
            .into_iter()
            .enumerate()
        {
            let mut best: Option<(PipelineStats, usize, usize)> = None;
            for _ in 0..REPEATS {
                let r = run_scan_heavy(&g1, &g2, m_scan, &spec, opts.seed, sk);
                if best
                    .as_ref()
                    .map_or(true, |b| r.0.scan_secs < b.0.scan_secs)
                {
                    best = Some(r);
                }
            }
            let (stats, candidates, pairs) = best.expect("REPEATS >= 1");
            eprintln!(
                "  {name} scan [{}] |M|={candidates}: {:.4}s scan ({} pairs, chunks \
                 {}/{} scanned/skipped, {} pruned; arena {}x u16 + {}x u32 rows)",
                sk.name(),
                stats.scan_secs,
                pairs,
                stats.scan_chunks_scanned,
                stats.scan_chunks_skipped,
                stats.scan_pairs_pruned,
                stats.arena.u16_rows,
                stats.arena.u32_rows,
            );
            per_kernel_scan[i] = stats.scan_secs;
            let total_chunks = stats.scan_chunks_scanned + stats.scan_chunks_skipped;
            if sk == ScanKernel::Auto {
                skipped_frac = stats.scan_chunks_skipped as f64 / (total_chunks.max(1)) as f64;
            }
            scan_ladder.push(ScanSweep {
                dataset: name.to_string(),
                scan_kernel: sk.name().to_string(),
                candidates,
                pairs,
                scan_secs: stats.scan_secs,
                scan_chunks_scanned: stats.scan_chunks_scanned,
                scan_chunks_skipped: stats.scan_chunks_skipped,
                scan_pairs_pruned: stats.scan_pairs_pruned,
                arena_u16_rows: stats.arena.u16_rows,
                arena_u32_rows: stats.arena.u32_rows,
                arena_reused_rows: stats.arena.reused_rows,
                arena_slab_bytes: stats.arena.slab_bytes,
            });
        }
        let scan_speedup = per_kernel_scan[0] / per_kernel_scan[1].max(f64::MIN_POSITIVE);
        eprintln!(
            "  {name} scan ladder: {:.4}s scalar vs {:.4}s auto — {scan_speedup:.2}x scan \
             ({:.0}% chunks skipped)",
            per_kernel_scan[0],
            per_kernel_scan[1],
            skipped_frac * 100.0,
        );
        scan_totals[0] += per_kernel_scan[0];
        scan_totals[1] += per_kernel_scan[1];
        scan_speedup_max = scan_speedup_max.max(scan_speedup);
        scan.push(ScanSummary {
            dataset: name.to_string(),
            m_scan,
            scalar_scan_secs: per_kernel_scan[0],
            auto_scan_secs: per_kernel_scan[1],
            scan_speedup,
            chunks_skipped_frac: skipped_frac,
        });

        // ---- Phase 4: bound-pruning ladder on the evaluation snapshots ----
        let mut per_mode: [Option<(PipelineStats, usize)>; 2] = [None, None];
        for (i, mode) in [SsspPrune::Off, SsspPrune::Auto].into_iter().enumerate() {
            let mut best: Option<(PipelineStats, usize)> = None;
            for _ in 0..REPEATS {
                let r = run_prune_probe(&g1, &g2, m, opts.seed, mode);
                if best
                    .as_ref()
                    .map_or(true, |b| r.0.sssp_secs < b.0.sssp_secs)
                {
                    best = Some(r);
                }
            }
            let (stats, pairs) = best.expect("REPEATS >= 1");
            eprintln!(
                "  {name} prune [{}]: {:.4}s sssp, {} settled / {} relaxed ({} truncated, \
                 {} rows + {} pairs prefiltered; {} pairs found)",
                mode.name(),
                stats.sssp_secs,
                stats.settled_nodes,
                stats.relaxed_edges,
                stats.rows_truncated,
                stats.rows_prefiltered,
                stats.pairs_prefiltered,
                pairs,
            );
            prune_ladder.push(PruneSweep {
                dataset: name.to_string(),
                sssp_prune: mode.name().to_string(),
                pairs,
                sssp_computed: stats.sssp_computed,
                sssp_secs: stats.sssp_secs,
                settled_nodes: stats.settled_nodes,
                relaxed_edges: stats.relaxed_edges,
                rows_truncated: stats.rows_truncated,
                rows_prefiltered: stats.rows_prefiltered,
                pairs_prefiltered: stats.pairs_prefiltered,
            });
            per_mode[i] = Some((stats, pairs));
        }
        let (off_stats, off_pairs) = per_mode[0].take().expect("off mode ran");
        let (auto_stats, auto_pairs) = per_mode[1].take().expect("auto mode ran");
        assert_eq!(off_pairs, auto_pairs, "{name}: pruning changed the answer");
        assert_eq!(
            off_stats.sssp_computed, auto_stats.sssp_computed,
            "{name}: pruning changed the ledger"
        );
        let relaxed_ratio =
            off_stats.relaxed_edges as f64 / (auto_stats.relaxed_edges.max(1)) as f64;
        let sssp_speedup = off_stats.sssp_secs / auto_stats.sssp_secs.max(f64::MIN_POSITIVE);
        eprintln!(
            "  {name} prune ladder: {:.2}x fewer relaxed edges, {sssp_speedup:.2}x sssp \
             wall clock ({} t2 rows truncated)",
            relaxed_ratio, auto_stats.rows_truncated,
        );
        prune_relaxed_totals[0] += off_stats.relaxed_edges;
        prune_relaxed_totals[1] += auto_stats.relaxed_edges;
        prune_sssp_totals[0] += off_stats.sssp_secs;
        prune_sssp_totals[1] += auto_stats.sssp_secs;
        prune.push(PruneSummary {
            dataset: name.to_string(),
            off_relaxed_edges: off_stats.relaxed_edges,
            auto_relaxed_edges: auto_stats.relaxed_edges,
            relaxed_edges_ratio: relaxed_ratio,
            off_settled_nodes: off_stats.settled_nodes,
            auto_settled_nodes: auto_stats.settled_nodes,
            off_sssp_secs: off_stats.sssp_secs,
            auto_sssp_secs: auto_stats.sssp_secs,
            sssp_speedup,
            rows_truncated: auto_stats.rows_truncated,
        });

        // ---- Phase 5: streaming ladder, chained vs per-step rebuild ----
        let mut per_mode_stream = [StreamSweep::default(), StreamSweep::default()];
        let mut checksums = [0u64; 2];
        for (i, chain) in [true, false].into_iter().enumerate() {
            let mut best: Option<(StreamSweep, u64)> = None;
            for _ in 0..REPEATS {
                let r = run_stream_ladder(&t, m, opts.seed, chain);
                if best
                    .as_ref()
                    .map_or(true, |b| r.0.pipeline_secs < b.0.pipeline_secs)
                {
                    best = Some(r);
                }
            }
            let (mut sweep, checksum) = best.expect("REPEATS >= 1");
            sweep.dataset = name.to_string();
            eprintln!(
                "  {name} stream [{}] {} reviews, {} events: {:.4}s pipeline, {} SSSPs, \
                 {} donors imported, {} chain hits + {} repairs ({:.0}% hit rate)",
                sweep.mode,
                sweep.reviews,
                sweep.events,
                sweep.pipeline_secs,
                sweep.sssp_computed,
                sweep.donor_rows_imported,
                sweep.donor_chain_hits,
                sweep.repaired_rows,
                100.0 * sweep.donor_hit_rate,
            );
            checksums[i] = checksum;
            per_mode_stream[i] = sweep.clone();
            stream_ladder.push(sweep);
        }
        let [chained_run, rebuilt_run] = per_mode_stream;
        assert_eq!(
            checksums[0], checksums[1],
            "{name}: chaining changed the reported pairs"
        );
        assert_eq!(
            chained_run.sssp_computed, rebuilt_run.sssp_computed,
            "{name}: chaining changed the ledger"
        );
        let stream_speedup =
            rebuilt_run.pipeline_secs / chained_run.pipeline_secs.max(f64::MIN_POSITIVE);
        eprintln!(
            "  {name} stream ladder: hit rate {:.0}% chained vs {:.0}% rebuilt, \
             {stream_speedup:.2}x pipeline wall clock",
            100.0 * chained_run.donor_hit_rate,
            100.0 * rebuilt_run.donor_hit_rate,
        );
        stream_hit_totals[0][0] += chained_run.donor_chain_hits + chained_run.repaired_rows;
        stream_hit_totals[0][1] += chained_run.sssp_computed;
        stream_hit_totals[1][0] += rebuilt_run.donor_chain_hits + rebuilt_run.repaired_rows;
        stream_hit_totals[1][1] += rebuilt_run.sssp_computed;
        if chained_run.donor_hit_rate > rebuilt_run.donor_hit_rate {
            stream_gain_datasets += 1;
        }
        stream.push(StreamSummary {
            dataset: name.to_string(),
            reviews: chained_run.reviews,
            chained_hit_rate: chained_run.donor_hit_rate,
            rebuilt_hit_rate: rebuilt_run.donor_hit_rate,
            hit_rate_gain: chained_run.donor_hit_rate - rebuilt_run.donor_hit_rate,
            chained_pipeline_secs: chained_run.pipeline_secs,
            rebuilt_pipeline_secs: rebuilt_run.pipeline_secs,
            stream_speedup,
        });

        // ---- Phase 6: snapshot-store ladder on the tight pair ----
        let total_arcs = 2 * (r1.num_edges() + r2.num_edges()) as u64;
        let full_bytes = (r1.heap_bytes() + r2.heap_bytes()) as u64;
        let full_bpa = full_bytes as f64 / total_arcs.max(1) as f64;
        let mut per_store: Vec<StoreSweep> = Vec::new();
        for st in [
            GraphStore::Full,
            GraphStore::Overlay,
            GraphStore::Compressed,
        ] {
            let mut best: Option<(PipelineStats, usize, f64)> = None;
            for _ in 0..REPEATS {
                let r = run_store_probe(&r1, &r2, m, opts.seed, st);
                if best.as_ref().map_or(true, |b| r.2 < b.2) {
                    best = Some(r);
                }
            }
            let (stats, pairs, secs) = best.expect("REPEATS >= 1");
            let mem = stats.graph_mem;
            eprintln!(
                "  {name} store [{}]: {:.4}s pipeline, {} pairs; graph {} KiB full, \
                 {} KiB overlay sharing {} arcs, {} KiB compressed at {:.2} B/arc \
                 (full {full_bpa:.2})",
                st.name(),
                secs,
                pairs,
                mem.base_bytes / 1024,
                mem.overlay_bytes / 1024,
                mem.overlay_shared_arcs,
                mem.compressed_bytes / 1024,
                mem.compressed_bytes_per_arc,
            );
            per_store.push(StoreSweep {
                dataset: name.to_string(),
                store: st.name().to_string(),
                pairs,
                secs,
                sssp_secs: stats.sssp_secs,
                base_bytes: mem.base_bytes,
                overlay_bytes: mem.overlay_bytes,
                overlay_shared_arcs: mem.overlay_shared_arcs,
                compressed_bytes: mem.compressed_bytes,
                compressed_bytes_per_arc: mem.compressed_bytes_per_arc,
                full_bytes_per_arc: full_bpa,
            });
        }
        assert!(
            per_store.windows(2).all(|w| w[0].pairs == w[1].pairs),
            "{name}: snapshot store changed the answer"
        );
        let [_, overlay_row, comp_row]: &[StoreSweep; 3] =
            per_store.as_slice().try_into().expect("three stores ran");
        assert!(
            overlay_row.overlay_shared_arcs > 0,
            "{name}: overlay run never shared a base arc"
        );
        eprintln!(
            "  {name} store ladder: compressed {:.2} B/arc vs full {full_bpa:.2} \
             ({:.2}x shrink); overlay {} KiB on a {} KiB pair ({:.1}% marginal)",
            comp_row.compressed_bytes_per_arc,
            full_bpa / comp_row.compressed_bytes_per_arc.max(f64::MIN_POSITIVE),
            overlay_row.overlay_bytes / 1024,
            full_bytes / 1024,
            100.0 * overlay_row.overlay_bytes as f64 / full_bytes.max(1) as f64,
        );
        store_bytes_totals[0] += full_bytes;
        store_bytes_totals[1] += comp_row.compressed_bytes;
        store_bytes_totals[2] += overlay_row.overlay_bytes;
        store_arcs_total += total_arcs;
        store.push(StoreSummary {
            dataset: name.to_string(),
            delta_edges,
            full_bytes_per_arc: full_bpa,
            compressed_bytes_per_arc: comp_row.compressed_bytes_per_arc,
            compressed_ratio: comp_row.compressed_bytes_per_arc / full_bpa.max(f64::MIN_POSITIVE),
            overlay_bytes: overlay_row.overlay_bytes,
            overlay_frac: overlay_row.overlay_bytes as f64 / overlay_row.base_bytes.max(1) as f64,
            overlay_shared_arcs: overlay_row.overlay_shared_arcs,
        });
        store_ladder.append(&mut per_store);

        // ---- Phase 7: query-throughput ladder over published epochs ----
        let twin = run_query_ladder(&t, m, opts.seed, 0);
        for readers in QUERY_READERS {
            let mut sweep = run_query_ladder(&t, m, opts.seed, readers);
            sweep.dataset = name.to_string();
            assert_eq!(
                sweep.ledger, twin.ledger,
                "{name}: concurrent queries changed the review ledger"
            );
            query_budget_charged += sweep.ledger.abs_diff(twin.ledger);
            query_answer_totals[0] += sweep.exact;
            query_answer_totals[1] += sweep.bounded;
            query_answer_totals[2] += sweep.unknown;
            query_qps_peak = query_qps_peak.max(sweep.qps);
            eprintln!(
                "  {name} query [{readers} readers] {} queries in {:.4}s ({:.0} q/s): \
                 {} exact, {} bounded, {} unknown; ledger {} (= twin, 0 charged)",
                sweep.queries,
                sweep.secs,
                sweep.qps,
                sweep.exact,
                sweep.bounded,
                sweep.unknown,
                sweep.ledger,
            );
            query_ladder.push(sweep);
        }
    }

    let thread_regression = datasets.iter().any(|d| d.thread_regression);
    let exec_steals: u64 = sweeps.iter().map(|s| s.exec.exec_steals).sum();
    let baseline = Baseline {
        benchmark: "table5_pipeline".to_string(),
        scale: opts.scale,
        seed: opts.seed,
        m,
        repeats: REPEATS,
        threads_multi,
        repair_t1_fraction: REPAIR_T1,
        sweeps,
        datasets,
        repair,
        scan_ladder,
        scan,
        prune_ladder,
        prune,
        stream_ladder,
        stream,
        store_ladder,
        store,
        query_ladder,
        scalar_single_secs: totals[SLOT_SCALAR],
        optimized_single_secs: totals[SLOT_AUTO],
        multi_thread_secs: totals[SLOT_MULTI],
        kernel_speedup: sssp_totals[0] / sssp_totals[1].max(f64::MIN_POSITIVE),
        repair_speedup: t2_totals[0] / t2_totals[1].max(f64::MIN_POSITIVE),
        repair_speedup_max,
        scan_speedup: scan_totals[0] / scan_totals[1].max(f64::MIN_POSITIVE),
        scan_speedup_max,
        prune_relaxed_ratio: prune_relaxed_totals[0] as f64
            / (prune_relaxed_totals[1].max(1)) as f64,
        prune_sssp_speedup: prune_sssp_totals[0] / prune_sssp_totals[1].max(f64::MIN_POSITIVE),
        stream_chained_hit_rate: stream_hit_totals[0][0] as f64
            / stream_hit_totals[0][1].max(1) as f64,
        stream_rebuilt_hit_rate: stream_hit_totals[1][0] as f64
            / stream_hit_totals[1][1].max(1) as f64,
        stream_gain_datasets,
        full_bytes_per_arc: store_bytes_totals[0] as f64 / store_arcs_total.max(1) as f64,
        compressed_bytes_per_arc: store_bytes_totals[1] as f64 / store_arcs_total.max(1) as f64,
        compressed_ratio: store_bytes_totals[1] as f64 / store_bytes_totals[0].max(1) as f64,
        overlay_frac: store_bytes_totals[2] as f64 / store_bytes_totals[0].max(1) as f64,
        query_exact_answers: query_answer_totals[0],
        query_bounded_answers: query_answer_totals[1],
        query_unknown_answers: query_answer_totals[2],
        query_budget_charged,
        query_qps_peak,
        best_config_secs: totals[SLOT_AUTO]
            .min(totals[SLOT_REPAIR])
            .min(totals[SLOT_MULTI]),
        thread_regression,
        exec_steals,
        total_speedup: totals[SLOT_SCALAR]
            / totals[SLOT_AUTO]
                .min(totals[SLOT_REPAIR])
                .min(totals[SLOT_MULTI])
                .max(f64::MIN_POSITIVE),
    };
    let rendered = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(out, &rendered).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("{rendered}");
    eprintln!(
        "wrote {out}: sssp path {:.3}s scalar vs {:.3}s optimized single-thread ({:.2}x \
         kernel); incremental t2 path {:.4}s repair-off vs {:.4}s repair-on ({:.2}x repair, \
         best dataset {:.2}x); Δ-scan path {:.4}s scalar vs {:.4}s blocked ({:.2}x scan, \
         best dataset {:.2}x); bound pruning {:.2}x fewer relaxed edges, {:.2}x sssp wall \
         clock; streaming ladder hit rate {:.0}% chained vs {:.0}% rebuilt ({} datasets \
         strictly ahead); snapshot stores {:.2} B/arc compressed vs {:.2} full ({:.2}x \
         ratio), overlay at {:.1}% of the pair's bytes; query ladder peak {:.0} q/s \
         ({} exact / {} bounded / {} unknown, {} budget charged); suite {:.3}s vs {:.3}s \
         single-thread, {:.3}s at {} threads ({:.2}x total at the best config, {} steals, \
         thread regression: {})",
        sssp_totals[0],
        sssp_totals[1],
        baseline.kernel_speedup,
        t2_totals[0],
        t2_totals[1],
        baseline.repair_speedup,
        baseline.repair_speedup_max,
        scan_totals[0],
        scan_totals[1],
        baseline.scan_speedup,
        baseline.scan_speedup_max,
        baseline.prune_relaxed_ratio,
        baseline.prune_sssp_speedup,
        100.0 * baseline.stream_chained_hit_rate,
        100.0 * baseline.stream_rebuilt_hit_rate,
        baseline.stream_gain_datasets,
        baseline.compressed_bytes_per_arc,
        baseline.full_bytes_per_arc,
        baseline.compressed_ratio,
        100.0 * baseline.overlay_frac,
        baseline.query_qps_peak,
        baseline.query_exact_answers,
        baseline.query_bounded_answers,
        baseline.query_unknown_answers,
        baseline.query_budget_charged,
        baseline.scalar_single_secs,
        baseline.optimized_single_secs,
        baseline.multi_thread_secs,
        baseline.threads_multi,
        baseline.total_speedup,
        baseline.exec_steals,
        baseline.thread_regression
    );
}
