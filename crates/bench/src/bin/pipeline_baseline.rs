//! Machine-readable perf baseline for the parallel pipeline.
//!
//! Runs the Table 5 pipeline (every selector of the suite on every
//! dataset at the paper's budget) twice — once with the oracle pinned to
//! a single worker thread, once with the configured thread count — and
//! writes the wall-clock comparison to `BENCH_pipeline.json` in the
//! current directory. Both runs produce bit-identical pairs and ledgers
//! (see `crates/core/tests/parallel_equivalence.rs`); only the timing
//! differs, which is what this baseline records.
//!
//! ```text
//! cargo run --release -p cp-bench --bin pipeline_baseline -- --scale=0.25
//! ```

use cp_bench::{scaled_budget, Options};
use cp_core::exact::TopKSpec;
use cp_core::oracle::SnapshotOracle;
use cp_core::selectors::SelectorKind;
use cp_core::topk::run_pipeline;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Timing of one (dataset, thread-count) pipeline sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct SweepTiming {
    dataset: String,
    threads: usize,
    /// Best-of-repeats wall clock of the whole selector suite, seconds.
    secs: f64,
    /// SSSPs charged across the suite (identical for every thread count).
    sssp_computed: u64,
}

/// The written baseline document.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Baseline {
    benchmark: String,
    scale: f64,
    seed: u64,
    m: u64,
    repeats: u32,
    threads_multi: usize,
    sweeps: Vec<SweepTiming>,
    single_thread_secs: f64,
    multi_thread_secs: f64,
    speedup: f64,
}

const REPEATS: u32 = 3;

fn main() {
    let opts = Options::from_env();
    let threads_multi = opts.threads.max(2);
    let m = scaled_budget(100, opts.scale);
    let spec = TopKSpec::ThresholdFromMax { slack: 1 };
    let suite = SelectorKind::table5_suite();

    eprintln!(
        "pipeline_baseline: scale {}, seed {}, m {m}, 1 vs {threads_multi} threads",
        opts.scale, opts.seed
    );

    let all = opts.all_snapshots();
    let mut sweeps: Vec<SweepTiming> = Vec::new();
    let mut totals = [0.0f64; 2]; // [single, multi]

    for snaps in &all {
        for (slot, threads) in [(0usize, 1usize), (1, threads_multi)] {
            let mut best = f64::INFINITY;
            let mut sssp = 0u64;
            for _ in 0..REPEATS {
                let started = Instant::now();
                let mut spent = 0u64;
                for &kind in &suite {
                    let mut oracle = SnapshotOracle::with_budget(&snaps.g1, &snaps.g2, 2 * m)
                        .with_threads(threads);
                    let mut sel = kind.build(opts.seed);
                    let res = run_pipeline(&mut oracle, sel.as_mut(), &spec);
                    spent += res.stats.sssp_computed;
                }
                best = best.min(started.elapsed().as_secs_f64());
                sssp = spent;
            }
            eprintln!(
                "  {} @ {threads} thread(s): {best:.3}s ({sssp} SSSPs)",
                snaps.name
            );
            totals[slot] += best;
            sweeps.push(SweepTiming {
                dataset: snaps.name.clone(),
                threads,
                secs: best,
                sssp_computed: sssp,
            });
        }
    }

    let baseline = Baseline {
        benchmark: "table5_pipeline".to_string(),
        scale: opts.scale,
        seed: opts.seed,
        m,
        repeats: REPEATS,
        threads_multi,
        sweeps,
        single_thread_secs: totals[0],
        multi_thread_secs: totals[1],
        speedup: totals[0] / totals[1].max(f64::MIN_POSITIVE),
    };
    let rendered = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write("BENCH_pipeline.json", &rendered).expect("write BENCH_pipeline.json");
    println!("{rendered}");
    eprintln!(
        "wrote BENCH_pipeline.json: {:.3}s single vs {:.3}s multi ({:.2}x)",
        baseline.single_thread_secs, baseline.multi_thread_secs, baseline.speedup
    );
}
