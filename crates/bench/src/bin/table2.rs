//! Table 2 — dataset characteristics: nodes/edges per snapshot, exact
//! diameters, the maximum distance decrease Δmax and the number of
//! not-connected pairs in `G_t1`.

use cp_bench::{print_table, Options};
use cp_core::experiment::dataset_stats;

fn main() {
    let opts = Options::from_env();
    let mut rows = Vec::new();
    for mut snaps in opts.all_snapshots() {
        let s = dataset_stats(&mut snaps);
        if opts.json {
            println!("{}", serde_json::to_string(&s).unwrap());
        }
        rows.push(vec![
            s.dataset,
            s.nodes.0.to_string(),
            s.nodes.1.to_string(),
            s.edges.0.to_string(),
            s.edges.1.to_string(),
            s.diameter.0.to_string(),
            s.diameter.1.to_string(),
            s.delta_max.to_string(),
            s.not_connected.to_string(),
        ]);
    }
    print_table(
        &format!("Table 2: dataset characteristics (scale {})", opts.scale),
        &[
            "dataset",
            "nodes G_t1",
            "nodes G_t2",
            "edges G_t1",
            "edges G_t2",
            "diam G_t1",
            "diam G_t2",
            "max delta",
            "not-connected",
        ],
        &rows,
    );
}
