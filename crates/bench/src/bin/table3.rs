//! Table 3 — characteristics of the pair graphs `G^p_k`: for each dataset
//! and each δ ∈ {Δmax, Δmax−1, Δmax−2}, the number of answer pairs, the
//! number of distinct endpoints, and the size of the greedy vertex cover
//! ("maxcover").

use cp_bench::{print_table, Options};
use cp_core::experiment::gpk_stats;

fn main() {
    let opts = Options::from_env();
    let mut rows = Vec::new();
    for mut snaps in opts.all_snapshots() {
        for slack in [0u32, 1, 2] {
            let s = gpk_stats(&mut snaps, slack);
            if opts.json {
                println!("{}", serde_json::to_string(&s).unwrap());
            }
            rows.push(vec![
                s.dataset,
                format!("max-{}", s.slack),
                s.delta.to_string(),
                s.endpoints.to_string(),
                s.pairs.to_string(),
                s.maxcover.to_string(),
            ]);
        }
    }
    print_table(
        &format!(
            "Table 3: G^p_k characteristics and greedy cover sizes (scale {})",
            opts.scale
        ),
        &[
            "dataset",
            "delta",
            "value",
            "endpoints",
            "pairs",
            "maxcover",
        ],
        &rows,
    );
    println!(
        "\nPaper shape check: maxcover << endpoints <= 2*pairs on every row;\n\
         coverable with a handful of SSSP sources even when k is large."
    );
}
