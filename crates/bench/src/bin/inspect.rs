//! Diagnostic tool: where are the converging pairs of a dataset, and how
//! do the landmark placements see them? Prints the top pairs, the greedy
//! cover, and — for each landmark policy — the rank position that the
//! cover nodes get in the SumDiff ordering. Useful when tuning the dataset
//! emulators or investigating a selector's miss.

use cp_bench::Options;
use cp_core::oracle::SnapshotOracle;
use cp_core::selectors::{dispersion_pick, landmark_change_scores, DispersionMode};
use cp_core::PairGraph;
use cp_gen::datasets::DatasetKind;
use cp_graph::degrees::top_m_by_score_u32;
use cp_graph::NodeId;

fn main() {
    let opts = Options::from_env();
    for kind in DatasetKind::ALL {
        let mut snaps = opts.snapshots(kind);
        let truth = snaps.truth(1).clone();
        let gpk = PairGraph::new(&truth.pairs);
        let cover = gpk.greedy_vertex_cover();
        println!(
            "\n=== {} ===  delta_max {}  k {}  endpoints {}  maxcover {}",
            snaps.name,
            truth.delta_max,
            truth.k(),
            gpk.num_endpoints(),
            cover.nodes.len()
        );
        for p in truth.pairs.iter().take(5) {
            println!("  top pair ({}, {}) delta {}", p.pair.0, p.pair.1, p.delta);
        }
        println!(
            "  cover (first 10): {:?}",
            &cover.nodes[..cover.nodes.len().min(10)]
        );

        for (label, mode) in [
            ("random", None),
            ("maxmin", Some(DispersionMode::MaxMin)),
            ("maxavg", Some(DispersionMode::MaxAvg)),
        ] {
            let mut oracle = SnapshotOracle::unbounded(&snaps.g1, &snaps.g2);
            let landmarks: Vec<NodeId> = match mode {
                Some(m) => dispersion_pick(&mut oracle, 10, m),
                None => {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
                    let g1 = &snaps.g1;
                    let pool: Vec<NodeId> = g1.nodes().filter(|&u| g1.degree(u) > 0).collect();
                    (0..10)
                        .map(|_| pool[rng.random_range(0..pool.len())])
                        .collect()
                }
            };
            let scores = landmark_change_scores(&mut oracle, &landmarks);
            let ranked = top_m_by_score_u32(&scores.sum, snaps.g1.num_nodes());
            let pos_of = |n: NodeId| ranked.iter().position(|&x| x == n).unwrap_or(usize::MAX);
            let mut cover_positions: Vec<usize> = cover.nodes.iter().map(|&c| pos_of(c)).collect();
            cover_positions.sort_unstable();
            let top_score = ranked.first().map(|&u| scores.sum[u.index()]).unwrap_or(0);
            println!(
                "  {label:>7} landmarks {:?}",
                &landmarks[..landmarks.len().min(6)]
            );
            println!(
                "          top sumdiff score {top_score}; cover nodes at sumdiff ranks {:?}",
                &cover_positions[..cover_positions.len().min(10)]
            );
        }
    }
}
