//! Figure 3 — the classifiers vs the best single-feature algorithm:
//! coverage as the budget grows, one panel per dataset.
//!
//! The local classifier (L-Classifier) trains on the 40 %/60 % snapshots
//! of the same dataset; the global classifier (G-Classifier) trains on all
//! four datasets' training pairs in equal proportion, with graph-level
//! features appended. Paper shape: both catch up with the per-dataset best
//! algorithm despite the 3·2l landmark set-up handicap; G-Classifier lags
//! on the atypical Actors-like dataset.

use cp_bench::{pct, print_table, scaled_budget, Options};
use cp_core::experiment::{run_kind, run_selector, Snapshots};
use cp_core::selectors::{ClassifierConfig, ClassifierSelector, SelectorKind};

fn main() {
    let opts = Options::from_env();
    let slack = 1u32;
    let budgets: Vec<u64> = [20u64, 50, 100, 200, 300]
        .iter()
        .map(|&m| scaled_budget(m, opts.scale))
        .collect();
    let config = ClassifierConfig {
        slack,
        threads: opts.threads,
        ..ClassifierConfig::default()
    };

    let mut all: Vec<Snapshots> = opts.all_snapshots();

    // The global classifier trains on every dataset's training pair. The
    // graphs are cloned out so the snapshot bundles stay mutably borrowable
    // inside the per-dataset loop.
    let training: Vec<(cp_graph::Graph, cp_graph::Graph)> = all
        .iter()
        .map(|s| (s.train_g1.clone(), s.train_g2.clone()))
        .collect();
    let training_pairs: Vec<(&cp_graph::Graph, &cp_graph::Graph)> =
        training.iter().map(|(a, b)| (a, b)).collect();
    eprintln!("training G-Classifier on all training pairs...");
    let mut global = ClassifierSelector::train_global(&training_pairs, config, opts.seed);

    for snaps in all.iter_mut() {
        let k = snaps.truth(slack).k();

        // Find the best single-feature selector at the paper's reference
        // budget for this dataset.
        let reference_m = scaled_budget(100, opts.scale);
        let mut best_kind = SelectorKind::Mmsd {
            landmarks: cp_core::selectors::DEFAULT_LANDMARKS,
        };
        let mut best_cov = -1.0;
        for kind in SelectorKind::table5_suite() {
            let row = run_kind(snaps, kind, reference_m, slack, opts.seed);
            if row.coverage > best_cov {
                best_cov = row.coverage;
                best_kind = kind;
            }
        }
        eprintln!(
            "[{}] best single-feature selector at m={reference_m}: {} ({:.1}%)",
            snaps.name,
            best_kind.name(),
            100.0 * best_cov
        );

        let mut rows = Vec::new();
        // Row 1: the best algorithm across budgets.
        let mut cells = vec![format!("best ({})", best_kind.name())];
        for &m in &budgets {
            cells.push(pct(run_kind(snaps, best_kind, m, slack, opts.seed).coverage));
        }
        rows.push(cells);

        // Row 2: local classifier.
        let mut local = snaps.local_classifier(config, opts.seed);
        let mut cells = vec!["L-Classifier".to_string()];
        for &m in &budgets {
            let row = run_selector(snaps, &mut local, m, slack);
            if opts.json {
                println!("{}", serde_json::to_string(&row).unwrap());
            }
            cells.push(pct(row.coverage));
        }
        rows.push(cells);

        // Row 3: global classifier (trained once on all four datasets).
        let mut cells = vec!["G-Classifier".to_string()];
        for &m in &budgets {
            let row = run_selector(snaps, &mut global, m, slack);
            if opts.json {
                println!("{}", serde_json::to_string(&row).unwrap());
            }
            cells.push(pct(row.coverage));
        }
        rows.push(cells);

        let mut header = vec!["series".to_string()];
        header.extend(budgets.iter().map(|m| format!("m={m}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Figure 3 [{}]: classifiers vs best algorithm (delta = max-1, k = {k})",
                snaps.name
            ),
            &header_refs,
            &rows,
        );
    }
}
