//! Ablation studies for the design choices DESIGN.md §10 calls out:
//!
//! 1. landmark count `l` (the paper fixes 10 and reports that more did not
//!    help) — coverage at a fixed budget as `l` varies;
//! 2. the classifier's positive class — greedy cover vs all `G^p_k`
//!    endpoints (the paper reports "very similar" results);
//! 3. class weighting in the logistic regression — plain (LIBLINEAR
//!    default) vs inverse-frequency balanced;
//! 4. the ranking norm — L1 (SumDiff) vs L∞ (MaxDiff) under each landmark
//!    placement policy.

use cp_bench::{pct, print_table, scaled_budget, Options};
use cp_core::experiment::{run_kind, run_selector};
use cp_core::selectors::{ClassifierConfig, PositiveClass, SelectorKind};

fn main() {
    let opts = Options::from_env();
    let m = scaled_budget(100, opts.scale);
    let slack = 1u32;
    // One snapshot bundle per dataset, shared by all ablations so the
    // exact ground truth is computed once.
    let mut snapshots = opts.all_snapshots();

    // ---- 1. Landmark count ----
    let mut rows = Vec::new();
    for kind_name in ["SumDiff", "MMSD", "MASD"] {
        let mut cells = vec![kind_name.to_string()];
        for l in [2usize, 5, 10, 20, 40] {
            let kind = match kind_name {
                "SumDiff" => SelectorKind::SumDiff { landmarks: l },
                "MMSD" => SelectorKind::Mmsd { landmarks: l },
                _ => SelectorKind::Masd { landmarks: l },
            };
            let mut total = 0.0;
            for snaps in snapshots.iter_mut() {
                total += run_kind(snaps, kind, m, slack, opts.seed).coverage;
            }
            cells.push(pct(total / 4.0));
        }
        rows.push(cells);
    }
    print_table(
        &format!("Ablation 1: landmark count l (mean coverage % over 4 datasets, m = {m})"),
        &["selector", "l=2", "l=5", "l=10", "l=20", "l=40"],
        &rows,
    );
    println!(
        "Paper claim to check: performance saturates around l = 10; bigger l\n\
         spends budget on landmarks without improving the ranking."
    );

    // ---- 2 & 3. Classifier positive class × balancing ----
    let mut rows = Vec::new();
    for (label, positive_class, balanced) in [
        ("cover, balanced", PositiveClass::GreedyCover, true),
        ("cover, plain", PositiveClass::GreedyCover, false),
        ("endpoints, balanced", PositiveClass::AllEndpoints, true),
        ("endpoints, plain", PositiveClass::AllEndpoints, false),
    ] {
        let mut cells = vec![label.to_string()];
        for snaps in snapshots.iter_mut() {
            let config = ClassifierConfig {
                positive_class,
                balanced,
                slack,
                threads: opts.threads,
                ..ClassifierConfig::default()
            };
            let mut classifier = snaps.local_classifier(config, opts.seed);
            let row = run_selector(snaps, &mut classifier, m, slack);
            cells.push(pct(row.coverage));
        }
        rows.push(cells);
    }
    print_table(
        &format!(
            "Ablation 2+3: classifier positive class and class weighting (coverage % at m = {m})"
        ),
        &["variant", "Actors", "Internet links", "Facebook", "DBLP"],
        &rows,
    );

    // ---- 4. Norm choice under each placement ----
    let mut rows = Vec::new();
    let l = 10usize;
    for (label, l1, linf) in [
        (
            "random",
            SelectorKind::SumDiff { landmarks: l },
            SelectorKind::MaxDiff { landmarks: l },
        ),
        (
            "MaxMin",
            SelectorKind::Mmsd { landmarks: l },
            SelectorKind::Mmmd { landmarks: l },
        ),
        (
            "MaxAvg",
            SelectorKind::Masd { landmarks: l },
            SelectorKind::Mamd { landmarks: l },
        ),
    ] {
        let mut sum_total = 0.0;
        let mut max_total = 0.0;
        for snaps in snapshots.iter_mut() {
            sum_total += run_kind(snaps, l1, m, slack, opts.seed).coverage;
            max_total += run_kind(snaps, linf, m, slack, opts.seed).coverage;
        }
        rows.push(vec![
            label.to_string(),
            pct(sum_total / 4.0),
            pct(max_total / 4.0),
        ]);
    }
    print_table(
        "Ablation 4: L1 (SumDiff) vs Linf (MaxDiff) ranking norm (mean coverage %)",
        &["landmark placement", "L1", "Linf"],
        &rows,
    );
    println!("Paper claim to check: SumDiff consistently beats MaxDiff.");
}
