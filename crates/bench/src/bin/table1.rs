//! Table 1 — shortest-path computations per approach, split into the
//! candidate-generation and top-k phases.
//!
//! The paper's Table 1 is analytic (degree: 0 + 2m; dispersion: m + m;
//! landmark/hybrid: 2l + (2m − 2l); classifier: 6l + (2m − 6l)). This
//! binary *measures* the split on a real run through the budget ledger,
//! demonstrating that the implementation enforces, not just documents,
//! the cost model. Measured generation can fall below the analytic bound
//! when landmark sets overlap (cached rows are free).

use cp_bench::{print_table, Options};
use cp_core::experiment::run_kind;
use cp_core::selectors::{ClassifierConfig, SelectorKind, DEFAULT_LANDMARKS};
use cp_gen::datasets::DatasetKind;

fn main() {
    let opts = Options::from_env();
    let m = cp_bench::scaled_budget(100, opts.scale);
    let l = DEFAULT_LANDMARKS as u64;
    let mut snaps = opts.snapshots(DatasetKind::Facebook);
    println!(
        "Table 1 reproduction on {} (scale {}, m = {m}, l = {l})",
        snaps.name, opts.scale
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let analytic: &[(&str, SelectorKind, u64, u64)] = &[
        ("Degree-based", SelectorKind::Degree, 0, 2 * m),
        ("Dispersion-based", SelectorKind::MaxAvg, m, m),
        (
            "Landmark-based",
            SelectorKind::SumDiff {
                landmarks: l as usize,
            },
            2 * l,
            2 * m - 2 * l,
        ),
        (
            "Hybrid",
            SelectorKind::Mmsd {
                landmarks: l as usize,
            },
            2 * l,
            2 * m - 2 * l,
        ),
    ];
    for &(name, kind, gen_expected, topk_expected) in analytic {
        let row = run_kind(&mut snaps, kind, m, 1, opts.seed);
        rows.push(vec![
            name.to_string(),
            format!("{gen_expected}"),
            format!("{}", row.budget.generation),
            format!("{topk_expected}"),
            format!("{}", row.budget.topk),
            format!("{}", row.budget.total()),
        ]);
        if opts.json {
            println!("{}", serde_json::to_string(&row).unwrap());
        }
    }

    // Classification-based: 3 * 2l generation, rest top-k.
    let config = ClassifierConfig {
        threads: opts.threads,
        ..ClassifierConfig::default()
    };
    let mut classifier = snaps.local_classifier(config, opts.seed);
    let row = cp_core::experiment::run_selector(&mut snaps, &mut classifier, m, 1);
    rows.push(vec![
        "Classification-based".to_string(),
        format!("{}", 6 * l),
        format!("{}", row.budget.generation),
        format!("{}", 2 * m - 6 * l),
        format!("{}", row.budget.topk),
        format!("{}", row.budget.total()),
    ]);
    if opts.json {
        println!("{}", serde_json::to_string(&row).unwrap());
    }

    print_table(
        "Table 1: SSSP budget split (analytic vs measured)",
        &[
            "approach",
            "gen (paper)",
            "gen (meas)",
            "topk (paper)",
            "topk (meas)",
            "total",
        ],
        &rows,
    );
    println!("\nAll totals must be <= 2m = {}.", 2 * m);
}
