//! Multi-seed robustness check: the paper's qualitative conclusions must
//! not be artifacts of one generator seed. Runs the headline selectors
//! over several seeds per dataset and reports mean ± stddev coverage.

use cp_bench::{print_table, scaled_budget, Options};
use cp_core::experiment::run_kind;
use cp_core::selectors::SelectorKind;
use cp_gen::datasets::DatasetKind;

fn main() {
    let opts = Options::from_env();
    let m = scaled_budget(100, opts.scale);
    let slack = 1u32;
    let seeds: Vec<u64> = (0..5).map(|i| opts.seed + 1000 * i).collect();
    let selectors = [
        SelectorKind::DegRel,
        SelectorKind::SumDiff { landmarks: 10 },
        SelectorKind::Mmsd { landmarks: 10 },
        SelectorKind::Masd { landmarks: 10 },
        SelectorKind::IncDeg,
        SelectorKind::Random,
    ];

    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        // One snapshot bundle per seed (ground truth recomputed per seed).
        let mut bundles: Vec<_> = seeds
            .iter()
            .map(|&s| {
                let t = cp_gen::datasets::DatasetProfile::scaled(kind, opts.scale).generate(s);
                cp_core::experiment::Snapshots::from_temporal(kind.name(), &t, opts.threads)
            })
            .collect();
        for &selector in &selectors {
            let coverages: Vec<f64> = bundles
                .iter_mut()
                .zip(&seeds)
                .map(|(snaps, &s)| run_kind(snaps, selector, m, slack, s).coverage)
                .collect();
            let mean = coverages.iter().sum::<f64>() / coverages.len() as f64;
            let var = coverages
                .iter()
                .map(|c| (c - mean) * (c - mean))
                .sum::<f64>()
                / coverages.len() as f64;
            rows.push(vec![
                kind.name().to_string(),
                selector.name().to_string(),
                format!("{:.1}", 100.0 * mean),
                format!("{:.1}", 100.0 * var.sqrt()),
                coverages
                    .iter()
                    .map(|c| format!("{:.0}", 100.0 * c))
                    .collect::<Vec<_>>()
                    .join("/"),
            ]);
        }
        eprintln!("{} done", kind.name());
    }
    print_table(
        &format!(
            "Robustness: coverage % over {} seeds (m = {m}, delta = max-1, scale {})",
            seeds.len(),
            opts.scale
        ),
        &["dataset", "selector", "mean", "std", "per-seed"],
        &rows,
    );
    println!(
        "\nShape check: the informed selectors' mean minus one std should stay\n\
         above Random's mean plus one std on every dataset."
    );
}
