//! Figure 2 — candidate quality on the Facebook-like dataset: the fraction
//! of generated candidates that (a) are endpoints of true top-k pairs and
//! (b) belong to the greedy cover of `G^p_k`, as the budget grows.
//!
//! Paper shape: selectors that cover many pairs also intersect both sets
//! strongly, and the SumDiff-based methods have the largest greedy-cover
//! intersection ("they discover high-quality candidate nodes").

use cp_bench::{pct, print_table, scaled_budget, Options};
use cp_core::experiment::candidate_quality;
use cp_core::selectors::SelectorKind;
use cp_gen::datasets::DatasetKind;

fn main() {
    let opts = Options::from_env();
    let slack = 1u32;
    let budgets: Vec<u64> = [20u64, 50, 100, 200, 300]
        .iter()
        .map(|&m| scaled_budget(m, opts.scale))
        .collect();
    let suite = SelectorKind::fig1_suite();
    let mut snaps = opts.snapshots(DatasetKind::Facebook);
    let k = snaps.truth(slack).k();

    type Pick = fn(&cp_core::experiment::CandidateQualityRow) -> f64;
    let views: [(&str, Pick); 2] = [
        (
            "Figure 2(a): % of candidates that are G^p_k endpoints",
            |q| q.in_gpk,
        ),
        (
            "Figure 2(b): % of candidates inside the greedy cover",
            |q| q.in_greedy_cover,
        ),
    ];
    for (title, pick) in views {
        let mut rows = Vec::new();
        for &kind in &suite {
            let mut cells = vec![kind.name().to_string()];
            for &m in &budgets {
                let q = candidate_quality(&mut snaps, kind, m, slack, opts.seed);
                if opts.json {
                    println!("{}", serde_json::to_string(&q).unwrap());
                }
                cells.push(pct(pick(&q)));
            }
            rows.push(cells);
        }
        let mut header = vec!["selector".to_string()];
        header.extend(budgets.iter().map(|m| format!("m={m}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!("{title} [{}; delta = max-1, k = {k}]", snaps.name),
            &header_refs,
            &rows,
        );
    }
}
