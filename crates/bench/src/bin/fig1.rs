//! Figure 1 — coverage as a function of the budget m for the landmark and
//! hybrid selectors, one panel per dataset.
//!
//! Paper shape: SumDiff-based methods converge fastest; random-landmark
//! methods waste their first 2l computations (flat start), while the
//! hybrids' dispersion-placed landmarks are useful candidates themselves;
//! MASD/MMSD reach ~90 % coverage at small m.

use cp_bench::{pct, print_table, scaled_budget, Options};
use cp_core::experiment::run_kind;
use cp_core::selectors::SelectorKind;

fn main() {
    let opts = Options::from_env();
    let slack = 1u32;
    let budgets: Vec<u64> = [10u64, 20, 50, 100, 200, 300, 500]
        .iter()
        .map(|&m| scaled_budget(m, opts.scale))
        .collect::<Vec<_>>()
        .into_iter()
        .scan(0u64, |last, m| {
            // scaled_budget floors at 10; dedup plateaued points.
            let out = if m > *last { Some(Some(m)) } else { Some(None) };
            *last = m.max(*last);
            out
        })
        .flatten()
        .collect();
    let suite = SelectorKind::fig1_suite();

    for mut snaps in opts.all_snapshots() {
        let k = snaps.truth(slack).k();
        let mut rows = Vec::new();
        for &kind in &suite {
            let mut cells = vec![kind.name().to_string()];
            for &m in &budgets {
                let row = run_kind(&mut snaps, kind, m, slack, opts.seed);
                if opts.json {
                    println!("{}", serde_json::to_string(&row).unwrap());
                }
                cells.push(pct(row.coverage));
            }
            rows.push(cells);
        }
        let mut header = vec!["selector".to_string()];
        header.extend(budgets.iter().map(|m| format!("m={m}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!(
                "Figure 1 [{}]: coverage % vs budget (delta = max-1, k = {k}, scale {})",
                snaps.name, opts.scale
            ),
            &header_refs,
            &rows,
        );
    }
}
