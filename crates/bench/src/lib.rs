//! Shared harness utilities for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section (see DESIGN.md §5 for the index). They share
//! command-line conventions:
//!
//! * `--scale=F`   — dataset scale in `(0, 4]`; `1.0` matches the paper's
//!   graph sizes (larger values over-scale them for headroom probes), the
//!   default `0.25` keeps a full run to a few minutes.
//! * `--seed=N`    — generator seed (default 42).
//! * `--threads=N` — BFS worker threads (default: available parallelism).
//! * `--json`      — additionally emit rows as JSON lines on stdout.
//! * `--out=PATH`  — override the report path of binaries that write one
//!   (`pipeline_baseline`); the default stays the checked-in location.
//!
//! Output is a plain text table, shaped like the corresponding table or
//! figure series in the paper, so paper-vs-measured comparison (recorded
//! in EXPERIMENTS.md) is a side-by-side read.

use cp_core::experiment::Snapshots;
use cp_gen::datasets::{DatasetKind, DatasetProfile};

/// Parsed common command-line options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Dataset scale in `(0, 4]`.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Emit JSON lines in addition to the table.
    pub json: bool,
    /// Output file override for binaries that write a report (e.g.
    /// `pipeline_baseline`); `None` means the binary's default path.
    pub out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 0.25,
            seed: 42,
            threads: cp_graph::apsp::default_threads(),
            json: false,
            out: None,
        }
    }
}

/// The largest accepted `--scale`: past the paper's sizes there is
/// headroom for over-scaled probes, but a fat-fingered `--scale=40`
/// should fail fast instead of generating for an hour.
pub const MAX_SCALE: f64 = 4.0;

impl Options {
    /// Parses `--key=value` style arguments; unknown or out-of-range
    /// arguments abort with a usage message. `--help` exits 0.
    pub fn parse(args: impl Iterator<Item = String>) -> Options {
        match Self::try_parse(args) {
            Ok(opts) => opts,
            Err(msg) => usage(&msg),
        }
    }

    /// The fallible core of [`Options::parse`]: every rejection comes
    /// back as an `Err` naming the offending argument and the accepted
    /// range, so binaries (and the unit tests) see the same diagnostics
    /// the user does.
    pub fn try_parse(args: impl Iterator<Item = String>) -> Result<Options, String> {
        let mut opts = Options::default();
        for arg in args {
            if let Some(v) = arg.strip_prefix("--scale=") {
                opts.scale = v
                    .parse()
                    .map_err(|_| format!("unparseable argument: {arg}"))?;
                if !(opts.scale > 0.0 && opts.scale <= MAX_SCALE) {
                    return Err(format!(
                        "--scale must be in (0, {MAX_SCALE}], got {}",
                        opts.scale
                    ));
                }
            } else if let Some(v) = arg.strip_prefix("--seed=") {
                opts.seed = v
                    .parse()
                    .map_err(|_| format!("unparseable argument: {arg}"))?;
            } else if let Some(v) = arg.strip_prefix("--threads=") {
                let threads: i64 = v
                    .parse()
                    .map_err(|_| format!("unparseable argument: {arg}"))?;
                if threads <= 0 {
                    return Err(format!("--threads must be positive, got {threads}"));
                }
                opts.threads = threads as usize;
            } else if let Some(v) = arg.strip_prefix("--out=") {
                opts.out = Some(v.to_string());
            } else if arg == "--json" {
                opts.json = true;
            } else if arg == "--help" || arg == "-h" {
                eprintln!("options: --scale=F --seed=N --threads=N --json --out=PATH");
                std::process::exit(0);
            } else {
                return Err(format!("unrecognized argument: {arg}"));
            }
        }
        Ok(opts)
    }

    /// Parses from `std::env::args()`.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }

    /// Builds the snapshot bundle for one dataset emulator.
    pub fn snapshots(&self, kind: DatasetKind) -> Snapshots {
        let t = DatasetProfile::scaled(kind, self.scale).generate(self.seed);
        Snapshots::from_temporal(kind.name(), &t, self.threads)
    }

    /// All four dataset bundles, in the paper's order.
    pub fn all_snapshots(&self) -> Vec<Snapshots> {
        DatasetKind::ALL
            .iter()
            .map(|&k| self.snapshots(k))
            .collect()
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("options: --scale=F --seed=N --threads=N --json --out=PATH");
    std::process::exit(2);
}

/// Prints a fixed-width text table: a header row and data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a coverage fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// The budget the paper uses for Table 5 (`m = 100`) scaled with the
/// dataset scale so small-scale runs stay comparable: the paper's budgets
/// are a fixed, small fraction of the node count.
pub fn scaled_budget(m_full: u64, scale: f64) -> u64 {
    ((m_full as f64 * scale).round() as u64).max(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_options() {
        let opts = Options::parse(
            [
                "--scale=0.5",
                "--seed=7",
                "--threads=3",
                "--json",
                "--out=/tmp/report.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(opts.scale, 0.5);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.threads, 3);
        assert!(opts.json);
        assert_eq!(opts.out.as_deref(), Some("/tmp/report.json"));
    }

    #[test]
    fn defaults_are_sane() {
        let opts = Options::default();
        assert!(opts.scale > 0.0 && opts.scale <= MAX_SCALE);
        assert!(opts.threads >= 1);
        assert!(!opts.json);
    }

    fn try_parse_one(arg: &str) -> Result<Options, String> {
        Options::try_parse([arg].iter().map(|s| s.to_string()))
    }

    #[test]
    fn try_parse_rejects_out_of_range_scale() {
        for bad in ["--scale=0", "--scale=-0.5", "--scale=4.01", "--scale=40"] {
            let err = try_parse_one(bad).expect_err(bad);
            assert!(err.contains("--scale"), "{bad}: {err}");
            assert!(err.contains("(0, 4]"), "{bad}: {err}");
        }
        for bad in ["--scale=", "--scale=fast", "--scale=NaN1"] {
            let err = try_parse_one(bad).expect_err(bad);
            assert!(err.contains("unparseable"), "{bad}: {err}");
        }
        // NaN fails every range comparison and is rejected too.
        assert!(try_parse_one("--scale=NaN").is_err());
    }

    #[test]
    fn try_parse_accepts_the_full_scale_range() {
        assert_eq!(try_parse_one("--scale=0.01").unwrap().scale, 0.01);
        assert_eq!(try_parse_one("--scale=1.0").unwrap().scale, 1.0);
        assert_eq!(try_parse_one("--scale=4.0").unwrap().scale, 4.0);
    }

    #[test]
    fn try_parse_rejects_non_positive_threads() {
        for bad in ["--threads=0", "--threads=-2"] {
            let err = try_parse_one(bad).expect_err(bad);
            assert!(err.contains("--threads must be positive"), "{bad}: {err}");
        }
        let err = try_parse_one("--threads=two").expect_err("word");
        assert!(err.contains("unparseable"), "{err}");
        assert_eq!(try_parse_one("--threads=1").unwrap().threads, 1);
    }

    #[test]
    fn try_parse_rejects_unknown_arguments() {
        let err = try_parse_one("--store=overlay").expect_err("unknown flag");
        assert!(err.contains("unrecognized argument: --store=overlay"));
    }

    #[test]
    fn scaled_budget_floors() {
        assert_eq!(scaled_budget(100, 1.0), 100);
        assert_eq!(scaled_budget(100, 0.25), 25);
        assert_eq!(scaled_budget(100, 0.01), 10); // floor
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.905), "90.5");
        assert_eq!(pct(1.0), "100.0");
    }

    #[test]
    fn snapshots_build_at_tiny_scale() {
        let opts = Options {
            scale: 0.03,
            ..Options::default()
        };
        let snaps = opts.snapshots(DatasetKind::Facebook);
        assert!(snaps.g2.num_edges() > snaps.g1.num_edges());
    }
}
