//! Microbenchmarks for the SSSP layer — the paper's unit of computational
//! cost. Establishes what one "budget unit" costs on each dataset shape.

use cp_gen::datasets::{DatasetKind, DatasetProfile};
use cp_graph::bfs::{bfs_into, BfsWorkspace};
use cp_graph::dijkstra::dijkstra;
use cp_graph::{GraphBuilder, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_bfs_per_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_single_source");
    for kind in DatasetKind::ALL {
        let g = DatasetProfile::scaled(kind, 0.1)
            .generate(7)
            .snapshot_at_fraction(1.0);
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::new("dataset", kind.name()), &g, |b, g| {
            let mut ws = BfsWorkspace::new();
            let mut dist = Vec::new();
            let mut src = 0u32;
            b.iter(|| {
                bfs_into(g, NodeId(src % g.num_nodes() as u32), &mut dist, &mut ws);
                src = src.wrapping_add(97);
                black_box(dist.len())
            });
        });
    }
    group.finish();
}

fn bench_dijkstra_vs_bfs(c: &mut Criterion) {
    // Same topology, unit weights: measures the Dijkstra overhead the
    // unweighted fast path avoids.
    let t = DatasetProfile::scaled(DatasetKind::Facebook, 0.1).generate(7);
    let unweighted = t.snapshot_at_fraction(1.0);
    let mut b = GraphBuilder::new(unweighted.num_nodes());
    for (u, v) in unweighted.edges() {
        b.add_weighted_edge(u, v, 1);
    }
    let weighted = b.build();

    let mut group = c.benchmark_group("sssp_dispatch");
    group.bench_function("bfs_unweighted", |b| {
        let mut ws = BfsWorkspace::new();
        let mut dist = Vec::new();
        b.iter(|| {
            bfs_into(&unweighted, NodeId(0), &mut dist, &mut ws);
            black_box(dist[dist.len() - 1])
        });
    });
    group.bench_function("dijkstra_unit_weights", |b| {
        b.iter(|| black_box(dijkstra(&weighted, NodeId(0)).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_bfs_per_dataset, bench_dijkstra_vs_bfs);
criterion_main!(benches);
