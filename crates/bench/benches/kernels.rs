//! Microbenchmarks for the BFS kernels behind the budget oracle: scalar
//! top-down vs direction-optimizing single-source BFS, and a full
//! 64-source multi-source wave vs 64 sequential single-source runs.

use cp_gen::datasets::{DatasetKind, DatasetProfile};
use cp_graph::bfs::{bfs_into, bfs_scalar_into, BfsWorkspace};
use cp_graph::msbfs::{msbfs_into, MsBfsWorkspace, WAVE_WIDTH};
use cp_graph::{Graph, NodeId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn dataset(kind: DatasetKind) -> Graph {
    DatasetProfile::scaled(kind, 0.1)
        .generate(7)
        .snapshot_at_fraction(1.0)
}

fn bench_single_source_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs_kernel_single_source");
    for kind in DatasetKind::ALL {
        let g = dataset(kind);
        group.throughput(Throughput::Elements(g.num_edges() as u64));
        group.bench_with_input(BenchmarkId::new("scalar", kind.name()), &g, |b, g| {
            let mut ws = BfsWorkspace::new();
            let mut dist = Vec::new();
            let mut src = 0u32;
            b.iter(|| {
                bfs_scalar_into(g, NodeId(src % g.num_nodes() as u32), &mut dist, &mut ws);
                src = src.wrapping_add(97);
                black_box(dist.len())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("direction_optimizing", kind.name()),
            &g,
            |b, g| {
                let mut ws = BfsWorkspace::new();
                let mut dist = Vec::new();
                let mut src = 0u32;
                b.iter(|| {
                    bfs_into(g, NodeId(src % g.num_nodes() as u32), &mut dist, &mut ws);
                    src = src.wrapping_add(97);
                    black_box(dist.len())
                });
            },
        );
    }
    group.finish();
}

fn bench_wave_vs_sequential(c: &mut Criterion) {
    // One full 64-source wave against 64 back-to-back scalar runs from the
    // same sources: the per-edge work amortization the oracle's batched
    // prefetch relies on.
    let mut group = c.benchmark_group("bfs_kernel_wave64");
    group.sample_size(10);
    for kind in DatasetKind::ALL {
        let g = dataset(kind);
        let n = g.num_nodes() as u32;
        let sources: Vec<NodeId> = (0..WAVE_WIDTH as u32).map(|i| NodeId(i * 97 % n)).collect();
        group.throughput(Throughput::Elements(
            WAVE_WIDTH as u64 * g.num_edges() as u64,
        ));
        group.bench_with_input(
            BenchmarkId::new("sequential_scalar", kind.name()),
            &g,
            |b, g| {
                let mut ws = BfsWorkspace::new();
                let mut dist = Vec::new();
                b.iter(|| {
                    for &s in &sources {
                        bfs_scalar_into(g, s, &mut dist, &mut ws);
                    }
                    black_box(dist.len())
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("msbfs_wave", kind.name()), &g, |b, g| {
            let mut msws = MsBfsWorkspace::new();
            let mut rows: Vec<Vec<u32>> = vec![Vec::new(); sources.len()];
            b.iter(|| {
                msbfs_into(g, &sources, &mut rows, &mut msws);
                black_box(rows.len())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_source_kernels,
    bench_wave_vs_sequential
);
criterion_main!(benches);
