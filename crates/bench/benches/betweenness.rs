//! Benchmarks Brandes betweenness (exact vs pivot-sampled) — the hidden
//! cost of the IncBet baseline that the paper's budget model does not even
//! charge for.

use cp_gen::datasets::{DatasetKind, DatasetProfile};
use cp_graph::betweenness::{betweenness_exact, betweenness_sampled};
use cp_graph::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_betweenness(c: &mut Criterion) {
    let g = DatasetProfile::scaled(DatasetKind::Facebook, 0.05)
        .generate(17)
        .snapshot_at_fraction(1.0);
    let mut group = c.benchmark_group("betweenness");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| black_box(betweenness_exact(&g, 4).edge.len()));
    });
    for pivots in [16usize, 64] {
        let n = g.num_nodes();
        let pv: Vec<NodeId> = (0..pivots).map(|i| NodeId::new(i * n / pivots)).collect();
        group.bench_with_input(BenchmarkId::new("sampled", pivots), &pv, |b, pv| {
            b.iter(|| black_box(betweenness_sampled(&g, pv, 4).edge.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_betweenness);
criterion_main!(benches);
