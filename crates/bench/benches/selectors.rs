//! Benchmarks candidate generation cost per selector family, and the
//! landmark-count ablation (the paper fixes l = 10; this shows why more
//! landmarks do not pay for themselves).

use cp_core::oracle::SnapshotOracle;
use cp_core::selectors::SelectorKind;
use cp_gen::datasets::{DatasetKind, DatasetProfile};
use cp_graph::Graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn eval_pair() -> (Graph, Graph) {
    DatasetProfile::scaled(DatasetKind::Facebook, 0.1)
        .generate(11)
        .snapshot_pair(0.8, 1.0)
}

fn bench_rank_cost(c: &mut Criterion) {
    let (g1, g2) = eval_pair();
    let mut group = c.benchmark_group("selector_rank");
    let kinds = [
        SelectorKind::Degree,
        SelectorKind::DegRel,
        SelectorKind::MaxMin,
        SelectorKind::MaxAvg,
        SelectorKind::SumDiff { landmarks: 10 },
        SelectorKind::Mmsd { landmarks: 10 },
        SelectorKind::IncDeg,
        SelectorKind::Random,
    ];
    for kind in kinds {
        group.bench_with_input(BenchmarkId::new("kind", kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 100);
                let mut sel = kind.build(3);
                black_box(sel.rank(&mut oracle).len())
            });
        });
    }
    group.finish();
}

fn bench_landmark_count_ablation(c: &mut Criterion) {
    let (g1, g2) = eval_pair();
    let mut group = c.benchmark_group("landmark_count_ablation");
    for l in [2usize, 5, 10, 20, 40] {
        group.bench_with_input(BenchmarkId::new("l", l), &l, |b, &l| {
            b.iter(|| {
                let mut oracle = SnapshotOracle::with_budget(&g1, &g2, 400);
                let mut sel = SelectorKind::Mmsd { landmarks: l }.build(5);
                black_box(sel.rank(&mut oracle).len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rank_cost, bench_landmark_count_ablation);
criterion_main!(benches);
