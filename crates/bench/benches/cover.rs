//! Benchmarks the greedy vertex-cover / max-coverage machinery on pair
//! graphs of growing size (the lazy-heap greedy is near-linear; this bench
//! guards that property).

use cp_core::exact::ConvergingPair;
use cp_core::gpk::PairGraph;
use cp_graph::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_pairs(n_nodes: u32, n_pairs: usize, seed: u64) -> Vec<ConvergingPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_pairs);
    while out.len() < n_pairs {
        let u = rng.random_range(0..n_nodes);
        let v = rng.random_range(0..n_nodes);
        if u != v {
            out.push(ConvergingPair::new(NodeId(u), NodeId(v), 1));
        }
    }
    out
}

fn bench_greedy_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_cover");
    for pairs in [100usize, 1_000, 10_000] {
        let data = random_pairs(pairs as u32 / 2, pairs, 3);
        let gpk = PairGraph::new(&data);
        group.bench_with_input(BenchmarkId::new("pairs", pairs), &gpk, |b, gpk| {
            b.iter(|| black_box(gpk.greedy_vertex_cover().nodes.len()));
        });
    }
    group.finish();
}

fn bench_budgeted_coverage(c: &mut Criterion) {
    let data = random_pairs(2_000, 20_000, 5);
    let gpk = PairGraph::new(&data);
    let mut group = c.benchmark_group("greedy_max_coverage");
    for budget in [10usize, 100, 1_000] {
        group.bench_with_input(BenchmarkId::new("budget", budget), &budget, |b, &budget| {
            b.iter(|| black_box(gpk.greedy_max_coverage(budget).covered_pairs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy_cover, bench_budgeted_coverage);
criterion_main!(benches);
