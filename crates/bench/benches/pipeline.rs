//! End-to-end benchmarks: the budgeted pipeline against the exact
//! all-pairs baseline — the speed/coverage trade-off the whole paper is
//! about, in wall-clock terms.

use cp_core::exact::{exact_top_k, TopKSpec};
use cp_core::selectors::SelectorKind;
use cp_core::topk::budgeted_top_k;
use cp_gen::datasets::{DatasetKind, DatasetProfile};
use cp_graph::Graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn eval_pair(scale: f64) -> (Graph, Graph) {
    DatasetProfile::scaled(DatasetKind::InternetLinks, scale)
        .generate(13)
        .snapshot_pair(0.8, 1.0)
}

fn bench_exact_baseline(c: &mut Criterion) {
    let (g1, g2) = eval_pair(0.05);
    let mut group = c.benchmark_group("exact_baseline");
    group.sample_size(10);
    group.bench_function("all_pairs_topk", |b| {
        b.iter(|| {
            black_box(exact_top_k(&g1, &g2, &TopKSpec::ThresholdFromMax { slack: 1 }, 4).k())
        });
    });
    group.finish();
}

fn bench_budgeted_vs_budget(c: &mut Criterion) {
    let (g1, g2) = eval_pair(0.05);
    let spec = TopKSpec::Threshold { delta_min: 2 };
    let mut group = c.benchmark_group("budgeted_pipeline");
    for m in [10u64, 50, 100] {
        group.bench_with_input(BenchmarkId::new("mmsd_m", m), &m, |b, &m| {
            b.iter(|| {
                let mut sel = SelectorKind::Mmsd { landmarks: 10 }.build(1);
                black_box(budgeted_top_k(&g1, &g2, sel.as_mut(), m, &spec).pairs.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_baseline, bench_budgeted_vs_budget);
criterion_main!(benches);
