//! Classification and ranking metrics.
//!
//! The converging-pairs selector consumes a *ranking* of nodes (top-m by
//! predicted probability), so besides the usual thresholded metrics this
//! module provides ROC AUC and precision@k.

/// Fraction of correct hard predictions.
pub fn accuracy(predicted: &[bool], actual: &[bool]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    if actual.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    hits as f64 / actual.len() as f64
}

/// Precision of the positive class (0 when nothing was predicted positive).
pub fn precision(predicted: &[bool], actual: &[bool]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    let tp = predicted
        .iter()
        .zip(actual)
        .filter(|(&p, &a)| p && a)
        .count();
    let pp = predicted.iter().filter(|&&p| p).count();
    if pp == 0 {
        0.0
    } else {
        tp as f64 / pp as f64
    }
}

/// Recall of the positive class (0 when there are no actual positives).
pub fn recall(predicted: &[bool], actual: &[bool]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    let tp = predicted
        .iter()
        .zip(actual)
        .filter(|(&p, &a)| p && a)
        .count();
    let ap = actual.iter().filter(|&&a| a).count();
    if ap == 0 {
        0.0
    } else {
        tp as f64 / ap as f64
    }
}

/// Area under the ROC curve of a score ranking, via the Mann–Whitney
/// statistic with tie correction. Returns 0.5 when either class is empty.
pub fn roc_auc(scores: &[f64], actual: &[bool]) -> f64 {
    assert_eq!(scores.len(), actual.len());
    let n_pos = actual.iter().filter(|&&a| a).count();
    let n_neg = actual.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank the scores ascending; ties share the average rank.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0; // 1-based
        for &k in &idx[i..=j] {
            if actual[k] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Fraction of the top-`k` scored items that are actual positives.
pub fn precision_at_k(scores: &[f64], actual: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), actual.len());
    let k = k.min(scores.len());
    if k == 0 {
        return 0.0;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    let hits = idx[..k].iter().filter(|&&i| actual[i]).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholded_metrics() {
        let pred = [true, true, false, false];
        let act = [true, false, true, false];
        assert_eq!(accuracy(&pred, &act), 0.5);
        assert_eq!(precision(&pred, &act), 0.5);
        assert_eq!(recall(&pred, &act), 0.5);
    }

    #[test]
    fn degenerate_metrics() {
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(precision(&[false], &[true]), 0.0);
        assert_eq!(recall(&[false], &[false]), 0.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let act = [false, false, true, true];
        assert!((roc_auc(&scores, &act) - 1.0).abs() < 1e-12);
        let inv = [true, true, false, false];
        assert!((roc_auc(&scores, &inv) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn auc_with_ties_is_half_credit() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let act = [true, false, true, false];
        assert!((roc_auc(&scores, &act) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.3, 0.4], &[true, true]), 0.5);
    }

    #[test]
    fn precision_at_k_ranks_descending() {
        let scores = [0.9, 0.1, 0.8, 0.2];
        let act = [true, true, false, false];
        assert_eq!(precision_at_k(&scores, &act, 1), 1.0);
        assert_eq!(precision_at_k(&scores, &act, 2), 0.5);
        assert_eq!(precision_at_k(&scores, &act, 10), 0.5); // clipped to n
        assert_eq!(precision_at_k(&scores, &act, 0), 0.0);
    }
}
