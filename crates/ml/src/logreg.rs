//! L2-regularized binary logistic regression.
//!
//! Deterministic full-batch gradient descent with backtracking line search
//! on the regularized negative log-likelihood. At the sizes involved in the
//! converging-pairs classifier (≤ a few 10⁴ rows × ~14 features) this
//! converges in a few hundred cheap iterations; no stochasticity means the
//! experiments are exactly reproducible.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// L2 regularization strength λ (applied to weights, not the bias).
    pub l2: f64,
    /// Maximum gradient-descent iterations.
    pub max_iters: usize,
    /// Stop when the gradient's infinity norm falls below this.
    pub tol: f64,
    /// Optional per-class weights `(weight_negative, weight_positive)`.
    ///
    /// `None` weights every row equally (LIBLINEAR's default, what the
    /// paper used). [`TrainConfig::balanced`] computes inverse-frequency
    /// weights, useful because vertex-cover positives are very rare; the
    /// classifier selector exposes this as an ablation.
    pub class_weights: Option<(f64, f64)>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            l2: 1e-4,
            max_iters: 500,
            tol: 1e-6,
            class_weights: None,
        }
    }
}

impl TrainConfig {
    /// Sets inverse-class-frequency weights for the given dataset
    /// (`n / (2 * n_class)` per class, scikit-learn's "balanced" rule).
    pub fn balanced(mut self, data: &Dataset) -> Self {
        let n = data.len() as f64;
        let pos = data.num_positive() as f64;
        let neg = n - pos;
        if pos > 0.0 && neg > 0.0 {
            self.class_weights = Some((n / (2.0 * neg), n / (2.0 * pos)));
        }
        self
    }
}

/// A trained binary logistic-regression model.
///
/// ```
/// use cp_ml::{Dataset, LogisticRegression, TrainConfig};
///
/// let mut data = Dataset::new(1);
/// for i in 0..20 {
///     let x = i as f64;
///     data.push(&[x], x >= 10.0);
/// }
/// let model = LogisticRegression::train(&data, &TrainConfig::default());
/// assert!(model.predict_proba(&[19.0]) > model.predict_proba(&[0.0]));
/// assert!(model.predict(&[19.0]));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Trains a model on `data` with the given configuration.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, config: &TrainConfig) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let k = data.num_features();
        let n = data.len();
        let (w_neg, w_pos) = config.class_weights.unwrap_or((1.0, 1.0));
        let mut w = vec![0.0f64; k];
        let mut b = 0.0f64;

        let mut grad_w = vec![0.0f64; k];
        let loss_and_grad = |w: &[f64], b: f64, grad_w: &mut [f64]| -> (f64, f64) {
            grad_w.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0;
            let mut loss = 0.0;
            for (row, label) in data.iter() {
                let cw = if label { w_pos } else { w_neg };
                let z: f64 = b + row.iter().zip(w).map(|(x, wi)| x * wi).sum::<f64>();
                let y = if label { 1.0 } else { 0.0 };
                let p = sigmoid(z);
                // Numerically stable log-loss: log(1 + e^z) - y z.
                loss += cw * (softplus(z) - y * z);
                let err = cw * (p - y);
                for (g, x) in grad_w.iter_mut().zip(row) {
                    *g += err * x;
                }
                grad_b += err;
            }
            let inv_n = 1.0 / n as f64;
            loss *= inv_n;
            grad_b *= inv_n;
            for (g, wi) in grad_w.iter_mut().zip(w) {
                *g = *g * inv_n + config.l2 * wi;
            }
            loss += 0.5 * config.l2 * w.iter().map(|wi| wi * wi).sum::<f64>();
            (loss, grad_b)
        };

        let (mut loss, mut grad_b) = loss_and_grad(&w, b, &mut grad_w);
        let mut step = 1.0f64;
        for _ in 0..config.max_iters {
            let ginf = grad_w
                .iter()
                .chain(std::iter::once(&grad_b))
                .fold(0.0f64, |a, g| a.max(g.abs()));
            if ginf < config.tol {
                break;
            }
            // Backtracking line search along the negative gradient.
            let gnorm2: f64 = grad_w.iter().map(|g| g * g).sum::<f64>() + grad_b * grad_b;
            let mut accepted = false;
            let mut trial_grad = vec![0.0f64; k];
            for _ in 0..40 {
                let cand_w: Vec<f64> = w.iter().zip(&grad_w).map(|(wi, g)| wi - step * g).collect();
                let cand_b = b - step * grad_b;
                let (cand_loss, cand_grad_b) = loss_and_grad(&cand_w, cand_b, &mut trial_grad);
                // Armijo condition.
                if cand_loss <= loss - 0.5 * step * gnorm2 {
                    w = cand_w;
                    b = cand_b;
                    loss = cand_loss;
                    grad_w.copy_from_slice(&trial_grad);
                    grad_b = cand_grad_b;
                    step *= 1.5; // be optimistic again next iteration
                    accepted = true;
                    break;
                }
                step *= 0.5;
            }
            if !accepted {
                break; // step underflowed; gradient is numerically flat
            }
        }
        LogisticRegression {
            weights: w,
            bias: b,
        }
    }

    /// Predicted probability of the positive class for one feature row.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature arity mismatch");
        let z: f64 = self.bias
            + row
                .iter()
                .zip(&self.weights)
                .map(|(x, w)| x * w)
                .sum::<f64>();
        sigmoid(z)
    }

    /// Hard classification at threshold 0.5.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

/// `log(1 + e^z)` computed without overflow.
#[inline]
fn softplus(z: f64) -> f64 {
    if z > 0.0 {
        z + (-z).exp().ln_1p()
    } else {
        z.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy data: positive iff x0 > 1.
    fn separable() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..40 {
            let x0 = (i as f64) / 10.0; // 0.0 .. 3.9
            let x1 = ((i * 7) % 11) as f64 / 11.0; // noise feature
            d.push(&[x0, x1], x0 > 1.0);
        }
        d
    }

    #[test]
    fn learns_separable_data() {
        let d = separable();
        let model = LogisticRegression::train(&d, &TrainConfig::default());
        let correct = d
            .iter()
            .filter(|(row, label)| model.predict(row) == *label)
            .count();
        assert!(correct >= 38, "only {correct}/40 correct");
        // The informative feature should dominate the noise feature.
        assert!(model.weights()[0].abs() > model.weights()[1].abs());
    }

    #[test]
    fn probabilities_are_monotone_in_signal() {
        let d = separable();
        let model = LogisticRegression::train(&d, &TrainConfig::default());
        let lo = model.predict_proba(&[0.0, 0.5]);
        let hi = model.predict_proba(&[3.0, 0.5]);
        assert!(hi > lo);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
    }

    #[test]
    fn regularization_shrinks_weights() {
        let d = separable();
        let loose = LogisticRegression::train(
            &d,
            &TrainConfig {
                l2: 1e-6,
                ..TrainConfig::default()
            },
        );
        let tight = LogisticRegression::train(
            &d,
            &TrainConfig {
                l2: 10.0,
                ..TrainConfig::default()
            },
        );
        let norm = |m: &LogisticRegression| m.weights().iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn balanced_weights_lift_rare_positive_probability() {
        // 2 positives among 50 rows, weak signal.
        let mut d = Dataset::new(1);
        for i in 0..48 {
            d.push(&[(i % 5) as f64 / 5.0], false);
        }
        d.push(&[1.0], true);
        d.push(&[0.9], true);
        let plain = LogisticRegression::train(&d, &TrainConfig::default());
        let balanced = LogisticRegression::train(&d, &TrainConfig::default().balanced(&d));
        assert!(balanced.predict_proba(&[1.0]) > plain.predict_proba(&[1.0]));
    }

    #[test]
    fn single_class_degenerates_gracefully() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], false);
        d.push(&[1.0], false);
        let model = LogisticRegression::train(&d, &TrainConfig::default());
        assert!(model.predict_proba(&[0.5]) < 0.5);
        // balanced() on a single-class set is a no-op.
        let cfg = TrainConfig::default().balanced(&d);
        assert!(cfg.class_weights.is_none());
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(softplus(1000.0).is_finite());
        assert!(softplus(-1000.0) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        LogisticRegression::train(&Dataset::new(1), &TrainConfig::default());
    }

    #[test]
    fn deterministic_training() {
        let d = separable();
        let a = LogisticRegression::train(&d, &TrainConfig::default());
        let b = LogisticRegression::train(&d, &TrainConfig::default());
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }
}
