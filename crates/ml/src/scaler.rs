//! Per-feature min-max scaling to `[-1, 1]`.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Affine per-feature scaler mapping the fitted min/max range to `[-1, 1]`.
///
/// The paper normalizes all classifier features into `[-1, 1]`; a scaler is
/// fitted on the *training* snapshot pair and then applied to the test
/// features (test values outside the fitted range extrapolate beyond
/// `[-1, 1]`, which is fine for a linear model).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler to a dataset's feature columns.
    ///
    /// Constant columns (min == max) map to 0.
    pub fn fit(data: &Dataset) -> Self {
        let k = data.num_features();
        let mut mins = vec![f64::INFINITY; k];
        let mut maxs = vec![f64::NEG_INFINITY; k];
        for (row, _) in data.iter() {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        if data.is_empty() {
            mins.iter_mut().for_each(|m| *m = 0.0);
            maxs.iter_mut().for_each(|m| *m = 0.0);
        }
        MinMaxScaler { mins, maxs }
    }

    /// Number of features the scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.mins.len()
    }

    /// Scales a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.mins.len(), "feature arity mismatch");
        for (j, v) in row.iter_mut().enumerate() {
            let span = self.maxs[j] - self.mins[j];
            *v = if span == 0.0 {
                0.0
            } else {
                2.0 * (*v - self.mins[j]) / span - 1.0
            };
        }
    }

    /// Scales every row of a dataset in place.
    pub fn transform(&self, data: &mut Dataset) {
        let k = data.num_features();
        assert_eq!(k, self.mins.len(), "feature arity mismatch");
        for chunk in data.values_mut().chunks_exact_mut(k) {
            self.transform_row(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(3);
        d.push(&[0.0, 10.0, 5.0], true);
        d.push(&[4.0, 20.0, 5.0], false);
        d.push(&[2.0, 15.0, 5.0], false);
        d
    }

    #[test]
    fn maps_to_unit_interval() {
        let mut d = sample();
        let s = MinMaxScaler::fit(&d);
        s.transform(&mut d);
        assert_eq!(d.row(0), &[-1.0, -1.0, 0.0]);
        assert_eq!(d.row(1), &[1.0, 1.0, 0.0]);
        assert_eq!(d.row(2), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn constant_column_maps_to_zero() {
        let mut d = Dataset::new(1);
        d.push(&[7.0], true);
        d.push(&[7.0], false);
        let s = MinMaxScaler::fit(&d);
        s.transform(&mut d);
        assert_eq!(d.row(0), &[0.0]);
    }

    #[test]
    fn test_rows_can_extrapolate() {
        let d = sample();
        let s = MinMaxScaler::fit(&d);
        let mut row = vec![8.0, 10.0, 5.0];
        s.transform_row(&mut row);
        assert_eq!(row[0], 3.0); // beyond the fitted max
        assert_eq!(row[1], -1.0);
    }

    #[test]
    fn empty_dataset_fits_trivially() {
        let d = Dataset::new(2);
        let s = MinMaxScaler::fit(&d);
        let mut row = vec![1.0, -1.0];
        s.transform_row(&mut row);
        assert_eq!(row, vec![0.0, 0.0]);
        assert_eq!(s.num_features(), 2);
    }
}
