//! Dense feature matrices with binary labels.

/// A dense, row-major feature matrix with one binary label per row.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    num_features: usize,
    /// Row-major values, `rows * num_features` long.
    values: Vec<f64>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature arity.
    pub fn new(num_features: usize) -> Self {
        Dataset {
            num_features,
            values: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Feature arity.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if `row.len() != num_features`.
    pub fn push(&mut self, row: &[f64], label: bool) {
        assert_eq!(row.len(), self.num_features, "feature arity mismatch");
        self.values.extend_from_slice(row);
        self.labels.push(label);
    }

    /// The `i`-th feature row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.num_features..(i + 1) * self.num_features]
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Number of positive rows.
    pub fn num_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Iterates `(row, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], bool)> {
        (0..self.len()).map(move |i| (self.row(i), self.label(i)))
    }

    /// Appends all rows of `other` (same arity required).
    pub fn extend_from(&mut self, other: &Dataset) {
        assert_eq!(self.num_features, other.num_features, "arity mismatch");
        self.values.extend_from_slice(&other.values);
        self.labels.extend_from_slice(&other.labels);
    }

    /// Mutable access to the raw values; used by [`MinMaxScaler::transform`]
    /// to scale in place.
    ///
    /// [`MinMaxScaler::transform`]: crate::scaler::MinMaxScaler::transform
    pub(crate) fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new(2);
        d.push(&[1.0, 2.0], true);
        d.push(&[3.0, 4.0], false);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.row(0), &[1.0, 2.0]);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert!(d.label(0));
        assert!(!d.label(1));
        assert_eq!(d.num_positive(), 1);
        assert_eq!(d.num_features(), 2);
    }

    #[test]
    fn iteration_and_extend() {
        let mut a = Dataset::new(1);
        a.push(&[1.0], true);
        let mut b = Dataset::new(1);
        b.push(&[2.0], false);
        a.extend_from(&b);
        let collected: Vec<_> = a.iter().map(|(r, l)| (r[0], l)).collect();
        assert_eq!(collected, vec![(1.0, true), (2.0, false)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut d = Dataset::new(2);
        d.push(&[1.0], true);
    }
}
