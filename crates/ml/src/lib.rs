//! Minimal machine-learning substrate for the converging-pairs classifier.
//!
//! The paper's classification-based candidate selector trains a logistic
//! regression (it uses LIBLINEAR) on per-node structural features,
//! normalized to `[-1, 1]`, and ranks nodes by the predicted probability of
//! belonging to the greedy vertex cover of the pair graph `G^p_k`. No
//! ML crate is in the approved offline dependency set, so this crate
//! implements the needed pieces from scratch:
//!
//! * [`dataset::Dataset`] — a dense row-major feature matrix with binary
//!   labels.
//! * [`scaler::MinMaxScaler`] — per-feature affine scaling to `[-1, 1]`
//!   (LIBLINEAR's recommended preprocessing, and what the paper states it
//!   does with its features).
//! * [`logreg::LogisticRegression`] — L2-regularized binary logistic
//!   regression trained by full-batch gradient descent with backtracking
//!   line search; deterministic, no hyper-parameter tuning required at the
//!   problem sizes involved (tens of thousands of rows, ~a dozen features).
//! * [`metrics`] — accuracy/precision/recall, ROC AUC and precision@k —
//!   the last two matter because the selector consumes a *ranking*, not a
//!   hard decision.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod logreg;
pub mod metrics;
pub mod scaler;

pub use dataset::Dataset;
pub use logreg::{LogisticRegression, TrainConfig};
pub use scaler::MinMaxScaler;
