//! Property-based tests for the ML substrate.

use cp_ml::metrics::{precision_at_k, roc_auc};
use cp_ml::{Dataset, LogisticRegression, MinMaxScaler, TrainConfig};
use proptest::prelude::*;

fn dataset(rows: Vec<(Vec<f64>, bool)>) -> Option<Dataset> {
    let arity = rows.first()?.0.len();
    let mut d = Dataset::new(arity);
    for (row, label) in rows {
        if row.len() != arity {
            return None;
        }
        d.push(&row, label);
    }
    Some(d)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scaler_maps_fitted_data_into_unit_box(
        rows in prop::collection::vec(
            (prop::collection::vec(-1e6f64..1e6, 3), any::<bool>()),
            1..40,
        )
    ) {
        let mut d = dataset(rows).unwrap();
        let scaler = MinMaxScaler::fit(&d);
        scaler.transform(&mut d);
        for (row, _) in d.iter() {
            for &v in row {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v), "value {v}");
            }
        }
    }

    #[test]
    fn predicted_probabilities_in_unit_interval(
        rows in prop::collection::vec(
            (prop::collection::vec(-10.0f64..10.0, 2), any::<bool>()),
            2..30,
        ),
        probe in prop::collection::vec(-100.0f64..100.0, 2),
    ) {
        let d = dataset(rows).unwrap();
        let model = LogisticRegression::train(&d, &TrainConfig::default());
        let p = model.predict_proba(&probe);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(p.is_finite());
    }

    #[test]
    fn auc_is_within_bounds_and_flip_symmetric(
        scored in prop::collection::vec((-100.0f64..100.0, any::<bool>()), 2..60)
    ) {
        let scores: Vec<f64> = scored.iter().map(|(s, _)| *s).collect();
        let labels: Vec<bool> = scored.iter().map(|(_, l)| *l).collect();
        let auc = roc_auc(&scores, &labels);
        prop_assert!((0.0..=1.0).contains(&auc));
        // Negating the scores flips the ranking: AUC' = 1 - AUC, except in
        // the degenerate single-class case (both are exactly 0.5) or under
        // ties (tie credit is symmetric).
        let neg: Vec<f64> = scores.iter().map(|s| -s).collect();
        let flipped = roc_auc(&neg, &labels);
        prop_assert!((auc + flipped - 1.0).abs() < 1e-9);
    }

    #[test]
    fn precision_at_k_bounds(
        scored in prop::collection::vec((-100.0f64..100.0, any::<bool>()), 1..50),
        k in 0usize..60,
    ) {
        let scores: Vec<f64> = scored.iter().map(|(s, _)| *s).collect();
        let labels: Vec<bool> = scored.iter().map(|(_, l)| *l).collect();
        let p = precision_at_k(&scores, &labels, k);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn training_loss_beats_trivial_model_on_separable_data(gap in 0.5f64..5.0) {
        // Positive iff feature > gap; model must classify train data well.
        let mut d = Dataset::new(1);
        for i in 0..40 {
            let x = i as f64 / 5.0;
            d.push(&[x], x > gap);
        }
        prop_assume!(d.num_positive() >= 2 && d.num_positive() <= 38);
        let model = LogisticRegression::train(&d, &TrainConfig::default());
        let correct = d.iter().filter(|(r, l)| model.predict(r) == *l).count();
        prop_assert!(correct as f64 / d.len() as f64 >= 0.9, "{correct}/40");
    }
}
