//! Serde round-trips for the persistent types: experiment configurations
//! and generated streams must survive serialization so runs can be
//! archived and replayed.

use cp_graph::builder::graph_from_edges;
use cp_graph::{Graph, NodeId, TemporalGraph, TimedEdge};

#[test]
fn graph_roundtrips_through_json() {
    let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
    let json = serde_json::to_string(&g).unwrap();
    let back: Graph = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_nodes(), g.num_nodes());
    assert_eq!(back.num_edges(), g.num_edges());
    back.check_invariants().unwrap();
    for u in g.nodes() {
        assert_eq!(back.neighbors(u), g.neighbors(u));
    }
}

#[test]
fn weighted_graph_roundtrips() {
    let mut b = cp_graph::GraphBuilder::new(3);
    b.add_weighted_edge(NodeId(0), NodeId(1), 7);
    b.add_weighted_edge(NodeId(1), NodeId(2), 3);
    let g = b.build();
    let back: Graph = serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
    assert!(back.is_weighted());
    assert_eq!(
        back.edge_weight(back.edge_id(NodeId(0), NodeId(1)).unwrap()),
        7
    );
}

#[test]
fn temporal_graph_roundtrips() {
    let t = TemporalGraph::new(
        4,
        vec![
            TimedEdge {
                u: NodeId(0),
                v: NodeId(1),
                time: 10,
            },
            TimedEdge {
                u: NodeId(2),
                v: NodeId(3),
                time: 20,
            },
        ],
    );
    let back: TemporalGraph = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(back.events(), t.events());
    assert_eq!(back.num_nodes(), 4);
    // Behavioural equality: same snapshots.
    assert_eq!(
        back.snapshot_at(15).num_edges(),
        t.snapshot_at(15).num_edges()
    );
}

#[test]
fn node_id_is_transparent_in_json() {
    let id = NodeId(42);
    assert_eq!(serde_json::to_string(&id).unwrap(), "42");
    let back: NodeId = serde_json::from_str("42").unwrap();
    assert_eq!(back, id);
}
