//! Kernel equivalence: the direction-optimizing hybrid BFS and the
//! bit-parallel multi-source BFS must produce exactly the rows the scalar
//! top-down BFS produces — BFS levels are uniquely determined by the
//! graph, so any divergence is a kernel bug, not a tolerance question.

use cp_graph::bfs::{bfs, bfs_scalar_into, BfsWorkspace};
use cp_graph::builder::graph_from_edges;
use cp_graph::dijkstra::dijkstra;
use cp_graph::msbfs::{msbfs, msbfs_into, MsBfsWorkspace, WAVE_WIDTH};
use cp_graph::repair::{delta_repair, delta_repair_into, snapshot_delta, RepairWorkspace};
use cp_graph::{GraphBuilder, NodeId};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: a random edge list over up to `n` nodes. Node universes are
/// deliberately larger than the edge count can saturate, so disconnected
/// components and fully isolated nodes occur routinely.
fn edge_list(n: u32, max_edges: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..=n).prop_flat_map(move |nodes| {
        let edges = prop::collection::vec((0..nodes, 0..nodes), 0..max_edges);
        (Just(nodes as usize), edges)
    })
}

/// Strategy: an edge list plus a batch of source nodes of the given width
/// (sources may repeat and may be isolated).
fn case_with_sources(
    n: u32,
    max_edges: usize,
    width: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<u32>)> {
    (2..=n).prop_flat_map(move |nodes| {
        let edges = prop::collection::vec((0..nodes, 0..nodes), 0..max_edges);
        let sources = prop::collection::vec(0..nodes, width..=width);
        (Just(nodes as usize), edges, sources)
    })
}

fn assert_wave_matches_per_source(
    n: usize,
    edges: &[(u32, u32)],
    sources: &[u32],
) -> Result<(), TestCaseError> {
    let g = graph_from_edges(n, edges);
    let src: Vec<NodeId> = sources.iter().map(|&s| NodeId(s)).collect();
    let rows = msbfs(&g, &src);
    prop_assert_eq!(rows.len(), src.len());
    let mut ws = BfsWorkspace::new();
    for (i, &s) in src.iter().enumerate() {
        let mut expect = Vec::new();
        bfs_scalar_into(&g, s, &mut expect, &mut ws);
        prop_assert_eq!(&rows[i], &expect, "row of source {} diverges", s);
    }
    Ok(())
}

proptest! {
    // Width 1: a degenerate wave must still equal single-source BFS.
    #[test]
    fn msbfs_width_1_matches_bfs((n, edges, sources) in case_with_sources(40, 100, 1)) {
        assert_wave_matches_per_source(n, &edges, &sources)?;
    }

    // Width 3: a partial wave (most common case in the oracle's batches).
    #[test]
    fn msbfs_width_3_matches_bfs((n, edges, sources) in case_with_sources(40, 100, 3)) {
        assert_wave_matches_per_source(n, &edges, &sources)?;
    }

    // Width 64: a full wave — every bit of the u64 words in use.
    #[test]
    fn msbfs_width_64_matches_bfs((n, edges, sources) in case_with_sources(80, 200, 64)) {
        assert_wave_matches_per_source(n, &edges, &sources)?;
    }

    // Width 65: forces the chunking path (one full wave plus a remainder).
    #[test]
    fn msbfs_width_65_matches_bfs((n, edges, sources) in case_with_sources(80, 200, 65)) {
        assert_wave_matches_per_source(n, &edges, &sources)?;
    }

    // The direction-optimizing hybrid (`bfs`/`bfs_into`) equals the scalar
    // reference kernel from every source, including isolated nodes.
    #[test]
    fn hybrid_bfs_matches_scalar((n, edges) in edge_list(48, 140)) {
        let g = graph_from_edges(n, &edges);
        let mut ws = BfsWorkspace::new();
        for s in g.nodes() {
            let mut expect = Vec::new();
            bfs_scalar_into(&g, s, &mut expect, &mut ws);
            prop_assert_eq!(bfs(&g, s), expect, "source {} diverges", s);
        }
    }

    // Workspace reuse across waves of different graphs must not leak state.
    #[test]
    fn msbfs_workspace_reuse_is_clean(
        (n1, edges1, sources1) in case_with_sources(40, 80, 5),
        (n2, edges2, sources2) in case_with_sources(24, 50, 7),
    ) {
        let ga = graph_from_edges(n1, &edges1);
        let gb = graph_from_edges(n2, &edges2);
        let src_a: Vec<NodeId> = sources1.iter().map(|&s| NodeId(s)).collect();
        let src_b: Vec<NodeId> = sources2.iter().map(|&s| NodeId(s)).collect();
        let mut msws = MsBfsWorkspace::new();
        let mut rows_a: Vec<Vec<u32>> = vec![Vec::new(); src_a.len()];
        msbfs_into(&ga, &src_a, &mut rows_a, &mut msws);
        let mut rows_b: Vec<Vec<u32>> = vec![Vec::new(); src_b.len()];
        msbfs_into(&gb, &src_b, &mut rows_b, &mut msws);
        prop_assert_eq!(&rows_a, &msbfs(&ga, &src_a));
        prop_assert_eq!(&rows_b, &msbfs(&gb, &src_b));
    }
}

/// Strategy: a growing snapshot pair with node insertions. `g1`'s edges
/// live on the first `k ≤ n` nodes of an `n`-node universe; `g2` adds
/// edges over the whole universe — so nodes `k..n` model inserted nodes
/// (isolated at `t1`), and the extra edges routinely connect previously
/// separate components or touch previously isolated ones.
type GrowingPair = (usize, Vec<(u32, u32)>, Vec<(u32, u32)>);

fn growing_pair(n: u32) -> impl Strategy<Value = GrowingPair> {
    (4..=n).prop_flat_map(move |nodes| {
        (1..=nodes).prop_flat_map(move |active| {
            let base = prop::collection::vec((0..active, 0..active), 0..80);
            let extra = prop::collection::vec((0..nodes, 0..nodes), 0..40);
            (Just(nodes as usize), base, extra)
        })
    })
}

proptest! {
    // Snapshot-delta repair of a t1 BFS row equals a fresh BFS on t2 from
    // every source — inserted isolated nodes, newly connected components,
    // and sources unreachable at t1 included.
    #[test]
    fn bfs_repair_matches_fresh_bfs((n, base, extra) in growing_pair(40)) {
        let g1 = graph_from_edges(n, &base);
        let all: Vec<(u32, u32)> = base.iter().chain(extra.iter()).copied().collect();
        let g2 = graph_from_edges(n, &all);
        let delta = snapshot_delta(&g1, &g2);
        prop_assert!(delta.growth_only, "insert-only pairs must be repairable");
        let mut ws = RepairWorkspace::new();
        let mut dist = Vec::new();
        for s in g1.nodes() {
            let t1_row = bfs(&g1, s);
            let settled = delta_repair_into(&g2, &t1_row, &delta, &mut dist, &mut ws);
            prop_assert_eq!(&dist, &bfs(&g2, s), "repaired row of source {} diverges", s);
            prop_assert!(settled <= n, "settled count bounded by the universe");
        }
    }

    // The empty delta: identical snapshots repair to a bit-identical copy
    // with nothing settled.
    #[test]
    fn empty_delta_repair_is_a_copy((n, edges) in edge_list(32, 90)) {
        let g = graph_from_edges(n, &edges);
        let delta = snapshot_delta(&g, &g);
        prop_assert!(delta.growth_only);
        prop_assert!(delta.inserted.is_empty());
        let mut ws = RepairWorkspace::new();
        let mut dist = Vec::new();
        for s in g.nodes() {
            let t1_row = bfs(&g, s);
            let settled = delta_repair_into(&g, &t1_row, &delta, &mut dist, &mut ws);
            prop_assert_eq!(settled, 0, "empty delta settles nothing");
            prop_assert_eq!(&dist, &t1_row);
        }
    }

    // Weighted counterpart: Dijkstra-repair of a t1 row equals a fresh
    // Dijkstra on t2 for random insert-only weighted pairs.
    #[test]
    fn dijkstra_repair_matches_fresh_dijkstra(
        (n, base, extra) in growing_pair(24),
        weights in prop::collection::vec(1u32..10, 0..130),
    ) {
        // Assign deterministic weights per distinct pair; extra edges that
        // collide with a base pair are dropped so shared edges keep their
        // weight (the growth-only precondition for weighted pairs).
        let mut wit = weights.into_iter().cycle();
        let mut base_w: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for &(u, v) in &base {
            if u != v {
                let key = (u.min(v), u.max(v));
                base_w.entry(key).or_insert_with(|| wit.next().unwrap_or(1));
            }
        }
        let mut extra_w: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        for &(u, v) in &extra {
            if u != v {
                let key = (u.min(v), u.max(v));
                if !base_w.contains_key(&key) {
                    extra_w.entry(key).or_insert_with(|| wit.next().unwrap_or(1));
                }
            }
        }
        let build = |maps: &[&BTreeMap<(u32, u32), u32>]| {
            let mut b = GraphBuilder::new(n);
            for m in maps {
                for (&(u, v), &w) in m.iter() {
                    b.add_weighted_edge(NodeId(u), NodeId(v), w);
                }
            }
            b.build()
        };
        let g1 = build(&[&base_w]);
        let g2 = build(&[&base_w, &extra_w]);
        // (If every sampled weight is 1 the builders produce unweighted
        // graphs; `delta_repair` then dispatches to BFS-repair, which must
        // still match Dijkstra on unit weights.)
        let delta = snapshot_delta(&g1, &g2);
        prop_assert!(delta.growth_only, "weight-preserving growth must be repairable");
        prop_assert_eq!(delta.inserted.len(), extra_w.len());
        for s in g1.nodes() {
            let t1_row = dijkstra(&g1, s);
            let repaired = delta_repair(&g2, &t1_row, &delta);
            prop_assert_eq!(&repaired, &dijkstra(&g2, s), "source {} diverges", s);
        }
    }
}

/// A wave capped exactly at [`WAVE_WIDTH`] distinct sources on a graph with
/// several components: every row must match per-source BFS, including the
/// all-`INF`-except-self rows of isolated sources.
#[test]
fn full_wave_on_disconnected_graph() {
    // Three components: a 30-cycle, a 20-path, and 30 isolated nodes.
    let mut edges: Vec<(u32, u32)> = (0..30).map(|i| (i, (i + 1) % 30)).collect();
    edges.extend((30..49).map(|i| (i, i + 1)));
    let g = graph_from_edges(80, &edges);
    let sources: Vec<NodeId> = (0..WAVE_WIDTH as u32).map(NodeId).collect();
    let rows = msbfs(&g, &sources);
    for (i, &s) in sources.iter().enumerate() {
        assert_eq!(rows[i], bfs(&g, s), "source {s}");
    }
}
