//! Kernel equivalence: the direction-optimizing hybrid BFS and the
//! bit-parallel multi-source BFS must produce exactly the rows the scalar
//! top-down BFS produces — BFS levels are uniquely determined by the
//! graph, so any divergence is a kernel bug, not a tolerance question.

use cp_graph::bfs::{bfs, bfs_scalar_into, BfsWorkspace};
use cp_graph::builder::graph_from_edges;
use cp_graph::msbfs::{msbfs, msbfs_into, MsBfsWorkspace, WAVE_WIDTH};
use cp_graph::NodeId;
use proptest::prelude::*;

/// Strategy: a random edge list over up to `n` nodes. Node universes are
/// deliberately larger than the edge count can saturate, so disconnected
/// components and fully isolated nodes occur routinely.
fn edge_list(n: u32, max_edges: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..=n).prop_flat_map(move |nodes| {
        let edges = prop::collection::vec((0..nodes, 0..nodes), 0..max_edges);
        (Just(nodes as usize), edges)
    })
}

/// Strategy: an edge list plus a batch of source nodes of the given width
/// (sources may repeat and may be isolated).
fn case_with_sources(
    n: u32,
    max_edges: usize,
    width: usize,
) -> impl Strategy<Value = (usize, Vec<(u32, u32)>, Vec<u32>)> {
    (2..=n).prop_flat_map(move |nodes| {
        let edges = prop::collection::vec((0..nodes, 0..nodes), 0..max_edges);
        let sources = prop::collection::vec(0..nodes, width..=width);
        (Just(nodes as usize), edges, sources)
    })
}

fn assert_wave_matches_per_source(
    n: usize,
    edges: &[(u32, u32)],
    sources: &[u32],
) -> Result<(), TestCaseError> {
    let g = graph_from_edges(n, edges);
    let src: Vec<NodeId> = sources.iter().map(|&s| NodeId(s)).collect();
    let rows = msbfs(&g, &src);
    prop_assert_eq!(rows.len(), src.len());
    let mut ws = BfsWorkspace::new();
    for (i, &s) in src.iter().enumerate() {
        let mut expect = Vec::new();
        bfs_scalar_into(&g, s, &mut expect, &mut ws);
        prop_assert_eq!(&rows[i], &expect, "row of source {} diverges", s);
    }
    Ok(())
}

proptest! {
    // Width 1: a degenerate wave must still equal single-source BFS.
    #[test]
    fn msbfs_width_1_matches_bfs((n, edges, sources) in case_with_sources(40, 100, 1)) {
        assert_wave_matches_per_source(n, &edges, &sources)?;
    }

    // Width 3: a partial wave (most common case in the oracle's batches).
    #[test]
    fn msbfs_width_3_matches_bfs((n, edges, sources) in case_with_sources(40, 100, 3)) {
        assert_wave_matches_per_source(n, &edges, &sources)?;
    }

    // Width 64: a full wave — every bit of the u64 words in use.
    #[test]
    fn msbfs_width_64_matches_bfs((n, edges, sources) in case_with_sources(80, 200, 64)) {
        assert_wave_matches_per_source(n, &edges, &sources)?;
    }

    // Width 65: forces the chunking path (one full wave plus a remainder).
    #[test]
    fn msbfs_width_65_matches_bfs((n, edges, sources) in case_with_sources(80, 200, 65)) {
        assert_wave_matches_per_source(n, &edges, &sources)?;
    }

    // The direction-optimizing hybrid (`bfs`/`bfs_into`) equals the scalar
    // reference kernel from every source, including isolated nodes.
    #[test]
    fn hybrid_bfs_matches_scalar((n, edges) in edge_list(48, 140)) {
        let g = graph_from_edges(n, &edges);
        let mut ws = BfsWorkspace::new();
        for s in g.nodes() {
            let mut expect = Vec::new();
            bfs_scalar_into(&g, s, &mut expect, &mut ws);
            prop_assert_eq!(bfs(&g, s), expect, "source {} diverges", s);
        }
    }

    // Workspace reuse across waves of different graphs must not leak state.
    #[test]
    fn msbfs_workspace_reuse_is_clean(
        (n1, edges1, sources1) in case_with_sources(40, 80, 5),
        (n2, edges2, sources2) in case_with_sources(24, 50, 7),
    ) {
        let ga = graph_from_edges(n1, &edges1);
        let gb = graph_from_edges(n2, &edges2);
        let src_a: Vec<NodeId> = sources1.iter().map(|&s| NodeId(s)).collect();
        let src_b: Vec<NodeId> = sources2.iter().map(|&s| NodeId(s)).collect();
        let mut msws = MsBfsWorkspace::new();
        let mut rows_a: Vec<Vec<u32>> = vec![Vec::new(); src_a.len()];
        msbfs_into(&ga, &src_a, &mut rows_a, &mut msws);
        let mut rows_b: Vec<Vec<u32>> = vec![Vec::new(); src_b.len()];
        msbfs_into(&gb, &src_b, &mut rows_b, &mut msws);
        prop_assert_eq!(&rows_a, &msbfs(&ga, &src_a));
        prop_assert_eq!(&rows_b, &msbfs(&gb, &src_b));
    }
}

/// A wave capped exactly at [`WAVE_WIDTH`] distinct sources on a graph with
/// several components: every row must match per-source BFS, including the
/// all-`INF`-except-self rows of isolated sources.
#[test]
fn full_wave_on_disconnected_graph() {
    // Three components: a 30-cycle, a 20-path, and 30 isolated nodes.
    let mut edges: Vec<(u32, u32)> = (0..30).map(|i| (i, (i + 1) % 30)).collect();
    edges.extend((30..49).map(|i| (i, i + 1)));
    let g = graph_from_edges(80, &edges);
    let sources: Vec<NodeId> = (0..WAVE_WIDTH as u32).map(NodeId).collect();
    let rows = msbfs(&g, &sources);
    for (i, &s) in sources.iter().enumerate() {
        assert_eq!(rows[i], bfs(&g, s), "source {s}");
    }
}
